//! Deterministic cluster-dynamics and fault-injection subsystem.
//!
//! The paper's elasticity evaluation (§5, Figures 11–12) has Sia
//! re-optimize as cluster composition changes mid-run. This crate supplies
//! the missing timeline: scripted, seed-stable **capacity events** —
//!
//! * node **add** (fresh nodes of an existing GPU kind appear),
//! * abrupt **remove** / kill (jobs evicted, losing progress since their
//!   last checkpoint),
//! * graceful **drain** (no new placements immediately; running jobs
//!   evicted with their progress intact once a grace window expires),
//! * per-node **degrade** / **restore** (straggler multipliers on true
//!   throughput) —
//!
//! expressed as a [`DynamicsScript`] (fluent builder or JSONL, one event
//! object per line) and compiled into a [`DynamicsRuntime`] that mutates a
//! versioned [`sia_cluster::ClusterView`] as simulation time advances.
//! Stochastic workloads come from [`generators`]: Poisson churn and
//! maintenance windows whose randomness is drawn once, at generation time,
//! from named `sia-events` RNG streams — the output is always a plain
//! deterministic script.
//!
//! Both simulator engines drive the same [`DynamicsRuntime::poll`], so
//! capacity changes (and every eviction, restart and re-placement they
//! trigger) are identical whether time advances round-by-round or
//! event-by-event.

#![forbid(unsafe_code)]

pub mod generators;
mod runtime;
mod script;

pub use runtime::{CapacityChange, CapacityChangeKind, DynamicsRuntime};
pub use script::{CapacityEvent, DynamicsError, DynamicsScript, ScriptEntry};
