/root/repo/target/release/deps/sia_solver-4e74017d46ffd3ba.d: crates/solver/src/lib.rs crates/solver/src/error.rs crates/solver/src/lagrangian.rs crates/solver/src/milp.rs crates/solver/src/problem.rs crates/solver/src/simplex.rs

/root/repo/target/release/deps/libsia_solver-4e74017d46ffd3ba.rlib: crates/solver/src/lib.rs crates/solver/src/error.rs crates/solver/src/lagrangian.rs crates/solver/src/milp.rs crates/solver/src/problem.rs crates/solver/src/simplex.rs

/root/repo/target/release/deps/libsia_solver-4e74017d46ffd3ba.rmeta: crates/solver/src/lib.rs crates/solver/src/error.rs crates/solver/src/lagrangian.rs crates/solver/src/milp.rs crates/solver/src/problem.rs crates/solver/src/simplex.rs

crates/solver/src/lib.rs:
crates/solver/src/error.rs:
crates/solver/src/lagrangian.rs:
crates/solver/src/milp.rs:
crates/solver/src/problem.rs:
crates/solver/src/simplex.rs:
