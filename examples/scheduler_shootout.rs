//! Scheduler shootout: Sia vs Pollux vs Gavel vs Shockwave vs Themis on the
//! same heterogeneous workload.
//!
//! Demonstrates driving multiple policies through the public simulator API.
//! Schedulers without job adaptivity (Gavel/Shockwave/Themis) receive
//! hand-tuned rigid jobs (the paper's "TunedJobs"), exactly as in §4.3.
//!
//! Run with: `cargo run --release --example scheduler_shootout`

use sia::baselines::{GavelPolicy, PolluxPolicy, ShockwavePolicy, ThemisPolicy};
use sia::cluster::ClusterSpec;
use sia::core::SiaPolicy;
use sia::metrics::summarize;
use sia::sim::{Scheduler, SimConfig, Simulator};
use sia::workloads::{Trace, TraceConfig, TraceKind};

fn main() {
    let cluster = ClusterSpec::heterogeneous_64();
    let seed = 7;

    let adaptive_trace =
        Trace::generate(&TraceConfig::new(TraceKind::Philly, seed).with_max_gpus_cap(16));
    let rigid_trace = Trace::generate(
        &TraceConfig::new(TraceKind::Philly, seed)
            .with_max_gpus_cap(16)
            .with_adaptivity_mix(0.0, 1.0),
    );

    let mut schedulers: Vec<(Box<dyn Scheduler>, &Trace)> = vec![
        (Box::new(SiaPolicy::default()), &adaptive_trace),
        (Box::new(PolluxPolicy::default()), &adaptive_trace),
        (Box::new(GavelPolicy::default()), &rigid_trace),
        (Box::new(ShockwavePolicy::default()), &rigid_trace),
        (Box::new(ThemisPolicy::default()), &rigid_trace),
    ];

    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>10}",
        "scheduler", "avgJCT(h)", "p99JCT(h)", "GPUh/job", "restarts"
    );
    for (sched, trace) in schedulers.iter_mut() {
        let sim = Simulator::new(
            cluster.clone(),
            trace,
            SimConfig {
                seed,
                ..SimConfig::default()
            },
        );
        let result = sim.run(sched.as_mut());
        let s = summarize(&result);
        println!(
            "{:<12} {:>10.2} {:>10.2} {:>12.2} {:>10.1}",
            s.scheduler, s.avg_jct_hours, s.p99_jct_hours, s.gpu_hours_per_job, s.avg_restarts
        );
    }
}
