/root/repo/target/release/deps/fig10_sensitivity-188cc615887b72c1.d: crates/bench/src/bin/fig10_sensitivity.rs

/root/repo/target/release/deps/fig10_sensitivity-188cc615887b72c1: crates/bench/src/bin/fig10_sensitivity.rs

crates/bench/src/bin/fig10_sensitivity.rs:
