//! Incremental stepping driver over the round-engine semantics.
//!
//! [`Simulator::run_round`] executes a whole trace in one call; a long-running
//! daemon instead needs to *step* the simulation — admit jobs as they arrive
//! on a command stream, advance virtual time round by round, snapshot the
//! full scheduler state and resume from it bit-identically. [`SimDriver`]
//! owns exactly the state the round engine keeps between loop iterations
//! (jobs, pending arrivals, RNG, recorders, capacity view, audit cursor) and
//! replays the engine's loop body verbatim per [`SimDriver::step_round`]:
//! same RNG draw order, same flight-recorder and audit records. Driving a
//! pre-loaded submission queue with [`SimDriver::run_to_idle`] therefore
//! produces a canonical flight trace byte-identical to both engines' output.
//!
//! Capacity dynamics are deliberately out of scope: the daemon mutates the
//! job set, not the cluster, and excluding dynamics keeps snapshots closed
//! under the state enumerated here ([`SimDriver::new`] asserts the config
//! carries no script).

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::{json, FromJson, ToJson, Value};
use sia_cluster::{ClusterSpec, ClusterView, GpuTypeId, JobId, Placement};
use sia_models::{JobEstimator, ProfilingMode};
use sia_telemetry::{AllocReason, AuditEvent, AuditRecorder, FlightRecorder, TraceEvent};
use sia_workloads::JobSpec;

use crate::engine::{
    apply_allocations, assemble_result, is_fallback, record_audit_round, EngineKind, JobState,
    SimConfig, Simulator,
};
use crate::result::{DecisionInfo, RoundLog, SimResult};
use crate::scheduler::{JobView, Scheduler};

/// Snapshot payload format version understood by [`SimDriver::restore`].
pub const SNAPSHOT_STATE_VERSION: u64 = 1;

/// What one [`SimDriver::step_round`] call did, for callers that translate
/// engine activity into service events.
#[derive(Debug, Clone, Default)]
pub struct RoundOutcome {
    /// Virtual time at the round boundary that was executed.
    pub time: f64,
    /// Jobs admitted from the pending queue at this boundary.
    pub admitted: Vec<JobId>,
    /// Jobs that completed during the round, with their exact finish times.
    pub completed: Vec<(JobId, f64)>,
    /// Per-job allocations in force after the apply pass, sorted by job id.
    pub allocations: Vec<(JobId, GpuTypeId, usize)>,
    /// Jobs whose placement changed this round, in apply order.
    pub changed: Vec<JobId>,
}

/// Point-in-time health of the most recent *scheduled* round (one where
/// the policy actually ran), published through [`RoundWatch`].
#[derive(Debug, Clone, Default)]
pub struct RoundHealth {
    /// Virtual time of the round boundary.
    pub time: f64,
    /// Active jobs the policy saw.
    pub active: usize,
    /// Jobs that ended the round with an allocation.
    pub allocated: usize,
    /// Wall-clock seconds the whole scheduling pass took.
    pub policy_runtime_s: f64,
    /// Wall-clock seconds inside the solver proper.
    pub solve_s: f64,
    /// Relative optimality gap, when the solver reported bounds.
    pub gap_rel: Option<f64>,
    /// Branch-and-bound nodes expanded.
    pub nodes: usize,
    /// Branch-and-bound nodes pruned.
    pub nodes_pruned: usize,
    /// Whether the round was seeded from a warm-start incumbent.
    pub warm_seeded: bool,
    /// Whether the solver fell back to the greedy path.
    pub fallback: bool,
    /// MILP shards solved this round (0 = monolithic solve).
    pub shards: usize,
    /// Whether the per-round time budget expired before optimality was
    /// proven (the anytime incumbent was published instead).
    pub budget_exhausted: bool,
    /// Lagrangian pricing iterations run this round (0 when pricing
    /// didn't run).
    pub lagrangian_iters: usize,
    /// Duality gap left by the Lagrangian pricing pass.
    pub lagrangian_gap: f64,
}

/// Cloneable, thread-safe observation hook over a driver's round loop.
///
/// A stats listener thread holds one clone while the serving thread owns
/// the driver; the watch carries only runtime health — cumulative round
/// counters, the last scheduled round's [`RoundHealth`], and an
/// in-progress marker for stall detection. It is *not* part of snapshots:
/// counters restart from zero on [`SimDriver::restore`], matching the
/// uptime of the new process.
#[derive(Clone, Default)]
pub struct RoundWatch {
    inner: Arc<WatchInner>,
}

#[derive(Default)]
struct WatchInner {
    rounds: AtomicU64,
    scheduled_rounds: AtomicU64,
    warm_seeded_rounds: AtomicU64,
    fallback_rounds: AtomicU64,
    budget_exhausted_rounds: AtomicU64,
    in_round_since: Mutex<Option<Instant>>,
    last: Mutex<Option<RoundHealth>>,
}

impl RoundWatch {
    fn begin_round(&self) {
        *self.inner.in_round_since.lock().unwrap() = Some(Instant::now());
    }

    fn end_round(&self, health: Option<RoundHealth>) {
        self.inner.rounds.fetch_add(1, Ordering::Relaxed);
        if let Some(health) = health {
            self.inner.scheduled_rounds.fetch_add(1, Ordering::Relaxed);
            if health.warm_seeded {
                self.inner
                    .warm_seeded_rounds
                    .fetch_add(1, Ordering::Relaxed);
            }
            if health.fallback {
                self.inner.fallback_rounds.fetch_add(1, Ordering::Relaxed);
            }
            if health.budget_exhausted {
                self.inner
                    .budget_exhausted_rounds
                    .fetch_add(1, Ordering::Relaxed);
            }
            *self.inner.last.lock().unwrap() = Some(health);
        }
        *self.inner.in_round_since.lock().unwrap() = None;
    }

    /// How long the current round has been executing, if one is in
    /// flight. A long-running value is the stall signal a round-deadline
    /// watchdog checks.
    pub fn in_round_for(&self) -> Option<Duration> {
        self.inner
            .in_round_since
            .lock()
            .unwrap()
            .map(|t| t.elapsed())
    }

    /// Rounds executed since this process started (or restored).
    pub fn rounds(&self) -> u64 {
        self.inner.rounds.load(Ordering::Relaxed)
    }

    /// Rounds in which the policy actually ran (active jobs present).
    pub fn scheduled_rounds(&self) -> u64 {
        self.inner.scheduled_rounds.load(Ordering::Relaxed)
    }

    /// Scheduled rounds seeded from a warm-start incumbent.
    pub fn warm_seeded_rounds(&self) -> u64 {
        self.inner.warm_seeded_rounds.load(Ordering::Relaxed)
    }

    /// Scheduled rounds that took the greedy fallback path.
    pub fn fallback_rounds(&self) -> u64 {
        self.inner.fallback_rounds.load(Ordering::Relaxed)
    }

    /// Scheduled rounds whose per-round time budget expired before the
    /// solve proved optimality (anytime incumbent published instead).
    pub fn budget_exhausted_rounds(&self) -> u64 {
        self.inner.budget_exhausted_rounds.load(Ordering::Relaxed)
    }

    /// Warm-start hit rate over scheduled rounds, if any ran.
    pub fn warm_hit_ratio(&self) -> Option<f64> {
        let scheduled = self.scheduled_rounds();
        (scheduled > 0).then(|| self.warm_seeded_rounds() as f64 / scheduled as f64)
    }

    /// The most recent scheduled round's health, if any round ran.
    pub fn last(&self) -> Option<RoundHealth> {
        self.inner.last.lock().unwrap().clone()
    }
}

/// Result of a [`SimDriver::cancel`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CancelOutcome {
    /// The job was still queued; it never consumed resources.
    Pending,
    /// The job was active and has been terminated; `gpu_seconds` is what it
    /// consumed up to the cancellation instant.
    Active {
        /// GPU-seconds consumed before cancellation.
        gpu_seconds: f64,
    },
    /// The job already finished; nothing to cancel.
    Finished,
    /// No job with that id was ever submitted.
    NotFound,
}

/// Externally visible status of one submitted job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Job id.
    pub id: JobId,
    /// True while the job sits in the not-yet-admitted queue.
    pub pending: bool,
    /// True once the job completed (or was cancelled).
    pub finished: bool,
    /// Fraction of the work target completed, in `[0, 1]`.
    pub progress: f64,
    /// GPUs currently held.
    pub gpus: usize,
    /// Placement changes so far.
    pub restarts: u32,
    /// GPU-seconds consumed so far.
    pub gpu_seconds: f64,
    /// Completion instant, if any.
    pub finish_time: Option<f64>,
}

/// A steppable instance of the round engine: one cluster, one scheduler,
/// jobs injected over time. See the module docs for the parity contract.
pub struct SimDriver {
    sim: Simulator,
    jobs: Vec<JobState>,
    pending: VecDeque<JobSpec>,
    rounds: Vec<RoundLog>,
    now: f64,
    makespan: f64,
    audit_round: u64,
    rng: ChaCha8Rng,
    rec: FlightRecorder,
    audit: AuditRecorder,
    view: ClusterView,
    round: f64,
    horizon: f64,
    watch: RoundWatch,
}

impl SimDriver {
    /// Creates an empty driver over `spec`. The scheduler is consulted for
    /// the round duration and the recorder meta records, exactly as
    /// [`Simulator::run_round`] would at the top of a run.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.dynamics` is set or the round duration is not
    /// positive.
    pub fn new(spec: ClusterSpec, cfg: SimConfig, sched: &dyn Scheduler) -> Self {
        assert!(
            cfg.dynamics.is_none(),
            "SimDriver does not support capacity dynamics"
        );
        let round = sched.round_duration();
        assert!(round > 0.0, "round duration must be positive");
        let sim = Simulator {
            spec: spec.clone(),
            trace: Vec::new(),
            cfg,
        };
        let rng = ChaCha8Rng::seed_from_u64(sim.cfg.seed);
        let rec = sim.make_recorder(round);
        let audit = sim.make_audit_recorder(sched.name(), round, sched.gap_tolerance());
        let horizon = sim.cfg.max_hours * 3600.0;
        SimDriver {
            sim,
            jobs: Vec::new(),
            pending: VecDeque::new(),
            rounds: Vec::new(),
            now: 0.0,
            makespan: 0.0,
            audit_round: 0,
            rng,
            rec,
            audit,
            view: ClusterView::new(spec),
            round,
            horizon,
            watch: RoundWatch::default(),
        }
    }

    /// Current virtual time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Scheduling-round duration, seconds.
    pub fn round_duration(&self) -> f64 {
        self.round
    }

    /// Simulation horizon, seconds ([`SimConfig::max_hours`]).
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Number of admitted, unfinished jobs.
    pub fn active_count(&self) -> usize {
        self.jobs.iter().filter(|j| !j.finished()).count()
    }

    /// Number of submitted jobs not yet admitted at a round boundary.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// True when no work remains: nothing pending, nothing active.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.jobs.iter().all(JobState::finished)
    }

    /// A clone of the round-loop observation hook, for health endpoints
    /// and stall watchdogs running on other threads.
    pub fn round_watch(&self) -> RoundWatch {
        self.watch.clone()
    }

    /// The capacity view the scheduler sees, for capacity-shaped gauges.
    pub fn cluster(&self) -> &ClusterView {
        &self.view
    }

    /// Ids of submitted jobs not yet admitted, in admission order.
    pub fn pending_ids(&self) -> Vec<JobId> {
        self.pending.iter().map(|s| s.id).collect()
    }

    /// Flight-recorder ring evictions so far (see
    /// [`sia_telemetry::FlightRecorder::dropped`]).
    pub fn trace_dropped(&self) -> u64 {
        self.rec.dropped()
    }

    /// Audit-recorder ring evictions so far.
    pub fn audit_dropped(&self) -> u64 {
        self.audit.dropped()
    }

    /// Queues a job for admission at the first round boundary at or after
    /// its `submit_time`. Submissions with equal times are admitted in
    /// submission order, matching the trace order of the batch engines.
    pub fn submit(&mut self, spec: JobSpec) {
        let pos = self
            .pending
            .partition_point(|s| s.submit_time <= spec.submit_time);
        self.pending.insert(pos, spec);
    }

    /// Cancels a job. Pending jobs are silently dropped from the queue;
    /// active jobs are terminated at the current instant (their placement
    /// is released and a `cancelled` lifecycle record is emitted). Draws no
    /// RNG, so cancellations never perturb the noise stream of other jobs.
    pub fn cancel(&mut self, id: JobId) -> CancelOutcome {
        if let Some(pos) = self.pending.iter().position(|s| s.id == id) {
            self.pending.remove(pos);
            return CancelOutcome::Pending;
        }
        let Some(job) = self.jobs.iter_mut().find(|j| j.spec.id == id) else {
            return CancelOutcome::NotFound;
        };
        if job.finished() {
            return CancelOutcome::Finished;
        }
        job.finish_time = Some(self.now);
        let held = !job.placement.is_empty();
        job.placement = Placement::empty();
        self.rec
            .record(self.now, TraceEvent::JobCancelled { job: id.0 });
        if held {
            self.rec.record(
                self.now,
                TraceEvent::AllocationChanged {
                    job: id.0,
                    gpu_type: None,
                    gpus: 0,
                    reason: AllocReason::Cancelled,
                    restart: false,
                },
            );
        }
        CancelOutcome::Active {
            gpu_seconds: job.gpu_seconds,
        }
    }

    /// Emits one `admission` audit record at the current instant: the typed
    /// outcome of an admission-control decision made by a service layer in
    /// front of this driver (accepted, rejected-with-reason, or a
    /// cancellation refund with a negative charge). Pure recording — the
    /// driver itself admits everything passed to [`SimDriver::submit`].
    pub fn record_admission(
        &mut self,
        job: u64,
        tenant: &str,
        accepted: bool,
        reason: &str,
        charge_gpu_hours: f64,
    ) {
        self.audit.record(
            self.now,
            AuditEvent::Admission {
                job,
                tenant: tenant.to_string(),
                accepted,
                reason: reason.to_string(),
                charge_gpu_hours,
            },
        );
    }

    /// Status of a job by id, searching both the pending queue and the
    /// admitted set.
    pub fn job_status(&self, id: JobId) -> Option<JobStatus> {
        if let Some(spec) = self.pending.iter().find(|s| s.id == id) {
            return Some(JobStatus {
                id: spec.id,
                pending: true,
                finished: false,
                progress: 0.0,
                gpus: 0,
                restarts: 0,
                gpu_seconds: 0.0,
                finish_time: None,
            });
        }
        self.jobs
            .iter()
            .find(|j| j.spec.id == id)
            .map(|j| JobStatus {
                id: j.spec.id,
                pending: false,
                finished: j.finished(),
                progress: j.progress(),
                gpus: j.placement.total_gpus(),
                restarts: j.restarts,
                gpu_seconds: j.gpu_seconds,
                finish_time: j.finish_time,
            })
    }

    /// Admits every pending job whose submit time has been reached. Same
    /// loop as the engines' per-boundary admission scan, including the RNG
    /// draws of bootstrap profiling.
    fn admit_due(&mut self) -> Vec<JobId> {
        let mut admitted = Vec::new();
        while self
            .pending
            .front()
            .is_some_and(|s| s.submit_time <= self.now)
        {
            let spec = self.pending.pop_front().expect("front checked");
            admitted.push(spec.id);
            let state = self.sim.admit(&spec, &mut self.rng, &mut self.rec);
            self.jobs.push(state);
        }
        admitted
    }

    /// Executes exactly one round: admission, scheduling, apply, execution,
    /// then advances time by one round duration. This is the loop body of
    /// [`Simulator::run_round`] minus dynamics — RNG draws and recorder
    /// records are emitted in the identical order. Rounds with no active
    /// jobs draw no RNG and record nothing, so idle stepping (a daemon
    /// waiting for arrivals) cannot perturb parity with the batch engines.
    pub fn step_round(&mut self, sched: &mut dyn Scheduler) -> RoundOutcome {
        let now = self.now;
        let round = self.round;
        self.watch.begin_round();
        let admitted = self.admit_due();
        let active: Vec<usize> = (0..self.jobs.len())
            .filter(|&i| !self.jobs[i].finished())
            .collect();

        let round_t0 = Instant::now();
        let (alloc_map, solver_stats, decisions) = if active.is_empty() {
            (BTreeMap::new(), None, Vec::new())
        } else {
            let views: Vec<JobView<'_>> = active.iter().map(|&i| self.jobs[i].view(now)).collect();
            let map = {
                let _span = sia_telemetry::span("engine.schedule");
                sched.schedule(now, &views, &self.view)
            };
            (map, sched.round_stats(), sched.round_decisions())
        };
        let provenance: BTreeMap<JobId, DecisionInfo> =
            decisions.into_iter().map(|d| (d.job, d)).collect();
        record_audit_round(
            &mut self.audit,
            self.audit_round,
            now,
            active.len(),
            &solver_stats,
        );

        let contention = active.len();
        let applied = apply_allocations(
            &self.sim,
            &mut self.jobs,
            &active,
            &alloc_map,
            now,
            is_fallback(&solver_stats),
            &self.view,
            &mut self.rng,
            &mut self.rec,
            &mut self.audit,
            self.audit_round,
            &provenance,
        );
        if solver_stats.is_some() {
            self.audit_round += 1;
        }
        let policy_runtime = round_t0.elapsed().as_secs_f64();
        if !active.is_empty() {
            self.rec.record(
                now,
                TraceEvent::RoundScheduled {
                    contention,
                    policy_runtime,
                },
            );
        }

        sia_telemetry::counter("engine.rounds").incr();
        sia_telemetry::counter("engine.restarts").add(applied.restarts);
        sia_telemetry::counter("engine.alloc_churn").add(applied.churn);
        sia_telemetry::gauge("engine.active_jobs").set(active.len() as f64);
        sia_telemetry::gauge("engine.queue_depth")
            .set((contention - applied.allocations.len()) as f64);

        let changed: Vec<JobId> = applied
            .changed
            .iter()
            .map(|&i| self.jobs[i].spec.id)
            .collect();
        let allocations = applied.allocations.clone();
        let health = solver_stats.as_ref().map(|s| RoundHealth {
            time: now,
            active: active.len(),
            allocated: allocations.len(),
            policy_runtime_s: policy_runtime,
            solve_s: s.solve_s,
            gap_rel: s.gap_rel(),
            nodes: s.nodes,
            nodes_pruned: s.nodes_pruned,
            warm_seeded: s.incumbent_seed.is_some(),
            fallback: is_fallback(&solver_stats),
            shards: s.shards,
            budget_exhausted: s.budget_exhausted,
            lagrangian_iters: s.lagrangian_iters,
            lagrangian_gap: s.lagrangian_gap,
        });
        self.rounds.push(RoundLog {
            time: now,
            active_jobs: active.len(),
            contention,
            allocations: applied.allocations,
            policy_runtime,
            solver_stats,
        });

        // Advance one round of execution (verbatim engine loop body).
        let execute_span = sia_telemetry::span("engine.execute");
        let mut round_failures = 0u64;
        let mut completed: Vec<(JobId, f64)> = Vec::new();
        for &i in &active {
            let job = &mut self.jobs[i];
            if job.placement.is_empty() {
                continue;
            }
            let gpus = job.placement.total_gpus();
            if self.sim.cfg.failure_rate_per_gpu_hour > 0.0 {
                let expected =
                    self.sim.cfg.failure_rate_per_gpu_hour * gpus as f64 * round / 3600.0;
                let k = sia_events::poisson_sample(&mut self.rng, expected);
                if k > 0 {
                    job.failures += u32::try_from(k).unwrap_or(u32::MAX);
                    round_failures += k;
                    job.work_done = job.checkpointed_work;
                    job.restart_remaining = (job.restart_remaining
                        + k as f64 * job.truth.restart_delay)
                        .min(4.0 * round);
                    self.rec.record(
                        now,
                        TraceEvent::JobFailed {
                            job: job.spec.id.0,
                            count: k,
                        },
                    );
                }
            }
            let paid_restart = job.restart_remaining.min(round);
            job.restart_remaining -= paid_restart;
            let usable = round - paid_restart;
            let mut consumed = round;

            if usable > 0.0 {
                if let Some((goodput, point, gpu_type)) = self.sim.true_goodput(job, &self.view) {
                    let jittered = goodput
                        * (1.0
                            + self.sim.cfg.execution_noise
                                * crate::engine::symmetric(&mut self.rng));
                    let jittered = jittered.max(0.0);
                    let needed = job.spec.work_target - job.work_done;
                    if jittered > 0.0 && needed <= jittered * usable {
                        let dt = needed / jittered;
                        let finish = now + paid_restart + dt;
                        job.finish_time = Some(finish);
                        job.work_done = job.spec.work_target;
                        consumed = paid_restart + dt;
                        self.makespan = self.makespan.max(finish);
                        completed.push((job.spec.id, finish));
                        self.rec
                            .record(finish, TraceEvent::JobCompleted { job: job.spec.id.0 });
                        self.rec.record(
                            finish,
                            TraceEvent::AllocationChanged {
                                job: job.spec.id.0,
                                gpu_type: None,
                                gpus: 0,
                                reason: AllocReason::Completed,
                                restart: false,
                            },
                        );
                    } else {
                        job.work_done += jittered * usable;
                        job.advance_checkpoint();
                    }
                    self.sim
                        .executor_report(job, gpus, gpu_type, &point, &mut self.rng);
                }
            }
            if paid_restart > 0.0 && usable > 0.0 {
                self.rec.record(
                    now + paid_restart,
                    TraceEvent::RestartFinished { job: job.spec.id.0 },
                );
            }
            job.gpu_seconds += gpus as f64 * consumed;
            if job.finished() {
                job.placement = Placement::empty();
            }
        }
        drop(execute_span);
        sia_telemetry::counter("engine.failures").add(round_failures);

        self.now += round;
        self.watch.end_round(health);
        RoundOutcome {
            time: now,
            admitted,
            completed,
            allocations,
            changed,
        }
    }

    /// Steps rounds until virtual time reaches `t` (replay pacing for a
    /// command stream: execute everything due strictly before the next
    /// command's timestamp). The horizon is not enforced here — a daemon
    /// keeps serving past it; batch-equivalent termination is
    /// [`SimDriver::run_to_idle`].
    pub fn step_until(&mut self, t: f64, sched: &mut dyn Scheduler) -> Vec<RoundOutcome> {
        let mut out = Vec::new();
        while self.now < t {
            out.push(self.step_round(sched));
        }
        out
    }

    /// Runs until the engine's own termination condition: no active jobs
    /// and nothing pending, or the horizon reached — the exact break logic
    /// of [`Simulator::run_round`], so a driver pre-loaded with a whole
    /// trace reproduces the batch run round for round.
    pub fn run_to_idle(&mut self, sched: &mut dyn Scheduler) -> Vec<RoundOutcome> {
        let mut out = Vec::new();
        loop {
            let admitted = self.admit_due();
            let has_active = self.jobs.iter().any(|j| !j.finished());
            if !has_active && self.pending.is_empty() {
                break;
            }
            if self.now >= self.horizon {
                break;
            }
            let mut o = self.step_round(sched);
            // `step_round` re-scans the queue but everything due was just
            // admitted above; surface those ids on this round's outcome.
            o.admitted = admitted.into_iter().chain(o.admitted).collect();
            out.push(o);
        }
        out
    }

    /// Finalizes the run into a [`SimResult`], consuming the driver. The
    /// scheduler is only consulted for its display name.
    pub fn finish(self, sched: &dyn Scheduler) -> SimResult {
        assemble_result(
            sched.name(),
            &self.jobs,
            self.rounds,
            self.makespan,
            self.rec.into_trace(),
            self.audit.into_stream(),
        )
    }

    /// Re-attaches a flight-recorder spill file (snapshots never carry open
    /// file handles; a restored daemon opts back in here).
    pub fn attach_trace_spill(&mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.rec.attach_spill(path)
    }

    /// Re-attaches an audit-recorder spill file, same contract as
    /// [`SimDriver::attach_trace_spill`].
    pub fn attach_audit_spill(&mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.audit.attach_spill(path)
    }

    /// Serializes the complete driver state — RNG, capacity view, per-job
    /// truth-independent state (estimators included), pending queue, both
    /// recorder rings and the scheduler's durable state — into one JSON
    /// value. [`SimDriver::restore`] rebuilds a driver that emits exactly
    /// the records and RNG draws the original would have emitted next.
    ///
    /// The per-round log ([`SimResult::rounds`]) is deliberately not
    /// captured: it is reporting output, not evolution state, and a
    /// restored daemon's result only carries post-restore rounds.
    pub fn snapshot(&self, sched: &dyn Scheduler) -> Value {
        let (key, counter, buf, idx) = self.rng.export_state();
        json!({
            "version": SNAPSHOT_STATE_VERSION,
            "now": self.now,
            "makespan": self.makespan,
            "audit_round": bits(self.audit_round),
            "round_duration": self.round,
            "spec": self.sim.spec.to_json(),
            "config": config_to_json(&self.sim.cfg),
            "rng": json!({
                "key": key.to_vec(),
                "counter": bits(counter),
                "buf": buf.iter().map(|&w| bits(w)).collect::<Vec<Value>>(),
                "idx": idx,
            }),
            "cluster": self.view.to_json(),
            "jobs": self.jobs.iter().map(job_to_json).collect::<Vec<Value>>(),
            "pending": self.pending.iter().map(ToJson::to_json).collect::<Vec<Value>>(),
            "trace_recorder": self.rec.export_state(),
            "audit_recorder": self.audit.export_state(),
            "scheduler": sched.export_state().unwrap_or(Value::Null),
        })
    }

    /// Rebuilds a driver from a [`SimDriver::snapshot`] payload, feeding
    /// the captured policy state into `sched` via
    /// [`Scheduler::import_state`]. Spill files are not re-attached (see
    /// [`SimDriver::attach_trace_spill`]). Fails on a version mismatch, a
    /// malformed payload, or a scheduler whose round duration disagrees
    /// with the snapshot.
    pub fn restore(payload: &Value, sched: &mut dyn Scheduler) -> Result<Self, String> {
        let version = payload
            .get("version")
            .and_then(Value::as_u64)
            .ok_or("snapshot: missing version")?;
        if version != SNAPSHOT_STATE_VERSION {
            return Err(format!(
                "snapshot: state version {version} unsupported (expected {SNAPSHOT_STATE_VERSION})"
            ));
        }
        let round = req_f64(payload, "round_duration")?;
        if round != sched.round_duration() {
            return Err(format!(
                "snapshot: round duration {round}s does not match the scheduler's {}s",
                sched.round_duration()
            ));
        }
        let spec = ClusterSpec::from_json(payload.get("spec").ok_or("snapshot: missing spec")?)
            .map_err(|e| format!("snapshot: bad spec: {e}"))?;
        let cfg = config_from_json(payload.get("config").ok_or("snapshot: missing config")?)?;
        let view =
            ClusterView::from_json(payload.get("cluster").ok_or("snapshot: missing cluster")?)
                .map_err(|e| format!("snapshot: bad cluster view: {e}"))?;
        let rng = rng_from_json(payload.get("rng").ok_or("snapshot: missing rng")?)?;
        let sim = Simulator {
            spec,
            trace: Vec::new(),
            cfg,
        };
        let jobs = payload
            .get("jobs")
            .and_then(Value::as_array)
            .ok_or("snapshot: missing jobs")?
            .iter()
            .map(|v| job_from_json(v, &sim.spec))
            .collect::<Result<Vec<JobState>, String>>()?;
        let pending = payload
            .get("pending")
            .and_then(Value::as_array)
            .ok_or("snapshot: missing pending")?
            .iter()
            .map(|v| JobSpec::from_json(v).map_err(|e| format!("snapshot: bad pending job: {e}")))
            .collect::<Result<VecDeque<JobSpec>, String>>()?;
        let rec = FlightRecorder::from_state(
            payload
                .get("trace_recorder")
                .ok_or("snapshot: missing trace recorder")?,
        )
        .map_err(|e| format!("snapshot: bad trace recorder: {e}"))?;
        let audit = AuditRecorder::from_state(
            payload
                .get("audit_recorder")
                .ok_or("snapshot: missing audit recorder")?,
        )
        .map_err(|e| format!("snapshot: bad audit recorder: {e}"))?;
        if let Some(state) = payload.get("scheduler") {
            if !state.is_null() {
                sched.import_state(state);
            }
        }
        let horizon = sim.cfg.max_hours * 3600.0;
        Ok(SimDriver {
            sim,
            jobs,
            pending,
            rounds: Vec::new(),
            now: req_f64(payload, "now")?,
            makespan: req_f64(payload, "makespan")?,
            audit_round: req_bits(payload, "audit_round")?,
            rng,
            rec,
            audit,
            view,
            round,
            horizon,
            watch: RoundWatch::default(),
        })
    }
}

/// Encodes a full-range `u64` as its `i64` bit pattern (the compat JSON
/// integer is `i64`; RNG words exceed its positive range about half the
/// time).
fn bits(v: u64) -> Value {
    Value::Int(v as i64)
}

/// Decodes a [`bits`]-encoded integer.
fn unbits(v: &Value) -> Option<u64> {
    v.as_i64().map(|i| i as u64)
}

fn req_f64(v: &Value, name: &str) -> Result<f64, String> {
    v.get(name)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("snapshot: missing {name}"))
}

fn req_bits(v: &Value, name: &str) -> Result<u64, String> {
    v.get(name)
        .and_then(unbits)
        .ok_or_else(|| format!("snapshot: missing {name}"))
}

fn opt_f64(v: Option<f64>) -> Value {
    v.map(Value::Float).unwrap_or(Value::Null)
}

fn config_to_json(cfg: &SimConfig) -> Value {
    json!({
        "engine": cfg.engine.label(),
        "profiling_mode": cfg.profiling_mode.to_json(),
        "seed": bits(cfg.seed),
        "measurement_noise": cfg.measurement_noise,
        "execution_noise": cfg.execution_noise,
        "restart_jitter": cfg.restart_jitter,
        "max_hours": cfg.max_hours,
        "profiling_gpu_seconds": cfg.profiling_gpu_seconds,
        "failure_rate_per_gpu_hour": cfg.failure_rate_per_gpu_hour,
        "trace_capacity": cfg.trace_capacity,
        "audit_capacity": cfg.audit_capacity,
    })
}

fn config_from_json(v: &Value) -> Result<SimConfig, String> {
    let engine = match v.get("engine").and_then(Value::as_str) {
        Some("round") => EngineKind::Round,
        Some("events") | None => EngineKind::Events,
        Some(other) => return Err(format!("snapshot: unknown engine {other:?}")),
    };
    let profiling_mode = ProfilingMode::from_json(
        v.get("profiling_mode")
            .ok_or("snapshot: missing profiling_mode")?,
    )
    .map_err(|e| format!("snapshot: bad profiling_mode: {e}"))?;
    let cap = |name: &str| -> Result<usize, String> {
        let raw = v
            .get(name)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("snapshot: missing {name}"))?;
        usize::try_from(raw).map_err(|_| format!("snapshot: {name} out of range"))
    };
    Ok(SimConfig {
        engine,
        profiling_mode,
        seed: req_bits(v, "seed")?,
        measurement_noise: req_f64(v, "measurement_noise")?,
        execution_noise: req_f64(v, "execution_noise")?,
        restart_jitter: req_f64(v, "restart_jitter")?,
        max_hours: req_f64(v, "max_hours")?,
        profiling_gpu_seconds: req_f64(v, "profiling_gpu_seconds")?,
        failure_rate_per_gpu_hour: req_f64(v, "failure_rate_per_gpu_hour")?,
        trace_capacity: cap("trace_capacity")?,
        trace_spill: None,
        audit_capacity: cap("audit_capacity")?,
        audit_spill: None,
        dynamics: None,
    })
}

fn rng_from_json(v: &Value) -> Result<ChaCha8Rng, String> {
    let key_raw = v
        .get("key")
        .and_then(Value::as_array)
        .ok_or("snapshot: missing rng key")?;
    if key_raw.len() != 8 {
        return Err("snapshot: rng key must have 8 words".into());
    }
    let mut key = [0u32; 8];
    for (slot, w) in key.iter_mut().zip(key_raw) {
        let raw = w.as_u64().ok_or("snapshot: bad rng key word")?;
        *slot = u32::try_from(raw).map_err(|_| "snapshot: rng key word out of range")?;
    }
    let counter = v
        .get("counter")
        .and_then(unbits)
        .ok_or("snapshot: missing rng counter")?;
    let buf_raw = v
        .get("buf")
        .and_then(Value::as_array)
        .ok_or("snapshot: missing rng buf")?;
    if buf_raw.len() != 8 {
        return Err("snapshot: rng buf must have 8 words".into());
    }
    let mut buf = [0u64; 8];
    for (slot, w) in buf.iter_mut().zip(buf_raw) {
        *slot = unbits(w).ok_or("snapshot: bad rng buf word")?;
    }
    let idx = v
        .get("idx")
        .and_then(Value::as_u64)
        .ok_or("snapshot: missing rng idx")?;
    let idx = usize::try_from(idx).map_err(|_| "snapshot: rng idx out of range")?;
    if idx > 8 {
        return Err("snapshot: rng idx out of range".into());
    }
    Ok(ChaCha8Rng::from_state(key, counter, buf, idx))
}

fn job_to_json(j: &JobState) -> Value {
    json!({
        "spec": j.spec.to_json(),
        "estimator": j.estimator.to_json(),
        "placement": j.placement.slots.clone(),
        "restart_remaining": j.restart_remaining,
        "work_done": j.work_done,
        "checkpointed_work": j.checkpointed_work,
        "restarts": j.restarts,
        "failures": j.failures,
        "first_start": opt_f64(j.first_start),
        "finish_time": opt_f64(j.finish_time),
        "gpu_seconds": j.gpu_seconds,
        "contention_sum": j.contention_sum,
        "contention_rounds": bits(j.contention_rounds),
    })
}

fn job_from_json(v: &Value, cluster: &ClusterSpec) -> Result<JobState, String> {
    let spec = JobSpec::from_json(v.get("spec").ok_or("snapshot: job missing spec")?)
        .map_err(|e| format!("snapshot: bad job spec: {e}"))?;
    let estimator = JobEstimator::from_json(
        v.get("estimator")
            .ok_or("snapshot: job missing estimator")?,
    )
    .map_err(|e| format!("snapshot: bad estimator: {e}"))?;
    let slots = v
        .get("placement")
        .and_then(Value::as_array)
        .ok_or("snapshot: job missing placement")?
        .iter()
        .map(|s| {
            let pair = s.as_array().filter(|a| a.len() == 2);
            let node = pair.and_then(|a| a[0].as_u64());
            let gpus = pair.and_then(|a| a[1].as_u64());
            match (node, gpus) {
                (Some(n), Some(g)) => Ok((n as usize, g as usize)),
                _ => Err("snapshot: bad placement slot".to_string()),
            }
        })
        .collect::<Result<Vec<(usize, usize)>, String>>()?;
    let count_u32 = |name: &str| -> Result<u32, String> {
        let raw = v
            .get(name)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("snapshot: job missing {name}"))?;
        u32::try_from(raw).map_err(|_| format!("snapshot: job {name} out of range"))
    };
    // The hidden true model is a pure function of the spec and the cluster;
    // re-deriving it keeps truths out of the on-disk payload entirely.
    let truth = spec.model.profile().true_model(cluster);
    Ok(JobState {
        truth,
        estimator,
        placement: Placement::new(slots),
        restart_remaining: req_f64(v, "restart_remaining")?,
        work_done: req_f64(v, "work_done")?,
        checkpointed_work: req_f64(v, "checkpointed_work")?,
        restarts: count_u32("restarts")?,
        failures: count_u32("failures")?,
        first_start: v.get("first_start").and_then(Value::as_f64),
        finish_time: v.get("finish_time").and_then(Value::as_f64),
        gpu_seconds: req_f64(v, "gpu_seconds")?,
        contention_sum: req_f64(v, "contention_sum")?,
        contention_rounds: req_bits(v, "contention_rounds")?,
        spec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::AllocationMap;
    use sia_cluster::{Configuration, FreeGpus};
    use sia_workloads::{Trace, TraceConfig, TraceKind};

    /// Same trivial scheduler as the engine tests: one GPU per job,
    /// first-fit, placements kept forever.
    struct OneGpuEach;

    impl Scheduler for OneGpuEach {
        fn name(&self) -> &'static str {
            "one-gpu-each"
        }

        fn schedule(
            &mut self,
            _now: f64,
            jobs: &[JobView<'_>],
            cluster: &ClusterView,
        ) -> AllocationMap {
            let spec = cluster.spec();
            let mut free = FreeGpus::for_view(cluster);
            let mut out = AllocationMap::new();
            for j in jobs {
                if !j.current.is_empty() {
                    free.take_available(cluster, j.current);
                    out.insert(j.id, j.current.clone());
                    continue;
                }
                for t in spec.gpu_types() {
                    if j.gpus_per_replica(spec, t) == Some(1) {
                        if let Ok(p) = free.place(spec, &Configuration::new(1, 1, t)) {
                            out.insert(j.id, p);
                            break;
                        }
                    }
                }
            }
            out
        }
    }

    fn tiny_trace(n: usize) -> Trace {
        let mut t = Trace::generate(&TraceConfig::new(TraceKind::Philly, 3));
        t.jobs.truncate(n);
        for j in &mut t.jobs {
            j.work_target *= 0.02;
        }
        t
    }

    fn driver_run(trace: &Trace, cfg: &SimConfig) -> SimResult {
        let mut sched = OneGpuEach;
        let mut drv = SimDriver::new(
            sia_cluster::ClusterSpec::heterogeneous_64(),
            cfg.clone(),
            &sched,
        );
        for j in &trace.jobs {
            drv.submit(j.clone());
        }
        drv.run_to_idle(&mut sched);
        drv.finish(&sched)
    }

    fn assert_same_run(a: &SimResult, b: &SimResult) {
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.finish_time, y.finish_time, "job {} finish", x.id);
            assert_eq!(x.gpu_seconds, y.gpu_seconds, "job {} gpu-s", x.id);
            assert_eq!(x.restarts, y.restarts, "job {} restarts", x.id);
            assert_eq!(x.work_done, y.work_done, "job {} work", x.id);
        }
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.trace.canonical_jsonl(), b.trace.canonical_jsonl());
        assert_eq!(a.audit.canonical_jsonl(), b.audit.canonical_jsonl());
    }

    #[test]
    fn driver_matches_both_batch_engines() {
        let trace = tiny_trace(10);
        for cfg in [SimConfig::default(), SimConfig::physical(7)] {
            let spec = sia_cluster::ClusterSpec::heterogeneous_64();
            let round = Simulator::new(
                spec.clone(),
                &trace,
                SimConfig {
                    engine: EngineKind::Round,
                    ..cfg.clone()
                },
            )
            .run(&mut OneGpuEach);
            let events = Simulator::new(
                spec,
                &trace,
                SimConfig {
                    engine: EngineKind::Events,
                    ..cfg.clone()
                },
            )
            .run(&mut OneGpuEach);
            let driven = driver_run(&trace, &cfg);
            assert_eq!(driven.unfinished, 0, "workload must complete");
            assert_same_run(&driven, &round);
            assert_eq!(
                driven.trace.canonical_jsonl(),
                events.trace.canonical_jsonl(),
                "driver vs event engine"
            );
        }
    }

    #[test]
    fn snapshot_restore_is_bit_identical() {
        // Full physical noise profile: the widest RNG surface the snapshot
        // must capture. Snapshot mid-run — with jobs still pending — then
        // resume through a JSON string round trip and compare against the
        // uninterrupted run.
        let trace = tiny_trace(8);
        let cfg = SimConfig::physical(11);
        let uninterrupted = driver_run(&trace, &cfg);

        for cut in [1usize, 7, 23] {
            let mut sched = OneGpuEach;
            let mut drv = SimDriver::new(
                sia_cluster::ClusterSpec::heterogeneous_64(),
                cfg.clone(),
                &sched,
            );
            for j in &trace.jobs {
                drv.submit(j.clone());
            }
            for _ in 0..cut {
                drv.step_round(&mut sched);
            }
            let payload = serde_json::to_string(&drv.snapshot(&sched)).unwrap();
            drop(drv);

            let parsed: Value = serde_json::from_str(&payload).unwrap();
            let mut sched2 = OneGpuEach;
            let mut resumed = SimDriver::restore(&parsed, &mut sched2).unwrap();
            resumed.run_to_idle(&mut sched2);
            let result = resumed.finish(&sched2);
            assert_eq!(
                result.trace.canonical_jsonl(),
                uninterrupted.trace.canonical_jsonl(),
                "restore at round {cut} diverged"
            );
            assert_eq!(
                result.audit.canonical_jsonl(),
                uninterrupted.audit.canonical_jsonl(),
                "audit restore at round {cut} diverged"
            );
            assert_eq!(result.makespan, uninterrupted.makespan);
        }
    }

    #[test]
    fn restore_rejects_bad_payloads() {
        let mut sched = OneGpuEach;
        let err = SimDriver::restore(&json!({"version": 99}), &mut sched)
            .map(|_| ())
            .unwrap_err();
        assert!(err.contains("version"), "got: {err}");
        let err = SimDriver::restore(&json!({}), &mut sched)
            .map(|_| ())
            .unwrap_err();
        assert!(err.contains("version"), "got: {err}");
    }

    #[test]
    fn cancel_pending_and_active_jobs() {
        let trace = tiny_trace(4);
        let mut sched = OneGpuEach;
        let mut drv = SimDriver::new(
            sia_cluster::ClusterSpec::heterogeneous_64(),
            SimConfig::default(),
            &sched,
        );
        for j in &trace.jobs {
            let mut j = j.clone();
            j.submit_time = 0.0;
            drv.submit(j);
        }
        let victim = trace.jobs[1].id;
        let queued = trace.jobs[3].id;
        // Cancel one job before admission, one after it is running.
        assert_eq!(drv.cancel(queued), CancelOutcome::Pending);
        assert_eq!(drv.cancel(queued), CancelOutcome::NotFound);
        drv.step_round(&mut sched);
        drv.step_round(&mut sched);
        match drv.cancel(victim) {
            CancelOutcome::Active { gpu_seconds } => assert!(gpu_seconds > 0.0),
            other => panic!("expected active cancel, got {other:?}"),
        }
        assert_eq!(drv.cancel(victim), CancelOutcome::Finished);
        drv.run_to_idle(&mut sched);
        let result = drv.finish(&sched);
        assert_eq!(
            result.records.len(),
            3,
            "cancelled-pending job never admitted"
        );
        let victim_rec = result.records.iter().find(|r| r.id == victim).unwrap();
        assert!(victim_rec.finish_time.is_some());
        assert!(victim_rec.work_done < victim_rec.work_target);
        let report = result.trace.report();
        let stats = report.jobs.iter().find(|j| j.job == victim.0).unwrap();
        assert!(stats.cancelled.is_some());
        assert!(stats.completed.is_none());
        // Everyone else still completes.
        for r in result.records.iter().filter(|r| r.id != victim) {
            assert!(
                r.work_done >= r.work_target * 0.999,
                "job {} unfinished",
                r.id
            );
        }
    }

    #[test]
    fn idle_stepping_does_not_perturb_parity() {
        // A daemon stepping through empty rounds before the first arrival
        // must produce the same canonical trace as a batch run.
        let mut trace = tiny_trace(3);
        for j in &mut trace.jobs {
            j.submit_time += 600.0; // ten idle rounds up front
        }
        let cfg = SimConfig::default();
        let batch = Simulator::new(
            sia_cluster::ClusterSpec::heterogeneous_64(),
            &trace,
            SimConfig {
                engine: EngineKind::Round,
                ..cfg.clone()
            },
        )
        .run(&mut OneGpuEach);
        let mut sched = OneGpuEach;
        let mut drv = SimDriver::new(sia_cluster::ClusterSpec::heterogeneous_64(), cfg, &sched);
        // Step a while with nothing submitted at all, then inject.
        drv.step_until(300.0, &mut sched);
        for j in &trace.jobs {
            drv.submit(j.clone());
        }
        drv.run_to_idle(&mut sched);
        let driven = drv.finish(&sched);
        assert_eq!(
            driven.trace.canonical_jsonl(),
            batch.trace.canonical_jsonl()
        );
    }
}
