//! End-to-end checks on the flight-recorder consumers: the Chrome
//! trace-event exporter, the `trace-report` analysis (reconciled against
//! the simulator's own per-job accounting), the JSONL spill file, and the
//! `sia-cli` argument validation around all of them.

use std::path::Path;
use std::process::Command;

use serde_json::Value;
use sia::cluster::ClusterSpec;
use sia::core::SiaPolicy;
use sia::models::ProfilingMode;
use sia::sim::{EngineKind, SimConfig, SimResult, Simulator};
use sia::telemetry::{AllocReason, FlightRecorder, FlightTrace, TraceEvent};
use sia::workloads::{Trace, TraceConfig, TraceKind};

/// A small fixed-seed workload that completes well inside the horizon, run
/// with oracle profiling so no profiling GPU-seconds are charged outside
/// the recorded allocation intervals.
fn small_run(spill: Option<&Path>) -> SimResult {
    let mut trace = Trace::generate(&TraceConfig::new(TraceKind::Philly, 7).with_max_gpus_cap(16));
    trace.jobs.truncate(16);
    for j in &mut trace.jobs {
        j.work_target *= 0.05;
    }
    let cfg = SimConfig {
        engine: EngineKind::Events,
        seed: 7,
        profiling_mode: ProfilingMode::Oracle,
        trace_spill: spill.map(Into::into),
        ..SimConfig::default()
    };
    let mut policy = SiaPolicy::default();
    Simulator::new(ClusterSpec::heterogeneous_64(), &trace, cfg).run(&mut policy)
}

#[test]
fn chrome_export_is_wellformed_on_a_real_run() {
    let result = small_run(None);
    let doc = result.trace.chrome_trace();
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let n_types = result.trace.gpu_types().len();
    let (mut slices, mut instants, mut counters, mut metas) = (0u64, 0u64, 0u64, 0u64);
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("ph present");
        assert!(
            ["M", "X", "i", "C"].contains(&ph),
            "unexpected phase {ph:?}"
        );
        assert!(
            e.get("ts").and_then(Value::as_f64).expect("ts present") >= 0.0,
            "timestamps are non-negative microseconds"
        );
        assert!(e.get("pid").and_then(Value::as_u64).is_some(), "pid");
        assert!(e.get("tid").and_then(Value::as_u64).is_some(), "tid");
        match ph {
            "X" => {
                slices += 1;
                assert!(e.get("dur").and_then(Value::as_f64).unwrap() >= 0.0);
                let pid = e.get("pid").and_then(Value::as_u64).unwrap() as usize;
                assert!(
                    (1..=n_types).contains(&pid),
                    "allocation slices live on GPU-type pids, got {pid}"
                );
            }
            "i" => {
                instants += 1;
                assert!(
                    e.get("s").and_then(Value::as_str).is_some(),
                    "instants carry a scope"
                );
            }
            "C" => counters += 1,
            _ => metas += 1,
        }
    }
    assert!(slices > 0, "a real run must produce allocation slices");
    assert!(instants > 0, "lifecycle instants missing");
    assert!(counters > 0, "occupancy counters missing");
    assert!(
        metas > n_types as u64,
        "one process_name per GPU type plus the cluster lane"
    );
}

#[test]
fn trace_report_reconciles_with_sim_result() {
    let result = small_run(None);
    assert_eq!(result.unfinished, 0, "workload must complete");
    assert_eq!(result.trace.dropped, 0, "ring must not have overflowed");
    let report = result.trace.report();

    assert_eq!(report.jobs.len(), result.records.len());
    assert_eq!(
        report.rounds as usize,
        result.rounds.len(),
        "one RoundScheduled record per executed round"
    );

    for stats in &report.jobs {
        let rec = result
            .records
            .iter()
            .find(|r| r.id.0 == stats.job)
            .expect("trace job exists in SimResult");
        assert_eq!(stats.name, rec.name, "job {} name", stats.job);
        assert_eq!(stats.submitted, rec.submit_time.max(0.0));
        assert_eq!(stats.first_start, rec.first_start);
        assert_eq!(stats.completed, rec.finish_time);
        assert_eq!(stats.restarts, u64::from(rec.restarts));
        assert_eq!(stats.failures, u64::from(rec.failures));
        // With oracle profiling the engine charges GPU time only while the
        // job holds an allocation, which is exactly what the trace records;
        // the two accountings differ only by float summation order.
        let (a, b) = (stats.gpu_seconds(), rec.gpu_seconds);
        assert!(
            (a - b).abs() <= 1e-6 * b.max(1.0),
            "job {} gpu-seconds: trace {a} vs engine {b}",
            stats.job
        );
    }

    // The occupancy series at each round instant must equal the round log's
    // own per-type allocation totals.
    let n_types = report.gpu_types.len();
    for round in &result.rounds {
        let mut expect = vec![0usize; n_types];
        for (_, ty, gpus) in &round.allocations {
            expect[ty.0] += gpus;
        }
        let sample = report
            .occupancy
            .iter()
            .find(|s| s.t == round.time)
            .unwrap_or_else(|| panic!("no occupancy sample at round t={}", round.time));
        assert_eq!(
            sample.gpus_by_type, expect,
            "occupancy at t={} disagrees with RoundLog",
            round.time
        );
        assert_eq!(sample.contention, round.contention);
    }
}

#[test]
fn spill_file_round_trips_the_in_memory_stream() {
    let path =
        std::env::temp_dir().join(format!("sia-trace-spill-rt-{}.jsonl", std::process::id()));
    let result = small_run(Some(&path));
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let parsed = FlightTrace::parse_jsonl(&text).expect("spill parses");
    assert_eq!(result.trace.dropped, 0);
    assert_eq!(
        parsed.records, result.trace.records,
        "spill file must reproduce the in-memory stream exactly"
    );
}

/// A minimal but complete JSONL stream for exercising `trace-report`.
fn tiny_stream() -> String {
    let mut rec = FlightRecorder::new(64);
    rec.record(
        0.0,
        TraceEvent::Meta {
            gpu_types: vec!["t4".into(), "a100".into()],
            round_duration: 60.0,
        },
    );
    rec.record(
        0.0,
        TraceEvent::JobSubmitted {
            job: 0,
            name: "j0".into(),
            model: "resnet18".into(),
        },
    );
    rec.record(0.0, TraceEvent::JobAdmitted { job: 0 });
    rec.record(
        0.0,
        TraceEvent::RoundScheduled {
            contention: 1,
            policy_runtime: 0.001,
        },
    );
    rec.record(
        0.0,
        TraceEvent::AllocationChanged {
            job: 0,
            gpu_type: Some(1),
            gpus: 2,
            reason: AllocReason::Started,
            restart: false,
        },
    );
    rec.record(90.0, TraceEvent::JobCompleted { job: 0 });
    rec.record(
        90.0,
        TraceEvent::AllocationChanged {
            job: 0,
            gpu_type: None,
            gpus: 0,
            reason: AllocReason::Completed,
            restart: false,
        },
    );
    rec.into_trace().to_jsonl()
}

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sia-cli"))
}

#[test]
fn cli_rejects_unknown_trace_format() {
    let out = cli()
        .args(["--trace-out", "/dev/null", "--trace-format", "bogus"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown trace format"),
        "stderr was: {stderr}"
    );
}

#[test]
fn cli_rejects_trace_format_without_trace_out() {
    let out = cli().args(["--trace-format", "chrome"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--trace-format requires --trace-out"),
        "stderr was: {stderr}"
    );
}

#[test]
fn cli_trace_report_rejects_missing_file() {
    let out = cli()
        .args(["trace-report", "/nonexistent/trace.jsonl"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    let out = cli().arg("trace-report").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "missing FILE operand");

    let out = cli()
        .args(["trace-report", "f.jsonl", "--bogus"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown flag");
}

#[test]
fn cli_trace_report_analyses_a_stream() {
    let path = std::env::temp_dir().join(format!("sia-trace-cli-rt-{}.jsonl", std::process::id()));
    std::fs::write(&path, tiny_stream()).unwrap();

    let out = cli()
        .args(["trace-report", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rounds"), "stdout was: {stdout}");
    assert!(stdout.contains("j0"), "per-job table row missing: {stdout}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("parsed"),
        "progress lines go to stderr"
    );

    // --quiet suppresses the progress output entirely.
    let out = cli()
        .args(["trace-report", path.to_str().unwrap(), "--quiet"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(
        out.stderr.is_empty(),
        "--quiet must silence progress output, got: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // --json emits one machine-readable document.
    let out = cli()
        .args(["trace-report", path.to_str().unwrap(), "--json", "--quiet"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let doc: Value = serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(doc.get("rounds").and_then(Value::as_u64), Some(1));
    let jobs = doc.get("jobs").and_then(Value::as_array).unwrap();
    assert_eq!(jobs.len(), 1);
    let j = &jobs[0];
    assert_eq!(j.get("jct_s").and_then(Value::as_f64), Some(90.0));
    assert_eq!(j.get("queue_delay_s").and_then(Value::as_f64), Some(0.0));
    assert_eq!(
        j.get("gpu_seconds_by_type")
            .and_then(Value::as_array)
            .and_then(|a| a[1].as_f64()),
        Some(180.0)
    );
}

#[test]
fn cli_rejects_malformed_dynamics_script() {
    let path = std::env::temp_dir().join(format!("sia-dyn-bad-{}.jsonl", std::process::id()));
    std::fs::write(&path, "{\"t\": 100.0, \"ev\": \"explode\"}\n").unwrap();
    let out = cli()
        .args(["--dynamics", path.to_str().unwrap()])
        .output()
        .unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(out.status.code(), Some(2), "malformed script must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 1"), "stderr was: {stderr}");
}

#[test]
fn cli_rejects_dynamics_script_with_unknown_gpu_type() {
    let path = std::env::temp_dir().join(format!("sia-dyn-unk-{}.jsonl", std::process::id()));
    std::fs::write(
        &path,
        "{\"t\": 100.0, \"ev\": \"remove\", \"gpu_type\": \"tpu9000\", \"nodes\": 1}\n",
    )
    .unwrap();
    let out = cli()
        .args(["--dynamics", path.to_str().unwrap()])
        .output()
        .unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(out.status.code(), Some(2), "unknown GPU type must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown GPU type"), "stderr was: {stderr}");
}

#[test]
fn cli_rejects_missing_dynamics_file() {
    let out = cli()
        .args(["--dynamics", "/nonexistent/dynamics.jsonl"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn trace_report_surfaces_capacity_timeline_from_dynamics_run() {
    use sia::dynamics::{CapacityEvent, DynamicsScript};

    let spill = std::env::temp_dir().join(format!("sia-dyn-spill-{}.jsonl", std::process::id()));
    let mut trace = Trace::generate(&TraceConfig::new(TraceKind::Philly, 7).with_max_gpus_cap(16));
    trace.jobs.truncate(16);
    let script = DynamicsScript::new()
        .at(
            400.0,
            CapacityEvent::Remove {
                gpu_type: "a100".to_string(),
                num_nodes: 2,
            },
        )
        .at(
            2500.0,
            CapacityEvent::Add {
                gpu_type: "a100".to_string(),
                num_nodes: 2,
                gpus_per_node: 8,
            },
        );
    let cfg = SimConfig {
        engine: EngineKind::Events,
        seed: 7,
        profiling_mode: ProfilingMode::Oracle,
        trace_spill: Some(spill.clone()),
        dynamics: Some(script),
        ..SimConfig::default()
    };
    let mut policy = SiaPolicy::default();
    Simulator::new(ClusterSpec::heterogeneous_64(), &trace, cfg).run(&mut policy);

    let out = cli()
        .args(["trace-report", spill.to_str().unwrap(), "--quiet"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("capacity timeline:"),
        "human report must show the capacity section: {stdout}"
    );

    let out = cli()
        .args(["trace-report", spill.to_str().unwrap(), "--json", "--quiet"])
        .output()
        .unwrap();
    let _ = std::fs::remove_file(&spill);
    assert_eq!(out.status.code(), Some(0));
    let doc: Value = serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    let timeline = doc
        .get("capacity_timeline")
        .and_then(Value::as_array)
        .expect("capacity_timeline array");
    let kinds: Vec<&str> = timeline
        .iter()
        .filter_map(|e| e.get("kind").and_then(Value::as_str))
        .collect();
    assert!(
        kinds.contains(&"killed"),
        "abrupt removal missing from timeline, got {kinds:?}"
    );
    assert!(
        kinds.contains(&"added"),
        "capacity add missing from timeline, got {kinds:?}"
    );
    for e in timeline {
        assert_eq!(e.get("gpu_type").and_then(Value::as_str), Some("a100"));
        assert!(e.get("t_s").and_then(Value::as_f64).unwrap() >= 0.0);
    }
}
