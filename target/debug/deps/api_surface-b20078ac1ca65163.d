/root/repo/target/debug/deps/api_surface-b20078ac1ca65163.d: tests/api_surface.rs

/root/repo/target/debug/deps/api_surface-b20078ac1ca65163: tests/api_surface.rs

tests/api_surface.rs:
