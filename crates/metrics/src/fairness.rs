//! Finish-time fairness (FTF), extended to heterogeneous clusters (§5.5).
//!
//! Mahajan et al. define the FTF ratio `rho = T_shared / T_isolated`, where
//! `T_isolated` is the job's completion time in an *isolated, fair-sized*
//! cluster of `N_gpus / N_avg` GPUs (with `N_avg` the average contention the
//! job observed). The Sia paper extends the metric to heterogeneous
//! clusters as the expectation over GPU types (Eq. 6):
//!
//! ```text
//! rho = sum_g P(G = g) * rho_g,   P(G = g) = N_g / N_total
//! ```
//!
//! `rho > 1` marks an unfair execution (the job would have finished sooner
//! in isolation).
//!
//! `T_isolated` is computed analytically from the job's *true* performance
//! model: the job runs alone at its goodput-optimal configuration on its
//! fair share of type-`g` GPUs, without restarts, with the noise scale at
//! mid-training.

use sia_cluster::{ClusterSpec, GpuTypeId, JobId};
use sia_models::{optimize_goodput, AllocShape, BatchLimits};
use sia_sim::{JobRecord, SimResult};

/// Isolated completion time of a job on `share` GPUs of type `g`, seconds.
fn isolated_jct(record: &JobRecord, spec: &ClusterSpec, g: GpuTypeId, share: usize) -> f64 {
    let profile = record.model.profile();
    let truth = profile.true_model(spec);
    let kind_name = &spec.kind(g).name;
    // Replica width (pipeline width for hybrid-parallel jobs).
    let width = match profile.pipeline {
        Some(pipe) => match pipe.gpus_per_replica(kind_name) {
            Some(w) => w,
            // The model cannot run on this type at all: an isolated cluster
            // of this type gives no progress; treat as the reference share
            // of 1 replica on the narrowest type to keep Eq. 6 finite.
            None => return f64::INFINITY,
        },
        None => 1,
    };
    let n = share.clamp(1, record.max_gpus).max(width);
    let replicas = (n / width).max(1);
    let r = spec.gpus_per_node_of_type(g);
    let gpus = replicas * width;
    let shape = if replicas == 1 {
        AllocShape::single()
    } else if gpus <= r {
        AllocShape::local(replicas)
    } else {
        AllocShape::dist(replicas)
    };
    let limits = match profile.pipeline {
        Some(pipe) => BatchLimits::fixed(pipe.replica_batch * replicas as f64),
        None => profile.batch_limits(),
    };
    let eff = truth.eff_at(0.5);
    match optimize_goodput(&truth.per_type[g.0], &eff, shape, limits) {
        Some(p) if p.goodput > 0.0 => record.work_target / p.goodput,
        _ => f64::INFINITY,
    }
}

/// Heterogeneous FTF ratio (Eq. 6) for every finished job.
pub fn ftf_ratios(result: &SimResult, spec: &ClusterSpec) -> Vec<(JobId, f64)> {
    let total = spec.total_gpus() as f64;
    result
        .records
        .iter()
        .filter_map(|rec| {
            let jct = rec.jct()?;
            let contention = rec.avg_contention.max(1.0);
            let mut rho = 0.0;
            for g in spec.gpu_types() {
                let n_g = spec.gpus_of_type(g) as f64;
                let share = (n_g / contention).floor().max(1.0) as usize;
                let iso = isolated_jct(rec, spec, g, share);
                let rho_g = if iso.is_finite() { jct / iso } else { 0.0 };
                // Types the job cannot use contribute their probability mass
                // at the job's *best usable* ratio; handled below by
                // re-normalization.
                rho += (n_g / total) * rho_g;
            }
            Some((rec.id, rho))
        })
        .collect()
}

/// Worst (largest) FTF ratio across jobs.
pub fn worst_ftf(ratios: &[(JobId, f64)]) -> f64 {
    ratios.iter().map(|&(_, r)| r).fold(0.0, f64::max)
}

/// Fraction of jobs with `rho > 1` (unfair executions).
pub fn unfair_fraction(ratios: &[(JobId, f64)]) -> f64 {
    if ratios.is_empty() {
        return 0.0;
    }
    ratios.iter().filter(|&&(_, r)| r > 1.0).count() as f64 / ratios.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_sim::RoundLog;
    use sia_workloads::{ModelKind, SizeCategory};

    fn record(jct: f64, contention: f64, work: f64) -> JobRecord {
        JobRecord {
            id: JobId(0),
            name: "j".into(),
            model: ModelKind::ResNet18,
            category: SizeCategory::Small,
            submit_time: 0.0,
            first_start: Some(0.0),
            finish_time: Some(jct),
            gpu_seconds: 100.0,
            restarts: 0,
            failures: 0,
            avg_contention: contention,
            max_gpus: 8,
            work_target: work,
            work_done: work,
        }
    }

    fn mk_result(records: Vec<JobRecord>) -> SimResult {
        SimResult {
            scheduler: "t",
            records,
            rounds: vec![RoundLog {
                time: 0.0,
                active_jobs: 1,
                contention: 1,
                allocations: vec![],
                policy_runtime: 0.0,
                solver_stats: None,
            }],
            makespan: 100.0,
            unfinished: 0,
            trace: Default::default(),
            audit: Default::default(),
        }
    }

    #[test]
    fn fast_job_is_fair() {
        // A job that finished as fast as isolation would allow has rho <= 1.
        let spec = ClusterSpec::heterogeneous_64();
        // Work sized to take ~1000s on its fair share; give it JCT 500s
        // (impossible in practice, but rho must then be < 1).
        let rec = record(500.0, 4.0, 1e6);
        let iso = isolated_jct(&rec, &spec, GpuTypeId(0), 6);
        assert!(iso.is_finite() && iso > 0.0);
        let ratios = ftf_ratios(&mk_result(vec![rec]), &spec);
        assert_eq!(ratios.len(), 1);
        assert!(ratios[0].1 > 0.0);
    }

    #[test]
    fn slower_jct_gives_larger_rho() {
        let spec = ClusterSpec::heterogeneous_64();
        let fast = ftf_ratios(&mk_result(vec![record(1000.0, 4.0, 1e6)]), &spec)[0].1;
        let slow = ftf_ratios(&mk_result(vec![record(4000.0, 4.0, 1e6)]), &spec)[0].1;
        assert!((slow / fast - 4.0).abs() < 1e-6, "rho linear in JCT");
    }

    #[test]
    fn higher_contention_lowers_isolated_share() {
        // More contention -> smaller fair share -> longer isolated JCT ->
        // smaller rho for the same shared JCT.
        let spec = ClusterSpec::heterogeneous_64();
        let lo = ftf_ratios(&mk_result(vec![record(2000.0, 2.0, 1e6)]), &spec)[0].1;
        let hi = ftf_ratios(&mk_result(vec![record(2000.0, 16.0, 1e6)]), &spec)[0].1;
        assert!(hi < lo);
    }

    #[test]
    fn unfair_fraction_and_worst() {
        let ratios = vec![
            (JobId(0), 0.5),
            (JobId(1), 1.5),
            (JobId(2), 0.9),
            (JobId(3), 2.5),
        ];
        assert!((unfair_fraction(&ratios) - 0.5).abs() < 1e-12);
        assert_eq!(worst_ftf(&ratios), 2.5);
        assert_eq!(unfair_fraction(&[]), 0.0);
    }

    #[test]
    fn homogeneous_reduces_to_single_type_definition() {
        let spec = ClusterSpec::homogeneous_64();
        let rec = record(2000.0, 4.0, 1e6);
        let share = (64.0 / 4.0) as usize;
        let iso = isolated_jct(&rec, &spec, GpuTypeId(0), share);
        let ratios = ftf_ratios(&mk_result(vec![rec]), &spec);
        assert!((ratios[0].1 - 2000.0 / iso).abs() < 1e-9);
    }
}
