/root/repo/target/release/deps/sia_metrics-0db052c7afe00fdb.d: crates/metrics/src/lib.rs crates/metrics/src/fairness.rs crates/metrics/src/stats.rs

/root/repo/target/release/deps/sia_metrics-0db052c7afe00fdb: crates/metrics/src/lib.rs crates/metrics/src/fairness.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/fairness.rs:
crates/metrics/src/stats.rs:
