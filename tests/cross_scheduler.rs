//! Cross-scheduler end-to-end checks reproducing the paper's qualitative
//! claims on shortened workloads.

use sia::baselines::{GavelPolicy, PolluxPolicy, ShockwavePolicy, ThemisPolicy};
use sia::cluster::ClusterSpec;
use sia::core::SiaPolicy;
use sia::metrics::summarize;
use sia::sim::{Scheduler, SimConfig, Simulator};
use sia::workloads::{Trace, TraceConfig, TraceKind};

fn run(
    sched: &mut dyn Scheduler,
    cluster: &ClusterSpec,
    trace: &Trace,
    seed: u64,
) -> sia::metrics::Summary {
    let sim = Simulator::new(
        cluster.clone(),
        trace,
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    );
    summarize(&sim.run(sched))
}

fn adaptive_trace(seed: u64, scale: f64) -> Trace {
    let mut t = Trace::generate(&TraceConfig::new(TraceKind::Philly, seed).with_max_gpus_cap(16));
    for j in &mut t.jobs {
        j.work_target *= scale;
    }
    t
}

fn rigid_trace(seed: u64, scale: f64) -> Trace {
    let mut t = Trace::generate(
        &TraceConfig::new(TraceKind::Philly, seed)
            .with_max_gpus_cap(16)
            .with_adaptivity_mix(0.0, 1.0),
    );
    for j in &mut t.jobs {
        j.work_target *= scale;
    }
    t
}

#[test]
fn sia_beats_baselines_on_heterogeneous_adaptive() {
    let cluster = ClusterSpec::heterogeneous_64();
    let seed = 1;
    let sia = run(
        &mut SiaPolicy::default(),
        &cluster,
        &adaptive_trace(seed, 0.5),
        seed,
    );
    let pollux = run(
        &mut PolluxPolicy::default(),
        &cluster,
        &adaptive_trace(seed, 0.5),
        seed,
    );
    let gavel = run(
        &mut GavelPolicy::default(),
        &cluster,
        &rigid_trace(seed, 0.5),
        seed,
    );
    assert!(
        sia.avg_jct_hours < pollux.avg_jct_hours,
        "Sia {} must beat Pollux {}",
        sia.avg_jct_hours,
        pollux.avg_jct_hours
    );
    assert!(
        sia.avg_jct_hours < gavel.avg_jct_hours,
        "Sia {} must beat Gavel {}",
        sia.avg_jct_hours,
        gavel.avg_jct_hours
    );
    // Restarts stay in a sane band for both adaptive schedulers. (The
    // paper reports Pollux restarting ~2x Sia; our Pollux jumps straight to
    // its target size instead of ramping, so the ordering can flip — see
    // EXPERIMENTS.md.)
    assert!(sia.avg_restarts < 15.0);
    assert!(pollux.avg_restarts < 30.0);
    // Sia uses fewer GPU-hours per job than either baseline.
    assert!(sia.gpu_hours_per_job < pollux.gpu_hours_per_job);
    assert!(sia.gpu_hours_per_job < gavel.gpu_hours_per_job);
}

#[test]
fn sia_matches_pollux_on_homogeneous() {
    let cluster = ClusterSpec::homogeneous_64();
    let seed = 2;
    let sia = run(
        &mut SiaPolicy::default(),
        &cluster,
        &adaptive_trace(seed, 0.4),
        seed,
    );
    let pollux = run(
        &mut PolluxPolicy::default(),
        &cluster,
        &adaptive_trace(seed, 0.4),
        seed,
    );
    // Table 4: Sia matches Pollux on its home turf (within ~25% here given
    // the short trace).
    assert!(
        sia.avg_jct_hours <= pollux.avg_jct_hours * 1.25,
        "Sia {} vs Pollux {}",
        sia.avg_jct_hours,
        pollux.avg_jct_hours
    );
}

#[test]
fn inelastic_baselines_complete_rigid_workloads() {
    let cluster = ClusterSpec::homogeneous_64();
    let seed = 3;
    for (name, mut sched) in [
        (
            "shockwave",
            Box::new(ShockwavePolicy::default()) as Box<dyn Scheduler>,
        ),
        ("themis", Box::new(ThemisPolicy::default())),
        ("gavel", Box::new(GavelPolicy::default())),
    ] {
        let s = run(sched.as_mut(), &cluster, &rigid_trace(seed, 0.3), seed);
        assert_eq!(s.unfinished, 0, "{name} left jobs unfinished");
        assert!(s.avg_jct_hours > 0.0);
    }
}

#[test]
fn results_deterministic_across_runs() {
    let cluster = ClusterSpec::heterogeneous_64();
    let trace = adaptive_trace(5, 0.3);
    let a = run(&mut SiaPolicy::default(), &cluster, &trace, 5);
    let b = run(&mut SiaPolicy::default(), &cluster, &trace, 5);
    assert_eq!(a.avg_jct_hours, b.avg_jct_hours);
    assert_eq!(a.avg_restarts, b.avg_restarts);
}

#[test]
fn sia_beats_gavel_even_with_all_rigid_jobs() {
    // Figure 1 [right]: with every job rigid, Sia still outperforms Gavel
    // (max-sum-goodput vs max-sum-throughput + no time-sharing waste).
    let cluster = ClusterSpec::heterogeneous_64();
    let seed = 8;
    let sia = run(
        &mut SiaPolicy::default(),
        &cluster,
        &rigid_trace(seed, 0.5),
        seed,
    );
    let gavel = run(
        &mut GavelPolicy::default(),
        &cluster,
        &rigid_trace(seed, 0.5),
        seed,
    );
    assert!(
        sia.avg_jct_hours <= gavel.avg_jct_hours * 1.05,
        "Sia {} vs Gavel {}",
        sia.avg_jct_hours,
        gavel.avg_jct_hours
    );
}
