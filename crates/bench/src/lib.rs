//! Experiment harness reproducing the Sia paper's tables and figures.
//!
//! Each table/figure has a binary in `src/bin/` (see `DESIGN.md` for the
//! experiment index). This library holds the shared plumbing: scheduler
//! construction by name, multi-seed simulation sweeps, aggregate reporting
//! and JSON output to `results/`.

#![forbid(unsafe_code)]
// The declarative `json!` expansion for the aggregates row exceeds the
// default recursion limit.
#![recursion_limit = "512"]

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

use sia_baselines::{GavelPolicy, PolluxPolicy, ShockwavePolicy, ThemisPolicy};
use sia_cluster::ClusterSpec;
use sia_core::{SiaConfig, SiaPolicy};
use sia_metrics::{summarize, Summary};
use sia_sim::{Scheduler, SimConfig, SimResult, Simulator};
use sia_workloads::{Trace, TraceConfig, TraceKind};

/// Schedulers the experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Sia with default parameters.
    Sia,
    /// Sia with an explicit fairness power `p` (Figure 10).
    SiaWithPower(i32),
    /// Sia with an explicit round duration in seconds (Figure 10).
    SiaWithRound(u32),
    /// Sia with an explicit restart-amortization horizon in seconds
    /// (Figure 10 sensitivity sweep).
    SiaWithHorizon(u32),
    /// Sia with the sharded MILP decomposition and an anytime per-round
    /// time budget in seconds (Figure 9 at 4k–65k GPUs). The gap
    /// tolerance is relaxed to 1e-3: at these scales the per-shard MILPs
    /// prove optimality quickly and the residual gap comes from the
    /// decomposition itself.
    SiaSharded {
        /// Per-round anytime budget, seconds.
        round_budget_s: u32,
    },
    /// Pollux (adaptive, heterogeneity-blind).
    Pollux,
    /// Gavel + TunedJobs (rigid, heterogeneity-aware).
    GavelTuned,
    /// Shockwave + TunedJobs (rigid, fairness-aware).
    ShockwaveTuned,
    /// Themis + TunedJobs (rigid, FTF leximin).
    ThemisTuned,
}

impl Policy {
    /// Display label matching the paper's tables.
    pub fn label(&self) -> String {
        match self {
            Policy::Sia => "Sia".into(),
            Policy::SiaWithPower(p) => format!("Sia(p={})", *p as f64 / 10.0),
            Policy::SiaWithRound(r) => format!("Sia(round={r}s)"),
            Policy::SiaWithHorizon(h) => format!("Sia(horizon={h}s)"),
            Policy::SiaSharded { .. } => "Sia-sharded".into(),
            Policy::Pollux => "Pollux".into(),
            Policy::GavelTuned => "Gavel+TJ".into(),
            Policy::ShockwaveTuned => "Shockwave+TJ".into(),
            Policy::ThemisTuned => "Themis+TJ".into(),
        }
    }

    /// Whether this policy requires rigid (tuned) jobs.
    pub fn needs_tuned_jobs(&self) -> bool {
        matches!(
            self,
            Policy::GavelTuned | Policy::ShockwaveTuned | Policy::ThemisTuned
        )
    }

    /// Builds a fresh scheduler instance.
    pub fn build(&self, seed: u64) -> Box<dyn Scheduler> {
        match self {
            Policy::Sia => Box::new(SiaPolicy::default()),
            Policy::SiaWithPower(p) => Box::new(SiaPolicy::new(SiaConfig {
                fairness_power: *p as f64 / 10.0,
                ..SiaConfig::default()
            })),
            Policy::SiaWithRound(r) => Box::new(SiaPolicy::new(SiaConfig {
                round_duration: *r as f64,
                ..SiaConfig::default()
            })),
            Policy::SiaWithHorizon(h) => Box::new(SiaPolicy::new(SiaConfig {
                restart_horizon_secs: *h as f64,
                ..SiaConfig::default()
            })),
            Policy::SiaSharded { round_budget_s } => {
                let mut cfg = SiaConfig {
                    round_budget: Some(*round_budget_s as f64),
                    ..SiaConfig::default()
                };
                cfg.shard.enabled = true;
                cfg.milp.gap_tolerance = 1e-3;
                Box::new(SiaPolicy::new(cfg))
            }
            Policy::Pollux => Box::new(PolluxPolicy::new(sia_baselines::pollux::PolluxConfig {
                seed,
                ..Default::default()
            })),
            Policy::GavelTuned => Box::new(GavelPolicy::default()),
            Policy::ShockwaveTuned => Box::new(ShockwavePolicy::default()),
            Policy::ThemisTuned => Box::new(ThemisPolicy::default()),
        }
    }
}

/// One experiment run: a trace, a cluster, a policy, a seed.
pub fn run_one(
    policy: Policy,
    cluster: &ClusterSpec,
    trace: &Trace,
    sim_cfg: SimConfig,
    seed: u64,
) -> SimResult {
    let mut sched = policy.build(seed);
    let sim = Simulator::new(cluster.clone(), trace, sim_cfg);
    sim.run(sched.as_mut())
}

/// Generates the trace for a `(kind, policy, seed)` triple: policies without
/// job adaptivity get 100% rigid TunedJobs, as in §4.3.
pub fn trace_for(kind: TraceKind, policy: Policy, seed: u64, max_gpus_cap: usize) -> Trace {
    let mut cfg = TraceConfig::new(kind, seed).with_max_gpus_cap(max_gpus_cap);
    if policy.needs_tuned_jobs() {
        cfg = cfg.with_adaptivity_mix(0.0, 1.0);
    }
    Trace::generate(&cfg)
}

/// Scales every job's work target (to shorten experiment wall time while
/// preserving relative behaviour; used with `work_scale < 1`).
pub fn scale_work(trace: &mut Trace, work_scale: f64) {
    for j in &mut trace.jobs {
        j.work_target *= work_scale;
    }
}

/// Aggregate of per-seed summaries: mean and min/max band.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// Policy label.
    pub label: String,
    /// Per-seed summaries.
    pub runs: Vec<Summary>,
}

impl Aggregate {
    /// Mean of a field across seeds.
    pub fn mean<F: Fn(&Summary) -> f64>(&self, f: F) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().map(&f).sum::<f64>() / self.runs.len() as f64
    }

    /// Max of a field across seeds.
    pub fn max<F: Fn(&Summary) -> f64>(&self, f: F) -> f64 {
        self.runs.iter().map(&f).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Standard deviation of a field across seeds.
    pub fn std<F: Fn(&Summary) -> f64>(&self, f: F) -> f64 {
        if self.runs.len() < 2 {
            return 0.0;
        }
        let m = self.mean(&f);
        let var = self.runs.iter().map(|s| (f(s) - m).powi(2)).sum::<f64>()
            / (self.runs.len() - 1) as f64;
        var.sqrt()
    }
}

/// Runs a policy across seeds on a trace kind and aggregates the summaries.
#[allow(clippy::too_many_arguments)]
pub fn sweep(
    policy: Policy,
    cluster: &ClusterSpec,
    kind: TraceKind,
    seeds: &[u64],
    sim_cfg: &SimConfig,
    max_gpus_cap: usize,
    work_scale: f64,
    rate_override: Option<f64>,
) -> Aggregate {
    let runs = seeds
        .iter()
        .map(|&seed| {
            let mut tcfg = TraceConfig::new(kind, seed).with_max_gpus_cap(max_gpus_cap);
            if policy.needs_tuned_jobs() {
                tcfg = tcfg.with_adaptivity_mix(0.0, 1.0);
            }
            if let Some(rate) = rate_override {
                tcfg = tcfg.with_rate(rate);
            }
            let mut trace = Trace::generate(&tcfg);
            scale_work(&mut trace, work_scale);
            let result = run_one(
                policy,
                cluster,
                &trace,
                SimConfig {
                    seed,
                    ..sim_cfg.clone()
                },
                seed,
            );
            summarize(&result)
        })
        .collect();
    Aggregate {
        label: policy.label(),
        runs,
    }
}

/// Prints a paper-style table of aggregates to stdout.
pub fn print_table(title: &str, aggs: &[Aggregate]) {
    println!("\n== {title} ==");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>12} {:>10} {:>9} {:>9} {:>10}",
        "Policy",
        "avgJCT(h)",
        "p99JCT(h)",
        "mkspan(h)",
        "GPUh/job",
        "avgCont",
        "maxCont",
        "restarts",
        "unfin"
    );
    for a in aggs {
        println!(
            "{:<16} {:>6.2}±{:<4.2} {:>10.2} {:>10.2} {:>7.1}±{:<4.1} {:>10.1} {:>9.0} {:>9.1} {:>10.1}",
            a.label,
            a.mean(|s| s.avg_jct_hours),
            a.std(|s| s.avg_jct_hours),
            a.mean(|s| s.p99_jct_hours),
            a.mean(|s| s.makespan_hours),
            a.mean(|s| s.gpu_hours_per_job),
            a.std(|s| s.gpu_hours_per_job),
            a.mean(|s| s.avg_contention),
            a.max(|s| s.max_contention as f64),
            a.mean(|s| s.avg_restarts),
            a.mean(|s| s.unfinished as f64),
        );
    }
}

/// Writes experiment output as JSON into `results/<name>.json`.
pub fn write_json(name: &str, payload: &serde_json::Value) {
    let dir = Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(f, "{}", serde_json::to_string_pretty(payload).unwrap());
            println!("[results written to {}]", path.display());
        }
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Serializes aggregates to JSON rows.
pub fn aggregates_json(aggs: &[Aggregate]) -> serde_json::Value {
    let rows: Vec<serde_json::Value> = aggs
        .iter()
        .map(|a| {
            serde_json::json!({
                "policy": &a.label,
                "avg_jct_hours": a.mean(|s| s.avg_jct_hours),
                "avg_jct_std": a.std(|s| s.avg_jct_hours),
                "p99_jct_hours": a.mean(|s| s.p99_jct_hours),
                "makespan_hours": a.mean(|s| s.makespan_hours),
                "gpu_hours_per_job": a.mean(|s| s.gpu_hours_per_job),
                "avg_contention": a.mean(|s| s.avg_contention),
                "max_contention": a.max(|s| s.max_contention as f64),
                "avg_restarts": a.mean(|s| s.avg_restarts),
                "unfinished": a.mean(|s| s.unfinished as f64),
                "median_policy_runtime_s": a.mean(|s| s.median_policy_runtime),
                "seeds": a.runs.len(),
                // Per-phase solver telemetry (zeros for baselines that do not
                // report SolverStats).
                "phase_refit_s": a.mean(|s| s.solver.map_or(0.0, |p| p.mean_refit_s)),
                "phase_goodput_s": a.mean(|s| s.solver.map_or(0.0, |p| p.mean_goodput_s)),
                "phase_build_s": a.mean(|s| s.solver.map_or(0.0, |p| p.mean_build_s)),
                "phase_solve_s": a.mean(|s| s.solver.map_or(0.0, |p| p.mean_solve_s)),
                "phase_placement_s": a.mean(|s| s.solver.map_or(0.0, |p| p.mean_placement_s)),
                "mean_candidates": a.mean(|s| s.solver.map_or(0.0, |p| p.mean_candidates)),
                "milp_nodes": a.mean(|s| s.solver.map_or(0.0, |p| p.total_nodes as f64)),
                "simplex_pivots": a.mean(|s| s.solver.map_or(0.0, |p| p.total_pivots as f64)),
                "fallback_rounds": a.mean(|s| s.solver.map_or(0.0, |p| p.fallback_rounds as f64)),
                // Round-over-round fast-path counters.
                "matrix_cache_hits": a.mean(|s| s.solver.map_or(0.0, |p| p.total_cache_hits as f64)),
                "matrix_cache_misses": a.mean(|s| s.solver.map_or(0.0, |p| p.total_cache_misses as f64)),
                "warm_seeded_rounds": a.mean(|s| s.solver.map_or(0.0, |p| p.warm_seeded_rounds as f64)),
                "warm_pivots_saved": a.mean(|s| s.solver.map_or(0.0, |p| p.total_warm_pivots_saved as f64)),
                // Decision-quality telemetry (sia-audit).
                "bounded_rounds": a.mean(|s| s.solver.map_or(0.0, |p| p.bounded_rounds as f64)),
                "mean_best_bound": a.mean(|s| s.solver.map_or(0.0, |p| p.mean_best_bound)),
                "median_rel_gap": a.mean(|s| s.solver.map_or(0.0, |p| p.median_rel_gap)),
                "max_rel_gap": a.max(|s| s.solver.map_or(0.0, |p| p.max_rel_gap)),
                "milp_nodes_pruned": a.mean(|s| s.solver.map_or(0.0, |p| p.total_nodes_pruned as f64)),
                "mean_seed_objective": a.mean(|s| s.solver.map_or(0.0, |p| p.mean_seed_objective)),
                // Sharded-decomposition telemetry (zeros for the monolithic path).
                "sharded_rounds": a.mean(|s| s.solver.map_or(0.0, |p| p.sharded_rounds as f64)),
                "mean_shards": a.mean(|s| s.solver.map_or(0.0, |p| p.mean_shards)),
                "budget_exhausted_rounds": a.mean(|s| s.solver.map_or(0.0, |p| p.budget_exhausted_rounds as f64)),
                "mean_lagrangian_iters": a.mean(|s| s.solver.map_or(0.0, |p| p.mean_lagrangian_iters)),
            })
        })
        .collect();
    serde_json::Value::Array(rows)
}

/// Runs a fleet spec (JSONL text) through `sia-fleet` and returns the
/// canonical per-cell payloads, printing a compact CI table. This is the
/// `--reps N` path of the figure binaries: the same runner, spec grammar
/// and `FLEET_*` cell schema as `sia-cli fleet`, so every CI column in a
/// committed results file is reproducible from the embedded spec alone.
pub fn run_fleet_section(name: &str, spec_jsonl: &str) -> serde_json::Value {
    let spec = sia_fleet::FleetSpec::parse_jsonl(name, spec_jsonl)
        .unwrap_or_else(|e| panic!("bad embedded fleet spec: {e}"));
    let report = sia_fleet::run_fleet(&spec, &sia_fleet::FleetOptions::default())
        .unwrap_or_else(|e| panic!("fleet failed: {e}"));
    println!(
        "\n== {name}: {} runs across {} cells ({} failed, {:.1} s, {} workers) ==",
        report.total_runs,
        report.cells.len(),
        report.total_failed,
        report.wall_s,
        report.workers
    );
    println!(
        "{:<46} {:>4} {:>22} {:>22}",
        "cell", "n", "avgJCT h [95% CI]", "queue delay h [95% CI]"
    );
    for cell in &report.cells {
        let get = |key: &str| {
            cell.metrics
                .iter()
                .find(|(n, _)| *n == key)
                .map(|(_, s)| *s)
                .unwrap_or_default()
        };
        let jct = get("avg_jct_hours");
        let qd = get("queue_delay_hours");
        println!(
            "{:<46} {:>4} {:>6.2} [{:.2}, {:.2}] {:>8.2} [{:.2}, {:.2}]",
            cell.cell.slug(),
            cell.completed,
            jct.mean,
            jct.ci95.0,
            jct.ci95.1,
            qd.mean,
            qd.ci95.0,
            qd.ci95.1,
        );
    }
    let cells: Vec<serde_json::Value> = report
        .cells
        .iter()
        .map(|c| sia_fleet::cell_json(&report.fleet, c))
        .collect();
    serde_json::json!({
        "spec": spec_jsonl.trim(),
        "cells": cells,
    })
}

/// Per-model GPU-hours as JSON (Figure 6).
pub fn model_hours_json(by_model: &BTreeMap<sia_workloads::ModelKind, f64>) -> serde_json::Value {
    serde_json::Value::Object(
        by_model
            .iter()
            .map(|(m, h)| (m.name().to_string(), serde_json::json!(h)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_labels_and_builders() {
        for p in [
            Policy::Sia,
            Policy::SiaSharded { round_budget_s: 15 },
            Policy::Pollux,
            Policy::GavelTuned,
            Policy::ShockwaveTuned,
            Policy::ThemisTuned,
        ] {
            let sched = p.build(0);
            assert!(!sched.name().is_empty());
            assert!(!p.label().is_empty());
        }
        assert_eq!(Policy::SiaWithPower(-5).label(), "Sia(p=-0.5)");
    }

    #[test]
    fn tuned_job_traces_are_rigid() {
        let t = trace_for(TraceKind::Philly, Policy::GavelTuned, 1, 16);
        assert!(t.jobs.iter().all(|j| j.adaptivity.is_rigid()));
        let t2 = trace_for(TraceKind::Philly, Policy::Sia, 1, 16);
        assert!(t2.jobs.iter().all(|j| j.adaptivity.is_adaptive()));
    }

    #[test]
    fn aggregate_statistics() {
        let mk = |jct: f64| Summary {
            scheduler: "x",
            finished: 1,
            unfinished: 0,
            avg_jct_hours: jct,
            p99_jct_hours: jct,
            makespan_hours: jct,
            gpu_hours_per_job: 1.0,
            avg_contention: 1.0,
            max_contention: 1,
            avg_restarts: 0.0,
            median_policy_runtime: 0.0,
            solver: None,
        };
        let a = Aggregate {
            label: "x".into(),
            runs: vec![mk(1.0), mk(3.0)],
        };
        assert!((a.mean(|s| s.avg_jct_hours) - 2.0).abs() < 1e-12);
        assert!((a.std(|s| s.avg_jct_hours) - std::f64::consts::SQRT_2).abs() < 1e-9);
        assert_eq!(a.max(|s| s.avg_jct_hours), 3.0);
    }
}
