//! The Sia scheduler policy (implements [`sia_sim::Scheduler`]).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use sia_cluster::{config_set_view, ClusterView, Configuration, GpuTypeId, JobId, Placement};
use sia_sim::{AllocationMap, DecisionInfo, JobView, Scheduler, SolverStats};
use sia_solver::{DecomposeOptions, MilpOptions};

use crate::ilp::{
    solve_assignment_sharded, solve_assignment_warm, ForcedAssignments, ShardSolveOptions,
};
use crate::matrix::{prune_config_set, MatrixCache};
use crate::placer::realize;

/// Tunable parameters of the Sia policy (§4.3 defaults).
#[derive(Debug, Clone)]
pub struct SiaConfig {
    /// Fairness power `p` (default `-0.5`; §5.7 sweeps `[-1, 1]`).
    pub fairness_power: f64,
    /// Queue penalty `lambda` (default `1.1`).
    pub lambda: f64,
    /// Scheduling round duration, seconds (default `60`).
    pub round_duration: f64,
    /// Apply the Eq. 3 restart factor to move candidates (default `true`;
    /// disable only for the ablation study).
    pub use_restart_factor: bool,
    /// Restart-amortization horizon of Eq. 3, seconds (default
    /// [`crate::matrix::DEFAULT_RESTART_HORIZON_SECS`]; §5.7 sweeps it).
    pub restart_horizon_secs: f64,
    /// Worker threads for candidate-matrix evaluation: `0` auto-detects
    /// (see [`crate::pool::resolve_workers`]). Any value yields identical
    /// allocations; only wall-clock time changes.
    pub workers: usize,
    /// Branch-and-bound limits for the per-round ILP.
    pub milp: MilpOptions,
    /// Per-round solve time budget in seconds. `None` (the default) bounds
    /// the solve by `milp.max_nodes` alone. When set, the budget is
    /// converted **once per round** into deterministic node budgets (see
    /// `sia_solver::milp::deterministic_node_budget`), so a round never
    /// blocks the cluster: on expiry the best incumbent — or the rounded
    /// Lagrangian-relaxation solution — is returned with its proven bound,
    /// and the optimality-gap telemetry reports the honest anytime gap.
    pub round_budget: Option<f64>,
    /// Sharded (price-and-decompose) solve path configuration.
    pub shard: ShardConfig,
}

/// Configuration of the sharded solve path (see `sia_solver::decompose`).
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Route rounds through the sharded path instead of the monolithic
    /// branch-and-bound. Off by default: the monolith is exact and fast up
    /// to ~1k GPUs; sharding is what scales rounds to 16k–65k GPUs.
    pub enabled: bool,
    /// Maximum job groups per shard.
    pub max_shard_groups: usize,
    /// Escalate to an exact monolithic solve at or below this many ILP
    /// variables (`0` disables escalation).
    pub escalation_vars: usize,
    /// Subgradient iterations of the Lagrangian pricing pass.
    pub lagrangian_iters: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            enabled: false,
            max_shard_groups: 24,
            escalation_vars: 600,
            lagrangian_iters: 120,
        }
    }
}

impl Default for SiaConfig {
    fn default() -> Self {
        SiaConfig {
            fairness_power: -0.5,
            lambda: 1.1,
            round_duration: 60.0,
            use_restart_factor: true,
            restart_horizon_secs: crate::matrix::DEFAULT_RESTART_HORIZON_SECS,
            workers: 0,
            milp: MilpOptions {
                max_nodes: 20_000,
                time_limit: None,
                gap_tolerance: 1e-9,
            },
            round_budget: None,
            shard: ShardConfig::default(),
        }
    }
}

/// The Sia scheduling policy.
///
/// # Examples
///
/// ```
/// use sia_core::SiaPolicy;
/// use sia_sim::Scheduler;
///
/// let policy = SiaPolicy::default();
/// assert_eq!(policy.name(), "sia");
/// assert_eq!(policy.round_duration(), 60.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SiaPolicy {
    cfg: SiaConfig,
    reservations: ForcedAssignments,
    /// Per-job raw goodput rows cached across rounds; only rows whose job
    /// is dirty (new, refit, config-set change, progress-bucket crossing)
    /// are re-enumerated each round.
    matrix_cache: MatrixCache,
    /// Last round's chosen configurations, used to seed the branch-and-bound
    /// incumbent (warm start) next round.
    prev_assignment: BTreeMap<JobId, Configuration>,
    /// [`ClusterView::version`] the previous assignment was computed under;
    /// a version bump (capacity change) drops the warm-start incumbent, so
    /// the solve proceeds cold instead of seeding from a plan that may
    /// reference vanished GPUs.
    prev_cluster_version: Option<u64>,
    /// Phase breakdown of the most recent `schedule` call, handed to the
    /// engine via [`Scheduler::round_stats`].
    last_stats: Option<SolverStats>,
    /// Per-job decision provenance of the most recent `schedule` call,
    /// handed to the engine via [`Scheduler::round_decisions`]. Values are
    /// ILP objective weights (normalized, restart-discounted,
    /// fairness-powered goodput — what the solver actually traded off).
    last_decisions: Vec<DecisionInfo>,
}

impl SiaPolicy {
    /// Creates the policy with explicit parameters.
    pub fn new(cfg: SiaConfig) -> Self {
        SiaPolicy {
            cfg,
            reservations: ForcedAssignments::new(),
            matrix_cache: MatrixCache::new(),
            prev_assignment: BTreeMap::new(),
            prev_cluster_version: None,
            last_stats: None,
            last_decisions: Vec::new(),
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &SiaConfig {
        &self.cfg
    }

    /// Pins a job to a configuration (non-preemptive jobs / reservations,
    /// §3.4): the ILP is constrained to allocate exactly this bundle every
    /// round until [`SiaPolicy::release_reservation`] is called.
    pub fn reserve(&mut self, job: JobId, cfg: Configuration) {
        self.reservations.insert(job, cfg);
    }

    /// Releases a reservation.
    pub fn release_reservation(&mut self, job: JobId) {
        self.reservations.remove(&job);
    }
}

impl Scheduler for SiaPolicy {
    fn name(&self) -> &'static str {
        "sia"
    }

    fn round_duration(&self) -> f64 {
        self.cfg.round_duration
    }

    fn schedule(
        &mut self,
        _now: f64,
        jobs: &[JobView<'_>],
        cluster: &ClusterView,
    ) -> AllocationMap {
        let _span = sia_telemetry::span("policy.schedule");
        let spec = cluster.spec();
        // Restrict the configuration set to what live jobs can demand: on
        // large clusters the full set grows with the node count while job
        // demand does not, and dropping configurations no job may take
        // cannot change any decision (see `matrix::prune_config_set`).
        let configs = prune_config_set(&config_set_view(cluster), jobs);
        let workers = crate::pool::resolve_workers(self.cfg.workers);

        // Capacity changed since last round: the previous assignment may
        // reference GPUs that no longer exist, so reject it as a warm-start
        // incumbent and let the MILP solve cold this round.
        if self.prev_cluster_version != Some(cluster.version()) {
            if self.prev_cluster_version.is_some() {
                sia_telemetry::counter("policy.warm_start_invalidated").incr();
                self.prev_assignment.clear();
            }
            self.prev_cluster_version = Some(cluster.version());
        }

        // 1a. Re-fit: re-enumerate raw goodput rows for dirty jobs only
        // (queued jobs never change, so their rows are never recomputed);
        // rebuilt rows fan out across the worker pool.
        let refit_t0 = Instant::now();
        let refresh = {
            let _refit = sia_telemetry::span("policy.refit");
            self.matrix_cache.refresh(jobs, cluster, &configs, workers)
        };
        if refresh.rebuilt > 0 {
            sia_telemetry::counter("policy.rows_refit").add(refresh.rebuilt as u64);
        }
        let refit_s = refit_t0.elapsed().as_secs_f64();

        // 1b. Goodput matrix: normalized, restart-discounted,
        // fairness-powered candidates from the cached raw rows.
        let goodput_t0 = Instant::now();
        let mut candidates = Vec::new();
        {
            let _goodput = sia_telemetry::span("policy.goodput");
            for view in jobs {
                let values = self
                    .matrix_cache
                    .row(view.id)
                    .expect("refresh populated every live job");
                candidates.extend(crate::matrix::job_candidates_from_values(
                    view,
                    spec,
                    &configs,
                    values,
                    &crate::matrix::MatrixParams {
                        fairness_power: self.cfg.fairness_power,
                        lambda: self.cfg.lambda,
                        use_restart_factor: self.cfg.use_restart_factor,
                        restart_horizon_secs: self.cfg.restart_horizon_secs,
                    },
                ));
            }
        }
        let goodput_s = goodput_t0.elapsed().as_secs_f64();
        sia_telemetry::counter("policy.candidates").add(candidates.len() as u64);

        // 2. Assignment ILP (Eq. 4). The sharded path prices capacities with
        // a Lagrangian pass and solves per-cohort shards on the worker pool;
        // the monolithic path is warm-started from last round's choices.
        // Either way a `round_budget` is converted once into deterministic
        // node budgets, so the solve is anytime without losing determinism.
        let (chosen, ilp) = if self.cfg.shard.enabled {
            solve_assignment_sharded(
                cluster,
                &candidates,
                &self.reservations,
                &ShardSolveOptions {
                    decompose: DecomposeOptions {
                        max_shard_groups: self.cfg.shard.max_shard_groups,
                        escalation_vars: self.cfg.shard.escalation_vars,
                        lagrangian_iters: self.cfg.shard.lagrangian_iters,
                        milp: self.cfg.milp.clone(),
                    },
                    round_budget: self.cfg.round_budget,
                    workers: self.cfg.workers,
                },
            )
        } else {
            let mut milp = self.cfg.milp.clone();
            if milp.time_limit.is_none() {
                milp.time_limit = self.cfg.round_budget.map(Duration::from_secs_f64);
            }
            solve_assignment_warm(
                cluster,
                &candidates,
                &self.reservations,
                &milp,
                Some(&self.prev_assignment),
            )
        };

        // Decision provenance: for every job, the weight of the chosen
        // configuration vs the best weight it was offered at all — one pass
        // over the candidate list, keyed against the solver's choices.
        let mut provenance: BTreeMap<JobId, DecisionInfo> = jobs
            .iter()
            .map(|v| {
                (
                    v.id,
                    DecisionInfo {
                        job: v.id,
                        chosen_value: 0.0,
                        best_value: 0.0,
                    },
                )
            })
            .collect();
        for c in &candidates {
            if let Some(d) = provenance.get_mut(&c.job) {
                if c.weight > d.best_value {
                    d.best_value = c.weight;
                }
                if chosen.get(&c.job).is_some_and(|cfg| *cfg == c.config) {
                    d.chosen_value = c.weight;
                }
            }
        }
        self.last_decisions = provenance.into_values().collect();

        self.prev_assignment = chosen.clone();

        // 3. Placement under the Sia rules.
        let placement_t0 = Instant::now();
        let current: BTreeMap<JobId, Placement> =
            jobs.iter().map(|v| (v.id, v.current.clone())).collect();
        let decisions: Vec<_> = chosen
            .into_iter()
            .map(|(job, cfg)| {
                let cur = current.get(&job).cloned().unwrap_or_else(Placement::empty);
                (job, cfg, cur)
            })
            .collect();
        let allocations = realize(cluster, &decisions).allocations;
        let placement_s = placement_t0.elapsed().as_secs_f64();

        self.last_stats = Some(SolverStats {
            refit_s,
            goodput_s,
            build_s: ilp.build_s,
            solve_s: ilp.solve_s,
            placement_s,
            candidates: candidates.len(),
            nodes: ilp.nodes,
            pivots: ilp.pivots,
            lp_objective: ilp.lp_objective,
            objective: ilp.objective,
            best_bound: ilp.best_bound,
            nodes_pruned: ilp.nodes_pruned,
            first_incumbent_node: ilp.first_incumbent_node,
            first_incumbent_s: ilp.first_incumbent_s,
            cache_hits: refresh.reused,
            cache_misses: refresh.rebuilt,
            incumbent_seed: ilp.incumbent_seed,
            warm_pivots_saved: ilp.warm_pivots_saved,
            workers,
            shards: ilp.shards,
            budget_exhausted: ilp.budget_exhausted,
            lagrangian_iters: ilp.lagrangian_iters,
            lagrangian_gap: ilp.lagrangian_gap,
            lagrangian_norm: ilp.lagrangian_norm,
            outcome: ilp.outcome,
        });
        allocations
    }

    fn round_stats(&mut self) -> Option<SolverStats> {
        self.last_stats.take()
    }

    fn round_decisions(&mut self) -> Vec<DecisionInfo> {
        std::mem::take(&mut self.last_decisions)
    }

    fn gap_tolerance(&self) -> Option<f64> {
        Some(self.cfg.milp.gap_tolerance)
    }

    /// Exports the warm-start seed: last round's chosen configurations and
    /// the cluster version they were computed under. The matrix cache,
    /// reservations and per-round stats are deliberately not serialized —
    /// the cache is rebuilt lazily (first post-restore round re-enumerates
    /// rows, losing only wall-clock), reservations belong to the embedding
    /// layer, and the stats are consumed within a round.
    fn export_state(&self) -> Option<serde_json::Value> {
        let assignment: Vec<serde_json::Value> = self
            .prev_assignment
            .iter()
            .map(|(job, cfg)| {
                serde_json::json!({
                    "job": job.0,
                    "nodes": cfg.nodes as u64,
                    "gpus": cfg.gpus as u64,
                    "gpu_type": cfg.gpu_type.0 as u64,
                })
            })
            .collect();
        Some(serde_json::json!({
            "prev_assignment": assignment,
            "prev_cluster_version": match self.prev_cluster_version {
                Some(v) => serde_json::json!(v),
                None => serde_json::Value::Null,
            },
        }))
    }

    /// Restores the warm-start seed exported by
    /// [`Scheduler::export_state`]. Malformed entries are skipped — a
    /// partial (or empty) seed only costs the first round a cold solve.
    fn import_state(&mut self, state: &serde_json::Value) {
        self.prev_assignment.clear();
        if let Some(entries) = state.get("prev_assignment").and_then(|v| v.as_array()) {
            for e in entries {
                let (Some(job), Some(nodes), Some(gpus), Some(gpu_type)) = (
                    e.get("job").and_then(|v| v.as_u64()),
                    e.get("nodes").and_then(|v| v.as_u64()),
                    e.get("gpus").and_then(|v| v.as_u64()),
                    e.get("gpu_type").and_then(|v| v.as_u64()),
                ) else {
                    continue;
                };
                if nodes == 0 || gpus < nodes {
                    continue;
                }
                self.prev_assignment.insert(
                    JobId(job),
                    Configuration::new(nodes as usize, gpus as usize, GpuTypeId(gpu_type as usize)),
                );
            }
        }
        self.prev_cluster_version = state.get("prev_cluster_version").and_then(|v| v.as_u64());
        // Derived state starts cold on purpose.
        self.matrix_cache = MatrixCache::new();
        self.last_stats = None;
        self.last_decisions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_cluster::ClusterSpec;
    use sia_models::{BatchLimits, EfficiencyParams, JobEstimator, ThroughputParams};
    use sia_workloads::{Adaptivity, JobSpec, ModelKind, SizeCategory};

    fn params(speed: f64, sync_alpha: f64) -> ThroughputParams {
        ThroughputParams {
            alpha_c: 0.05 / speed,
            beta_c: 0.002 / speed,
            alpha_n: sync_alpha / 4.0,
            beta_n: sync_alpha / 40.0,
            alpha_d: sync_alpha,
            beta_d: sync_alpha / 10.0,
            gamma: 2.5,
            max_local_bsz: 256.0,
        }
    }

    fn mk_estimator(speeds: &[f64]) -> JobEstimator {
        JobEstimator::oracle(
            speeds.iter().map(|&s| params(s, 0.05)).collect(),
            EfficiencyParams::new(4000.0, 128.0),
            BatchLimits::new(128.0, 8192.0),
        )
    }

    fn mk_spec(id: u64, max_gpus: usize) -> JobSpec {
        JobSpec {
            id: JobId(id),
            name: format!("j{id}"),
            model: ModelKind::ResNet18,
            category: SizeCategory::Small,
            submit_time: 0.0,
            adaptivity: Adaptivity::Adaptive,
            min_gpus: 1,
            max_gpus,
            work_target: 1e9,
        }
    }

    struct Fixture {
        specs: Vec<JobSpec>,
        estimators: Vec<JobEstimator>,
        placements: Vec<Placement>,
    }

    impl Fixture {
        fn new(n: usize, max_gpus: usize, speeds: &[f64]) -> Self {
            Fixture {
                specs: (0..n as u64).map(|i| mk_spec(i, max_gpus)).collect(),
                estimators: (0..n).map(|_| mk_estimator(speeds)).collect(),
                placements: vec![Placement::empty(); n],
            }
        }

        fn views(&self) -> Vec<JobView<'_>> {
            self.specs
                .iter()
                .zip(&self.estimators)
                .zip(&self.placements)
                .map(|((spec, est), cur)| JobView {
                    id: spec.id,
                    spec,
                    estimator: est,
                    current: cur,
                    age: 300.0,
                    restarts: 0,
                    restart_delay: 30.0,
                    progress: 0.1,
                })
                .collect()
        }
    }

    #[test]
    fn every_queued_job_gets_one_gpu_when_capacity_allows() {
        let spec = ClusterSpec::heterogeneous_64();
        let cluster = ClusterView::new(spec.clone());
        let fx = Fixture::new(10, 16, &[1.0, 1.8, 4.0]);
        let mut sia = SiaPolicy::default();
        let allocs = sia.schedule(0.0, &fx.views(), &cluster);
        assert_eq!(allocs.len(), 10, "lambda makes allocation worthwhile");
        for p in allocs.values() {
            assert_eq!(p.total_gpus(), 1, "queued jobs start at one GPU");
        }
    }

    #[test]
    fn running_jobs_scale_up_over_rounds() {
        let spec = ClusterSpec::heterogeneous_64();
        let cluster = ClusterView::new(spec.clone());
        let mut fx = Fixture::new(2, 64, &[1.0, 1.8, 4.0]);
        let mut sia = SiaPolicy::default();
        let mut gpus_seen = Vec::new();
        for _ in 0..6 {
            let allocs = sia.schedule(0.0, &fx.views(), &cluster);
            let total: usize = allocs.values().map(|p| p.total_gpus()).sum();
            gpus_seen.push(total);
            for (i, s) in fx.specs.iter().enumerate() {
                fx.placements[i] = allocs.get(&s.id).cloned().unwrap_or_else(Placement::empty);
            }
        }
        assert!(
            gpus_seen.last().unwrap() > gpus_seen.first().unwrap(),
            "jobs must scale up over rounds: {gpus_seen:?}"
        );
    }

    #[test]
    fn capacity_never_exceeded() {
        let spec = ClusterSpec::heterogeneous_64();
        let cluster = ClusterView::new(spec.clone());
        let fx = Fixture::new(80, 16, &[1.0, 1.8, 4.0]); // heavy contention
        let mut sia = SiaPolicy::default();
        let allocs = sia.schedule(0.0, &fx.views(), &cluster);
        let total: usize = allocs.values().map(|p| p.total_gpus()).sum();
        assert!(total <= spec.total_gpus());
        // Spot-check per-type capacity via FreeGpus (take panics if exceeded).
        let mut free = sia_cluster::FreeGpus::all_free(&spec);
        for p in allocs.values() {
            free.take(p);
        }
    }

    #[test]
    fn faster_type_preferred_under_low_contention() {
        let spec = ClusterSpec::heterogeneous_64();
        let cluster = ClusterView::new(spec.clone());
        let fx = Fixture::new(1, 16, &[1.0, 1.8, 4.0]);
        let mut sia = SiaPolicy::default();
        let allocs = sia.schedule(0.0, &fx.views(), &cluster);
        let p = allocs.values().next().unwrap();
        let a100 = spec.gpu_type_by_name("a100").unwrap();
        assert_eq!(p.gpu_type(&spec), a100);
    }

    #[test]
    fn stable_allocation_without_goodput_changes() {
        // Once running, the restart factor should keep the job in place
        // when nothing material changed.
        let spec = ClusterSpec::heterogeneous_64();
        let cluster = ClusterView::new(spec.clone());
        let mut fx = Fixture::new(4, 8, &[1.0, 1.8, 4.0]);
        let mut sia = SiaPolicy::default();
        let first = sia.schedule(0.0, &fx.views(), &cluster);
        for (i, s) in fx.specs.iter().enumerate() {
            fx.placements[i] = first.get(&s.id).cloned().unwrap_or_else(Placement::empty);
        }
        // Run several rounds; after jobs reach max size the placement must
        // stop changing.
        let mut last = first;
        for _ in 0..8 {
            let next = sia.schedule(0.0, &fx.views(), &cluster);
            for (i, s) in fx.specs.iter().enumerate() {
                fx.placements[i] = next.get(&s.id).cloned().unwrap_or_else(Placement::empty);
            }
            last = next;
        }
        let again = sia.schedule(0.0, &fx.views(), &cluster);
        assert_eq!(last, again, "steady state must be stable");
    }

    #[test]
    fn allocations_identical_across_worker_counts() {
        // The worker pool must never change decisions — only wall-clock.
        let spec = ClusterSpec::heterogeneous_64();
        let cluster = ClusterView::new(spec.clone());
        let run = |workers: usize| {
            let mut fx = Fixture::new(12, 16, &[1.0, 1.8, 4.0]);
            let mut sia = SiaPolicy::new(SiaConfig {
                workers,
                ..SiaConfig::default()
            });
            let mut rounds = Vec::new();
            for _ in 0..4 {
                let allocs = sia.schedule(0.0, &fx.views(), &cluster);
                for (i, s) in fx.specs.iter().enumerate() {
                    fx.placements[i] = allocs.get(&s.id).cloned().unwrap_or_else(Placement::empty);
                }
                rounds.push(allocs);
            }
            rounds
        };
        let serial = run(1);
        for workers in [2usize, 4, 8] {
            assert_eq!(run(workers), serial, "workers={workers}");
        }
    }

    #[test]
    fn sharded_policy_allocations_identical_across_worker_counts() {
        // The sharded path must also be worker-count independent, and its
        // allocations must respect capacity like the monolith's.
        let spec = ClusterSpec::heterogeneous_64();
        let cluster = ClusterView::new(spec.clone());
        let run = |workers: usize| {
            let mut fx = Fixture::new(16, 16, &[1.0, 1.8, 4.0]);
            let mut sia = SiaPolicy::new(SiaConfig {
                workers,
                round_budget: Some(5.0),
                shard: ShardConfig {
                    enabled: true,
                    max_shard_groups: 4,
                    escalation_vars: 0, // force the sharded machinery
                    ..ShardConfig::default()
                },
                ..SiaConfig::default()
            });
            let mut rounds = Vec::new();
            for _ in 0..4 {
                let allocs = sia.schedule(0.0, &fx.views(), &cluster);
                for (i, s) in fx.specs.iter().enumerate() {
                    fx.placements[i] = allocs.get(&s.id).cloned().unwrap_or_else(Placement::empty);
                }
                rounds.push(allocs);
            }
            let stats = sia.round_stats().expect("stats recorded");
            (rounds, stats)
        };
        let (serial, serial_stats) = run(1);
        assert!(serial_stats.shards >= 2, "sharded path must engage");
        assert!(serial_stats.lagrangian_iters > 0);
        for workers in [2usize, 4, 0] {
            let (rounds, stats) = run(workers);
            assert_eq!(rounds, serial, "workers={workers}");
            assert_eq!(stats.objective, serial_stats.objective);
            assert_eq!(stats.shards, serial_stats.shards);
        }
        // Capacity respected in every round.
        let mut free = sia_cluster::FreeGpus::all_free(&spec);
        for p in serial.last().unwrap().values() {
            free.take(p);
        }
    }

    #[test]
    fn reservation_forces_allocation() {
        let spec = ClusterSpec::heterogeneous_64();
        let cluster = ClusterView::new(spec.clone());
        let fx = Fixture::new(40, 16, &[1.0, 1.8, 4.0]);
        let mut sia = SiaPolicy::default();
        let a100 = spec.gpu_type_by_name("a100").unwrap();
        let reserved_cfg = Configuration::new(1, 8, a100);
        sia.reserve(JobId(39), reserved_cfg);
        // Reservations bypass the start-at-1-GPU rule via forced ILP bounds;
        // the candidate must exist, so mark the job as already running at 8.
        let mut fx = fx;
        fx.placements[39] = Placement::new(vec![(9, 8)]); // a100 node
        let allocs = sia.schedule(0.0, &fx.views(), &cluster);
        let p = allocs.get(&JobId(39)).expect("reserved job allocated");
        assert_eq!(p.total_gpus(), 8);
        assert_eq!(p.gpu_type(&spec), a100);
    }

    #[test]
    fn exported_state_restores_warm_start_decisions() {
        // A restored policy must make the same decisions as the original:
        // run a few rounds, export, import into a fresh policy, and compare
        // the next rounds side by side.
        let spec = ClusterSpec::heterogeneous_64();
        let cluster = ClusterView::new(spec.clone());
        let mut fx = Fixture::new(8, 16, &[1.0, 1.8, 4.0]);
        let mut sia = SiaPolicy::default();
        for _ in 0..3 {
            let allocs = sia.schedule(0.0, &fx.views(), &cluster);
            for (i, s) in fx.specs.iter().enumerate() {
                fx.placements[i] = allocs.get(&s.id).cloned().unwrap_or_else(Placement::empty);
            }
        }
        let state = sia.export_state().expect("sia exports state");
        let mut restored = SiaPolicy::default();
        restored.import_state(&state);
        assert_eq!(restored.prev_assignment, sia.prev_assignment);
        assert_eq!(restored.prev_cluster_version, sia.prev_cluster_version);
        for _ in 0..2 {
            let a = sia.schedule(0.0, &fx.views(), &cluster);
            let b = restored.schedule(0.0, &fx.views(), &cluster);
            assert_eq!(a, b, "restored policy must decide identically");
            for (i, s) in fx.specs.iter().enumerate() {
                fx.placements[i] = a.get(&s.id).cloned().unwrap_or_else(Placement::empty);
            }
        }
    }

    #[test]
    fn import_state_skips_malformed_entries() {
        let mut sia = SiaPolicy::default();
        sia.import_state(&serde_json::json!({
            "prev_assignment": [
                {"job": 1, "nodes": 1, "gpus": 4, "gpu_type": 0},
                {"job": 2, "nodes": 2, "gpus": 1, "gpu_type": 0}, // gpus < nodes
                {"job": 3, "nodes": 1, "gpu_type": 0},            // missing gpus
            ],
            "prev_cluster_version": 7,
        }));
        assert_eq!(sia.prev_assignment.len(), 1);
        assert!(sia.prev_assignment.contains_key(&JobId(1)));
        assert_eq!(sia.prev_cluster_version, Some(7));
    }

    #[test]
    fn hybrid_parallel_job_scales_in_replica_units() {
        let spec = ClusterSpec::heterogeneous_64();
        let cluster = ClusterView::new(spec.clone());
        let profile = ModelKind::Gpt2p8b.profile();
        let job = JobSpec {
            id: JobId(0),
            name: "gpt".into(),
            model: ModelKind::Gpt2p8b,
            category: SizeCategory::XxLarge,
            submit_time: 0.0,
            adaptivity: Adaptivity::Adaptive,
            min_gpus: 2,
            max_gpus: 64,
            work_target: 1e9,
        };
        let truth = profile.true_model(&spec);
        let est = JobEstimator::oracle(
            truth.per_type.clone(),
            profile.efficiency_params(),
            profile.batch_limits(),
        );
        let cur = Placement::empty();
        let views = [JobView {
            id: job.id,
            spec: &job,
            estimator: &est,
            current: &cur,
            age: 0.0,
            restarts: 0,
            restart_delay: 250.0,
            progress: 0.0,
        }];
        let mut sia = SiaPolicy::default();
        let allocs = sia.schedule(0.0, &views, &cluster);
        let p = allocs.get(&job.id).expect("GPT job allocated");
        // One replica: 2 GPUs on a100 or 8 on rtx; t4 is impossible.
        let t = p.gpu_type(&spec);
        let name = &spec.kind(t).name;
        let width = profile.pipeline.unwrap().gpus_per_replica(name).unwrap();
        assert_eq!(p.total_gpus(), width, "starts with exactly one replica");
    }
}
