//! Figure 1: scheduler comparison across three scenarios.
//!
//! *Left*: adaptive jobs on a homogeneous cluster; *Center*: adaptive jobs on
//! a heterogeneous cluster; *Right*: rigid jobs on a heterogeneous cluster.
//! Expected shape: Pollux ≈ Sia < Gavel on the left; Sia < Pollux, Gavel in
//! the center; Sia ≤ Gavel < Pollux on the right.

use sia_bench::{
    aggregates_json, print_table, run_fleet_section, run_one, scale_work, write_json, Policy,
};
use sia_cluster::ClusterSpec;
use sia_metrics::summarize;
use sia_sim::SimConfig;
use sia_workloads::{Trace, TraceConfig, TraceKind};

fn seeds() -> Vec<u64> {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .map(|n: u64| (1..=n).collect())
        .unwrap_or_else(|| vec![1, 2])
}

/// `--reps N`: when present, adds a Monte Carlo section with 95% CIs over
/// N seeds per scenario cell, via the `sia-fleet` runner.
fn reps() -> Option<u64> {
    let argv: Vec<String> = std::env::args().collect();
    let i = argv.iter().position(|a| a == "--reps")?;
    match argv.get(i + 1).and_then(|s| s.parse().ok()) {
        Some(n) if n > 0 => Some(n),
        _ => {
            eprintln!("--reps must be a positive integer");
            std::process::exit(2);
        }
    }
}

fn scenario(
    name: &str,
    cluster: &ClusterSpec,
    policies: &[Policy],
    all_rigid: bool,
    cap: usize,
    seeds: &[u64],
) -> Vec<sia_bench::Aggregate> {
    let aggs: Vec<_> = policies
        .iter()
        .map(|&p| {
            let runs = seeds
                .iter()
                .map(|&seed| {
                    let mut tcfg = TraceConfig::new(TraceKind::Philly, seed).with_max_gpus_cap(cap);
                    if all_rigid || p.needs_tuned_jobs() {
                        tcfg = tcfg.with_adaptivity_mix(0.0, 1.0);
                    }
                    let mut trace = Trace::generate(&tcfg);
                    scale_work(&mut trace, 1.0);
                    summarize(&run_one(
                        p,
                        cluster,
                        &trace,
                        SimConfig {
                            seed,
                            ..SimConfig::default()
                        },
                        seed,
                    ))
                })
                .collect();
            sia_bench::Aggregate {
                label: p.label(),
                runs,
            }
        })
        .collect();
    print_table(name, &aggs);
    aggs
}

fn main() {
    let seeds = seeds();
    let policies = [Policy::Pollux, Policy::Sia, Policy::GavelTuned];

    let homog = scenario(
        "Figure 1 [left]: Homogeneous + AdaptiveJobs (64x t4)",
        &ClusterSpec::homogeneous_64(),
        &policies,
        false,
        64,
        &seeds,
    );
    let hetero = scenario(
        "Figure 1 [center]: Heterogeneous + AdaptiveJobs (64 GPUs, 3 types)",
        &ClusterSpec::heterogeneous_64(),
        &policies,
        false,
        16,
        &seeds,
    );
    let rigid = scenario(
        "Figure 1 [right]: Heterogeneous + RigidJobs",
        &ClusterSpec::heterogeneous_64(),
        &policies,
        true,
        16,
        &seeds,
    );

    // Optional Monte Carlo section: each scenario as a fleet group, N
    // seeds per (policy × scenario) cell, aggregated with 95% CIs by the
    // same runner as `sia-cli fleet`. Work is scaled down so the rep count
    // dominates wall-clock, not individual run length.
    let fleet = reps().map(|n| {
        let spec = format!(
            "{{\"group\": \"homog_adaptive\", \"policies\": [\"pollux\", \"sia\", \"gavel\"], \
             \"traces\": [\"philly\"], \"clusters\": [\"homog64\"], \
             \"seeds\": {{\"start\": 1, \"count\": {n}}}, \"work_scale\": 0.5, \
             \"max_gpus_cap\": 64}}\n\
             {{\"group\": \"hetero_adaptive\", \"policies\": [\"pollux\", \"sia\", \"gavel\"], \
             \"traces\": [\"philly\"], \"clusters\": [\"hetero64\"], \
             \"seeds\": {{\"start\": 1, \"count\": {n}}}, \"work_scale\": 0.5}}\n\
             {{\"group\": \"hetero_rigid\", \"policies\": [\"pollux\", \"sia\", \"gavel\"], \
             \"traces\": [\"philly\"], \"clusters\": [\"hetero64\"], \
             \"seeds\": {{\"start\": 1, \"count\": {n}}}, \"work_scale\": 0.5, \
             \"all_rigid\": true}}"
        );
        run_fleet_section("fig1_fleet", &spec)
    });

    let mut doc = serde_json::json!({
        "homogeneous_adaptive": aggregates_json(&homog),
        "heterogeneous_adaptive": aggregates_json(&hetero),
        "heterogeneous_rigid": aggregates_json(&rigid),
    });
    if let (Some(fleet), Some(obj)) = (fleet, doc.as_object_mut()) {
        obj.insert("fleet".to_string(), fleet);
    }
    write_json("fig1_scenarios", &doc);
}
