//! §5.3: scheduling and elastically scaling a hybrid-parallel (pipeline +
//! data parallel) 2.8B GPT finetuning job.
//!
//! (Left) throughput of the GPT model vs total GPU count on `a100`
//! (2-stage pipelines) and `rtx` (8-stage pipelines): near-linear, since
//! computation dominates communication for this model. (Right) Sia's
//! adaptation of the GPT job on a mixed a100/rtx cluster under a background
//! workload: scaled down around congestion peaks and back up as load
//! drains.

use sia_bench::{run_one, write_json, Policy};
use sia_cluster::ClusterSpec;
use sia_models::{optimize_goodput, AllocShape, BatchLimits};
use sia_workloads::{ModelKind, Trace, TraceConfig, TraceKind};

fn main() {
    let profile = ModelKind::Gpt2p8b.profile();
    let pipe = profile.pipeline.expect("GPT is hybrid parallel");

    // ---- (Left) throughput scaling ----
    println!("== Hybrid parallel: GPT-2.8B throughput vs total GPUs ==");
    println!("{:>8} {:>12} {:>12}", "#GPUs", "a100", "rtx");
    let mut a100_curve = Vec::new();
    let mut rtx_curve = Vec::new();
    let a100_kind = sia_cluster::GpuKind {
        name: "a100".into(),
        mem_gib: 40.0,
        power_rank: 4,
    };
    let rtx_kind = sia_cluster::GpuKind {
        name: "rtx".into(),
        mem_gib: 11.0,
        power_rank: 2,
    };
    for total in (8..=128).step_by(8) {
        let mut row = vec![format!("{total:>8}")];
        for (kind, width, curve) in [
            (&a100_kind, 2usize, &mut a100_curve),
            (&rtx_kind, 8usize, &mut rtx_curve),
        ] {
            let replicas = total / width;
            let params = profile.throughput_params(kind);
            let shape = if replicas == 1 {
                AllocShape::single()
            } else {
                AllocShape::dist(replicas)
            };
            let thr = optimize_goodput(
                &params,
                &profile.efficiency_params(),
                shape,
                BatchLimits::fixed(pipe.replica_batch * replicas as f64),
            )
            .map(|p| p.throughput)
            .unwrap_or(0.0);
            row.push(format!("{thr:>12.1}"));
            curve.push((total, thr));
        }
        println!("{}", row.join(""));
    }

    // ---- (Right) Sia adaptation under background load ----
    // Mixed a100/rtx cluster like the paper's §5.3 experiment.
    let mut cluster = ClusterSpec::new();
    let rtx = cluster.add_gpu_kind("rtx", 11.0, 2);
    let a100 = cluster.add_gpu_kind("a100", 40.0, 4);
    cluster.add_nodes(rtx, 4, 8);
    cluster.add_nodes(a100, 2, 8);

    let mut trace = Trace::generate(
        &TraceConfig::new(TraceKind::Physical, 5)
            .with_rate(8.0)
            .with_max_gpus_cap(16),
    );
    trace.push_hybrid_parallel_job(30.0);
    let gpt_id = trace
        .jobs
        .iter()
        .find(|j| j.model == ModelKind::Gpt2p8b)
        .unwrap()
        .id;

    let result = run_one(
        Policy::Sia,
        &cluster,
        &trace,
        sia_sim::SimConfig::default(),
        5,
    );
    println!("\n== Sia adaptation of the GPT job (time, type, GPUs, active jobs) ==");
    let mut last = None;
    let mut timeline = Vec::new();
    for round in &result.rounds {
        let alloc = round
            .allocations
            .iter()
            .find(|(j, _, _)| *j == gpt_id)
            .map(|&(_, t, g)| (t.0, g));
        if alloc != last {
            let (name, gpus) = match alloc {
                Some((t, g)) => (cluster.kinds()[t].name.clone(), g),
                None => ("-".into(), 0),
            };
            println!(
                "  t={:>6.1} min  {:>3} x {:<5} (active jobs: {})",
                round.time / 60.0,
                gpus,
                name,
                round.active_jobs
            );
            timeline.push(serde_json::json!({
                "time_s": round.time,
                "gpu_type": name,
                "gpus": gpus,
                "active_jobs": round.active_jobs,
            }));
            last = alloc;
        }
    }
    let gpt_rec = result.records.iter().find(|r| r.id == gpt_id).unwrap();
    println!(
        "\nGPT job: restarts {}, finished: {}, GPU-hours {:.1}",
        gpt_rec.restarts,
        gpt_rec.finish_time.is_some(),
        gpt_rec.gpu_seconds / 3600.0
    );
    // The scheduler must have scaled the job both down and up at least once.
    write_json(
        "fig_hybrid_parallel",
        &serde_json::json!({
            "throughput_scaling": {
                "a100": a100_curve,
                "rtx": rtx_curve,
            },
            "adaptation_timeline": timeline,
            "gpt_restarts": gpt_rec.restarts,
            "gpt_finished": gpt_rec.finish_time.is_some(),
        }),
    );
}
