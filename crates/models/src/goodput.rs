//! Goodput = throughput × statistical efficiency, and its optimisation.
//!
//! Given a fixed allocation (replica count, co-located or distributed) and a
//! job's batch-size limits, the Adaptive Executor picks the per-GPU batch
//! size `m` and gradient-accumulation step count `s` that maximise goodput.
//! Gradient accumulation lets a job reach a statistically desirable total
//! batch even when per-GPU memory is small — the mechanism Sia uses to
//! "fully exploit whichever GPU type" (§3.1).

use crate::efficiency::EfficiencyParams;
use crate::throughput::{AllocShape, ThroughputParams};

/// Batch-size limits declared by the job submitter (Table 2's ranges).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchLimits {
    /// Minimum (baseline) total batch size `M0`.
    pub min_total: f64,
    /// Maximum total batch size the job tolerates.
    pub max_total: f64,
}

impl BatchLimits {
    /// Creates limits; `0 < min_total <= max_total` required.
    pub fn new(min_total: f64, max_total: f64) -> Self {
        assert!(
            min_total > 0.0 && min_total <= max_total,
            "invalid batch limits"
        );
        BatchLimits {
            min_total,
            max_total,
        }
    }

    /// Limits for a job with a fixed batch size (strong-scaling / rigid).
    pub fn fixed(total: f64) -> Self {
        BatchLimits::new(total, total)
    }
}

/// The goodput-optimal operating point for one allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoodputPoint {
    /// Goodput in efficiency-weighted samples per second.
    pub goodput: f64,
    /// Raw throughput in samples per second.
    pub throughput: f64,
    /// Statistical efficiency at the chosen batch.
    pub efficiency: f64,
    /// Chosen per-GPU batch size.
    pub local_bsz: f64,
    /// Chosen gradient-accumulation steps.
    pub accum_steps: u32,
    /// Total batch size `replicas * local_bsz * (accum_steps + 1)`.
    pub total_bsz: f64,
}

/// Maximum gradient-accumulation steps considered.
const MAX_ACCUM: u32 = 15;
/// Batch grid resolution per accumulation level.
const GRID: usize = 12;
/// Golden-section refinement iterations around the grid optimum.
const REFINE_ITERS: usize = 14;

/// Finds the goodput-maximising `(m, s)` for an allocation.
///
/// Returns `None` when no batch assignment satisfies the limits (e.g. the
/// minimum total batch cannot fit even with maximum accumulation, or the
/// replica count already exceeds `max_total` at batch 1).
///
/// # Examples
///
/// ```
/// use sia_models::{optimize_goodput, AllocShape, BatchLimits, EfficiencyParams, ThroughputParams};
///
/// let thr = ThroughputParams {
///     alpha_c: 0.05, beta_c: 0.002,
///     alpha_n: 0.02, beta_n: 0.005,
///     alpha_d: 0.10, beta_d: 0.02,
///     gamma: 2.5, max_local_bsz: 256.0,
/// };
/// let eff = EfficiencyParams::new(2000.0, 128.0);
/// let point = optimize_goodput(&thr, &eff, AllocShape::local(4),
///                              BatchLimits::new(128.0, 4096.0)).unwrap();
/// assert!(point.goodput > 0.0);
/// assert!(point.total_bsz >= 128.0 && point.total_bsz <= 4096.0);
/// ```
pub fn optimize_goodput(
    thr: &ThroughputParams,
    eff: &EfficiencyParams,
    shape: AllocShape,
    limits: BatchLimits,
) -> Option<GoodputPoint> {
    let k = shape.replicas as f64;
    debug_assert!(shape.replicas >= 1);
    let eval = |m: f64, s: u32| -> GoodputPoint {
        let waves = s as f64 + 1.0;
        let total = k * m * waves;
        let throughput = thr.throughput(shape, m, s);
        let efficiency = eff.efficiency(total);
        GoodputPoint {
            goodput: throughput * efficiency,
            throughput,
            efficiency,
            local_bsz: m,
            accum_steps: s,
            total_bsz: total,
        }
    };
    let mut best: Option<GoodputPoint> = None;
    let mut had_unbound_level = false;
    for s in 0..=MAX_ACCUM {
        let waves = s as f64 + 1.0;
        // Feasible per-GPU batch window for this accumulation level.
        let m_lo = (limits.min_total / (k * waves)).max(1.0);
        let m_hi = (limits.max_total / (k * waves)).min(thr.max_local_bsz);
        if m_lo > m_hi {
            continue;
        }
        // Skip levels that cannot improve: once a level existed whose window
        // was not clipped by memory, higher accumulation only re-covers the
        // same total-batch range at strictly higher compute cost.
        if had_unbound_level {
            break;
        }
        if limits.max_total / (k * waves) <= thr.max_local_bsz {
            had_unbound_level = true;
        }
        // Geometric grid over [m_lo, m_hi], inclusive of both ends.
        let ratio = m_hi / m_lo;
        let mut best_here: Option<GoodputPoint> = None;
        for g in 0..GRID {
            let frac = g as f64 / (GRID - 1) as f64;
            let p = eval(m_lo * ratio.powf(frac), s);
            if best_here.map(|b| p.goodput > b.goodput).unwrap_or(true) {
                best_here = Some(p);
            }
        }
        // Golden-section refinement around the grid optimum (goodput is
        // unimodal in m for fixed s in this model family).
        if let Some(bh) = best_here {
            let step = ratio.powf(1.0 / (GRID - 1) as f64);
            let mut a = (bh.local_bsz / step).max(m_lo);
            let mut b = (bh.local_bsz * step).min(m_hi);
            let phi = 0.618_033_988_749_894_9;
            for _ in 0..REFINE_ITERS {
                let x1 = b - phi * (b - a);
                let x2 = a + phi * (b - a);
                if eval(x1, s).goodput < eval(x2, s).goodput {
                    a = x1;
                } else {
                    b = x2;
                }
            }
            let refined = eval(0.5 * (a + b), s);
            let candidate = if refined.goodput > bh.goodput {
                refined
            } else {
                bh
            };
            if best.map(|b| candidate.goodput > b.goodput).unwrap_or(true) {
                best = Some(candidate);
            }
        }
        // Accumulation levels beyond the first feasible one only help when
        // memory binds, but the space is small enough to scan them all.
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thr() -> ThroughputParams {
        ThroughputParams {
            alpha_c: 0.05,
            beta_c: 0.002,
            alpha_n: 0.02,
            beta_n: 0.005,
            alpha_d: 0.10,
            beta_d: 0.02,
            gamma: 3.0,
            max_local_bsz: 256.0,
        }
    }

    fn eff() -> EfficiencyParams {
        EfficiencyParams::new(2000.0, 128.0)
    }

    #[test]
    fn finds_feasible_point_single_gpu() {
        let p = optimize_goodput(
            &thr(),
            &eff(),
            AllocShape::single(),
            BatchLimits::new(128.0, 4096.0),
        )
        .unwrap();
        assert!(p.goodput > 0.0);
        assert!(p.total_bsz >= 128.0 - 1e-9 && p.total_bsz <= 4096.0 + 1e-9);
        assert!(p.local_bsz <= 256.0 + 1e-9);
        assert!((p.goodput - p.throughput * p.efficiency).abs() < 1e-9);
    }

    #[test]
    fn goodput_increases_with_gpus_for_scalable_job() {
        let limits = BatchLimits::new(128.0, 8192.0);
        let g1 = optimize_goodput(&thr(), &eff(), AllocShape::single(), limits)
            .unwrap()
            .goodput;
        let g4 = optimize_goodput(&thr(), &eff(), AllocShape::local(4), limits)
            .unwrap()
            .goodput;
        assert!(g4 > g1);
        assert!(g4 < 4.0 * g1, "statistical efficiency must bite");
    }

    #[test]
    fn accumulation_used_when_memory_binds() {
        // Tiny GPU memory forces accumulation to reach the minimum batch.
        let mut t = thr();
        t.max_local_bsz = 32.0;
        let p = optimize_goodput(
            &t,
            &eff(),
            AllocShape::single(),
            BatchLimits::new(128.0, 512.0),
        )
        .unwrap();
        assert!(p.accum_steps >= 3, "needs >= 4 waves of 32 to reach 128");
        assert!(p.total_bsz >= 128.0 - 1e-6);
    }

    #[test]
    fn infeasible_when_min_batch_unreachable() {
        let mut t = thr();
        t.max_local_bsz = 1.0;
        // 1 GPU x 1 sample x 16 waves = 16 < required 1000.
        let p = optimize_goodput(
            &t,
            &eff(),
            AllocShape::single(),
            BatchLimits::new(1000.0, 2000.0),
        );
        assert!(p.is_none());
    }

    #[test]
    fn infeasible_when_replicas_exceed_max_batch() {
        // 64 replicas at batch >= 1 each => total >= 64 > max 32.
        let p = optimize_goodput(
            &thr(),
            &eff(),
            AllocShape::dist(64),
            BatchLimits::new(16.0, 32.0),
        );
        assert!(p.is_none());
    }

    #[test]
    fn fixed_batch_strong_scaling() {
        let limits = BatchLimits::fixed(512.0);
        let p = optimize_goodput(&thr(), &eff(), AllocShape::local(4), limits).unwrap();
        assert!((p.total_bsz - 512.0).abs() / 512.0 < 0.01);
        // Efficiency at the fixed batch is what it is; goodput tracks
        // throughput.
        assert!((p.efficiency - eff().efficiency(512.0)).abs() < 1e-6);
    }

    #[test]
    fn larger_memory_gpu_reaches_higher_goodput() {
        // Same compute speed, more memory => at least as good.
        let small = thr();
        let mut big = thr();
        big.max_local_bsz = 1024.0;
        let limits = BatchLimits::new(128.0, 8192.0);
        let gs = optimize_goodput(&small, &eff(), AllocShape::local(2), limits)
            .unwrap()
            .goodput;
        let gb = optimize_goodput(&big, &eff(), AllocShape::local(2), limits)
            .unwrap()
            .goodput;
        assert!(gb >= gs * (1.0 - 1e-6));
    }
}
