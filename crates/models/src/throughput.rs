//! The per-(job, GPU type) iteration-time / throughput model.
//!
//! Following Pollux (OSDI '21), which Sia reuses and extends, one training
//! iteration on `k` data-parallel replicas with per-replica batch `m` and
//! `s` gradient-accumulation steps costs
//!
//! ```text
//! T_grad(m)      = alpha_c + beta_c * m
//! T_sync(k)      = 0                                   if k == 1
//!                = alpha_n + beta_n * max(0, k - 2)    co-located replicas
//!                = alpha_d + beta_d * max(0, k - 2)    replicas across nodes
//! T_iter(k,m,s)  = s * T_grad + (T_grad^gamma + T_sync^gamma)^(1/gamma)
//! ```
//!
//! `gamma >= 1` models the partial overlap of computation and gradient
//! synchronisation (`gamma = 1`: no overlap; `gamma -> inf`: full overlap).
//! Throughput in samples/second is `k * m * (s + 1) / T_iter`.

/// Shape of an allocation as seen by the throughput model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocShape {
    /// Number of data-parallel replicas (= GPUs for pure data parallelism).
    pub replicas: usize,
    /// Whether the replicas span more than one node.
    pub distributed: bool,
}

impl AllocShape {
    /// Single-GPU allocation.
    pub fn single() -> Self {
        AllocShape {
            replicas: 1,
            distributed: false,
        }
    }

    /// `k` replicas, co-located on one node.
    pub fn local(k: usize) -> Self {
        AllocShape {
            replicas: k,
            distributed: false,
        }
    }

    /// `k` replicas spanning multiple nodes.
    pub fn dist(k: usize) -> Self {
        AllocShape {
            replicas: k,
            distributed: true,
        }
    }
}

/// Parameters of the iteration-time model for one `(job, GPU type)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputParams {
    /// Fixed per-iteration compute overhead (seconds).
    pub alpha_c: f64,
    /// Per-sample compute time (seconds/sample) on this GPU type.
    pub beta_c: f64,
    /// Base all-reduce cost for co-located replicas (seconds).
    pub alpha_n: f64,
    /// Marginal all-reduce cost per extra co-located replica (seconds).
    pub beta_n: f64,
    /// Base all-reduce cost across nodes (seconds).
    pub alpha_d: f64,
    /// Marginal all-reduce cost per extra replica across nodes (seconds).
    pub beta_d: f64,
    /// Compute/communication overlap exponent (`>= 1`).
    pub gamma: f64,
    /// Maximum per-GPU batch size that fits this GPU type's memory.
    pub max_local_bsz: f64,
}

impl ThroughputParams {
    /// Gradient-computation time for a per-replica batch of `m` samples.
    pub fn t_grad(&self, m: f64) -> f64 {
        self.alpha_c + self.beta_c * m
    }

    /// Gradient-synchronisation time for the given allocation shape.
    pub fn t_sync(&self, shape: AllocShape) -> f64 {
        if shape.replicas <= 1 {
            return 0.0;
        }
        let extra = (shape.replicas as f64 - 2.0).max(0.0);
        if shape.distributed {
            self.alpha_d + self.beta_d * extra
        } else {
            self.alpha_n + self.beta_n * extra
        }
    }

    /// Time of one training iteration with `s` gradient-accumulation steps.
    ///
    /// With `s > 0`, the first `s` micro-steps compute gradients locally and
    /// only the final step synchronises.
    pub fn t_iter(&self, shape: AllocShape, m: f64, accum_steps: u32) -> f64 {
        let tg = self.t_grad(m);
        let ts = self.t_sync(shape);
        let g = self.gamma.max(1.0);
        let overlap = (tg.powf(g) + ts.powf(g)).powf(1.0 / g);
        accum_steps as f64 * tg + overlap
    }

    /// Samples processed per second at `(shape, m, s)`.
    pub fn throughput(&self, shape: AllocShape, m: f64, accum_steps: u32) -> f64 {
        let total_batch = shape.replicas as f64 * m * (accum_steps as f64 + 1.0);
        total_batch / self.t_iter(shape, m, accum_steps)
    }

    /// Returns params validated for basic sanity (all finite, non-negative
    /// where required).
    pub fn is_valid(&self) -> bool {
        let vals = [
            self.alpha_c,
            self.beta_c,
            self.alpha_n,
            self.beta_n,
            self.alpha_d,
            self.beta_d,
            self.gamma,
            self.max_local_bsz,
        ];
        vals.iter().all(|v| v.is_finite() && *v >= 0.0)
            && self.beta_c > 0.0
            && self.gamma >= 1.0
            && self.max_local_bsz >= 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ThroughputParams {
        ThroughputParams {
            alpha_c: 0.05,
            beta_c: 0.002,
            alpha_n: 0.02,
            beta_n: 0.005,
            alpha_d: 0.10,
            beta_d: 0.02,
            gamma: 3.0,
            max_local_bsz: 256.0,
        }
    }

    #[test]
    fn single_gpu_has_no_sync_cost() {
        let p = params();
        assert_eq!(p.t_sync(AllocShape::single()), 0.0);
        let t = p.t_iter(AllocShape::single(), 100.0, 0);
        assert!((t - (0.05 + 0.2)).abs() < 1e-12);
    }

    #[test]
    fn distributed_sync_costs_more_than_local() {
        let p = params();
        assert!(p.t_sync(AllocShape::dist(4)) > p.t_sync(AllocShape::local(4)));
    }

    #[test]
    fn sync_grows_with_replicas() {
        let p = params();
        assert!(p.t_sync(AllocShape::local(8)) > p.t_sync(AllocShape::local(2)));
    }

    #[test]
    fn throughput_scales_sublinearly() {
        let p = params();
        let t1 = p.throughput(AllocShape::single(), 128.0, 0);
        let t4 = p.throughput(AllocShape::local(4), 128.0, 0);
        let t8 = p.throughput(AllocShape::dist(8), 128.0, 0);
        assert!(t4 > t1, "more replicas must help at fixed per-GPU batch");
        assert!(t4 < 4.0 * t1, "scaling cannot be superlinear");
        assert!(t8 > t4);
        assert!(t8 < 8.0 * t1);
    }

    #[test]
    fn accumulation_amortizes_sync() {
        // With accumulation, effective samples/sec at the same total batch
        // improves when sync dominates.
        let mut p = params();
        p.alpha_d = 1.0; // expensive sync
        let shape = AllocShape::dist(4);
        // Total batch 512: either m=128,s=0 or m=64,s=1.
        let thr_no_accum = p.throughput(shape, 128.0, 0);
        let thr_accum = p.throughput(shape, 64.0, 1);
        // Both process the same total batch; accumulation pays sync once but
        // computes in two waves, so relative benefit depends on overlap. At
        // minimum the model must be internally consistent: throughput equals
        // total batch / iter time.
        let tb = 4.0 * 64.0 * 2.0;
        assert!((thr_accum - tb / p.t_iter(shape, 64.0, 1)).abs() < 1e-9);
        assert!(thr_no_accum > 0.0);
    }

    #[test]
    fn gamma_controls_overlap() {
        let mut p = params();
        let shape = AllocShape::dist(8);
        p.gamma = 1.0;
        let no_overlap = p.t_iter(shape, 128.0, 0);
        p.gamma = 10.0;
        let overlap = p.t_iter(shape, 128.0, 0);
        assert!(overlap < no_overlap);
        // Full overlap approaches max(tg, ts).
        let tg = p.t_grad(128.0);
        let ts = p.t_sync(shape);
        assert!(overlap >= tg.max(ts) - 1e-9);
    }

    #[test]
    fn validation_rejects_bad_params() {
        let mut p = params();
        assert!(p.is_valid());
        p.beta_c = 0.0;
        assert!(!p.is_valid());
        p.beta_c = 0.001;
        p.gamma = 0.5;
        assert!(!p.is_valid());
    }
}
