//! Read-only stats listener: `GET /metrics` and `GET /healthz` over a
//! Unix domain socket or a loopback TCP port.
//!
//! The listener runs on its own thread and answers every request from the
//! shared [`Observe`] handle — it never touches the single-threaded
//! [`crate::Server`], so scraping cannot block or reorder command
//! handling. Responses are minimal HTTP/1.0 with `Connection: close`;
//! both `curl --unix-socket` and a plain `curl http://127.0.0.1:PORT`
//! work as scrapers.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::observe::{self, Observe};

/// Content type of Prometheus text exposition format 0.0.4.
const EXPOSITION_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Largest request head (request line + headers) the listener reads.
const MAX_REQUEST_BYTES: usize = 8192;

/// A running stats listener. Dropping the handle leaves the thread
/// serving until process exit; call [`StatsHandle::stop`] for an orderly
/// teardown (tests do; the daemon normally just exits).
pub struct StatsHandle {
    /// Human-readable endpoint (socket path or `host:port`) for logs.
    pub endpoint: String,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    unix_path: Option<PathBuf>,
    tcp_addr: Option<std::net::SocketAddr>,
}

impl StatsHandle {
    /// Signals the accept loop to exit, unblocks it with a dummy
    /// connection, and joins the thread. Removes a Unix socket file.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // The accept call is blocking; poke it so it observes the flag.
        if let Some(addr) = self.tcp_addr {
            let _ = std::net::TcpStream::connect(addr);
        }
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = std::os::unix::net::UnixStream::connect(path);
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Binds a loopback-style TCP stats listener on `addr` (e.g.
/// `127.0.0.1:9464`; port 0 picks a free port) and serves it on a new
/// thread. The bound address is in the returned handle.
pub fn spawn_tcp(addr: &str, observe: Arc<Observe>) -> std::io::Result<StatsHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("sia-stats-tcp".to_string())
        .spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if flag.load(Ordering::Relaxed) {
                            break;
                        }
                        let _ = serve_conn(stream, &observe);
                    }
                    Err(_) => break,
                }
            }
        })?;
    Ok(StatsHandle {
        endpoint: bound.to_string(),
        stop,
        thread: Some(thread),
        unix_path: None,
        tcp_addr: Some(bound),
    })
}

/// Binds a Unix-domain stats listener at `path` (replacing any stale
/// socket file) and serves it on a new thread.
#[cfg(unix)]
pub fn spawn_unix(path: &Path, observe: Arc<Observe>) -> std::io::Result<StatsHandle> {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("sia-stats-unix".to_string())
        .spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if flag.load(Ordering::Relaxed) {
                            break;
                        }
                        let _ = serve_conn(stream, &observe);
                    }
                    Err(_) => break,
                }
            }
        })?;
    Ok(StatsHandle {
        endpoint: path.display().to_string(),
        stop,
        thread: Some(thread),
        unix_path: Some(path.to_path_buf()),
        tcp_addr: None,
    })
}

/// Answers one connection: read the request head, dispatch on the path,
/// write one response, close.
fn serve_conn<S: Read + Write>(mut stream: S, observe: &Observe) -> std::io::Result<()> {
    let head = read_request_head(&mut stream)?;
    let path = match parse_get_path(&head) {
        Some(p) => p,
        None => {
            return respond(
                &mut stream,
                "400 Bad Request",
                "text/plain; charset=utf-8",
                "bad request: expected GET <path> HTTP/1.x\n",
            );
        }
    };
    match path.as_str() {
        "/metrics" => {
            observe::record_scrape("/metrics");
            let body = observe.render_metrics();
            respond(&mut stream, "200 OK", EXPOSITION_CONTENT_TYPE, &body)
        }
        "/healthz" => {
            observe::record_scrape("/healthz");
            let (ready, body) = observe.health();
            let status = if ready {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            let mut body = serde_json::to_string(&body).unwrap_or_else(|_| "{}".to_string());
            body.push('\n');
            respond(&mut stream, status, "application/json", &body)
        }
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found: try /metrics or /healthz\n",
        ),
    }
}

/// Reads until the blank line ending the request head (or EOF, or the
/// size cap — scrapers send tiny requests).
fn read_request_head<S: Read>(stream: &mut S) -> std::io::Result<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// Extracts the path of a `GET <path> HTTP/1.x` request line, dropping
/// any query string.
fn parse_get_path(head: &str) -> Option<String> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let target = parts.next()?;
    Some(
        target
            .split_once('?')
            .map(|(p, _)| p)
            .unwrap_or(target)
            .to_string(),
    )
}

/// Writes one minimal HTTP/1.0 response and flushes.
fn respond<S: Write>(
    stream: &mut S,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_sim::RoundWatch;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn scrape(addr: &std::net::SocketAddr, path: &str) -> (String, String) {
        let mut conn = TcpStream::connect(addr).unwrap();
        write!(conn, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        let mut reader = BufReader::new(conn);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut body = String::new();
        let mut in_body = false;
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap() > 0 {
            if in_body {
                body.push_str(&line);
            } else if line.trim().is_empty() {
                in_body = true;
            }
            line.clear();
        }
        (status.trim().to_string(), body)
    }

    #[test]
    fn tcp_listener_answers_metrics_health_and_404() {
        let observe = Arc::new(Observe::new(RoundWatch::default(), None, false));
        let handle = spawn_tcp("127.0.0.1:0", Arc::clone(&observe)).unwrap();
        let addr = handle.tcp_addr.unwrap();

        let (status, body) = scrape(&addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("sia_serve_uptime_seconds"), "{body}");
        sia_telemetry::registry::parse_exposition(&body).expect("valid exposition");

        let (status, body) = scrape(&addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"ready\":true"), "{body}");

        let (status, _) = scrape(&addr, "/nope");
        assert!(status.contains("404"), "{status}");

        // Draining flips /healthz to 503 while /metrics keeps serving.
        observe.set_draining();
        let (status, body) = scrape(&addr, "/healthz");
        assert!(status.contains("503"), "{status}");
        assert!(body.contains("\"ready\":false"), "{body}");
        let (status, _) = scrape(&addr, "/metrics");
        assert!(status.contains("200"), "{status}");

        handle.stop();
    }

    #[cfg(unix)]
    #[test]
    fn unix_listener_answers_and_cleans_up() {
        use std::os::unix::net::UnixStream;
        let path = std::env::temp_dir().join(format!("sia-stats-test-{}.sock", std::process::id()));
        let observe = Arc::new(Observe::new(RoundWatch::default(), None, false));
        let handle = spawn_unix(&path, observe).unwrap();

        let mut conn = UnixStream::connect(&path).unwrap();
        write!(conn, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut text = String::new();
        conn.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.0 200"), "{text}");
        assert!(text.contains("sia_serve_uptime_seconds"), "{text}");

        handle.stop();
        assert!(!path.exists(), "socket file must be removed on stop");
    }

    #[test]
    fn parse_get_path_handles_queries_and_garbage() {
        assert_eq!(
            parse_get_path("GET /metrics HTTP/1.1\r\n").as_deref(),
            Some("/metrics")
        );
        assert_eq!(
            parse_get_path("GET /healthz?verbose=1 HTTP/1.0\r\n").as_deref(),
            Some("/healthz")
        );
        assert!(parse_get_path("POST /metrics HTTP/1.1\r\n").is_none());
        assert!(parse_get_path("").is_none());
    }
}
