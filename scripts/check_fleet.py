#!/usr/bin/env python3
"""Validate canonical FLEET_*.json payloads produced by `sia-cli fleet`.

Usage:
    check_fleet.py OUT_DIR [--expect-runs N] [--expect-cells N]

Checks, per FLEET_*.json file in OUT_DIR:
  - the document is versioned (version == 1) and names its fleet and cell;
  - run accounting adds up: runs == seed_count from the embedded spec,
    completed runs == runs - failed_runs, and the failed[] manifest has
    exactly failed_runs entries, each carrying repro coordinates
    (cell slug + seed);
  - every metric block is internally consistent: n matches completed
    runs, std >= 0, both CI variants bracket their point estimate
    (ci95_lo <= mean <= ci95_hi, boot_ci95_lo <= mean <= boot_ci95_hi),
    the CI collapses to the mean when n < 2, and median/p95 are finite;
  - no wall-clock contamination: the canonical payload must not contain
    any key mentioning wall time (determinism contract — byte-identical
    output regardless of worker count or machine speed).

With --expect-runs / --expect-cells, also checks fleet-level totals so CI
catches a silently truncated sweep.

Exits 0 when all checks pass, 1 with a message per violation otherwise.
No third-party dependencies.
"""

import json
import math
import sys
from pathlib import Path


def finite(x):
    return isinstance(x, (int, float)) and math.isfinite(x)


def walk_keys(node, prefix=""):
    if isinstance(node, dict):
        for k, v in node.items():
            yield f"{prefix}.{k}" if prefix else k
            yield from walk_keys(v, f"{prefix}.{k}" if prefix else k)
    elif isinstance(node, list):
        for i, v in enumerate(node):
            yield from walk_keys(v, f"{prefix}[{i}]")


def check_metric(where, name, m, completed, errors):
    for field in ("n", "mean", "std", "ci95_lo", "ci95_hi",
                  "boot_ci95_lo", "boot_ci95_hi", "median", "p95"):
        if field not in m:
            errors.append(f"{where}: metric {name} missing field {field}")
            return
    if m["n"] != completed:
        errors.append(
            f"{where}: metric {name} n {m['n']} != completed runs {completed}")
    if not all(finite(m[f]) for f in ("mean", "std", "median", "p95")):
        errors.append(f"{where}: metric {name} has non-finite statistics")
        return
    if m["std"] < 0:
        errors.append(f"{where}: metric {name} std {m['std']} < 0")
    for lo, hi, kind in (
        (m["ci95_lo"], m["ci95_hi"], "normal"),
        (m["boot_ci95_lo"], m["boot_ci95_hi"], "bootstrap"),
    ):
        eps = 1e-9 * max(1.0, abs(m["mean"]))
        if not (lo - eps <= m["mean"] <= hi + eps):
            errors.append(
                f"{where}: metric {name} {kind} CI [{lo}, {hi}] "
                f"does not bracket mean {m['mean']}")
    if m["n"] < 2 and (m["ci95_lo"] != m["mean"] or m["ci95_hi"] != m["mean"]):
        errors.append(
            f"{where}: metric {name} n={m['n']} but normal CI not collapsed")


def check_file(path, errors):
    """Returns (runs, failed_runs) for fleet-level accounting."""
    where = path.name
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{where}: unreadable ({e})")
        return 0, 0
    if doc.get("version") != 1:
        errors.append(f"{where}: version {doc.get('version')!r} != 1")
    for key in ("fleet", "cell", "spec", "runs", "failed_runs", "failed", "metrics"):
        if key not in doc:
            errors.append(f"{where}: missing top-level key {key}")
            return 0, 0

    runs, failed = doc["runs"], doc["failed_runs"]
    seed_count = doc["spec"].get("seed_count")
    if runs != seed_count:
        errors.append(f"{where}: runs {runs} != spec seed_count {seed_count}")
    if len(doc["failed"]) != failed:
        errors.append(
            f"{where}: failed manifest has {len(doc['failed'])} entries, "
            f"failed_runs says {failed}")
    for entry in doc["failed"]:
        if not all(k in entry for k in ("cell", "seed", "error")):
            errors.append(f"{where}: failed entry lacks repro coordinates: {entry}")
    completed = runs - failed

    metrics = doc["metrics"]
    if completed > 0 and not metrics:
        errors.append(f"{where}: completed runs but no metrics")
    for name, m in metrics.items():
        check_metric(where, name, m, completed, errors)

    wall_keys = [k for k in walk_keys(doc) if "wall" in k.lower()]
    if wall_keys:
        errors.append(f"{where}: wall-clock contamination in keys {wall_keys}")
    return runs, failed


def main(argv):
    args = list(argv[1:])
    expect_runs = expect_cells = None
    if "--expect-runs" in args:
        i = args.index("--expect-runs")
        expect_runs = int(args[i + 1])
        del args[i:i + 2]
    if "--expect-cells" in args:
        i = args.index("--expect-cells")
        expect_cells = int(args[i + 1])
        del args[i:i + 2]
    if len(args) != 1:
        print(__doc__.strip().splitlines()[0])
        print(f"usage: {argv[0]} OUT_DIR [--expect-runs N] [--expect-cells N]")
        return 2

    out_dir = Path(args[0])
    files = sorted(out_dir.glob("FLEET_*.json"))
    errors = []
    if not files:
        errors.append(f"{out_dir}: no FLEET_*.json files found")
    total_runs = total_failed = 0
    for path in files:
        runs, failed = check_file(path, errors)
        total_runs += runs
        total_failed += failed
    if expect_cells is not None and len(files) != expect_cells:
        errors.append(f"{out_dir}: {len(files)} cells, expected {expect_cells}")
    if expect_runs is not None and total_runs != expect_runs:
        errors.append(f"{out_dir}: {total_runs} runs, expected {expect_runs}")
    if total_failed:
        errors.append(f"{out_dir}: {total_failed} failed runs (manifests above)")

    for e in errors:
        print(f"FAIL: {e}")
    if errors:
        return 1
    print(
        f"OK: {len(files)} cells, {total_runs} runs, 0 failed; "
        "all payloads canonical and consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
