//! Shockwave (NSDI '23), simplified: efficient *and* fair scheduling of
//! rigid jobs.
//!
//! The real Shockwave plans schedules over a future window using
//! market-theoretic dynamic-adaptation forecasts. This reproduction keeps
//! its observable scheduling behaviour — round-based replanning for rigid
//! (TunedJobs) workloads that balances finish-time fairness against
//! cluster efficiency and avoids gratuitous churn — with a simplified
//! scoring rule (see DESIGN.md):
//!
//! * each round, every job gets a score combining its projected
//!   finish-time-fairness deficit `rho` with its per-GPU efficiency;
//! * currently-running jobs receive a retention bonus, so the planner only
//!   preempts when a waiting job's deficit is substantially larger
//!   (penalizing restart-heavy schedules, which also bounds makespan
//!   inflation);
//! * allocation is greedy by score, whole-demand-or-nothing.

use sia_cluster::{ClusterSpec, ClusterView};
use sia_sim::{AllocationMap, JobView, Scheduler};

use crate::util::{point_for, rigid_demand, LooseFree};

/// Tunables for the simplified Shockwave.
#[derive(Debug, Clone)]
pub struct ShockwaveConfig {
    /// Round duration, seconds (paper default for Shockwave: 360 s).
    pub round_duration: f64,
    /// Exponent on the fairness deficit in the score.
    pub fairness_weight: f64,
    /// Exponent on per-GPU efficiency in the score.
    pub efficiency_weight: f64,
    /// Multiplicative retention bonus for currently-running jobs.
    pub retention_bonus: f64,
}

impl Default for ShockwaveConfig {
    fn default() -> Self {
        ShockwaveConfig {
            round_duration: 360.0,
            fairness_weight: 1.0,
            efficiency_weight: 0.5,
            retention_bonus: 1.5,
        }
    }
}

/// The simplified Shockwave policy.
#[derive(Debug, Clone, Default)]
pub struct ShockwavePolicy {
    cfg: ShockwaveConfig,
}

impl ShockwavePolicy {
    /// Creates the policy with explicit configuration.
    pub fn new(cfg: ShockwaveConfig) -> Self {
        ShockwavePolicy { cfg }
    }
}

/// Estimates a job's finish-time-fairness deficit: the ratio of its
/// projected completion time (if given resources now and kept) to its
/// isolated completion time. `>= 1`, grows while the job waits.
pub fn ftf_deficit(view: &JobView<'_>, spec: &ClusterSpec) -> f64 {
    let demand = rigid_demand(view);
    // Heterogeneity-unaware: average goodput across types.
    let mut rates = Vec::new();
    for t in spec.gpu_types() {
        if let Some(p) = point_for(view, spec, t, demand) {
            if p.goodput > 0.0 {
                rates.push(p.goodput);
            }
        }
    }
    if rates.is_empty() {
        return 1.0;
    }
    let rate = rates.iter().sum::<f64>() / rates.len() as f64;
    let isolated = view.spec.work_target / rate;
    let remaining = (1.0 - view.progress).max(0.0) * view.spec.work_target;
    let projected = view.age + remaining / rate;
    (projected / isolated.max(1.0)).max(1.0)
}

impl Scheduler for ShockwavePolicy {
    fn name(&self) -> &'static str {
        "shockwave"
    }

    fn round_duration(&self) -> f64 {
        self.cfg.round_duration
    }

    fn schedule(
        &mut self,
        _now: f64,
        jobs: &[JobView<'_>],
        cluster: &ClusterView,
    ) -> AllocationMap {
        let _span = sia_telemetry::span("baseline.shockwave.schedule");
        sia_telemetry::counter("baseline.shockwave.rounds").incr();
        let spec = cluster.spec();
        let mut scored: Vec<(f64, usize)> = jobs
            .iter()
            .enumerate()
            .map(|(i, view)| {
                let rho = ftf_deficit(view, spec);
                let demand = rigid_demand(view).max(1);
                let eff = spec
                    .gpu_types()
                    .filter_map(|t| point_for(view, spec, t, demand))
                    .map(|p| p.goodput / demand as f64)
                    .fold(0.0_f64, f64::max);
                let mut score = rho.powf(self.cfg.fairness_weight)
                    * (1.0 + eff).powf(self.cfg.efficiency_weight);
                if !view.current.is_empty() {
                    score *= self.cfg.retention_bonus;
                }
                (score, i)
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

        let mut free = LooseFree::for_view(cluster);
        let mut out = AllocationMap::new();
        for &(_, i) in &scored {
            let view = &jobs[i];
            let demand = rigid_demand(view);
            // Prefer to keep a running job exactly where it is.
            if !view.current.is_empty() {
                let t = view.current.gpu_type(spec);
                if free.total_of_type(spec, t) >= demand {
                    // Re-take the same slots if still free (they are: we
                    // build from scratch each round).
                    let mut ok = true;
                    let mut trial = free.clone();
                    for &(node, g) in &view.current.slots {
                        if trial.take_on_node(node, g).is_none() {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        free = trial;
                        out.insert(view.id, view.current.clone());
                        continue;
                    }
                }
            }
            // Otherwise: best available type by goodput.
            let mut best = None;
            for t in spec.gpu_types() {
                if free.total_of_type(spec, t) < demand {
                    continue;
                }
                if let Some(p) = point_for(view, spec, t, demand) {
                    match best {
                        Some((g, _)) if g >= p.goodput => {}
                        _ => best = Some((p.goodput, t)),
                    }
                }
            }
            if let Some((_, t)) = best {
                if let Some(p) = free.take(spec, t, demand) {
                    out.insert(view.id, p);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_cluster::{JobId, Placement};
    use sia_models::{BatchLimits, EfficiencyParams, JobEstimator, ThroughputParams};
    use sia_workloads::{Adaptivity, JobSpec, ModelKind, SizeCategory};

    fn params(speed: f64) -> ThroughputParams {
        ThroughputParams {
            alpha_c: 0.05 / speed,
            beta_c: 0.002 / speed,
            alpha_n: 0.02,
            beta_n: 0.005,
            alpha_d: 0.1,
            beta_d: 0.02,
            gamma: 2.5,
            max_local_bsz: 256.0,
        }
    }

    struct Fx {
        specs: Vec<JobSpec>,
        ests: Vec<JobEstimator>,
        curs: Vec<Placement>,
        ages: Vec<f64>,
    }

    impl Fx {
        fn new(n: usize, demand: usize) -> Self {
            let specs = (0..n as u64)
                .map(|i| JobSpec {
                    id: JobId(i),
                    name: format!("j{i}"),
                    model: ModelKind::ResNet18,
                    category: SizeCategory::Small,
                    submit_time: 0.0,
                    adaptivity: Adaptivity::Rigid {
                        batch_size: 512.0,
                        num_gpus: demand,
                    },
                    min_gpus: 1,
                    max_gpus: 64,
                    work_target: 1e7,
                })
                .collect();
            let ests = (0..n)
                .map(|_| {
                    JobEstimator::oracle(
                        vec![params(1.0), params(1.8), params(4.0)],
                        EfficiencyParams::new(2000.0, 128.0),
                        BatchLimits::fixed(512.0),
                    )
                })
                .collect();
            Fx {
                specs,
                ests,
                curs: vec![Placement::empty(); n],
                ages: vec![300.0; n],
            }
        }

        fn views(&self) -> Vec<JobView<'_>> {
            self.specs
                .iter()
                .zip(&self.ests)
                .zip(self.curs.iter().zip(&self.ages))
                .map(|((spec, est), (cur, &age))| JobView {
                    id: spec.id,
                    spec,
                    estimator: est,
                    current: cur,
                    age,
                    restarts: 0,
                    restart_delay: 30.0,
                    progress: 0.1,
                })
                .collect()
        }
    }

    #[test]
    fn allocates_whole_demand_or_nothing() {
        let cluster = ClusterView::new(ClusterSpec::heterogeneous_64());
        let fx = Fx::new(20, 4);
        let mut sw = ShockwavePolicy::default();
        let out = sw.schedule(0.0, &fx.views(), &cluster);
        for p in out.values() {
            assert_eq!(p.total_gpus(), 4);
        }
        let used: usize = out.values().map(|p| p.total_gpus()).sum();
        assert!(used <= 64);
        assert_eq!(out.len(), 16, "work-conserving whole-demand packing");
    }

    #[test]
    fn older_waiting_jobs_win() {
        let cluster = ClusterView::new(ClusterSpec::heterogeneous_64());
        let mut fx = Fx::new(17, 4); // one more than fits
        fx.ages[16] = 50_000.0; // much older job
        let mut sw = ShockwavePolicy::default();
        let out = sw.schedule(0.0, &fx.views(), &cluster);
        assert!(
            out.contains_key(&JobId(16)),
            "the most FTF-starved job must be allocated"
        );
    }

    #[test]
    fn running_jobs_retained() {
        let cluster = ClusterView::new(ClusterSpec::heterogeneous_64());
        let mut fx = Fx::new(16, 4);
        // All 16 running somewhere.
        let mut sw = ShockwavePolicy::default();
        let first = sw.schedule(0.0, &fx.views(), &cluster);
        for (i, s) in fx.specs.iter().enumerate() {
            fx.curs[i] = first.get(&s.id).cloned().unwrap_or_else(Placement::empty);
        }
        let second = sw.schedule(0.0, &fx.views(), &cluster);
        let kept = fx
            .specs
            .iter()
            .filter(|s| first.get(&s.id) == second.get(&s.id))
            .count();
        assert!(kept >= 14, "retention bonus must limit churn: kept {kept}");
    }

    #[test]
    fn deficit_grows_with_waiting() {
        let spec = ClusterSpec::heterogeneous_64();
        let mut fx = Fx::new(1, 4);
        fx.ages[0] = 100.0;
        let young = ftf_deficit(&fx.views()[0], &spec);
        fx.ages[0] = 10_000.0;
        let old = ftf_deficit(&fx.views()[0], &spec);
        assert!(old > young);
        assert!(young >= 1.0);
    }
}
