//! Monte Carlo scenario-fleet runner.
//!
//! Every number under `results/` used to be a single-seed point estimate.
//! This crate turns any `(seed range × workload trace × dynamics script ×
//! policy × cluster scale)` cross product into a *fleet* of independent
//! simulations, executes whole runs concurrently by work-stealing across
//! the deterministic `sia-core::pool` worker model, and folds per-run
//! summaries into streaming per-cell statistics (`sia-metrics::streaming`)
//! so memory stays flat regardless of fleet size:
//!
//! * [`FleetSpec`] — versioned JSONL spec (one scenario group per line)
//!   expanded into scenario *cells* (one per policy × trace × cluster ×
//!   dynamics combination) times a seed range;
//! * [`run_fleet`] — the batch executor: one `Simulator` per run, a
//!   compact [`RunSummary`] handed back (traces dropped immediately),
//!   results folded in run-id order so output never depends on worker
//!   count; a failed run records its exact reproduction coordinate instead
//!   of aborting the fleet;
//! * [`FleetReport`] / [`write_fleet_json`] — one versioned
//!   `FLEET_*.json` per cell carrying mean/median/p95 with 95% confidence
//!   intervals (normal approximation + percentile bootstrap), run counts
//!   and failed-run manifests.
//!
//! Progress streams through `sia-telemetry` (`fleet.runs_started` /
//! `fleet.runs_completed` / `fleet.runs_failed` counters) and an optional
//! `--progress` JSONL heartbeat. Wall-clock lives only in the progress
//! stream and the human summary — the `FLEET_*.json` payload is canonical
//! and byte-identical across reruns and worker counts.

#![forbid(unsafe_code)]

pub mod report;
pub mod runner;
pub mod spec;

pub use report::{cell_json, write_fleet_json};
pub use runner::{
    run_fleet, CellReport, FailedRun, FleetOptions, FleetReport, RunSummary, METRIC_NAMES,
};
pub use spec::{
    cluster_by_name, parse_trace_kind, CellSpec, DynamicsSpec, FleetPolicy, FleetSpec, SeedRange,
};

/// Version tag carried by every `FLEET_*.json` payload; bump on any schema
/// change so downstream consumers can refuse unknown layouts.
pub const FLEET_FORMAT_VERSION: u32 = 1;
