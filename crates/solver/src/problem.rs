//! Sparse LP/MILP model builder.
//!
//! A [`Problem`] collects variables (with objective coefficients and bounds),
//! sparse linear constraints, and optional integrality marks, then hands the
//! model to the [`crate::simplex`] or [`crate::milp`] back-ends.

use crate::error::SolverError;
use crate::milp::{self, MilpOptions, MilpSolution};
use crate::simplex;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Relational operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `row · x <= rhs`
    Le,
    /// `row · x >= rhs`
    Ge,
    /// `row · x == rhs`
    Eq,
}

/// Opaque handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Returns the dense column index of this variable.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A sparse linear constraint `terms · x (op) rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// `(variable, coefficient)` pairs; duplicate variables are summed.
    pub terms: Vec<(VarId, f64)>,
    /// Relational operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A solved LP/MILP point.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Objective value in the problem's own sense.
    pub objective: f64,
    /// Primal values, indexed by [`VarId::index`].
    pub values: Vec<f64>,
    /// Simplex pivots performed to reach this point.
    pub pivots: usize,
}

impl Solution {
    /// Returns the value of `var` in this solution.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }
}

/// A linear (or mixed-integer linear) optimization problem.
///
/// Variables carry their objective coefficient and `[lower, upper]` bounds;
/// constraints are sparse rows. Marking a variable with
/// [`Problem::set_integer`] or adding it via [`Problem::add_binary_var`]
/// turns LP solves into MILP solves (use [`Problem::solve_milp`]).
#[derive(Debug, Clone)]
pub struct Problem {
    sense: Sense,
    objective: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    integer: Vec<bool>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty problem with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            objective: Vec::new(),
            lower: Vec::new(),
            upper: Vec::new(),
            integer: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Returns the optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Returns the number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Returns the number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Returns true if any variable is marked integer.
    pub fn is_mip(&self) -> bool {
        self.integer.iter().any(|&b| b)
    }

    /// Adds a continuous variable with objective coefficient `obj` and
    /// bounds `[lower, upper]`. `upper` may be `f64::INFINITY`; `lower`
    /// must be finite.
    pub fn add_var(&mut self, obj: f64, lower: f64, upper: f64) -> VarId {
        debug_assert!(lower.is_finite(), "lower bound must be finite");
        debug_assert!(lower <= upper, "lower bound must not exceed upper bound");
        let id = VarId(self.objective.len());
        self.objective.push(obj);
        self.lower.push(lower);
        self.upper.push(upper);
        self.integer.push(false);
        id
    }

    /// Adds a binary (0/1 integer) variable with objective coefficient `obj`.
    pub fn add_binary_var(&mut self, obj: f64) -> VarId {
        let id = self.add_var(obj, 0.0, 1.0);
        self.integer[id.0] = true;
        id
    }

    /// Marks an existing variable as integer.
    pub fn set_integer(&mut self, var: VarId) {
        self.integer[var.0] = true;
    }

    /// Returns whether `var` is marked integer.
    pub fn is_integer(&self, var: VarId) -> bool {
        self.integer[var.0]
    }

    /// Overrides the bounds of an existing variable.
    pub fn set_bounds(&mut self, var: VarId, lower: f64, upper: f64) {
        debug_assert!(lower.is_finite() && lower <= upper);
        self.lower[var.0] = lower;
        self.upper[var.0] = upper;
    }

    /// Returns `(lower, upper)` bounds of `var`.
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        (self.lower[var.0], self.upper[var.0])
    }

    /// Adds a general constraint.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], op: ConstraintOp, rhs: f64) {
        debug_assert!(terms.iter().all(|(v, _)| v.0 < self.num_vars()));
        debug_assert!(rhs.is_finite());
        self.constraints.push(Constraint {
            terms: terms.to_vec(),
            op,
            rhs,
        });
    }

    /// Adds `terms · x <= rhs`.
    pub fn add_le(&mut self, terms: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(terms, ConstraintOp::Le, rhs);
    }

    /// Adds `terms · x >= rhs`.
    pub fn add_ge(&mut self, terms: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(terms, ConstraintOp::Ge, rhs);
    }

    /// Adds `terms · x == rhs`.
    pub fn add_eq(&mut self, terms: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(terms, ConstraintOp::Eq, rhs);
    }

    /// Returns the constraint rows.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Returns the objective coefficient vector.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Returns the lower-bound vector.
    pub fn lower_bounds(&self) -> &[f64] {
        &self.lower
    }

    /// Returns the upper-bound vector.
    pub fn upper_bounds(&self) -> &[f64] {
        &self.upper
    }

    /// Returns indices of integer-marked variables.
    pub fn integer_vars(&self) -> Vec<usize> {
        self.integer
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| if b { Some(i) } else { None })
            .collect()
    }

    /// Solves the continuous (LP) relaxation, ignoring integrality marks.
    pub fn solve_lp(&self) -> Result<Solution, SolverError> {
        simplex::solve(self)
    }

    /// Solves the problem respecting integrality marks, with default options.
    pub fn solve_milp(&self) -> Result<MilpSolution, SolverError> {
        milp::solve(self, &MilpOptions::default())
    }

    /// Solves the problem respecting integrality marks, with custom options.
    pub fn solve_milp_with(&self, opts: &MilpOptions) -> Result<MilpSolution, SolverError> {
        milp::solve(self, opts)
    }

    /// Solves the problem respecting integrality marks, optionally seeded
    /// with a warm start from a previous related solve.
    pub fn solve_milp_warm(
        &self,
        opts: &MilpOptions,
        warm: Option<&milp::MilpWarmStart>,
    ) -> Result<MilpSolution, SolverError> {
        milp::solve_warm(self, opts, warm)
    }

    /// Evaluates the objective at a point (in the problem's own sense).
    pub fn eval_objective(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Returns the largest constraint violation at a point (0 if feasible).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst: f64 = 0.0;
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v.0]).sum();
            let viol = match c.op {
                ConstraintOp::Le => lhs - c.rhs,
                ConstraintOp::Ge => c.rhs - lhs,
                ConstraintOp::Eq => (lhs - c.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        for (i, &xi) in x.iter().enumerate() {
            worst = worst.max(self.lower[i] - xi);
            if self.upper[i].is_finite() {
                worst = worst.max(xi - self.upper[i]);
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_vars_and_constraints() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, 10.0);
        let y = p.add_binary_var(2.0);
        p.add_le(&[(x, 1.0), (y, 3.0)], 5.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert!(p.is_mip());
        assert_eq!(p.integer_vars(), vec![1]);
        assert_eq!(p.bounds(y), (0.0, 1.0));
    }

    #[test]
    fn eval_and_violation() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(2.0, 0.0, f64::INFINITY);
        let y = p.add_var(-1.0, 0.0, 1.0);
        p.add_ge(&[(x, 1.0), (y, 1.0)], 2.0);
        let pt = [1.0, 0.5];
        assert!((p.eval_objective(&pt) - 1.5).abs() < 1e-12);
        assert!((p.max_violation(&pt) - 0.5).abs() < 1e-12);
        let feas = [2.0, 0.0];
        assert_eq!(p.max_violation(&feas), 0.0);
    }

    #[test]
    fn set_bounds_overrides() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, 1.0);
        p.set_bounds(x, 0.5, 0.5);
        assert_eq!(p.bounds(x), (0.5, 0.5));
    }
}
