/root/repo/target/release/deps/fig_profiling_modes-d53720ab2d9dd2f8.d: crates/bench/src/bin/fig_profiling_modes.rs

/root/repo/target/release/deps/fig_profiling_modes-d53720ab2d9dd2f8: crates/bench/src/bin/fig_profiling_modes.rs

crates/bench/src/bin/fig_profiling_modes.rs:
