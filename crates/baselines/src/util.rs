//! Shared helpers for baseline schedulers.

use sia_cluster::{ClusterSpec, ClusterView, GpuTypeId, Placement};
use sia_models::{AllocShape, GoodputPoint};
use sia_sim::JobView;

/// Free-GPU tracking with baseline-style (unrestricted) placement: GPUs may
/// be taken from any nodes of a type, splitting allocations arbitrarily.
/// Baselines do not follow Sia's placement rules.
#[derive(Debug, Clone)]
pub struct LooseFree {
    free: Vec<usize>,
}

impl LooseFree {
    /// All GPUs free.
    pub fn all_free(spec: &ClusterSpec) -> Self {
        LooseFree {
            free: spec.nodes().iter().map(|n| n.num_gpus).collect(),
        }
    }

    /// All *placeable* GPUs free: Active nodes carry their capacity,
    /// Draining/Removed nodes carry none, so baseline take paths (which
    /// filter zero-free nodes) never land new work on them.
    pub fn for_view(view: &ClusterView) -> Self {
        LooseFree {
            free: view
                .spec()
                .nodes()
                .iter()
                .map(|n| view.capacity_of(n.id))
                .collect(),
        }
    }

    /// Total free GPUs of a type.
    pub fn total_of_type(&self, spec: &ClusterSpec, t: GpuTypeId) -> usize {
        spec.nodes_of_type(t).map(|n| self.free[n.id]).sum()
    }

    /// Takes `n` GPUs from one specific node, or `None` (unmutated) if the
    /// node lacks them.
    pub fn take_on_node(&mut self, node: usize, n: usize) -> Option<()> {
        if self.free[node] >= n {
            self.free[node] -= n;
            Some(())
        } else {
            None
        }
    }

    /// Takes `n` GPUs of type `t` greedily (fullest nodes first to limit
    /// fragmentation), splitting across nodes as needed. Returns `None`
    /// without mutating when capacity is insufficient.
    pub fn take(&mut self, spec: &ClusterSpec, t: GpuTypeId, n: usize) -> Option<Placement> {
        if n == 0 || self.total_of_type(spec, t) < n {
            return None;
        }
        let mut nodes: Vec<usize> = spec
            .nodes_of_type(t)
            .filter(|nd| self.free[nd.id] > 0)
            .map(|nd| nd.id)
            .collect();
        // Prefer nodes that can hold the whole remainder; otherwise drain
        // the fullest nodes first.
        nodes.sort_by_key(|&id| std::cmp::Reverse(self.free[id]));
        let mut remaining = n;
        let mut slots = Vec::new();
        for id in nodes {
            if remaining == 0 {
                break;
            }
            let take = self.free[id].min(remaining);
            self.free[id] -= take;
            slots.push((id, take));
            remaining -= take;
        }
        debug_assert_eq!(remaining, 0);
        Some(Placement::new(slots))
    }
}

/// Evaluates a job's operating point for `n` GPUs of type `t`, deriving the
/// allocation shape from the cluster's per-node GPU count.
pub fn point_for(
    view: &JobView<'_>,
    spec: &ClusterSpec,
    t: GpuTypeId,
    n: usize,
) -> Option<GoodputPoint> {
    if n == 0 {
        return None;
    }
    let per = view.gpus_per_replica(spec, t)?;
    if !n.is_multiple_of(per) {
        return None;
    }
    let replicas = n / per;
    let r = spec.gpus_per_node_of_type(t);
    let shape = if replicas == 1 {
        AllocShape::single()
    } else if n <= r {
        AllocShape::local(replicas)
    } else {
        AllocShape::dist(replicas)
    };
    view.estimator.estimate(t, shape)
}

/// The GPU type a job currently runs on, if any.
pub fn current_type(view: &JobView<'_>, spec: &ClusterSpec) -> Option<GpuTypeId> {
    if view.current.is_empty() {
        None
    } else {
        Some(view.current.gpu_type(spec))
    }
}

/// The rigid `(batch, GPU count)` of a job, falling back to `(min batch,
/// 1 GPU)` for non-rigid jobs handed to an inelastic scheduler.
pub fn rigid_demand(view: &JobView<'_>) -> usize {
    match view.spec.adaptivity {
        sia_workloads::Adaptivity::Rigid { num_gpus, .. } => num_gpus,
        _ => view.spec.min_gpus.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loose_take_splits_across_nodes() {
        let spec = ClusterSpec::homogeneous_64(); // 16 nodes x 4 GPUs
        let t = GpuTypeId(0);
        let mut free = LooseFree::all_free(&spec);
        let p = free.take(&spec, t, 10).unwrap();
        assert_eq!(p.total_gpus(), 10);
        assert!(p.num_nodes() >= 3);
        assert_eq!(free.total_of_type(&spec, t), 54);
    }

    #[test]
    fn loose_take_fails_without_capacity() {
        let spec = ClusterSpec::homogeneous_64();
        let t = GpuTypeId(0);
        let mut free = LooseFree::all_free(&spec);
        assert!(free.take(&spec, t, 65).is_none());
        assert_eq!(free.total_of_type(&spec, t), 64); // unchanged
    }

    #[test]
    fn loose_take_prefers_full_nodes() {
        let spec = ClusterSpec::homogeneous_64();
        let t = GpuTypeId(0);
        let mut free = LooseFree::all_free(&spec);
        free.take(&spec, t, 2).unwrap(); // fragments one node
        let p = free.take(&spec, t, 4).unwrap();
        assert_eq!(p.num_nodes(), 1, "whole allocation on one full node");
    }
}

#[cfg(test)]
mod current_type_tests {
    use super::*;
    use sia_cluster::JobId;
    use sia_models::{BatchLimits, EfficiencyParams, JobEstimator, ThroughputParams};
    use sia_workloads::{Adaptivity, JobSpec, ModelKind, SizeCategory};

    #[test]
    fn current_type_tracks_placement() {
        let spec = ClusterSpec::heterogeneous_64();
        let job = JobSpec {
            id: JobId(0),
            name: "j".into(),
            model: ModelKind::ResNet18,
            category: SizeCategory::Small,
            submit_time: 0.0,
            adaptivity: Adaptivity::Adaptive,
            min_gpus: 1,
            max_gpus: 8,
            work_target: 1.0,
        };
        let est = JobEstimator::oracle(
            vec![
                ThroughputParams {
                    alpha_c: 0.1,
                    beta_c: 0.01,
                    alpha_n: 0.0,
                    beta_n: 0.0,
                    alpha_d: 0.0,
                    beta_d: 0.0,
                    gamma: 1.0,
                    max_local_bsz: 64.0,
                };
                3
            ],
            EfficiencyParams::new(10.0, 8.0),
            BatchLimits::new(8.0, 64.0),
        );
        let queued = Placement::empty();
        let view = JobView {
            id: job.id,
            spec: &job,
            estimator: &est,
            current: &queued,
            age: 0.0,
            restarts: 0,
            restart_delay: 25.0,
            progress: 0.0,
        };
        assert_eq!(current_type(&view, &spec), None);
        let running = Placement::new(vec![(0, 2)]); // node 0 is t4
        let view = JobView {
            current: &running,
            ..view
        };
        assert_eq!(current_type(&view, &spec), spec.gpu_type_by_name("t4"));
    }
}
