//! Stochastic script generators.
//!
//! Both generators produce an ordinary [`DynamicsScript`] — all randomness
//! is spent at *generation* time from named `sia-events` RNG streams, so
//! the resulting timeline is a plain deterministic script: same seed, same
//! script, byte-identical simulations on both engines.

use rand::Rng;
use sia_cluster::ClusterSpec;
use sia_events::{exp_sample, StreamRngs};

use crate::script::{CapacityEvent, DynamicsScript};

/// Poisson node churn: node kills arrive as a Poisson process with
/// `rate_per_hour` (cluster-wide), each striking a uniformly random GPU
/// type (weighted by node count) and coming back `repair_secs` later as an
/// add of the same shape. Draws come from the `"dynamics.churn"` stream of
/// `seed`, so churn never perturbs engine or failure randomness.
pub fn poisson_churn(
    spec: &ClusterSpec,
    seed: u64,
    rate_per_hour: f64,
    repair_secs: f64,
    horizon_secs: f64,
) -> DynamicsScript {
    let mut rngs = StreamRngs::new(seed);
    let rng = rngs.stream("dynamics.churn");
    let lambda = rate_per_hour / 3600.0;
    let mut script = DynamicsScript::new();
    let mut t = 0.0f64;
    loop {
        t += exp_sample(rng, lambda);
        if !t.is_finite() || t >= horizon_secs {
            break;
        }
        // Node-count-weighted type choice.
        let total = spec.nodes().len();
        let pick = rng.random_range(0..total);
        let node = spec.nodes()[pick];
        let name = spec.kind(node.gpu_type).name.clone();
        script = script.at(
            t,
            CapacityEvent::Remove {
                gpu_type: name.clone(),
                num_nodes: 1,
            },
        );
        let back = t + repair_secs;
        if back < horizon_secs {
            script = script.at(
                back,
                CapacityEvent::Add {
                    gpu_type: name,
                    num_nodes: 1,
                    gpus_per_node: node.num_gpus,
                },
            );
        }
    }
    script
}

/// Timing parameters for [`maintenance_windows`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintenanceSchedule {
    /// Seconds between window starts.
    pub period_secs: f64,
    /// Uniform jitter added to each start, up to this many seconds.
    pub jitter_secs: f64,
    /// Drain notice before the node leaves.
    pub grace_secs: f64,
    /// How long the node stays out after the drain completes.
    pub duration_secs: f64,
    /// Generate no windows at or past this time.
    pub horizon_secs: f64,
}

/// Periodic maintenance windows: every `period_secs` (with a uniform
/// jitter of up to `jitter_secs` from the `"dynamics.maintenance"` stream)
/// one node of `gpu_type` is gracefully drained with `grace_secs` notice
/// and re-added `duration_secs` after the drain completes.
pub fn maintenance_windows(
    spec: &ClusterSpec,
    seed: u64,
    gpu_type: &str,
    sched: MaintenanceSchedule,
) -> DynamicsScript {
    let t = spec
        .gpu_type_by_name(gpu_type)
        .unwrap_or_else(|| panic!("unknown GPU type {gpu_type:?}"));
    let gpus_per_node = spec.gpus_per_node_of_type(t);
    let mut rngs = StreamRngs::new(seed);
    let rng = rngs.stream("dynamics.maintenance");
    let mut script = DynamicsScript::new();
    let mut start = sched.period_secs;
    while start < sched.horizon_secs {
        let jitter = if sched.jitter_secs > 0.0 {
            rng.random::<f64>() * sched.jitter_secs
        } else {
            0.0
        };
        let at = start + jitter;
        if at >= sched.horizon_secs {
            break;
        }
        script = script.at(
            at,
            CapacityEvent::Drain {
                gpu_type: gpu_type.to_string(),
                num_nodes: 1,
                grace: sched.grace_secs,
            },
        );
        let back = at + sched.grace_secs + sched.duration_secs;
        if back < sched.horizon_secs {
            script = script.at(
                back,
                CapacityEvent::Add {
                    gpu_type: gpu_type.to_string(),
                    num_nodes: 1,
                    gpus_per_node,
                },
            );
        }
        start += sched.period_secs;
    }
    script
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_churn_is_seed_stable_and_paired() {
        let spec = ClusterSpec::heterogeneous_64();
        let a = poisson_churn(&spec, 7, 2.0, 1800.0, 24.0 * 3600.0);
        let b = poisson_churn(&spec, 7, 2.0, 1800.0, 24.0 * 3600.0);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "2/hour over 24h should produce events");
        let c = poisson_churn(&spec, 8, 2.0, 1800.0, 24.0 * 3600.0);
        assert_ne!(a, c, "different seeds should differ");
        // Every event validates against the source spec.
        a.validate(&spec).unwrap();
        // Kills outnumber or equal adds (adds can fall past the horizon).
        let kills = a.entries().iter().filter(|e| e.event.kind() == "remove");
        let adds = a.entries().iter().filter(|e| e.event.kind() == "add");
        assert!(kills.count() >= adds.count());
    }

    #[test]
    fn maintenance_windows_alternate_drain_and_add() {
        let spec = ClusterSpec::heterogeneous_64();
        let sched = MaintenanceSchedule {
            period_secs: 7200.0,
            jitter_secs: 600.0,
            grace_secs: 300.0,
            duration_secs: 1800.0,
            horizon_secs: 8.0 * 3600.0,
        };
        let s = maintenance_windows(&spec, 3, "t4", sched);
        s.validate(&spec).unwrap();
        assert!(s.len() >= 4);
        assert_eq!(s.entries()[0].event.kind(), "drain");
        let same = maintenance_windows(&spec, 3, "t4", sched);
        assert_eq!(s, same);
    }
}
