/root/repo/target/release/deps/fig2_scaling-451f13e4a0bbe9b7.d: crates/bench/src/bin/fig2_scaling.rs

/root/repo/target/release/deps/fig2_scaling-451f13e4a0bbe9b7: crates/bench/src/bin/fig2_scaling.rs

crates/bench/src/bin/fig2_scaling.rs:
