/root/repo/target/release/deps/fig_failures-66e7d9fc24c9dc56.d: crates/bench/src/bin/fig_failures.rs

/root/repo/target/release/deps/fig_failures-66e7d9fc24c9dc56: crates/bench/src/bin/fig_failures.rs

crates/bench/src/bin/fig_failures.rs:
