/root/repo/target/debug/examples/batch_inference-d58059d0959f4baf.d: examples/batch_inference.rs

/root/repo/target/debug/examples/batch_inference-d58059d0959f4baf: examples/batch_inference.rs

examples/batch_inference.rs:
