//! End-to-end tests for the `sia-serve` daemon and its CLI surface:
//! replay parity with the batch engine, snapshot/kill/restore losslessness
//! through the real binary, the `trace-to-stream` converter, and the
//! mutually-exclusive-flag exit codes.

use std::io::Write;
use std::process::{Command, Stdio};

use serde_json::Value;
use sia::cluster::ClusterSpec;
use sia::core::SiaPolicy;
use sia::sim::{EngineKind, SimConfig, Simulator};
use sia::workloads::{trace_to_stream_jsonl, StreamOptions, Trace, TraceConfig, TraceKind};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sia-cli"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sia_serve_e2e_{}_{name}", std::process::id()))
}

fn small_trace(n: usize) -> Trace {
    let mut trace = Trace::generate(&TraceConfig::new(TraceKind::Philly, 5).with_max_gpus_cap(16));
    trace.jobs.truncate(n);
    for j in &mut trace.jobs {
        j.work_target *= 0.1;
    }
    trace
}

/// Runs `sia-cli serve` with `lines` on stdin and returns (status, stdout).
fn serve_with_input(args: &[&str], lines: &str) -> (std::process::ExitStatus, String) {
    let mut child = cli()
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn sia-cli serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(lines.as_bytes())
        .expect("write stream");
    let out = child.wait_with_output().expect("serve run");
    (out.status, String::from_utf8_lossy(&out.stdout).to_string())
}

#[test]
fn serve_replay_reproduces_the_batch_trace() {
    let trace = small_trace(10);
    // Ground truth: the batch round engine over the identical trace,
    // cluster, seed and config the daemon uses.
    let batch = Simulator::new(
        ClusterSpec::heterogeneous_64(),
        &trace,
        SimConfig {
            engine: EngineKind::Round,
            seed: 1,
            ..SimConfig::default()
        },
    )
    .run(&mut SiaPolicy::default());

    let stream = trace_to_stream_jsonl(&trace, &StreamOptions::default());
    let trace_out = tmp("parity_trace.jsonl");
    let audit_out = tmp("parity_audit.jsonl");
    let (status, stdout) = serve_with_input(
        &[
            "--seed",
            "1",
            "--quiet",
            "--trace-out",
            trace_out.to_str().unwrap(),
            "--trace-format",
            "jsonl",
            "--audit-out",
            audit_out.to_str().unwrap(),
        ],
        &stream,
    );
    assert!(status.success(), "serve failed: {stdout}");
    // Every submission was admitted and completed, tagged with its origin
    // request id.
    for job in &trace.jobs {
        let id = format!("\"id\":\"sub-{}\"", job.id);
        assert!(stdout.contains(&id), "no response tagged {id}");
    }
    assert!(stdout.contains("\"event\":\"shutdown\""));

    let daemon_trace = std::fs::read_to_string(&trace_out).unwrap();
    assert_eq!(
        batch.trace.canonical_jsonl(),
        daemon_trace,
        "daemon flight trace must be byte-identical to the batch engine's"
    );
    let daemon_audit = std::fs::read_to_string(&audit_out).unwrap();
    for line in daemon_audit.lines().take(1) {
        assert!(line.contains("\"ev\":\"meta\""), "audit header missing");
    }
    // The daemon audit additionally carries admission records, so compare
    // only that the batch audit's rounds/decisions are a subsequence.
    let batch_rounds = batch
        .audit
        .canonical_jsonl()
        .lines()
        .filter(|l| l.contains("\"ev\":\"round\""))
        .count();
    let daemon_rounds = daemon_audit
        .lines()
        .filter(|l| l.contains("\"ev\":\"round\""))
        .count();
    assert_eq!(batch_rounds, daemon_rounds);
    std::fs::remove_file(&trace_out).ok();
    std::fs::remove_file(&audit_out).ok();
}

#[test]
fn serve_snapshot_kill_restore_is_lossless_through_the_cli() {
    let trace = small_trace(8);
    let stream = trace_to_stream_jsonl(&trace, &StreamOptions::default());
    let lines: Vec<&str> = stream.lines().collect();
    let cut = 4;

    // Uninterrupted run.
    let full_trace = tmp("full_trace.jsonl");
    let (status, _) = serve_with_input(
        &[
            "--seed",
            "7",
            "--quiet",
            "--trace-out",
            full_trace.to_str().unwrap(),
            "--trace-format",
            "jsonl",
        ],
        &stream,
    );
    assert!(status.success());

    // Interrupted run: first half, then a snapshot, then EOF (the kill).
    let snap = tmp("mid.snap");
    let cut_at = serde_json::from_str::<Value>(lines[cut - 1])
        .unwrap()
        .get("at")
        .and_then(Value::as_f64)
        .unwrap();
    let mut first_half = lines[..cut].join("\n");
    first_half.push_str(&format!(
        "\n{{\"id\":\"snap\",\"cmd\":\"snapshot\",\"at\":{},\"path\":{:?}}}\n",
        cut_at,
        snap.to_str().unwrap()
    ));
    let (status, stdout) = serve_with_input(&["--seed", "7", "--quiet"], &first_half);
    assert!(status.success());
    assert!(
        stdout.contains("\"event\":\"snapshot\""),
        "snapshot not acknowledged: {stdout}"
    );

    // Restored run finishes the stream; its trace must be byte-identical
    // to the uninterrupted one.
    let resumed_trace = tmp("resumed_trace.jsonl");
    let rest = lines[cut..].join("\n");
    let (status, _) = serve_with_input(
        &[
            "--restore",
            snap.to_str().unwrap(),
            "--quiet",
            "--trace-out",
            resumed_trace.to_str().unwrap(),
            "--trace-format",
            "jsonl",
        ],
        &rest,
    );
    assert!(status.success());
    assert_eq!(
        std::fs::read_to_string(&full_trace).unwrap(),
        std::fs::read_to_string(&resumed_trace).unwrap(),
        "snapshot/kill/restore must not perturb the flight trace"
    );

    // A corrupted snapshot is refused up front with exit 2.
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&snap, &bytes).unwrap();
    let out = cli()
        .args(["serve", "--restore", snap.to_str().unwrap()])
        .stdin(Stdio::null())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot restore"));

    std::fs::remove_file(&full_trace).ok();
    std::fs::remove_file(&resumed_trace).ok();
    std::fs::remove_file(&snap).ok();
}

#[test]
fn serve_wallclock_pacing_drains_and_exits() {
    let trace = small_trace(3);
    let stream = trace_to_stream_jsonl(&trace, &StreamOptions::default());
    // Fast virtual clock so the drain completes in well under a second of
    // wall time.
    let (status, stdout) = serve_with_input(
        &["--pacing", "wallclock", "--speed", "1000000", "--quiet"],
        &stream,
    );
    assert!(status.success());
    assert!(stdout.contains("\"event\":\"shutdown\""), "got: {stdout}");
}

#[test]
fn cli_exclusive_flags_exit_two_with_one_line_messages() {
    // --trace-out now requires an explicit --trace-format.
    let out = cli()
        .args(["--trace-out", "/tmp/t.jsonl"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(stderr.lines().count(), 1, "one-line message, got: {stderr}");
    assert!(stderr.contains("--trace-out requires an explicit --trace-format"));

    // serve refuses capacity dynamics outright.
    let out = cli()
        .args(["serve", "--dynamics", "script.jsonl"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(stderr.lines().count(), 1, "one-line message, got: {stderr}");
    assert!(stderr.contains("incompatible"));

    // serve --trace-out also demands the explicit format...
    let out = cli()
        .args(["serve", "--trace-out", "/tmp/t.jsonl"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    // ...and only jsonl is a valid one for the daemon.
    let out = cli()
        .args([
            "serve",
            "--trace-out",
            "/tmp/t.jsonl",
            "--trace-format",
            "chrome",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("jsonl"));

    // trace-to-stream: FILE and --trace generation are mutually exclusive.
    let out = cli()
        .args(["trace-to-stream", "trace.json", "--trace", "philly"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));
}

#[test]
fn cli_trace_to_stream_converts_files_and_generates() {
    // File conversion round-trip.
    let trace = small_trace(6);
    let trace_file = tmp("trace.json");
    std::fs::write(&trace_file, trace.to_json()).unwrap();
    let stream_file = tmp("stream.jsonl");
    let out = cli()
        .args([
            "trace-to-stream",
            trace_file.to_str().unwrap(),
            "--tenant",
            "acme",
            "--gpu-hours-per-gpu",
            "2",
            "--out",
            stream_file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = std::fs::read_to_string(&stream_file).unwrap();
    let lines: Vec<Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(lines.len(), trace.jobs.len() + 1);
    assert_eq!(lines[0].get("tenant").and_then(Value::as_str), Some("acme"));
    assert_eq!(
        lines[0].get("gpu_hours").and_then(Value::as_f64),
        Some(2.0 * trace.jobs[0].max_gpus as f64)
    );
    assert_eq!(
        lines.last().unwrap().get("cmd").and_then(Value::as_str),
        Some("shutdown")
    );

    // Generation mode writes straight to stdout.
    let out = cli()
        .args(["trace-to-stream", "--trace", "philly", "--jobs", "4"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 5);

    std::fs::remove_file(&trace_file).ok();
    std::fs::remove_file(&stream_file).ok();
}
