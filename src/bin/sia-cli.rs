//! Command-line driver for the Sia simulator.
//!
//! ```text
//! sia-cli [--cluster hetero64|heteroN|homog64|physical44] [--trace philly|helios|newtrace|physical]
//!         [--policy sia|pollux|gavel|shockwave|themis] [--engine round|events]
//!         [--seed N] [--rate JOBS_PER_HOUR] [--dynamics FILE]
//!         [--profiling oracle|bootstrap|noprof] [--json]
//!         [--telemetry-out PATH] [--trace-out PATH] [--trace-format jsonl|chrome]
//!         [--audit-out PATH] [--quiet]
//! sia-cli trace-report FILE [--audit FILE] [--json] [--quiet]
//! sia-cli audit FILE [--json] [--quiet]
//! sia-cli serve [--cluster ...] [--policy ...] [--seed N]
//!         [--pacing replay|wallclock] [--speed X] [--socket PATH]
//!         [--restore FILE] [--default-quota H] [--quota TENANT=H]
//!         [--max-pending N] [--trace-out PATH --trace-format jsonl]
//!         [--audit-out PATH] [--stats-socket PATH] [--stats-tcp ADDR]
//!         [--heartbeat SECS] [--round-deadline SECS]
//!         [--log-level error|warn|info|debug] [--quiet]
//! sia-cli top FILE | sia-cli top --connect ENDPOINT
//!         [--interval SECS] [--iterations N]
//! sia-cli trace-to-stream [FILE] [--trace KIND] [--seed N] [--rate R]
//!         [--jobs N] [--tenant NAME] [--gpu-hours-per-gpu H]
//!         [--no-shutdown] [--out PATH]
//! sia-cli fleet SPEC.jsonl [--out DIR] [--workers N]
//!         [--progress PATH] [--json] [--quiet]
//! ```
//!
//! Runs one simulation and prints the summary (or JSON with `--json`).
//! `--dynamics FILE` loads a capacity-dynamics script (JSONL, one
//! add/remove/drain/degrade/restore event per line — see `sia-dynamics`)
//! and replays it against the cluster as simulated time passes; a script
//! that fails to parse or references unknown GPU types exits with status 2.
//! `--telemetry-out PATH` streams span/counter events as JSONL to PATH;
//! `--trace-out PATH` writes the simulated-time flight-recorder stream —
//! per-job lifecycle events — and requires an explicit `--trace-format`:
//! `jsonl`, or `chrome` (a Chrome trace-event document loadable in
//! Perfetto).
//! `--audit-out PATH` writes the decision-quality audit stream — per-round
//! solver gap/effort records plus per-job decision provenance — as JSONL.
//! `--quiet` suppresses the human-readable summary.
//!
//! `sia-cli trace-report FILE` analyses a recorded JSONL stream: per-job
//! queueing delay, restart count/overhead, allocation churn,
//! time-on-each-GPU-type and the cluster occupancy series. `--audit FILE`
//! adds a one-line solver-health summary from a recorded audit stream.
//!
//! `sia-cli audit FILE` analyses a recorded audit stream: proven optimality
//! gap percentiles, worst-gap rounds, warm-start hit rate and the per-job
//! regret table.
//!
//! `sia-cli serve` runs the scheduling daemon: JSONL commands (`submit`,
//! `cancel`, `query`, `snapshot`, `shutdown`, `metrics`, `health`) on
//! stdin or a Unix socket, JSONL responses and lifecycle events on
//! stdout. `--restore FILE` resumes from a snapshot written by the
//! `snapshot` command; with `--pacing wallclock` virtual time tracks the
//! wall clock at `--speed` virtual seconds per second. `serve` is
//! incompatible with `--dynamics`. Observability: `--stats-socket PATH` /
//! `--stats-tcp ADDR` expose read-only `GET /metrics` (Prometheus text
//! exposition) and `GET /healthz` endpoints on a side thread;
//! `--heartbeat SECS` emits a periodic `{"ev":"heartbeat",...}` JSONL
//! self-report (virtual seconds under replay pacing, wall seconds under
//! wallclock); `--round-deadline SECS` arms the stall watchdog that flips
//! `/healthz` to 503 when a scheduling round overruns; `--log-level`
//! selects the stderr verbosity (leveled, timestamped lines).
//!
//! `sia-cli top` renders a one-screen summary of a daemon's metrics:
//! from a scraped exposition FILE (render once), or live over
//! `--connect ENDPOINT` (a `--stats-socket` path or `--stats-tcp`
//! host:port), refreshing every `--interval` seconds until interrupted
//! (or `--iterations N` refreshes).
//!
//! `sia-cli trace-to-stream` converts a static trace file (or a generated
//! trace) into a serve-mode JSONL submission script.
//!
//! `sia-cli fleet` expands a JSONL fleet spec (one scenario group per line;
//! see `sia-fleet`) into the cross product of policy × trace × cluster ×
//! dynamics × seed range, executes the runs concurrently (work stealing
//! across `--workers` threads, or the `SIA_WORKERS` env override), and
//! writes one canonical `FLEET_*.json` per scenario cell into `--out DIR`
//! with mean/median/p95 and 95% confidence intervals per metric. The
//! canonical files are byte-identical for any worker count; wall-clock
//! lives only in the `--progress PATH` JSONL heartbeat and the stdout
//! summary. Spec errors, an unparseable `SIA_WORKERS`, and unwritable
//! outputs are one-line exit-2 usage errors; a fleet whose runs all
//! executed exits 0 even when some runs failed (their reproduction
//! coordinates are listed in the per-cell `failed` manifests) — exit 1 is
//! reserved for fleets that could not write their reports.

use sia::baselines::{GavelPolicy, PolluxPolicy, ShockwavePolicy, ThemisPolicy};
use sia::cluster::ClusterSpec;
use sia::core::SiaPolicy;
use sia::metrics::{ftf_ratios, summarize, unfair_fraction, worst_ftf};
use sia::models::ProfilingMode;
use sia::sim::{EngineKind, Scheduler, SimConfig, Simulator};
use sia::telemetry::{AuditReport, AuditStream, FlightTrace};
use sia::workloads::{Trace, TraceConfig, TraceKind};

/// Options that take a value.
const VALUE_OPTS: &[&str] = &[
    "--cluster",
    "--trace",
    "--policy",
    "--engine",
    "--seed",
    "--rate",
    "--dynamics",
    "--profiling",
    "--telemetry-out",
    "--trace-out",
    "--trace-format",
    "--audit-out",
];
/// Boolean flags.
const FLAG_OPTS: &[&str] = &["--json", "--quiet", "--help", "-h"];

/// Command-line arguments, collected once at startup.
struct Args {
    argv: Vec<String>,
}

impl Args {
    /// Value of `--name VALUE`, if present.
    fn opt(&self, name: &str) -> Option<&str> {
        self.argv
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.argv.get(i + 1))
            .map(String::as_str)
    }

    /// Whether boolean flag `name` is present.
    fn flag(&self, name: &str) -> bool {
        self.argv.iter().any(|a| a == name)
    }

    /// Rejects unrecognized `--options` (values of value-options are skipped).
    fn check_unknown(&self) -> Result<(), String> {
        let mut i = 0;
        while i < self.argv.len() {
            let a = self.argv[i].as_str();
            if VALUE_OPTS.contains(&a) {
                if i + 1 >= self.argv.len() {
                    return Err(format!("option {a} requires a value"));
                }
                i += 2;
            } else if FLAG_OPTS.contains(&a) {
                i += 1;
            } else {
                return Err(format!("unknown argument {a}"));
            }
        }
        Ok(())
    }
}

/// Parses a `--cluster` value into a [`ClusterSpec`].
fn parse_cluster(name: &str) -> Result<ClusterSpec, String> {
    match name {
        "hetero64" => Ok(ClusterSpec::heterogeneous_64()),
        "homog64" => Ok(ClusterSpec::homogeneous_64()),
        "physical44" => Ok(ClusterSpec::physical_44()),
        // Fig9-style scaled heterogeneous clusters: heteroN for any
        // multiple of 64 (hetero128 ... hetero2048).
        other => other
            .strip_prefix("hetero")
            .and_then(|n| n.parse::<usize>().ok())
            .filter(|n| *n > 0 && n % 64 == 0)
            .map(|n| ClusterSpec::heterogeneous_scaled(n / 64))
            .ok_or_else(|| format!("unknown cluster {other}")),
    }
}

/// Parses a `--policy` value into a scheduler.
fn parse_policy(name: &str) -> Result<Box<dyn Scheduler>, String> {
    match name {
        "sia" => Ok(Box::new(SiaPolicy::default())),
        "pollux" => Ok(Box::new(PolluxPolicy::default())),
        "gavel" => Ok(Box::new(GavelPolicy::default())),
        "shockwave" => Ok(Box::new(ShockwavePolicy::default())),
        "themis" => Ok(Box::new(ThemisPolicy::default())),
        other => Err(format!("unknown policy {other}")),
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // Subcommand dispatch: `sia-cli trace-report FILE [--json] [--quiet]`.
    if raw.first().map(String::as_str) == Some("trace-report") {
        trace_report(&raw[1..]);
    }
    // `sia-cli audit FILE [--json] [--quiet]`.
    if raw.first().map(String::as_str) == Some("audit") {
        audit_report(&raw[1..]);
    }
    // `sia-cli serve ...`: the long-running scheduling daemon.
    if raw.first().map(String::as_str) == Some("serve") {
        run_serve(&raw[1..]);
    }
    // `sia-cli trace-to-stream ...`: static trace -> JSONL submissions.
    if raw.first().map(String::as_str) == Some("trace-to-stream") {
        trace_to_stream_cmd(&raw[1..]);
    }
    // `sia-cli top ...`: one-screen live metrics summary.
    if raw.first().map(String::as_str) == Some("top") {
        top_cmd(&raw[1..]);
    }
    // `sia-cli fleet ...`: Monte Carlo scenario-fleet runner.
    if raw.first().map(String::as_str) == Some("fleet") {
        fleet_cmd(&raw[1..]);
    }

    let args = Args { argv: raw };
    if args.flag("--help") || args.flag("-h") {
        println!(
            "usage: sia-cli [--cluster hetero64|heteroN|homog64|physical44] \
             [--trace philly|helios|newtrace|physical] \
             [--policy sia|pollux|gavel|shockwave|themis] \
             [--engine round|events] [--seed N] \
             [--rate JOBS/HR] [--dynamics FILE] \
             [--profiling oracle|bootstrap|noprof] [--json] \
             [--telemetry-out PATH] [--trace-out PATH] \
             [--trace-format jsonl|chrome] [--audit-out PATH] [--quiet]\n\
             \x20      sia-cli trace-report FILE [--audit FILE] [--json] [--quiet]\n\
             \x20      sia-cli audit FILE [--json] [--quiet]\n\
             \x20      sia-cli serve [--cluster C] [--policy P] [--seed N] \
             [--pacing replay|wallclock] [--speed X] [--socket PATH] \
             [--restore FILE] [--default-quota H] [--quota TENANT=H] \
             [--max-pending N] [--trace-out PATH --trace-format jsonl] \
             [--audit-out PATH] [--stats-socket PATH] [--stats-tcp ADDR] \
             [--heartbeat SECS] [--round-deadline SECS] \
             [--log-level error|warn|info|debug] [--quiet]\n\
             \x20      sia-cli top FILE | sia-cli top --connect ENDPOINT \
             [--interval SECS] [--iterations N]\n\
             \x20      sia-cli trace-to-stream [FILE] [--trace KIND] [--seed N] \
             [--rate R] [--jobs N] [--tenant NAME] [--gpu-hours-per-gpu H] \
             [--no-shutdown] [--out PATH]\n\
             \x20      sia-cli fleet SPEC.jsonl [--out DIR] [--workers N] \
             [--progress PATH] [--json] [--quiet]"
        );
        return;
    }
    if let Err(e) = args.check_unknown() {
        eprintln!("{e} (see --help)");
        std::process::exit(2);
    }

    if let Some(path) = args.opt("--telemetry-out") {
        if let Err(e) = sia::telemetry::init_jsonl(path) {
            eprintln!("cannot open telemetry sink {path}: {e}");
            std::process::exit(2);
        }
    }
    let quiet = args.flag("--quiet");

    let cluster = match parse_cluster(args.opt("--cluster").unwrap_or("hetero64")) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let kind = match args.opt("--trace").unwrap_or("philly") {
        "philly" => TraceKind::Philly,
        "helios" => TraceKind::Helios,
        "newtrace" => TraceKind::NewTrace,
        "physical" => TraceKind::Physical,
        other => {
            eprintln!("unknown trace {other}");
            std::process::exit(2);
        }
    };
    let seed: u64 = args.opt("--seed").and_then(|s| s.parse().ok()).unwrap_or(1);
    let policy_name = args.opt("--policy").unwrap_or("sia").to_string();
    let rigid = matches!(policy_name.as_str(), "gavel" | "shockwave" | "themis");
    let mut tcfg = TraceConfig::new(kind, seed).with_max_gpus_cap(16);
    if rigid {
        tcfg = tcfg.with_adaptivity_mix(0.0, 1.0);
    }
    if let Some(rate) = args.opt("--rate").and_then(|s| s.parse().ok()) {
        tcfg = tcfg.with_rate(rate);
    }
    let trace = Trace::generate(&tcfg);

    // Load and validate the capacity-dynamics script before anything runs:
    // malformed input is an exit-2 usage error, not a mid-run panic.
    let dynamics = args.opt("--dynamics").map(|path| {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read dynamics script {path}: {e}");
                std::process::exit(2);
            }
        };
        let script = match sia::dynamics::DynamicsScript::parse_jsonl(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            }
        };
        if let Err(e) = script.validate(&cluster) {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        }
        script
    });

    let engine = match args.opt("--engine").unwrap_or("events") {
        "round" => EngineKind::Round,
        "events" => EngineKind::Events,
        other => {
            eprintln!("unknown engine {other} (expected round or events)");
            std::process::exit(2);
        }
    };

    let trace_out = args.opt("--trace-out");
    let trace_chrome = match args.opt("--trace-format").unwrap_or("jsonl") {
        "jsonl" => false,
        "chrome" => true,
        other => {
            eprintln!("unknown trace format {other} (expected jsonl or chrome)");
            std::process::exit(2);
        }
    };
    if args.opt("--trace-format").is_some() && trace_out.is_none() {
        eprintln!("--trace-format requires --trace-out (see --help)");
        std::process::exit(2);
    }
    if trace_out.is_some() && args.opt("--trace-format").is_none() {
        eprintln!("--trace-out requires an explicit --trace-format (jsonl or chrome; see --help)");
        std::process::exit(2);
    }
    if let Some(path) = trace_out {
        // Fail fast on an unwritable path rather than discovering it after
        // the run (jsonl spills open inside the engine; chrome exports
        // write after the run).
        if let Err(e) = std::fs::File::create(path) {
            eprintln!("cannot open trace output {path}: {e}");
            std::process::exit(2);
        }
    }
    let audit_out = args.opt("--audit-out");
    if let Some(path) = audit_out {
        // Same fail-fast contract as --trace-out.
        if let Err(e) = std::fs::File::create(path) {
            eprintln!("cannot open audit output {path}: {e}");
            std::process::exit(2);
        }
    }

    let profiling = match args.opt("--profiling").unwrap_or("bootstrap") {
        "oracle" => ProfilingMode::Oracle,
        "bootstrap" => ProfilingMode::Bootstrap,
        "noprof" => ProfilingMode::NoProf,
        other => {
            eprintln!("unknown profiling mode {other}");
            std::process::exit(2);
        }
    };

    let mut sched: Box<dyn Scheduler> = match parse_policy(&policy_name) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    let mut cfg = SimConfig {
        engine,
        seed,
        profiling_mode: profiling,
        dynamics,
        ..SimConfig::default()
    };
    if let (Some(path), false) = (trace_out, trace_chrome) {
        cfg.trace_spill = Some(path.into());
    }
    if let Some(path) = audit_out {
        cfg.audit_spill = Some(path.into());
    }
    let sim = Simulator::new(cluster.clone(), &trace, cfg);
    let result = sim.run(sched.as_mut());

    if let Some(path) = trace_out {
        if trace_chrome {
            if result.trace.dropped > 0 {
                eprintln!(
                    "warning: {} trace records evicted from the ring; chrome export is partial",
                    result.trace.dropped
                );
            }
            if let Err(e) = std::fs::write(path, result.trace.chrome_trace().to_string()) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            }
        }
        if !args.flag("--quiet") {
            eprintln!(
                "trace written to {path} ({} format)",
                if trace_chrome { "chrome" } else { "jsonl" }
            );
        }
    }
    if let Some(path) = audit_out {
        if !args.flag("--quiet") {
            eprintln!("audit stream written to {path} (jsonl format)");
        }
    }
    let s = summarize(&result);
    let ratios = ftf_ratios(&result, &cluster);

    if args.flag("--json") {
        println!(
            "{{\"policy\":\"{}\",\"jobs\":{},\"unfinished\":{},\"avg_jct_hours\":{:.4},\
             \"p99_jct_hours\":{:.4},\"makespan_hours\":{:.4},\"gpu_hours_per_job\":{:.4},\
             \"avg_restarts\":{:.3},\"worst_ftf\":{:.3},\"unfair_fraction\":{:.4},\
             \"median_policy_runtime_s\":{:.6}}}",
            s.scheduler,
            result.records.len(),
            s.unfinished,
            s.avg_jct_hours,
            s.p99_jct_hours,
            s.makespan_hours,
            s.gpu_hours_per_job,
            s.avg_restarts,
            worst_ftf(&ratios),
            unfair_fraction(&ratios),
            s.median_policy_runtime,
        );
    } else if !quiet {
        println!("policy          : {}", s.scheduler);
        println!(
            "jobs            : {} submitted, {} unfinished",
            result.records.len(),
            s.unfinished
        );
        println!("avg JCT         : {:.2} h", s.avg_jct_hours);
        println!("p99 JCT         : {:.2} h", s.p99_jct_hours);
        println!("makespan        : {:.2} h", s.makespan_hours);
        println!("GPU-hours/job   : {:.2}", s.gpu_hours_per_job);
        println!("restarts/job    : {:.2}", s.avg_restarts);
        println!("worst FTF rho   : {:.2}", worst_ftf(&ratios));
        println!("unfair fraction : {:.1}%", unfair_fraction(&ratios) * 100.0);
        println!(
            "policy runtime  : {:.1} ms median/round",
            s.median_policy_runtime * 1e3
        );
        if let Some(ph) = sia::metrics::summarize_phases(&result) {
            println!(
                "solver phases   : refit {:.2} ms, goodput {:.2} ms, build {:.2} ms, \
                 solve {:.2} ms, placement {:.2} ms (mean/round over {} rounds)",
                ph.mean_refit_s * 1e3,
                ph.mean_goodput_s * 1e3,
                ph.mean_build_s * 1e3,
                ph.mean_solve_s * 1e3,
                ph.mean_placement_s * 1e3,
                ph.rounds,
            );
        }
    }

    sia::telemetry::shutdown();
}

/// `sia-cli trace-report FILE [--audit FILE] [--json] [--quiet]`: analyse
/// a recorded flight-recorder JSONL stream. Never returns.
fn trace_report(argv: &[String]) -> ! {
    const USAGE: &str = "usage: sia-cli trace-report FILE [--audit FILE] [--json] [--quiet]";
    let mut file: Option<&str> = None;
    let mut audit_file: Option<&str> = None;
    let mut json = false;
    let mut quiet = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--audit" => {
                let Some(v) = argv.get(i + 1) else {
                    eprintln!("--audit requires a value\n{USAGE}");
                    std::process::exit(2);
                };
                audit_file = Some(v);
                i += 1;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') && file.is_none() => file = Some(other),
            other => {
                eprintln!("unknown argument {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(file) = file else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    // Solver-health sidebar: load the audit stream up-front so a bad path
    // is a usage error, not a post-report surprise.
    let audit_summary: Option<AuditReport> = audit_file.map(|path| {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        match AuditStream::parse_jsonl(&text) {
            Ok(s) => s.report(),
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            }
        }
    });
    if !quiet {
        eprintln!("reading {file} ...");
    }
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            std::process::exit(2);
        }
    };
    let trace = match FlightTrace::parse_jsonl(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{file}: {e}");
            std::process::exit(2);
        }
    };
    if !quiet {
        eprintln!("parsed {} records", trace.records.len());
    }
    let report = trace.report();

    if json {
        let jobs: Vec<serde_json::Value> = report
            .jobs
            .iter()
            .map(|j| {
                let opt = |v: Option<f64>| match v {
                    Some(x) => serde_json::json!(x),
                    None => serde_json::Value::Null,
                };
                serde_json::json!({
                    "job": j.job,
                    "name": j.name.as_str(),
                    "model": j.model.as_str(),
                    "submitted_s": j.submitted,
                    "queue_delay_s": opt(j.queue_delay()),
                    "jct_s": opt(j.jct()),
                    "restarts": j.restarts,
                    "restart_overhead_s": j.restart_overhead_s,
                    "alloc_changes": j.alloc_changes,
                    "failures": j.failures,
                    "seconds_by_type": j.seconds_by_type.clone(),
                    "gpu_seconds_by_type": j.gpu_seconds_by_type.clone(),
                })
            })
            .collect();
        let occupancy: Vec<serde_json::Value> = report
            .gpu_types
            .iter()
            .enumerate()
            .map(|(i, name)| {
                serde_json::json!({
                    "gpu_type": name.as_str(),
                    "mean_gpus": report.mean_occupancy()[i],
                    "peak_gpus": report.peak_occupancy()[i],
                })
            })
            .collect();
        let capacity: Vec<serde_json::Value> = report
            .capacity_events
            .iter()
            .map(|c| {
                serde_json::json!({
                    "t_s": c.t,
                    "kind": c.kind,
                    "gpu_type": report
                        .gpu_types
                        .get(c.gpu_type)
                        .map(|s| s.as_str())
                        .unwrap_or("?"),
                    "nodes": c.nodes as u64,
                    "gpus": c.gpus as u64,
                    "delta_gpus": c.delta_gpus,
                    "factor": c.factor,
                })
            })
            .collect();
        let solver_health = match &audit_summary {
            Some(a) => serde_json::json!({
                "rounds": a.rounds,
                "median_rel_gap": a.median_rel_gap,
                "max_rel_gap": a.max_rel_gap,
                "warm_hit_rate": a.warm_hit_rate(),
                "fallback_rounds": a.fallback_rounds,
            }),
            None => serde_json::Value::Null,
        };
        let doc = serde_json::json!({
            "records": trace.records.len() as u64,
            "dropped": trace.dropped,
            "rounds": report.rounds,
            "round_s": report.round_duration,
            "end_time_s": report.end_time,
            "policy_runtime_total_s": report.total_policy_runtime_s,
            "occupancy": occupancy,
            "capacity_timeline": capacity,
            "jobs": jobs,
            "solver_health": solver_health,
        });
        println!("{doc}");
        std::process::exit(0);
    }

    println!(
        "rounds          : {} x {:.0} s, window {:.2} h",
        report.rounds,
        report.round_duration,
        report.end_time / 3600.0
    );
    println!(
        "policy runtime  : {:.3} s total",
        report.total_policy_runtime_s
    );
    if let Some(a) = &audit_summary {
        println!(
            "solver health   : median gap {:.2e}, max gap {:.2e} (rel, {} rounds), \
             warm-start hit rate {:.0}%, {} fallback round(s)",
            a.median_rel_gap,
            a.max_rel_gap,
            a.rounds,
            a.warm_hit_rate() * 100.0,
            a.fallback_rounds,
        );
    }
    let mean = report.mean_occupancy();
    let peak = report.peak_occupancy();
    for (i, name) in report.gpu_types.iter().enumerate() {
        println!(
            "occupancy {:<6}: mean {:6.2} GPUs, peak {:3} GPUs",
            name, mean[i], peak[i]
        );
    }
    if !report.capacity_events.is_empty() {
        println!("capacity timeline:");
        for c in &report.capacity_events {
            let name = report
                .gpu_types
                .get(c.gpu_type)
                .map(|s| s.as_str())
                .unwrap_or("?");
            let delta = if c.delta_gpus != 0 {
                format!(", {:+} GPUs", c.delta_gpus)
            } else if (c.factor - 1.0).abs() > f64::EPSILON {
                format!(", x{:.2} throughput", c.factor)
            } else {
                String::new()
            };
            println!(
                "  t={:>8.0}s {:<13} {:<6} {} node(s){}",
                c.t, c.kind, name, c.nodes, delta
            );
        }
    }
    if trace.dropped > 0 {
        println!(
            "note            : {} records were evicted from the recording ring; figures are partial",
            trace.dropped
        );
    }
    println!(
        "{:>5} {:<14} {:<12} {:>10} {:>9} {:>8} {:>11} {:>6} {:>6} {:>9}",
        "job",
        "name",
        "model",
        "queue(min)",
        "jct(h)",
        "restarts",
        "rst-ovh(m)",
        "churn",
        "fails",
        "gpu-h"
    );
    for j in &report.jobs {
        let fmt_opt = |v: Option<f64>, scale: f64| match v {
            Some(x) => format!("{:.2}", x / scale),
            None => "-".to_string(),
        };
        println!(
            "{:>5} {:<14} {:<12} {:>10} {:>9} {:>8} {:>11.2} {:>6} {:>6} {:>9.2}",
            j.job,
            j.name,
            j.model,
            fmt_opt(j.queue_delay(), 60.0),
            fmt_opt(j.jct(), 3600.0),
            j.restarts,
            j.restart_overhead_s / 60.0,
            j.alloc_changes,
            j.failures,
            j.gpu_seconds() / 3600.0,
        );
    }
    std::process::exit(0);
}

/// `sia-cli audit FILE [--json] [--quiet]`: analyse a recorded decision
/// audit JSONL stream. Never returns.
fn audit_report(argv: &[String]) -> ! {
    const USAGE: &str = "usage: sia-cli audit FILE [--json] [--quiet]";
    let mut file: Option<&str> = None;
    let mut json = false;
    let mut quiet = false;
    for arg in argv {
        match arg.as_str() {
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') && file.is_none() => file = Some(other),
            other => {
                eprintln!("unknown argument {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    if !quiet {
        eprintln!("reading {file} ...");
    }
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            std::process::exit(2);
        }
    };
    let stream = match AuditStream::parse_jsonl(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{file}: {e}");
            std::process::exit(2);
        }
    };
    if !quiet {
        eprintln!("parsed {} records", stream.records.len());
    }
    let report = stream.report();

    if json {
        let worst: Vec<serde_json::Value> = report
            .worst_rounds
            .iter()
            .map(|w| {
                serde_json::json!({
                    "round": w.round,
                    "t_s": w.t,
                    "abs_gap": w.abs_gap,
                    "rel_gap": w.rel_gap,
                })
            })
            .collect();
        let jobs: Vec<serde_json::Value> = report
            .jobs
            .iter()
            .map(|j| {
                serde_json::json!({
                    "job": j.job,
                    "decisions": j.decisions,
                    "total_regret": j.total_regret,
                    "max_regret": j.max_regret,
                    "fallback_decisions": j.fallback_decisions,
                })
            })
            .collect();
        let doc = serde_json::json!({
            "scheduler": report.scheduler.as_str(),
            "gap_tolerance": report.gap_tolerance,
            "rounds": report.rounds,
            "solved_rounds": report.solved_rounds,
            "proven_rounds": report.proven_rounds,
            "fallback_rounds": report.fallback_rounds,
            "warm_seeded_rounds": report.warm_seeded_rounds,
            "warm_hit_rate": report.warm_hit_rate(),
            "median_abs_gap": report.median_abs_gap,
            "max_abs_gap": report.max_abs_gap,
            "median_rel_gap": report.median_rel_gap,
            "p90_rel_gap": report.p90_rel_gap,
            "max_rel_gap": report.max_rel_gap,
            "worst_rounds": worst,
            "total_nodes": report.total_nodes,
            "total_pruned": report.total_pruned,
            "sharded_rounds": report.sharded_rounds,
            "mean_shards": report.mean_shards,
            "budget_exhausted_rounds": report.budget_exhausted_rounds,
            "total_lagrangian_iters": report.total_lagrangian_iters,
            "last_lagrangian_gap": report.last_lagrangian_gap,
            "decisions": report.decisions,
            "total_regret": report.total_regret,
            "jobs": jobs,
            "dropped": report.dropped,
        });
        println!("{doc}");
        std::process::exit(0);
    }

    println!("scheduler       : {}", report.scheduler);
    println!("gap tolerance   : {:.2e}", report.gap_tolerance);
    println!(
        "rounds          : {} audited, {} solved, {} proven optimal, {} fallback",
        report.rounds, report.solved_rounds, report.proven_rounds, report.fallback_rounds
    );
    println!(
        "warm starts     : {} of {} rounds seeded ({:.0}% hit rate)",
        report.warm_seeded_rounds,
        report.rounds,
        report.warm_hit_rate() * 100.0
    );
    println!(
        "abs gap         : median {:.3e}, max {:.3e}",
        report.median_abs_gap, report.max_abs_gap
    );
    println!(
        "rel gap         : median {:.3e}, p90 {:.3e}, max {:.3e}",
        report.median_rel_gap, report.p90_rel_gap, report.max_rel_gap
    );
    println!(
        "search effort   : {} B&B nodes explored, {} pruned",
        report.total_nodes, report.total_pruned
    );
    if report.sharded_rounds > 0 {
        println!(
            "decomposition   : {} sharded round(s), {:.1} shards mean, {} budget-exhausted",
            report.sharded_rounds, report.mean_shards, report.budget_exhausted_rounds
        );
        println!(
            "lagrangian      : {} pricing iterations total, last duality gap {:.3e}",
            report.total_lagrangian_iters, report.last_lagrangian_gap
        );
    } else if report.budget_exhausted_rounds > 0 {
        println!(
            "time budget     : {} round(s) returned the anytime incumbent at budget expiry",
            report.budget_exhausted_rounds
        );
    }
    if !report.worst_rounds.is_empty() {
        println!("worst-gap rounds:");
        for w in &report.worst_rounds {
            println!(
                "  round {:>5} t={:>8.0}s  abs {:.3e}  rel {:.3e}",
                w.round, w.t, w.abs_gap, w.rel_gap
            );
        }
    }
    println!(
        "decisions       : {} recorded, total regret {:.4}",
        report.decisions, report.total_regret
    );
    if !report.jobs.is_empty() {
        println!(
            "{:>5} {:>9} {:>13} {:>11} {:>9}",
            "job", "decisions", "total-regret", "max-regret", "fallback"
        );
        for j in &report.jobs {
            println!(
                "{:>5} {:>9} {:>13.4} {:>11.4} {:>9}",
                j.job, j.decisions, j.total_regret, j.max_regret, j.fallback_decisions
            );
        }
    }
    if report.dropped > 0 {
        println!(
            "note            : {} records were evicted from the recording ring; figures are partial",
            report.dropped
        );
    }
    std::process::exit(0);
}

/// Pops the value of `--name VALUE` at position `i` in `argv`, exiting 2
/// with the usage string when it is missing.
fn take_value(argv: &[String], i: &mut usize, name: &str, usage: &str) -> String {
    match argv.get(*i + 1) {
        Some(v) => {
            *i += 1;
            v.clone()
        }
        None => {
            eprintln!("option {name} requires a value\n{usage}");
            std::process::exit(2);
        }
    }
}

/// `sia-cli serve ...`: run the long-running scheduling daemon. Never
/// returns.
fn run_serve(argv: &[String]) -> ! {
    const USAGE: &str = "usage: sia-cli serve [--cluster C] [--policy P] [--seed N] \
         [--pacing replay|wallclock] [--speed X] [--socket PATH] [--restore FILE] \
         [--default-quota H] [--quota TENANT=H] [--max-pending N] \
         [--trace-out PATH --trace-format jsonl] [--audit-out PATH] \
         [--stats-socket PATH] [--stats-tcp ADDR] [--heartbeat SECS] \
         [--round-deadline SECS] [--log-level error|warn|info|debug] [--quiet]";
    use sia::serve::{
        serve_replay, serve_wallclock, LogLevel, Logger, Pacing, ServeOptions, Server,
    };

    let mut cluster_name = "hetero64".to_string();
    let mut policy_name = "sia".to_string();
    let mut seed: u64 = 1;
    let mut pacing = Pacing::Replay;
    let mut speed: f64 = 60.0;
    let mut socket: Option<String> = None;
    let mut restore: Option<String> = None;
    let mut opts = ServeOptions::default();
    let mut trace_out: Option<String> = None;
    let mut trace_format: Option<String> = None;
    let mut audit_out: Option<String> = None;
    let mut stats_socket: Option<String> = None;
    let mut stats_tcp: Option<String> = None;
    let mut log_level = LogLevel::Info;
    let mut quiet = false;

    let fail = |msg: &str| -> ! {
        eprintln!("{msg}\n{USAGE}");
        std::process::exit(2);
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--cluster" => cluster_name = take_value(argv, &mut i, "--cluster", USAGE),
            "--policy" => policy_name = take_value(argv, &mut i, "--policy", USAGE),
            "--seed" => {
                seed = match take_value(argv, &mut i, "--seed", USAGE).parse() {
                    Ok(s) => s,
                    Err(_) => fail("--seed must be an integer"),
                }
            }
            "--pacing" => {
                pacing = match take_value(argv, &mut i, "--pacing", USAGE).as_str() {
                    "replay" => Pacing::Replay,
                    "wallclock" => Pacing::Wallclock { speed },
                    other => fail(&format!("unknown pacing {other}")),
                }
            }
            "--speed" => {
                speed = match take_value(argv, &mut i, "--speed", USAGE).parse::<f64>() {
                    Ok(s) if s > 0.0 && s.is_finite() => s,
                    _ => fail("--speed must be a positive number"),
                };
                if let Pacing::Wallclock { .. } = pacing {
                    pacing = Pacing::Wallclock { speed };
                }
            }
            "--socket" => socket = Some(take_value(argv, &mut i, "--socket", USAGE)),
            "--restore" => restore = Some(take_value(argv, &mut i, "--restore", USAGE)),
            "--default-quota" => {
                opts.default_quota =
                    match take_value(argv, &mut i, "--default-quota", USAGE).parse::<f64>() {
                        Ok(q) if q >= 0.0 && q.is_finite() => Some(q),
                        _ => fail("--default-quota must be a non-negative number"),
                    }
            }
            "--quota" => {
                let v = take_value(argv, &mut i, "--quota", USAGE);
                let Some((tenant, hours)) = v.split_once('=') else {
                    fail("--quota expects TENANT=GPU_HOURS");
                };
                match hours.parse::<f64>() {
                    Ok(h) if h >= 0.0 && h.is_finite() => opts.quotas.push((tenant.to_string(), h)),
                    _ => fail("--quota expects TENANT=GPU_HOURS"),
                }
            }
            "--max-pending" => {
                opts.max_pending = match take_value(argv, &mut i, "--max-pending", USAGE).parse() {
                    Ok(n) => Some(n),
                    Err(_) => fail("--max-pending must be an integer"),
                }
            }
            "--trace-out" => trace_out = Some(take_value(argv, &mut i, "--trace-out", USAGE)),
            "--trace-format" => {
                trace_format = Some(take_value(argv, &mut i, "--trace-format", USAGE))
            }
            "--audit-out" => audit_out = Some(take_value(argv, &mut i, "--audit-out", USAGE)),
            "--stats-socket" => {
                stats_socket = Some(take_value(argv, &mut i, "--stats-socket", USAGE))
            }
            "--stats-tcp" => stats_tcp = Some(take_value(argv, &mut i, "--stats-tcp", USAGE)),
            "--heartbeat" => {
                opts.heartbeat_s =
                    match take_value(argv, &mut i, "--heartbeat", USAGE).parse::<f64>() {
                        Ok(h) if h > 0.0 && h.is_finite() => Some(h),
                        _ => fail("--heartbeat must be a positive number of seconds"),
                    }
            }
            "--round-deadline" => {
                opts.round_deadline_s =
                    match take_value(argv, &mut i, "--round-deadline", USAGE).parse::<f64>() {
                        Ok(d) if d > 0.0 && d.is_finite() => Some(d),
                        _ => fail("--round-deadline must be a positive number of seconds"),
                    }
            }
            "--log-level" => {
                log_level = match take_value(argv, &mut i, "--log-level", USAGE).parse::<LogLevel>()
                {
                    Ok(l) => l,
                    Err(e) => fail(&e),
                }
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--dynamics" => {
                eprintln!(
                    "serve is incompatible with --dynamics (capacity scripts are batch-only)"
                );
                std::process::exit(2);
            }
            other => fail(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    // The serve trace stream is canonical JSONL only, and the format must
    // be spelled out so scripts never depend on an implicit default.
    match (&trace_out, trace_format.as_deref()) {
        (None, None) | (Some(_), Some("jsonl")) => {}
        (None, Some(_)) => fail("--trace-format requires --trace-out"),
        (Some(_), None) => fail("--trace-out requires an explicit --trace-format jsonl"),
        (Some(_), Some(other)) => fail(&format!("serve only writes jsonl traces (got {other})")),
    }

    let sched = match parse_policy(&policy_name) {
        Ok(s) => s,
        Err(e) => fail(&e),
    };
    let mut server = match &restore {
        Some(path) => {
            let payload = match sia::serve::read_snapshot(path) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("cannot restore from {path}: {e}");
                    std::process::exit(2);
                }
            };
            match Server::restore(&payload, sched, &opts) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot restore from {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        None => {
            let cluster = match parse_cluster(&cluster_name) {
                Ok(c) => c,
                Err(e) => fail(&e),
            };
            let cfg = SimConfig {
                engine: EngineKind::Round,
                seed,
                ..SimConfig::default()
            };
            Server::new(cluster, cfg, sched, &opts)
        }
    };

    let logger = Logger::new(log_level);
    if !quiet {
        logger.info(format!(
            "serve: {} on {}, {} pacing{}",
            policy_name,
            cluster_name,
            if matches!(pacing, Pacing::Replay) {
                "replay"
            } else {
                "wallclock"
            },
            restore
                .as_deref()
                .map(|p| format!(", restored from {p}"))
                .unwrap_or_default()
        ));
    }

    // Read-only stats listeners serve /metrics and /healthz from a side
    // thread off the shared Observe handle; they never touch the server.
    let mut stats_handles = Vec::new();
    if let Some(addr) = &stats_tcp {
        match sia::serve::spawn_tcp(addr, server.observe()) {
            Ok(h) => {
                logger.info(format!("stats listener on http://{}/metrics", h.endpoint));
                stats_handles.push(h);
            }
            Err(e) => {
                logger.error(format!("cannot bind stats listener {addr}: {e}"));
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &stats_socket {
        #[cfg(unix)]
        match sia::serve::spawn_unix(std::path::Path::new(path), server.observe()) {
            Ok(h) => {
                logger.info(format!("stats listener on {}", h.endpoint));
                stats_handles.push(h);
            }
            Err(e) => {
                logger.error(format!("cannot bind stats socket {path}: {e}"));
                std::process::exit(2);
            }
        }
        #[cfg(not(unix))]
        {
            logger.error(format!("--stats-socket {path} is only supported on Unix"));
            std::process::exit(2);
        }
    }

    let served = match &socket {
        Some(path) => {
            #[cfg(unix)]
            {
                sia::serve::server::serve_unix(&mut server, std::path::Path::new(path), pacing)
            }
            #[cfg(not(unix))]
            {
                eprintln!("--socket {path} is only supported on Unix");
                std::process::exit(2);
            }
        }
        None => {
            let input = std::io::BufReader::new(std::io::stdin());
            let mut out = std::io::stdout();
            match pacing {
                Pacing::Replay => serve_replay(&mut server, input, &mut out),
                Pacing::Wallclock { speed } => serve_wallclock(&mut server, input, &mut out, speed),
            }
        }
    };
    // Orderly listener teardown first: removes Unix socket files (process
    // exit below skips destructors).
    for h in stats_handles {
        h.stop();
    }
    // Satellite contract: a daemon that evicted trace/audit records says
    // so once at shutdown, whatever else happened.
    let (trace_dropped, audit_dropped) = server.ring_drops();
    if trace_dropped > 0 || audit_dropped > 0 {
        logger.warn(format!(
            "recording rings evicted records ({trace_dropped} trace, {audit_dropped} audit); \
             exported streams are partial"
        ));
    }
    let clean = match served {
        Ok(c) => c,
        Err(e) => {
            logger.error(format!("serve: io error: {e}"));
            std::process::exit(1);
        }
    };
    if !clean {
        if !quiet {
            logger.warn(
                "serve: stream ended without shutdown; run not finalized \
                 (state survives only through snapshots)",
            );
        }
        std::process::exit(0);
    }
    let result = server.into_result();
    if let Some(path) = &trace_out {
        if let Err(e) = std::fs::write(path, result.trace.canonical_jsonl()) {
            logger.error(format!("cannot write {path}: {e}"));
            std::process::exit(1);
        }
    }
    if let Some(path) = &audit_out {
        if let Err(e) = std::fs::write(path, result.audit.canonical_jsonl()) {
            logger.error(format!("cannot write {path}: {e}"));
            std::process::exit(1);
        }
    }
    if !quiet {
        let s = summarize(&result);
        logger.info(format!(
            "serve: drained at t={:.0}s — {} jobs, {} unfinished, avg JCT {:.2} h",
            result.makespan,
            result.records.len(),
            s.unfinished,
            s.avg_jct_hours
        ));
    }
    std::process::exit(0);
}

/// `sia-cli trace-to-stream [FILE] ...`: convert a static trace file (or a
/// freshly generated trace) into a serve-mode JSONL submission script.
/// Never returns.
fn trace_to_stream_cmd(argv: &[String]) -> ! {
    const USAGE: &str =
        "usage: sia-cli trace-to-stream [FILE] [--trace philly|helios|newtrace|physical] \
         [--seed N] [--rate JOBS/HR] [--jobs N] [--tenant NAME] \
         [--gpu-hours-per-gpu H] [--no-shutdown] [--out PATH]";
    use sia::workloads::{trace_to_stream_jsonl, StreamOptions};

    let fail = |msg: &str| -> ! {
        eprintln!("{msg}\n{USAGE}");
        std::process::exit(2);
    };
    let mut file: Option<String> = None;
    let mut kind: Option<String> = None;
    let mut seed: u64 = 1;
    let mut rate: Option<f64> = None;
    let mut jobs: Option<usize> = None;
    let mut out_path: Option<String> = None;
    let mut stream_opts = StreamOptions::default();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--trace" => kind = Some(take_value(argv, &mut i, "--trace", USAGE)),
            "--seed" => {
                seed = match take_value(argv, &mut i, "--seed", USAGE).parse() {
                    Ok(s) => s,
                    Err(_) => fail("--seed must be an integer"),
                }
            }
            "--rate" => {
                rate = match take_value(argv, &mut i, "--rate", USAGE).parse::<f64>() {
                    Ok(r) if r > 0.0 && r.is_finite() => Some(r),
                    _ => fail("--rate must be a positive number"),
                }
            }
            "--jobs" => {
                jobs = match take_value(argv, &mut i, "--jobs", USAGE).parse() {
                    Ok(n) => Some(n),
                    Err(_) => fail("--jobs must be an integer"),
                }
            }
            "--tenant" => stream_opts.tenant = take_value(argv, &mut i, "--tenant", USAGE),
            "--gpu-hours-per-gpu" => {
                stream_opts.gpu_hours_per_gpu =
                    match take_value(argv, &mut i, "--gpu-hours-per-gpu", USAGE).parse::<f64>() {
                        Ok(h) if h >= 0.0 && h.is_finite() => h,
                        _ => fail("--gpu-hours-per-gpu must be a non-negative number"),
                    }
            }
            "--no-shutdown" => stream_opts.shutdown = false,
            "--out" => out_path = Some(take_value(argv, &mut i, "--out", USAGE)),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => fail(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    if file.is_some() && kind.is_some() {
        fail("FILE and --trace are mutually exclusive (convert a file or generate a trace)");
    }
    let mut trace = match &file {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            match Trace::from_json(&text) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{path}: not a trace file: {e}");
                    std::process::exit(2);
                }
            }
        }
        None => {
            let kind = match kind.as_deref().unwrap_or("philly") {
                "philly" => TraceKind::Philly,
                "helios" => TraceKind::Helios,
                "newtrace" => TraceKind::NewTrace,
                "physical" => TraceKind::Physical,
                other => fail(&format!("unknown trace {other}")),
            };
            let mut tcfg = TraceConfig::new(kind, seed).with_max_gpus_cap(16);
            if let Some(r) = rate {
                tcfg = tcfg.with_rate(r);
            }
            Trace::generate(&tcfg)
        }
    };
    if let Some(n) = jobs {
        trace.jobs.truncate(n);
    }
    let text = trace_to_stream_jsonl(&trace, &stream_opts);
    match &out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {} request(s) to {path}", text.lines().count());
        }
        None => print!("{text}"),
    }
    std::process::exit(0);
}

/// `sia-cli fleet SPEC.jsonl ...`: expand a fleet spec into its scenario
/// cross product, execute every run (work stealing across workers), and
/// write one canonical `FLEET_*.json` per scenario cell. Never returns.
fn fleet_cmd(argv: &[String]) -> ! {
    const USAGE: &str = "usage: sia-cli fleet SPEC.jsonl [--out DIR] [--workers N] \
         [--progress PATH] [--json] [--quiet]";
    use sia::fleet::{run_fleet, write_fleet_json, FleetOptions, FleetSpec};

    let fail = |msg: &str| -> ! {
        eprintln!("{msg}\n{USAGE}");
        std::process::exit(2);
    };
    let mut spec_path: Option<String> = None;
    let mut out_dir = "results/fleet".to_string();
    let mut workers: usize = 0;
    let mut progress: Option<String> = None;
    let mut json = false;
    let mut quiet = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => out_dir = take_value(argv, &mut i, "--out", USAGE),
            "--workers" => {
                workers = match take_value(argv, &mut i, "--workers", USAGE).parse() {
                    Ok(n) if n > 0 => n,
                    _ => fail("--workers must be a positive integer"),
                }
            }
            "--progress" => progress = Some(take_value(argv, &mut i, "--progress", USAGE)),
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') && spec_path.is_none() => {
                spec_path = Some(other.to_string())
            }
            other => fail(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    // Validate the SIA_WORKERS override up front: library code ignores a
    // malformed value, the CLI turns it into a usage error.
    if let Err(e) = sia::core::pool::env_workers() {
        fail(&e);
    }
    let Some(spec_path) = spec_path else {
        fail("fleet needs a SPEC.jsonl path");
    };
    let spec = match FleetSpec::load(&spec_path) {
        Ok(s) => s,
        Err(e) => fail(&e),
    };

    let opts = FleetOptions {
        workers,
        progress: progress.as_ref().map(std::path::PathBuf::from),
    };
    if !quiet {
        eprintln!(
            "fleet {}: {} cells, {} runs",
            spec.name,
            spec.cells().len(),
            spec.total_runs()
        );
    }
    let report = match run_fleet(&spec, &opts) {
        Ok(r) => r,
        Err(e) => fail(&e),
    };
    let paths = match write_fleet_json(&report, std::path::Path::new(&out_dir)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    if json {
        let cells: Vec<serde_json::Value> = report
            .cells
            .iter()
            .zip(&paths)
            .map(|(c, p)| {
                let jct = c
                    .metrics
                    .iter()
                    .find(|(n, _)| *n == "avg_jct_hours")
                    .map(|(_, s)| *s)
                    .unwrap_or_default();
                serde_json::json!({
                    "cell": c.cell.slug(),
                    "runs": c.completed,
                    "failed": c.failed.len() as u64,
                    "avg_jct_hours": jct.mean,
                    "avg_jct_ci95": [jct.ci95.0, jct.ci95.1],
                    "wall_s": c.wall_s,
                    "path": p.display().to_string(),
                })
            })
            .collect();
        let doc = serde_json::json!({
            "fleet": report.fleet.as_str(),
            "total_runs": report.total_runs,
            "total_failed": report.total_failed,
            "workers": report.workers as u64,
            "wall_s": report.wall_s,
            "cells": cells,
        });
        println!("{doc}");
    } else if !quiet {
        for c in &report.cells {
            let jct = c
                .metrics
                .iter()
                .find(|(n, _)| *n == "avg_jct_hours")
                .map(|(_, s)| *s)
                .unwrap_or_default();
            println!(
                "cell {:<44} {:>3} runs ({} failed)  avgJCT {:.2} h [{:.2}, {:.2}]  wall {:.1}s",
                c.cell.slug(),
                c.completed,
                c.failed.len(),
                jct.mean,
                jct.ci95.0,
                jct.ci95.1,
                c.wall_s,
            );
            for f in &c.failed {
                println!("  failed run {} seed {}: {}", f.run_id, f.seed, f.error);
            }
        }
        println!(
            "fleet {}: {} runs ({} failed) across {} cells in {:.1} s with {} workers; \
             {} report(s) in {}",
            report.fleet,
            report.total_runs,
            report.total_failed,
            report.cells.len(),
            report.wall_s,
            report.workers,
            paths.len(),
            out_dir,
        );
    }
    std::process::exit(0);
}

/// `sia-cli top FILE | --connect ENDPOINT`: a one-screen summary of a
/// daemon's Prometheus exposition — from a scraped file (render once) or
/// live from a stats listener (refresh until interrupted). Never returns.
fn top_cmd(argv: &[String]) -> ! {
    const USAGE: &str = "usage: sia-cli top FILE | sia-cli top --connect ENDPOINT \
         [--interval SECS] [--iterations N]";
    let fail = |msg: &str| -> ! {
        eprintln!("{msg}\n{USAGE}");
        std::process::exit(2);
    };
    let mut file: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut interval: f64 = 2.0;
    let mut iterations: Option<u64> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--connect" => connect = Some(take_value(argv, &mut i, "--connect", USAGE)),
            "--interval" => {
                interval = match take_value(argv, &mut i, "--interval", USAGE).parse::<f64>() {
                    Ok(s) if s > 0.0 && s.is_finite() => s,
                    _ => fail("--interval must be a positive number of seconds"),
                }
            }
            "--iterations" => {
                iterations = match take_value(argv, &mut i, "--iterations", USAGE).parse() {
                    Ok(n) if n > 0 => Some(n),
                    _ => fail("--iterations must be a positive integer"),
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => fail(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    if file.is_some() == connect.is_some() {
        fail("top needs exactly one source: a scraped FILE or --connect ENDPOINT");
    }

    if let Some(path) = &file {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        match render_top(&text) {
            Ok(screen) => {
                print!("{screen}");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            }
        }
    }

    let endpoint = connect.unwrap();
    let mut done: u64 = 0;
    loop {
        let text = match scrape_metrics(&endpoint) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot scrape {endpoint}: {e}");
                std::process::exit(1);
            }
        };
        let screen = match render_top(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{endpoint}: {e}");
                std::process::exit(1);
            }
        };
        // Clear screen, cursor home, then the fresh frame.
        print!("\x1b[2J\x1b[H{screen}");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        done += 1;
        if iterations.is_some_and(|k| done >= k) {
            std::process::exit(0);
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(interval));
    }
}

/// Fetches `GET /metrics` from a stats listener endpoint: a Unix socket
/// path (contains `/`) or a TCP `host:port`.
fn scrape_metrics(endpoint: &str) -> Result<String, String> {
    use std::io::{Read as _, Write as _};
    let mut raw = String::new();
    if endpoint.contains('/') {
        #[cfg(unix)]
        {
            let mut conn = std::os::unix::net::UnixStream::connect(endpoint)
                .map_err(|e| format!("connect: {e}"))?;
            write!(conn, "GET /metrics HTTP/1.0\r\n\r\n").map_err(|e| format!("write: {e}"))?;
            conn.read_to_string(&mut raw)
                .map_err(|e| format!("read: {e}"))?;
        }
        #[cfg(not(unix))]
        return Err("Unix socket endpoints are only supported on Unix".to_string());
    } else {
        let mut conn =
            std::net::TcpStream::connect(endpoint).map_err(|e| format!("connect: {e}"))?;
        write!(conn, "GET /metrics HTTP/1.0\r\n\r\n").map_err(|e| format!("write: {e}"))?;
        conn.read_to_string(&mut raw)
            .map_err(|e| format!("read: {e}"))?;
    }
    let status = raw.lines().next().unwrap_or_default();
    if !status.contains("200") {
        return Err(format!("unexpected response: {status}"));
    }
    // Body starts after the blank line ending the response head.
    let body = raw
        .split_once("\r\n\r\n")
        .or_else(|| raw.split_once("\n\n"))
        .map(|(_, b)| b)
        .ok_or("malformed HTTP response (no body)")?;
    Ok(body.to_string())
}

/// Renders one `top` frame from Prometheus exposition text.
fn render_top(exposition: &str) -> Result<String, String> {
    use sia::telemetry::registry::{bucket_counts, bucket_quantile, parse_exposition, Sample};
    let samples = parse_exposition(exposition)?;

    let gauge = |name: &str| -> Option<f64> {
        samples
            .iter()
            .find(|s| s.name == name)
            .map(|s: &Sample| s.value)
    };
    let sum_of = |name: &str| -> f64 {
        samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    };
    // All `(label value, metric value)` pairs of one family, keyed by one
    // label, in exposition (sorted) order.
    let by_label = |name: &str, label: &str| -> Vec<(String, f64)> {
        samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| {
                s.labels
                    .iter()
                    .find(|(k, _)| k == label)
                    .map(|(_, v)| (v.clone(), s.value))
            })
            .collect()
    };
    let fmt_ms = |s: f64| format!("{:.1}ms", s * 1e3);

    let mut out = String::new();
    let stalled = gauge("sia_serve_stalled").unwrap_or(0.0) > 0.5;
    out.push_str(&format!(
        "sia-serve  up {:.0}s  virtual t={:.0}s  rounds {:.0}{}\n",
        gauge("sia_serve_uptime_seconds").unwrap_or(0.0),
        gauge("sia_serve_virtual_time_seconds").unwrap_or(0.0),
        sum_of("sia_engine_rounds_total"),
        if stalled { "  [STALLED]" } else { "" },
    ));

    let job_of = |state: &str| -> f64 {
        by_label("sia_serve_jobs_total", "state")
            .iter()
            .find(|(s, _)| s == state)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    out.push_str(&format!(
        "jobs     : {:.0} active, {:.0} pending | {:.0} submitted, {:.0} admitted, \
         {:.0} rejected, {:.0} cancelled\n",
        gauge("sia_serve_active_jobs").unwrap_or(0.0),
        gauge("sia_serve_pending_jobs").unwrap_or(0.0),
        job_of("submitted"),
        job_of("admitted"),
        job_of("rejected"),
        job_of("cancelled"),
    ));

    let cumulative = bucket_counts(&samples, "sia_serve_request_latency_seconds");
    let quantiles = if cumulative.last().map(|(_, n)| *n).unwrap_or(0.0) > 0.0 {
        let q = |p: f64| {
            bucket_quantile(&cumulative, p)
                .map(fmt_ms)
                .unwrap_or_else(|| "-".to_string())
        };
        format!(" | latency p50 {} p95 {} p99 {}", q(0.50), q(0.95), q(0.99))
    } else {
        String::new()
    };
    out.push_str(&format!(
        "requests : {:.0} handled{}\n",
        sum_of("sia_serve_requests_total"),
        quantiles,
    ));

    let rejections = by_label("sia_serve_rejections_total", "reason");
    if !rejections.is_empty() {
        let detail: Vec<String> = rejections
            .iter()
            .map(|(reason, n)| format!("{reason} {n:.0}"))
            .collect();
        out.push_str(&format!("rejects  : {}\n", detail.join(", ")));
    }

    if let Some(solve) = gauge("sia_solver_last_solve_seconds") {
        let gap = gauge("sia_solver_last_rel_gap")
            .map(|g| format!("{g:.1e}"))
            .unwrap_or_else(|| "-".to_string());
        let warm = gauge("sia_solver_warm_start_hit_ratio")
            .map(|w| format!("{:.0}%", w * 100.0))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "solver   : last solve {} gap {} | warm-hit {} | fallback rounds {:.0} | \
             B&B nodes {:.0} ({:.0} pruned)\n",
            fmt_ms(solve),
            gap,
            warm,
            gauge("sia_solver_fallback_rounds").unwrap_or(0.0),
            gauge("sia_solver_last_bb_nodes").unwrap_or(0.0),
            gauge("sia_solver_last_bb_nodes_pruned").unwrap_or(0.0),
        ));
    }

    let committed = by_label("sia_tenant_committed_gpu_hours", "tenant");
    if !committed.is_empty() {
        let quota_of = |tenant: &str| -> Option<f64> {
            by_label("sia_tenant_quota_gpu_hours", "tenant")
                .iter()
                .find(|(t, _)| t == tenant)
                .map(|(_, v)| *v)
        };
        let pending_of = |tenant: &str| -> f64 {
            by_label("sia_tenant_pending_jobs", "tenant")
                .iter()
                .find(|(t, _)| t == tenant)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        out.push_str("tenants  :");
        for (tenant, used) in &committed {
            let quota = quota_of(tenant)
                .map(|q| format!("/{q:.1}"))
                .unwrap_or_default();
            out.push_str(&format!(
                " {tenant} {used:.1}{quota} GPU-h ({:.0} pending)",
                pending_of(tenant)
            ));
        }
        out.push('\n');
    }

    let ring_of = |ring: &str| -> f64 {
        by_label("sia_ring_dropped_records", "ring")
            .iter()
            .find(|(r, _)| r == ring)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    out.push_str(&format!(
        "rings    : {:.0} trace / {:.0} audit dropped | scrapes {:.0} | heartbeats {:.0}\n",
        ring_of("trace"),
        ring_of("audit"),
        sum_of("sia_serve_scrapes_total"),
        sum_of("sia_serve_heartbeats_total"),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::render_top;

    #[test]
    fn top_renders_a_scraped_exposition() {
        let exposition = "\
# HELP sia_serve_uptime_seconds x
# TYPE sia_serve_uptime_seconds gauge
sia_serve_uptime_seconds 12
# HELP sia_serve_virtual_time_seconds x
# TYPE sia_serve_virtual_time_seconds gauge
sia_serve_virtual_time_seconds 345
# HELP sia_serve_active_jobs x
# TYPE sia_serve_active_jobs gauge
sia_serve_active_jobs 3
# HELP sia_serve_pending_jobs x
# TYPE sia_serve_pending_jobs gauge
sia_serve_pending_jobs 2
# HELP sia_serve_jobs_total x
# TYPE sia_serve_jobs_total counter
sia_serve_jobs_total{state=\"admitted\"} 8
sia_serve_jobs_total{state=\"rejected\"} 1
sia_serve_jobs_total{state=\"submitted\"} 9
# HELP sia_serve_requests_total x
# TYPE sia_serve_requests_total counter
sia_serve_requests_total{cmd=\"query\"} 5
sia_serve_requests_total{cmd=\"submit\"} 9
# HELP sia_serve_request_latency_seconds x
# TYPE sia_serve_request_latency_seconds histogram
sia_serve_request_latency_seconds_bucket{le=\"0.001\"} 10
sia_serve_request_latency_seconds_bucket{le=\"0.01\"} 14
sia_serve_request_latency_seconds_bucket{le=\"+Inf\"} 14
sia_serve_request_latency_seconds_sum 0.05
sia_serve_request_latency_seconds_count 14
# HELP sia_serve_rejections_total x
# TYPE sia_serve_rejections_total counter
sia_serve_rejections_total{stage=\"quota\",reason=\"queue-full\"} 1
# HELP sia_tenant_committed_gpu_hours x
# TYPE sia_tenant_committed_gpu_hours gauge
sia_tenant_committed_gpu_hours{tenant=\"acme\"} 4.5
# HELP sia_tenant_quota_gpu_hours x
# TYPE sia_tenant_quota_gpu_hours gauge
sia_tenant_quota_gpu_hours{tenant=\"acme\"} 10
# HELP sia_ring_dropped_records x
# TYPE sia_ring_dropped_records gauge
sia_ring_dropped_records{ring=\"audit\"} 0
sia_ring_dropped_records{ring=\"trace\"} 7
";
        let screen = render_top(exposition).unwrap();
        assert!(screen.contains("up 12s"), "{screen}");
        assert!(screen.contains("virtual t=345s"), "{screen}");
        assert!(screen.contains("3 active, 2 pending"), "{screen}");
        assert!(screen.contains("9 submitted, 8 admitted"), "{screen}");
        assert!(screen.contains("14 handled"), "{screen}");
        assert!(screen.contains("p50"), "{screen}");
        assert!(screen.contains("queue-full 1"), "{screen}");
        assert!(screen.contains("acme 4.5/10.0 GPU-h"), "{screen}");
        assert!(screen.contains("7 trace / 0 audit dropped"), "{screen}");
        assert!(!screen.contains("[STALLED]"), "{screen}");
    }

    #[test]
    fn top_flags_a_stalled_daemon_and_rejects_garbage() {
        let exposition = "\
# HELP sia_serve_stalled x
# TYPE sia_serve_stalled gauge
sia_serve_stalled 1
";
        let screen = render_top(exposition).unwrap();
        assert!(screen.contains("[STALLED]"), "{screen}");
        assert!(render_top("not an exposition{{{").is_err());
    }
}
