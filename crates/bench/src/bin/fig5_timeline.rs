//! Figure 5: per-job allocation timelines under Sia on the physical-testbed
//! setting.
//!
//! Tracks three jobs of different models (ResNet50/ImageNet-class, a
//! CIFAR-class ResNet18, and a DeepSpeech2 job) through a Sia run, printing
//! `(time, GPU type, #GPUs)` whenever an allocation changes, plus the
//! active-job count. Expected shape: Sia scales jobs down / moves them to
//! slower GPUs as congestion rises, and back up as it drains.

use sia_bench::{run_one, write_json, Policy};
use sia_cluster::ClusterSpec;
use sia_sim::SimConfig;
use sia_workloads::{ModelKind, Trace, TraceConfig, TraceKind};

fn main() {
    let cluster = ClusterSpec::physical_44();
    let trace = Trace::generate(&TraceConfig::new(TraceKind::Physical, 11));
    let result = run_one(Policy::Sia, &cluster, &trace, SimConfig::default(), 11);

    // Pick one job of each target model (the longest-running of each kind).
    let mut picks = Vec::new();
    for kind in [
        ModelKind::ResNet50,
        ModelKind::ResNet18,
        ModelKind::DeepSpeech2,
    ] {
        if let Some(rec) = result
            .records
            .iter()
            .filter(|r| r.model == kind)
            .max_by(|a, b| {
                let ja = a.jct().unwrap_or(0.0);
                let jb = b.jct().unwrap_or(0.0);
                ja.partial_cmp(&jb).unwrap()
            })
        {
            picks.push(rec.id);
        }
    }

    let mut payload = serde_json::Map::new();
    for id in &picks {
        let rec = result.records.iter().find(|r| r.id == *id).unwrap();
        println!(
            "\n== Figure 5: allocations for {} ({}) ==",
            rec.name,
            rec.model.name()
        );
        let mut last: Option<(usize, usize)> = None;
        let mut events = Vec::new();
        for round in &result.rounds {
            let alloc = round
                .allocations
                .iter()
                .find(|(j, _, _)| j == id)
                .map(|&(_, t, g)| (t.0, g));
            if alloc != last {
                let (t_name, gpus) = match alloc {
                    Some((t, g)) => (cluster.kinds()[t].name.clone(), g),
                    None => ("-".into(), 0),
                };
                println!(
                    "  t={:>7.1} min  {:>5} x {}",
                    round.time / 60.0,
                    gpus,
                    t_name
                );
                events.push(serde_json::json!({
                    "time_s": round.time,
                    "gpu_type": t_name,
                    "gpus": gpus,
                }));
                last = alloc;
            }
        }
        payload.insert(rec.name.clone(), serde_json::json!(events));
    }

    let active: Vec<serde_json::Value> = result
        .rounds
        .iter()
        .map(|r| serde_json::json!({"time_s": r.time, "active": r.active_jobs}))
        .collect();
    println!(
        "\nactive jobs: min {} max {}",
        result
            .rounds
            .iter()
            .map(|r| r.active_jobs)
            .min()
            .unwrap_or(0),
        result
            .rounds
            .iter()
            .map(|r| r.active_jobs)
            .max()
            .unwrap_or(0)
    );
    payload.insert("active_jobs".into(), serde_json::json!(active));
    write_json("fig5_timeline", &serde_json::Value::Object(payload));
}
