//! Bounded-variable, two-phase revised simplex.
//!
//! The implementation keeps variable bounds out of the constraint matrix
//! (nonbasic variables rest at their lower or upper bound), maintains a dense
//! basis inverse with eta updates and periodic refactorization, and uses a
//! Dantzig pricing rule with a Bland's-rule fallback for anti-cycling.
//!
//! Problems are converted to the internal standard form
//! `maximize c·x  s.t.  A x = b,  l <= x <= u` by adding one slack or surplus
//! column per inequality row. An all-slack starting basis is used when the
//! slack values are feasible; otherwise artificial columns are added and a
//! phase-1 objective (minimize the sum of artificials) restores feasibility.

// Dense linear-algebra kernels below index several parallel arrays by row;
// iterator rewrites obscure the math without helping codegen.
#![allow(clippy::needless_range_loop)]

use crate::error::SolverError;
use crate::problem::{ConstraintOp, Problem, Sense, Solution};

/// Reduced-cost optimality tolerance.
const OPT_TOL: f64 = 1e-9;
/// Primal feasibility tolerance.
const FEAS_TOL: f64 = 1e-7;
/// Minimum acceptable pivot magnitude.
const PIVOT_TOL: f64 = 1e-8;
/// Refactorize the basis inverse every this many pivots.
const REFACTOR_EVERY: usize = 128;

/// Where a nonbasic variable currently rests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarState {
    Basic(usize),
    AtLower,
    AtUpper,
}

/// Internal standard-form tableau data.
struct Tableau {
    /// Number of rows (constraints).
    m: usize,
    /// Sparse columns: `cols[j]` lists `(row, coefficient)`.
    cols: Vec<Vec<(usize, f64)>>,
    /// Right-hand side (after sign normalization).
    b: Vec<f64>,
    /// Lower bounds per column.
    lower: Vec<f64>,
    /// Upper bounds per column (may be `INFINITY`).
    upper: Vec<f64>,
    /// Phase-2 objective (maximization form).
    cost: Vec<f64>,
    /// Number of structural (user) variables.
    n_struct: usize,
    /// Index of first artificial column, if any.
    first_artificial: usize,
}

/// Mutable solver state over a [`Tableau`].
struct State {
    basis: Vec<usize>,
    state: Vec<VarState>,
    /// Dense row-major basis inverse, `m x m`.
    binv: Vec<f64>,
    /// Values of basic variables, by row.
    xb: Vec<f64>,
    pivots_since_refactor: usize,
}

impl Tableau {
    fn from_problem(p: &Problem) -> Result<(Tableau, State), SolverError> {
        let n = p.num_vars();
        let m = p.num_constraints();
        for (j, (&lo, &up)) in p
            .lower_bounds()
            .iter()
            .zip(p.upper_bounds().iter())
            .enumerate()
        {
            if !lo.is_finite() {
                return Err(SolverError::InvalidModel(format!(
                    "variable {j} has non-finite lower bound"
                )));
            }
            if lo > up {
                return Err(SolverError::InvalidModel(format!(
                    "variable {j} has lower bound {lo} > upper bound {up}"
                )));
            }
        }

        let sign = match p.sense() {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };

        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut cost: Vec<f64> = p.objective().iter().map(|&c| sign * c).collect();
        let mut lower = p.lower_bounds().to_vec();
        let mut upper = p.upper_bounds().to_vec();
        let mut b = Vec::with_capacity(m);
        let mut slack_of_row: Vec<Option<usize>> = vec![None; m];

        for (i, con) in p.constraints().iter().enumerate() {
            if !con.rhs.is_finite() || con.terms.iter().any(|&(_, a)| !a.is_finite()) {
                return Err(SolverError::InvalidModel(format!(
                    "constraint {i} has non-finite data"
                )));
            }
            for &(v, a) in &con.terms {
                if a != 0.0 {
                    cols[v.0].push((i, a));
                }
            }
            b.push(con.rhs);
            match con.op {
                ConstraintOp::Le => {
                    let j = cols.len();
                    cols.push(vec![(i, 1.0)]);
                    cost.push(0.0);
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                    slack_of_row[i] = Some(j);
                }
                ConstraintOp::Ge => {
                    let j = cols.len();
                    cols.push(vec![(i, -1.0)]);
                    cost.push(0.0);
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                    slack_of_row[i] = Some(j);
                }
                ConstraintOp::Eq => {}
            }
        }

        // Coalesce duplicate (row, coeff) entries within each structural column.
        for col in cols.iter_mut().take(n) {
            col.sort_by_key(|&(r, _)| r);
            let mut out: Vec<(usize, f64)> = Vec::with_capacity(col.len());
            for &(r, a) in col.iter() {
                match out.last_mut() {
                    Some((lr, la)) if *lr == r => *la += a,
                    _ => out.push((r, a)),
                }
            }
            out.retain(|&(_, a)| a != 0.0);
            *col = out;
        }

        // Residuals with every non-artificial column at its lower bound.
        let mut resid = b.clone();
        for (j, col) in cols.iter().enumerate() {
            let lo = lower[j];
            if lo != 0.0 {
                for &(r, a) in col {
                    resid[r] -= a * lo;
                }
            }
        }

        // Seed the basis with slacks where feasible; otherwise artificials.
        let mut basis = vec![usize::MAX; m];
        let mut state = vec![VarState::AtLower; cols.len()];
        let first_artificial = cols.len();
        let mut xb = vec![0.0; m];
        let mut n_artificial = 0usize;
        for i in 0..m {
            let usable_slack = match slack_of_row[i] {
                Some(j) => {
                    // Slack column is +/-1 in row i only; basic value must be
                    // feasible (slack lower bound is 0, upper infinite).
                    let coef = cols[j][0].1;
                    let val = resid[i] / coef;
                    if val >= -FEAS_TOL {
                        Some((j, val.max(0.0)))
                    } else {
                        None
                    }
                }
                None => None,
            };
            match usable_slack {
                Some((j, val)) => {
                    basis[i] = j;
                    state[j] = VarState::Basic(i);
                    xb[i] = val;
                }
                None => {
                    let j = cols.len();
                    let coef = if resid[i] >= 0.0 { 1.0 } else { -1.0 };
                    cols.push(vec![(i, coef)]);
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                    cost.push(0.0);
                    state.push(VarState::Basic(i));
                    basis[i] = j;
                    xb[i] = resid[i].abs();
                    n_artificial += 1;
                }
            }
        }
        let _ = n_artificial;

        // The starting basis is diagonal with entries +/-1, so its inverse is
        // the same diagonal.
        let mut binv = vec![0.0; m * m];
        for (i, &bj) in basis.iter().enumerate() {
            binv[i * m + i] = 1.0 / cols[bj][0].1;
        }

        let tab = Tableau {
            m,
            cols,
            b,
            lower,
            upper,
            cost,
            n_struct: n,
            first_artificial,
        };
        let st = State {
            basis,
            state,
            binv,
            xb,
            pivots_since_refactor: 0,
        };
        Ok((tab, st))
    }

    fn n_total(&self) -> usize {
        self.cols.len()
    }

    fn has_artificials(&self) -> bool {
        self.first_artificial < self.n_total()
    }
}

impl State {
    /// Rebuilds the basis inverse and basic values from scratch.
    fn refactorize(&mut self, tab: &Tableau) -> Result<(), SolverError> {
        let m = tab.m;
        // Dense basis matrix.
        let mut mat = vec![0.0; m * m];
        for (k, &j) in self.basis.iter().enumerate() {
            for &(r, a) in &tab.cols[j] {
                mat[r * m + k] = a;
            }
        }
        // Gauss-Jordan inversion with partial pivoting.
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            let mut piv = col;
            let mut best = mat[col * m + col].abs();
            for r in (col + 1)..m {
                let v = mat[r * m + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-12 {
                return Err(SolverError::InvalidModel(
                    "singular basis during refactorization".into(),
                ));
            }
            if piv != col {
                for c in 0..m {
                    mat.swap(col * m + c, piv * m + c);
                    inv.swap(col * m + c, piv * m + c);
                }
            }
            let d = mat[col * m + col];
            for c in 0..m {
                mat[col * m + c] /= d;
                inv[col * m + c] /= d;
            }
            for r in 0..m {
                if r != col {
                    let f = mat[r * m + col];
                    if f != 0.0 {
                        for c in 0..m {
                            mat[r * m + c] -= f * mat[col * m + c];
                            inv[r * m + c] -= f * inv[col * m + c];
                        }
                    }
                }
            }
        }
        self.binv = inv;

        // Recompute basic values: x_B = B^-1 (b - N x_N).
        let mut rhs = tab.b.clone();
        for (j, col) in tab.cols.iter().enumerate() {
            let val = match self.state[j] {
                VarState::Basic(_) => continue,
                VarState::AtLower => tab.lower[j],
                VarState::AtUpper => tab.upper[j],
            };
            if val != 0.0 {
                for &(r, a) in col {
                    rhs[r] -= a * val;
                }
            }
        }
        for i in 0..m {
            let mut v = 0.0;
            for k in 0..m {
                v += self.binv[i * m + k] * rhs[k];
            }
            self.xb[i] = v;
        }
        self.pivots_since_refactor = 0;
        Ok(())
    }

    /// Computes `w = B^-1 a_j` for a sparse column.
    fn ftran(&self, tab: &Tableau, j: usize, w: &mut [f64]) {
        let m = tab.m;
        w.fill(0.0);
        for &(r, a) in &tab.cols[j] {
            if a != 0.0 {
                for i in 0..m {
                    w[i] += self.binv[i * m + r] * a;
                }
            }
        }
    }

    /// Computes the simplex multipliers `y = c_B^T B^-1` for a cost vector.
    fn btran(&self, tab: &Tableau, cost: &[f64], y: &mut [f64]) {
        let m = tab.m;
        y.fill(0.0);
        for (i, &bj) in self.basis.iter().enumerate() {
            let cb = cost[bj];
            if cb != 0.0 {
                for k in 0..m {
                    y[k] += cb * self.binv[i * m + k];
                }
            }
        }
    }
}

/// Outcome of one phase of the simplex loop.
enum PhaseOutcome {
    Optimal,
    Unbounded,
}

/// Runs the simplex loop on `tab` with objective `cost` (maximization).
fn run_phase(
    tab: &Tableau,
    st: &mut State,
    cost: &[f64],
    max_iters: usize,
    iters_used: &mut usize,
) -> Result<PhaseOutcome, SolverError> {
    let m = tab.m;
    let n_total = tab.n_total();
    let mut y = vec![0.0; m];
    let mut w = vec![0.0; m];
    let mut stall = 0usize;
    let bland_after = 4 * (n_total + m) + 64;

    loop {
        if *iters_used >= max_iters {
            return Err(SolverError::IterationLimit(max_iters));
        }
        *iters_used += 1;

        if st.pivots_since_refactor >= REFACTOR_EVERY {
            st.refactorize(tab)?;
        }

        st.btran(tab, cost, &mut y);

        // Pricing: pick the entering variable.
        let use_bland = stall > bland_after;
        let mut enter: Option<(usize, f64, f64)> = None; // (col, reduced cost, direction)
        for j in 0..n_total {
            let dirn = match st.state[j] {
                VarState::Basic(_) => continue,
                VarState::AtLower => 1.0,
                VarState::AtUpper => -1.0,
            };
            // Fixed variables can never improve the objective.
            if tab.upper[j] - tab.lower[j] < 1e-15 {
                continue;
            }
            let mut d = cost[j];
            for &(r, a) in &tab.cols[j] {
                d -= y[r] * a;
            }
            let improving = d * dirn > OPT_TOL;
            if improving {
                if use_bland {
                    enter = Some((j, d, dirn));
                    break;
                }
                match enter {
                    Some((_, dbest, _)) if d.abs() <= dbest.abs() => {}
                    _ => enter = Some((j, d, dirn)),
                }
            }
        }

        let (j_in, _d_in, dirn) = match enter {
            Some(e) => e,
            None => return Ok(PhaseOutcome::Optimal),
        };

        st.ftran(tab, j_in, &mut w);

        // Ratio test: entering moves by t >= 0 in direction `dirn`; basic
        // variable i changes by -dirn * w[i] * t.
        let mut t_limit = tab.upper[j_in] - tab.lower[j_in]; // bound flip distance
        let mut leave: Option<usize> = None; // row index
        let mut leave_to_upper = false;
        let mut best_piv = 0.0;
        for i in 0..m {
            let delta = -dirn * w[i];
            if delta < -PIVOT_TOL {
                // Basic value decreases toward its lower bound.
                let bj = st.basis[i];
                let room = st.xb[i] - tab.lower[bj];
                let t = (room.max(0.0)) / (-delta);
                if t < t_limit - FEAS_TOL || (t < t_limit + FEAS_TOL && w[i].abs() > best_piv) {
                    t_limit = t.min(t_limit);
                    leave = Some(i);
                    leave_to_upper = false;
                    best_piv = w[i].abs();
                }
            } else if delta > PIVOT_TOL {
                // Basic value increases toward its upper bound.
                let bj = st.basis[i];
                if tab.upper[bj].is_finite() {
                    let room = tab.upper[bj] - st.xb[i];
                    let t = (room.max(0.0)) / delta;
                    if t < t_limit - FEAS_TOL || (t < t_limit + FEAS_TOL && w[i].abs() > best_piv) {
                        t_limit = t.min(t_limit);
                        leave = Some(i);
                        leave_to_upper = true;
                        best_piv = w[i].abs();
                    }
                }
            }
        }

        if t_limit.is_infinite() {
            return Ok(PhaseOutcome::Unbounded);
        }
        if t_limit <= FEAS_TOL {
            stall += 1;
        } else {
            stall = 0;
        }
        let t = t_limit.max(0.0);

        match leave {
            None => {
                // Bound flip: the entering variable runs to its other bound.
                for i in 0..m {
                    st.xb[i] -= dirn * w[i] * t;
                }
                st.state[j_in] = if dirn > 0.0 {
                    VarState::AtUpper
                } else {
                    VarState::AtLower
                };
            }
            Some(r) => {
                let j_out = st.basis[r];
                // New values.
                for i in 0..m {
                    st.xb[i] -= dirn * w[i] * t;
                }
                let enter_from = if dirn > 0.0 {
                    tab.lower[j_in]
                } else {
                    tab.upper[j_in]
                };
                let enter_val = enter_from + dirn * t;
                // Pivot the basis inverse: row r is the pivot row.
                let wr = w[r];
                if wr.abs() < PIVOT_TOL {
                    // Numerically degenerate pivot; refactorize and retry.
                    st.refactorize(tab)?;
                    continue;
                }
                let (head, mut tail) = split_row(&mut st.binv, r, m);
                let pivot_row = head;
                for i in 0..m {
                    if i == r {
                        continue;
                    }
                    let f = w[i] / wr;
                    if f != 0.0 {
                        let row_i = row_mut(&mut tail, i, r, m);
                        for k in 0..m {
                            row_i[k] -= f * pivot_row[k];
                        }
                    }
                }
                for v in pivot_row.iter_mut() {
                    *v /= wr;
                }

                st.basis[r] = j_in;
                st.state[j_in] = VarState::Basic(r);
                st.state[j_out] = if leave_to_upper {
                    VarState::AtUpper
                } else {
                    VarState::AtLower
                };
                st.xb[r] = enter_val;
                st.pivots_since_refactor += 1;
            }
        }
    }
}

/// Splits the dense matrix so the pivot row can be read while other rows are
/// mutated. Returns `(pivot_row, rest)` where `rest` is the full matrix minus
/// the pivot row, addressed through [`row_mut`].
fn split_row(binv: &mut [f64], r: usize, m: usize) -> (&mut [f64], RowAccess<'_>) {
    let (before, at) = binv.split_at_mut(r * m);
    let (row, after) = at.split_at_mut(m);
    (row, RowAccess { before, after, m })
}

/// Access to all rows of a matrix except one (see [`split_row`]).
struct RowAccess<'a> {
    before: &'a mut [f64],
    after: &'a mut [f64],
    m: usize,
}

/// Returns a mutable view of row `i` (which must differ from the pivot row
/// `r`) from a [`RowAccess`].
fn row_mut<'a>(acc: &'a mut RowAccess<'_>, i: usize, r: usize, m: usize) -> &'a mut [f64] {
    debug_assert_ne!(i, r);
    debug_assert_eq!(m, acc.m);
    if i < r {
        &mut acc.before[i * m..(i + 1) * m]
    } else {
        let k = i - r - 1;
        &mut acc.after[k * m..(k + 1) * m]
    }
}

/// Solves the LP relaxation of `p` with the default iteration limit.
pub fn solve(p: &Problem) -> Result<Solution, SolverError> {
    solve_with_limit(p, default_iteration_limit(p))
}

/// Returns the default simplex iteration budget for a problem.
pub fn default_iteration_limit(p: &Problem) -> usize {
    200 * (p.num_vars() + p.num_constraints()) + 2000
}

/// Solves the LP relaxation of `p` with an explicit iteration limit.
///
/// Telemetry: bumps `solver.simplex.solves` / `solver.simplex.pivots` once
/// per call (aggregated — never per pivot), plus `solver.simplex.infeasible`
/// or `solver.simplex.iteration_limit` on those outcomes.
pub fn solve_with_limit(p: &Problem, max_iters: usize) -> Result<Solution, SolverError> {
    let mut iters = 0usize;
    let out = solve_with_limit_inner(p, max_iters, &mut iters);
    sia_telemetry::counter("solver.simplex.solves").incr();
    sia_telemetry::counter("solver.simplex.pivots").add(iters as u64);
    match &out {
        Err(SolverError::Infeasible) => {
            sia_telemetry::counter("solver.simplex.infeasible").incr();
        }
        Err(SolverError::IterationLimit(_)) => {
            sia_telemetry::counter("solver.simplex.iteration_limit").incr();
        }
        _ => {}
    }
    out
}

fn solve_with_limit_inner(
    p: &Problem,
    max_iters: usize,
    iters: &mut usize,
) -> Result<Solution, SolverError> {
    let (tab, mut st) = Tableau::from_problem(p)?;

    // Phase 1: drive artificials to zero.
    if tab.has_artificials() {
        let mut c1 = vec![0.0; tab.n_total()];
        for cj in c1.iter_mut().skip(tab.first_artificial) {
            *cj = -1.0;
        }
        match run_phase(&tab, &mut st, &c1, max_iters, iters)? {
            PhaseOutcome::Optimal => {}
            PhaseOutcome::Unbounded => {
                return Err(SolverError::InvalidModel(
                    "phase-1 objective reported unbounded".into(),
                ))
            }
        }
        let infeas: f64 = (0..tab.m)
            .filter(|&i| st.basis[i] >= tab.first_artificial)
            .map(|i| st.xb[i])
            .sum();
        let nonbasic_art: f64 = (tab.first_artificial..tab.n_total())
            .filter_map(|j| match st.state[j] {
                VarState::AtUpper => Some(tab.upper[j]),
                _ => None,
            })
            .sum();
        if infeas + nonbasic_art > 1e-6 {
            return Err(SolverError::Infeasible);
        }
    }

    // Phase 2: real objective. Artificials are pinned at zero by treating
    // them as fixed (their cost is zero and they are skipped when fixed).
    let mut tab = tab;
    for j in tab.first_artificial..tab.n_total() {
        tab.upper[j] = 0.0;
    }
    let cost = tab.cost.clone();
    match run_phase(&tab, &mut st, &cost, max_iters, iters)? {
        PhaseOutcome::Optimal => {}
        PhaseOutcome::Unbounded => return Err(SolverError::Unbounded),
    }

    // Extract structural values.
    let mut x = vec![0.0; tab.n_struct];
    for (j, xj) in x.iter_mut().enumerate() {
        *xj = match st.state[j] {
            VarState::Basic(i) => st.xb[i],
            VarState::AtLower => tab.lower[j],
            VarState::AtUpper => tab.upper[j],
        };
    }
    // Clamp tiny numerical drift back into bounds.
    for (j, xj) in x.iter_mut().enumerate() {
        let (lo, up) = (p.lower_bounds()[j], p.upper_bounds()[j]);
        if *xj < lo {
            *xj = lo;
        }
        if up.is_finite() && *xj > up {
            *xj = up;
        }
        if xj.abs() < 1e-12 {
            *xj = 0.0;
        }
    }
    let objective = p.eval_objective(&x);
    Ok(Solution {
        objective,
        values: x,
        pivots: *iters,
    })
}

#[cfg(test)]
mod tests {
    use crate::problem::{Problem, Sense};
    use crate::SolverError;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn maximize_simple_two_var() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(3.0, 0.0, f64::INFINITY);
        let y = p.add_var(5.0, 0.0, f64::INFINITY);
        p.add_le(&[(x, 1.0)], 4.0);
        p.add_le(&[(y, 2.0)], 12.0);
        p.add_le(&[(x, 3.0), (y, 2.0)], 18.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn minimize_with_ge_constraints_needs_phase1() {
        // minimize 2x + 3y  s.t.  x + y >= 4,  x + 3y >= 6
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(2.0, 0.0, f64::INFINITY);
        let y = p.add_var(3.0, 0.0, f64::INFINITY);
        p.add_ge(&[(x, 1.0), (y, 1.0)], 4.0);
        p.add_ge(&[(x, 1.0), (y, 3.0)], 6.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 9.0);
        assert_close(s.value(x), 3.0);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn equality_constraints() {
        // maximize x + 2y  s.t.  x + y == 3,  x - y <= 1
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, f64::INFINITY);
        let y = p.add_var(2.0, 0.0, f64::INFINITY);
        p.add_eq(&[(x, 1.0), (y, 1.0)], 3.0);
        p.add_le(&[(x, 1.0), (y, -1.0)], 1.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 6.0);
        assert_close(s.value(x), 0.0);
        assert_close(s.value(y), 3.0);
    }

    #[test]
    fn upper_bounds_without_rows() {
        // Bounds must be honored without materializing constraint rows.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, 2.5);
        let y = p.add_var(1.0, 0.0, 1.0);
        p.add_le(&[(x, 1.0), (y, 1.0)], 10.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 3.5);
        assert_close(s.value(x), 2.5);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn nonzero_lower_bounds() {
        // minimize x + y  s.t.  x + y >= 3,  x >= 1.5 (bound), y >= 0.5 (bound)
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(1.0, 1.5, f64::INFINITY);
        let y = p.add_var(1.0, 0.5, f64::INFINITY);
        p.add_ge(&[(x, 1.0), (y, 1.0)], 3.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 3.0);
        assert!(s.value(x) >= 1.5 - 1e-9);
        assert!(s.value(y) >= 0.5 - 1e-9);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, f64::INFINITY);
        p.add_le(&[(x, 1.0)], 1.0);
        p.add_ge(&[(x, 1.0)], 2.0);
        assert_eq!(p.solve_lp().unwrap_err(), SolverError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, f64::INFINITY);
        let y = p.add_var(0.0, 0.0, f64::INFINITY);
        p.add_le(&[(x, 1.0), (y, -1.0)], 1.0);
        assert_eq!(p.solve_lp().unwrap_err(), SolverError::Unbounded);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, f64::INFINITY);
        let y = p.add_var(1.0, 0.0, f64::INFINITY);
        p.add_le(&[(x, 1.0), (y, 1.0)], 2.0);
        p.add_le(&[(x, 2.0), (y, 2.0)], 4.0);
        p.add_le(&[(x, 1.0)], 2.0);
        p.add_le(&[(y, 1.0)], 2.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn negative_rhs_rows() {
        // x - y <= -1 with x,y >= 0 forces y >= x + 1.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(0.0, 0.0, f64::INFINITY);
        let y = p.add_var(1.0, 0.0, f64::INFINITY);
        p.add_le(&[(x, 1.0), (y, -1.0)], -1.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 1.0);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn duplicate_terms_are_summed() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, f64::INFINITY);
        // 0.5x + 0.5x <= 3  =>  x <= 3
        p.add_le(&[(x, 0.5), (x, 0.5)], 3.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn fixed_variables_respected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(5.0, 2.0, 2.0);
        let y = p.add_var(1.0, 0.0, f64::INFINITY);
        p.add_le(&[(x, 1.0), (y, 1.0)], 5.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 3.0);
        assert_close(s.objective, 13.0);
    }

    #[test]
    fn empty_objective_feasibility_check() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(0.0, 0.0, 1.0);
        p.add_eq(&[(x, 1.0)], 0.25);
        let s = p.solve_lp().unwrap();
        assert_close(s.value(x), 0.25);
    }

    #[test]
    fn moderately_sized_assignment_lp() {
        // 30 jobs x 10 configs, one capacity row: a small Sia-shaped LP.
        let mut p = Problem::new(Sense::Maximize);
        let mut vars = Vec::new();
        for i in 0..30 {
            for j in 0..10 {
                let util = 1.0 + ((i * 7 + j * 13) % 17) as f64 / 17.0;
                vars.push((i, j, p.add_var(util, 0.0, 1.0)));
            }
        }
        for i in 0..30 {
            let row: Vec<_> = vars
                .iter()
                .filter(|&&(vi, _, _)| vi == i)
                .map(|&(_, _, v)| (v, 1.0))
                .collect();
            p.add_le(&row, 1.0);
        }
        let cap_row: Vec<_> = vars
            .iter()
            .map(|&(_, j, v)| (v, (1 << (j % 4)) as f64))
            .collect();
        p.add_le(&cap_row, 40.0);
        let s = p.solve_lp().unwrap();
        assert!(s.objective > 0.0);
        assert!(p.max_violation(&s.values) < 1e-6);
    }
}
