//! Themis (NSDI '20), simplified: leximin finish-time fairness for rigid
//! jobs.
//!
//! Themis repeatedly offers resources to the currently worst-off jobs by
//! finish-time-fairness ratio `rho` (a partial-allocation auction in the
//! original; a greedy worst-first allocation here — see DESIGN.md). It is
//! heterogeneity-unaware and lease-based: every round the auction runs
//! afresh, so allocations churn, and it never adapts batch size or GPU
//! count.

use sia_cluster::ClusterView;
use sia_sim::{AllocationMap, JobView, Scheduler};

use crate::shockwave::ftf_deficit;
use crate::util::{rigid_demand, LooseFree};

/// Tunables for the simplified Themis.
#[derive(Debug, Clone)]
pub struct ThemisConfig {
    /// Round (lease) duration, seconds.
    pub round_duration: f64,
}

impl Default for ThemisConfig {
    fn default() -> Self {
        ThemisConfig {
            round_duration: 360.0,
        }
    }
}

/// The simplified Themis policy.
#[derive(Debug, Clone, Default)]
pub struct ThemisPolicy {
    cfg: ThemisConfig,
    /// Round counter used to rotate type preference (het-unaware).
    counter: u64,
}

impl ThemisPolicy {
    /// Creates the policy with explicit configuration.
    pub fn new(cfg: ThemisConfig) -> Self {
        ThemisPolicy { cfg, counter: 0 }
    }
}

impl Scheduler for ThemisPolicy {
    fn name(&self) -> &'static str {
        "themis"
    }

    fn round_duration(&self) -> f64 {
        self.cfg.round_duration
    }

    fn schedule(
        &mut self,
        _now: f64,
        jobs: &[JobView<'_>],
        cluster: &ClusterView,
    ) -> AllocationMap {
        let _span = sia_telemetry::span("baseline.themis.schedule");
        sia_telemetry::counter("baseline.themis.rounds").incr();
        let spec = cluster.spec();
        self.counter += 1;
        // Worst-off first (largest rho).
        let mut order: Vec<(f64, usize)> = jobs
            .iter()
            .enumerate()
            .map(|(i, v)| (ftf_deficit(v, spec), i))
            .collect();
        order.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

        let n_types = spec.num_gpu_types();
        let mut free = LooseFree::for_view(cluster);
        let mut out = AllocationMap::new();
        for (rank, &(_, i)) in order.iter().enumerate() {
            let view = &jobs[i];
            let demand = rigid_demand(view);
            // Heterogeneity-unaware: rotate through types so no job class
            // monopolizes a type; take the first with capacity.
            let start = (self.counter as usize + rank) % n_types;
            for k in 0..n_types {
                let t = sia_cluster::GpuTypeId((start + k) % n_types);
                if view.gpus_per_replica(spec, t) != Some(1)
                    && view.gpus_per_replica(spec, t).is_none()
                {
                    continue;
                }
                if let Some(p) = free.take(spec, t, demand) {
                    out.insert(view.id, p);
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_cluster::{ClusterSpec, JobId, Placement};
    use sia_models::{BatchLimits, EfficiencyParams, JobEstimator, ThroughputParams};
    use sia_workloads::{Adaptivity, JobSpec, ModelKind, SizeCategory};

    fn params(speed: f64) -> ThroughputParams {
        ThroughputParams {
            alpha_c: 0.05 / speed,
            beta_c: 0.002 / speed,
            alpha_n: 0.02,
            beta_n: 0.005,
            alpha_d: 0.1,
            beta_d: 0.02,
            gamma: 2.5,
            max_local_bsz: 256.0,
        }
    }

    struct Fx {
        specs: Vec<JobSpec>,
        ests: Vec<JobEstimator>,
        curs: Vec<Placement>,
        ages: Vec<f64>,
    }

    impl Fx {
        fn new(n: usize, demand: usize) -> Self {
            let specs = (0..n as u64)
                .map(|i| JobSpec {
                    id: JobId(i),
                    name: format!("j{i}"),
                    model: ModelKind::ResNet18,
                    category: SizeCategory::Small,
                    submit_time: 0.0,
                    adaptivity: Adaptivity::Rigid {
                        batch_size: 512.0,
                        num_gpus: demand,
                    },
                    min_gpus: 1,
                    max_gpus: 64,
                    work_target: 1e7,
                })
                .collect();
            let ests = (0..n)
                .map(|_| {
                    JobEstimator::oracle(
                        vec![params(1.0), params(1.8), params(4.0)],
                        EfficiencyParams::new(2000.0, 128.0),
                        BatchLimits::fixed(512.0),
                    )
                })
                .collect();
            Fx {
                specs,
                ests,
                curs: vec![Placement::empty(); n],
                ages: vec![300.0; n],
            }
        }

        fn views(&self) -> Vec<JobView<'_>> {
            self.specs
                .iter()
                .zip(&self.ests)
                .zip(self.curs.iter().zip(&self.ages))
                .map(|((spec, est), (cur, &age))| JobView {
                    id: spec.id,
                    spec,
                    estimator: est,
                    current: cur,
                    age,
                    restarts: 0,
                    restart_delay: 30.0,
                    progress: 0.1,
                })
                .collect()
        }
    }

    #[test]
    fn worst_off_job_allocated_first() {
        let cluster = ClusterView::new(ClusterSpec::heterogeneous_64());
        let mut fx = Fx::new(20, 8); // only 8 jobs fit
        fx.ages[13] = 80_000.0;
        let mut themis = ThemisPolicy::default();
        let out = themis.schedule(0.0, &fx.views(), &cluster);
        assert!(out.contains_key(&JobId(13)));
        let used: usize = out.values().map(|p| p.total_gpus()).sum();
        assert!(used <= 64);
    }

    #[test]
    fn packs_cluster_fully_when_demands_fit() {
        let cluster = ClusterView::new(ClusterSpec::homogeneous_64());
        let fx = Fx::new(16, 4);
        let mut themis = ThemisPolicy::default();
        let out = themis.schedule(0.0, &fx.views(), &cluster);
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn rotation_varies_type_assignment() {
        let cluster = ClusterView::new(ClusterSpec::heterogeneous_64());
        let fx = Fx::new(1, 4);
        let mut themis = ThemisPolicy::default();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..6 {
            let out = themis.schedule(0.0, &fx.views(), &cluster);
            seen.insert(out[&JobId(0)].gpu_type(cluster.spec()));
        }
        assert!(seen.len() >= 2, "het-unaware rotation must vary the type");
    }
}
