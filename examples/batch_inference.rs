//! Scheduling batch-inference jobs alongside training (§3.4, "Scheduling
//! other workload types").
//!
//! Batch inference over a large dataset has no statistical-efficiency
//! dimension: throughput *is* goodput, and with no gradient all-reduce it
//! scales almost linearly. Sia schedules such jobs with the same ILP — they
//! simply provide a different goodput estimator — and they soak up
//! leftover capacity without starving training jobs.
//!
//! Run with: `cargo run --release --example batch_inference`

use sia::cluster::ClusterSpec;
use sia::core::SiaPolicy;
use sia::metrics::summarize;
use sia::sim::{SimConfig, Simulator};
use sia::workloads::{ModelKind, Trace, TraceConfig, TraceKind};

fn main() {
    let cluster = ClusterSpec::heterogeneous_64();
    let mut trace = Trace::generate(
        &TraceConfig::new(TraceKind::Physical, 21)
            .with_rate(8.0)
            .with_max_gpus_cap(16),
    );
    // Three batch-inference sweeps arriving through the window.
    trace.push_inference_job(300.0, 16);
    trace.push_inference_job(3600.0, 16);
    trace.push_inference_job(7200.0, 16);

    let result = Simulator::new(cluster.clone(), &trace, SimConfig::default())
        .run(&mut SiaPolicy::default());
    let s = summarize(&result);
    println!(
        "{} jobs ({} inference), avg JCT {:.2} h, {} unfinished",
        result.records.len(),
        result
            .records
            .iter()
            .filter(|r| r.model == ModelKind::BertInference)
            .count(),
        s.avg_jct_hours,
        s.unfinished
    );
    println!("\ninference jobs:");
    for r in result
        .records
        .iter()
        .filter(|r| r.model == ModelKind::BertInference)
    {
        println!(
            "  {:<22} JCT {:>6.2} h  GPU-hours {:>6.1}  restarts {}",
            r.name,
            r.jct().map(|j| j / 3600.0).unwrap_or(f64::NAN),
            r.gpu_seconds / 3600.0,
            r.restarts
        );
    }
}
