/root/repo/target/release/deps/fig4_physical-1503d725c7bcea71.d: crates/bench/src/bin/fig4_physical.rs

/root/repo/target/release/deps/fig4_physical-1503d725c7bcea71: crates/bench/src/bin/fig4_physical.rs

crates/bench/src/bin/fig4_physical.rs:
