//! Scripted capacity-event schedules.
//!
//! A [`DynamicsScript`] is an ordered list of `(time, CapacityEvent)`
//! entries describing how cluster capacity changes over a simulation. It is
//! the *serializable* half of the subsystem: build one with the fluent
//! [`DynamicsScript::at`] API or parse it from JSONL (one event object per
//! line), validate it against a [`ClusterSpec`], and hand it to the
//! simulator via `SimConfig::dynamics`. The executable half is
//! [`crate::DynamicsRuntime`].

use serde_json::{json, Value};
use sia_cluster::ClusterSpec;

/// One scripted capacity change. GPU types are referenced by kind *name*
/// (resolved against the cluster when the script is compiled), node counts
/// by cardinality — concrete node ids are chosen deterministically at
/// apply time, so the same script works across cluster sizes.
#[derive(Debug, Clone, PartialEq)]
pub enum CapacityEvent {
    /// Add `num_nodes` fresh nodes of an existing GPU kind.
    Add {
        /// GPU kind name.
        gpu_type: String,
        /// Number of nodes to add.
        num_nodes: usize,
        /// GPUs per added node.
        gpus_per_node: usize,
    },
    /// Abruptly kill `num_nodes` nodes: running jobs are evicted at the
    /// next round boundary and lose progress since their last checkpoint.
    Remove {
        /// GPU kind name.
        gpu_type: String,
        /// Number of nodes to remove.
        num_nodes: usize,
    },
    /// Gracefully drain `num_nodes` nodes: no new placements from the next
    /// round on; running jobs are evicted (keeping their progress) at the
    /// first round boundary at least `grace` seconds later.
    Drain {
        /// GPU kind name.
        gpu_type: String,
        /// Number of nodes to drain.
        num_nodes: usize,
        /// Grace window in seconds (0 = evict at the next round).
        grace: f64,
    },
    /// Degrade `num_nodes` nodes to a straggler throughput multiplier.
    Degrade {
        /// GPU kind name.
        gpu_type: String,
        /// Number of nodes to degrade.
        num_nodes: usize,
        /// Multiplier on true throughput, in `(0, 1]` typically.
        factor: f64,
    },
    /// Restore up to `num_nodes` degraded nodes to full throughput.
    Restore {
        /// GPU kind name.
        gpu_type: String,
        /// Number of nodes to restore.
        num_nodes: usize,
    },
}

impl CapacityEvent {
    /// The JSONL `ev` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            CapacityEvent::Add { .. } => "add",
            CapacityEvent::Remove { .. } => "remove",
            CapacityEvent::Drain { .. } => "drain",
            CapacityEvent::Degrade { .. } => "degrade",
            CapacityEvent::Restore { .. } => "restore",
        }
    }

    /// The GPU kind name the event targets.
    pub fn gpu_type(&self) -> &str {
        match self {
            CapacityEvent::Add { gpu_type, .. }
            | CapacityEvent::Remove { gpu_type, .. }
            | CapacityEvent::Drain { gpu_type, .. }
            | CapacityEvent::Degrade { gpu_type, .. }
            | CapacityEvent::Restore { gpu_type, .. } => gpu_type,
        }
    }
}

/// One `(time, event)` entry of a script.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptEntry {
    /// Simulation time (seconds) at which the event takes effect.
    pub time: f64,
    /// The capacity event.
    pub event: CapacityEvent,
}

/// Why a script failed to parse or validate.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsError {
    /// 1-based JSONL line (0 when the error is not tied to a line).
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for DynamicsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "dynamics script line {}: {}", self.line, self.msg)
        } else {
            write!(f, "dynamics script: {}", self.msg)
        }
    }
}

impl std::error::Error for DynamicsError {}

fn err(line: usize, msg: impl Into<String>) -> DynamicsError {
    DynamicsError {
        line,
        msg: msg.into(),
    }
}

/// A deterministic timeline of capacity events.
///
/// Entries are kept stably sorted by time, so two scripts built from the
/// same events in any insertion order compile to the same runtime.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DynamicsScript {
    entries: Vec<ScriptEntry>,
}

impl DynamicsScript {
    /// An empty script.
    pub fn new() -> Self {
        DynamicsScript::default()
    }

    /// Adds an event at `time` (seconds), keeping entries sorted by time
    /// (stable: same-time events preserve insertion order).
    pub fn at(mut self, time: f64, event: CapacityEvent) -> Self {
        assert!(
            time.is_finite() && time >= 0.0,
            "event time must be finite and non-negative"
        );
        let idx = self
            .entries
            .partition_point(|e| e.time.total_cmp(&time) != std::cmp::Ordering::Greater);
        self.entries.insert(idx, ScriptEntry { time, event });
        self
    }

    /// The entries, sorted by time.
    pub fn entries(&self) -> &[ScriptEntry] {
        &self.entries
    }

    /// True if the script holds no events.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Checks every event against a cluster spec: GPU kind names must
    /// exist, node counts must be positive, degradation factors positive
    /// and grace windows non-negative.
    pub fn validate(&self, spec: &ClusterSpec) -> Result<(), DynamicsError> {
        for (i, e) in self.entries.iter().enumerate() {
            let line = i + 1;
            let name = e.event.gpu_type();
            if spec.gpu_type_by_name(name).is_none() {
                return Err(err(line, format!("unknown GPU type {name:?}")));
            }
            match &e.event {
                CapacityEvent::Add {
                    num_nodes,
                    gpus_per_node,
                    ..
                } => {
                    if *num_nodes == 0 || *gpus_per_node == 0 {
                        return Err(err(line, "add needs positive nodes and gpus_per_node"));
                    }
                    let existing = spec
                        .gpus_per_node_of_type(spec.gpu_type_by_name(name).expect("checked above"));
                    if *gpus_per_node != existing {
                        return Err(err(
                            line,
                            format!(
                                "add of {gpus_per_node}-GPU nodes breaks the uniform \
                                 {existing}-GPU shape of type {name:?}"
                            ),
                        ));
                    }
                }
                CapacityEvent::Remove { num_nodes, .. }
                | CapacityEvent::Restore { num_nodes, .. } => {
                    if *num_nodes == 0 {
                        return Err(err(line, "node count must be positive"));
                    }
                }
                CapacityEvent::Drain {
                    num_nodes, grace, ..
                } => {
                    if *num_nodes == 0 {
                        return Err(err(line, "node count must be positive"));
                    }
                    if !grace.is_finite() || *grace < 0.0 {
                        return Err(err(line, "grace must be finite and non-negative"));
                    }
                }
                CapacityEvent::Degrade {
                    num_nodes, factor, ..
                } => {
                    if *num_nodes == 0 {
                        return Err(err(line, "node count must be positive"));
                    }
                    if !factor.is_finite() || *factor <= 0.0 {
                        return Err(err(line, "degradation factor must be positive"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Serializes to JSONL: one event object per line, in time order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let mut v = match &e.event {
                CapacityEvent::Add {
                    gpu_type,
                    num_nodes,
                    gpus_per_node,
                } => json!({
                    "gpu_type": gpu_type.clone(),
                    "nodes": *num_nodes as u64,
                    "gpus_per_node": *gpus_per_node as u64,
                }),
                CapacityEvent::Remove {
                    gpu_type,
                    num_nodes,
                } => json!({
                    "gpu_type": gpu_type.clone(),
                    "nodes": *num_nodes as u64,
                }),
                CapacityEvent::Drain {
                    gpu_type,
                    num_nodes,
                    grace,
                } => json!({
                    "gpu_type": gpu_type.clone(),
                    "nodes": *num_nodes as u64,
                    "grace": *grace,
                }),
                CapacityEvent::Degrade {
                    gpu_type,
                    num_nodes,
                    factor,
                } => json!({
                    "gpu_type": gpu_type.clone(),
                    "nodes": *num_nodes as u64,
                    "factor": *factor,
                }),
                CapacityEvent::Restore {
                    gpu_type,
                    num_nodes,
                } => json!({
                    "gpu_type": gpu_type.clone(),
                    "nodes": *num_nodes as u64,
                }),
            };
            if let Value::Object(m) = &mut v {
                m.insert("t".to_string(), Value::Float(e.time));
                m.insert("ev".to_string(), Value::String(e.event.kind().to_string()));
            }
            out.push_str(&serde_json::to_string(&v).expect("Value serialization is infallible"));
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL document (blank lines and `#` comment lines are
    /// skipped). Errors carry the offending 1-based line number.
    pub fn parse_jsonl(text: &str) -> Result<Self, DynamicsError> {
        let mut script = DynamicsScript::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let v: Value = serde_json::from_str(trimmed)
                .map_err(|e| err(line, format!("invalid JSON: {e}")))?;
            let t = v
                .get("t")
                .and_then(Value::as_f64)
                .ok_or_else(|| err(line, "missing numeric field \"t\""))?;
            if !t.is_finite() || t < 0.0 {
                return Err(err(line, "\"t\" must be finite and non-negative"));
            }
            let ev = v
                .get("ev")
                .and_then(Value::as_str)
                .ok_or_else(|| err(line, "missing string field \"ev\""))?;
            let gpu_type = v
                .get("gpu_type")
                .and_then(Value::as_str)
                .ok_or_else(|| err(line, "missing string field \"gpu_type\""))?
                .to_string();
            let nodes = v
                .get("nodes")
                .and_then(Value::as_u64)
                .ok_or_else(|| err(line, "missing integer field \"nodes\""))?
                as usize;
            let event = match ev {
                "add" => CapacityEvent::Add {
                    gpu_type,
                    num_nodes: nodes,
                    gpus_per_node: v
                        .get("gpus_per_node")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| err(line, "add needs integer \"gpus_per_node\""))?
                        as usize,
                },
                "remove" => CapacityEvent::Remove {
                    gpu_type,
                    num_nodes: nodes,
                },
                "drain" => CapacityEvent::Drain {
                    gpu_type,
                    num_nodes: nodes,
                    grace: v.get("grace").and_then(Value::as_f64).unwrap_or(0.0),
                },
                "degrade" => CapacityEvent::Degrade {
                    gpu_type,
                    num_nodes: nodes,
                    factor: v
                        .get("factor")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| err(line, "degrade needs numeric \"factor\""))?,
                },
                "restore" => CapacityEvent::Restore {
                    gpu_type,
                    num_nodes: nodes,
                },
                other => return Err(err(line, format!("unknown event kind {other:?}"))),
            };
            script = script.at(t, event);
        }
        Ok(script)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shrink_grow() -> DynamicsScript {
        DynamicsScript::new()
            .at(
                7200.0,
                CapacityEvent::Add {
                    gpu_type: "a100".into(),
                    num_nodes: 2,
                    gpus_per_node: 8,
                },
            )
            .at(
                3600.0,
                CapacityEvent::Remove {
                    gpu_type: "a100".into(),
                    num_nodes: 2,
                },
            )
    }

    #[test]
    fn entries_sorted_by_time() {
        let s = shrink_grow();
        assert_eq!(s.len(), 2);
        assert_eq!(s.entries()[0].time, 3600.0);
        assert_eq!(s.entries()[0].event.kind(), "remove");
        assert_eq!(s.entries()[1].event.kind(), "add");
    }

    #[test]
    fn jsonl_round_trip() {
        let s = DynamicsScript::new()
            .at(
                10.0,
                CapacityEvent::Drain {
                    gpu_type: "t4".into(),
                    num_nodes: 1,
                    grace: 120.0,
                },
            )
            .at(
                20.0,
                CapacityEvent::Degrade {
                    gpu_type: "rtx".into(),
                    num_nodes: 2,
                    factor: 0.5,
                },
            )
            .at(
                30.0,
                CapacityEvent::Restore {
                    gpu_type: "rtx".into(),
                    num_nodes: 2,
                },
            );
        let text = s.to_jsonl();
        let parsed = DynamicsScript::parse_jsonl(&text).unwrap();
        assert_eq!(parsed, s);
        let again = shrink_grow();
        assert_eq!(
            DynamicsScript::parse_jsonl(&again.to_jsonl()).unwrap(),
            again
        );
    }

    #[test]
    fn parse_skips_blank_and_comment_lines() {
        let text = "# capacity script\n\n{\"t\": 5.0, \"ev\": \"remove\", \
                    \"gpu_type\": \"t4\", \"nodes\": 1}\n";
        let s = DynamicsScript::parse_jsonl(text).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "{\"t\": 1.0, \"ev\": \"remove\", \"gpu_type\": \"t4\", \"nodes\": 1}\n\
                   {\"t\": 2.0, \"ev\": \"frobnicate\", \"gpu_type\": \"t4\", \"nodes\": 1}\n";
        let e = DynamicsScript::parse_jsonl(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("frobnicate"), "{}", e.msg);
        assert!(DynamicsScript::parse_jsonl("not json\n").is_err());
        let no_t = "{\"ev\": \"remove\", \"gpu_type\": \"t4\", \"nodes\": 1}\n";
        assert!(DynamicsScript::parse_jsonl(no_t).is_err());
    }

    #[test]
    fn validate_checks_names_shapes_and_ranges() {
        let spec = sia_cluster::ClusterSpec::heterogeneous_64();
        assert!(shrink_grow().validate(&spec).is_ok());
        let unknown = DynamicsScript::new().at(
            0.0,
            CapacityEvent::Remove {
                gpu_type: "h100".into(),
                num_nodes: 1,
            },
        );
        assert!(unknown.validate(&spec).is_err());
        let bad_shape = DynamicsScript::new().at(
            0.0,
            CapacityEvent::Add {
                gpu_type: "t4".into(),
                num_nodes: 1,
                gpus_per_node: 8, // t4 nodes have 4
            },
        );
        assert!(bad_shape.validate(&spec).is_err());
        let bad_factor = DynamicsScript::new().at(
            0.0,
            CapacityEvent::Degrade {
                gpu_type: "t4".into(),
                num_nodes: 1,
                factor: 0.0,
            },
        );
        assert!(bad_factor.validate(&spec).is_err());
    }
}
