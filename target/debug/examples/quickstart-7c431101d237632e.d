/root/repo/target/debug/examples/quickstart-7c431101d237632e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7c431101d237632e: examples/quickstart.rs

examples/quickstart.rs:
