#!/usr/bin/env python3
"""Validate Prometheus text-exposition scrapes from a live sia-serve daemon.

Usage:
    check_prom.py SCRAPE [SCRAPE2]

With one file, structural checks only:
  - every sample line parses (name, optional labels, finite value);
  - no metric family appears twice (HELP/TYPE blocks are contiguous);
  - every family has a TYPE line, and samples match the declared type
    (counters end in _total, histograms expose _bucket/_sum/_count);
  - histogram buckets are cumulative non-decreasing in le-order and the
    +Inf bucket equals the _count sample.

With two files (an earlier and a later scrape of the SAME process), also
checks that every counter present in the first scrape is present in the
second with a value that did not decrease.

Exits 0 when all checks pass, 1 with a message per violation otherwise.
No third-party dependencies; the parser accepts exactly the subset of
exposition format 0.0.4 that sia-telemetry renders.
"""

import math
import re
import sys

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_value(raw):
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)


def family_of(name):
    """Strips histogram sample suffixes back to the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse(path, errors):
    """Returns (types: {family: type}, samples: [(name, labels, value)])."""
    types = {}
    helps = set()
    samples = []
    current_family = None
    seen_families = []
    for lineno, line in enumerate(open(path, encoding="utf-8"), start=1):
        line = line.rstrip("\n")
        if not line:
            continue
        where = f"{path}:{lineno}"
        if line.startswith("# HELP "):
            fam = line.split(" ", 3)[2]
            if fam in helps:
                errors.append(f"{where}: duplicate HELP for family {fam}")
            helps.add(fam)
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            fam, kind = parts[2], parts[3]
            if fam in types:
                errors.append(f"{where}: duplicate TYPE for family {fam}")
            if kind not in ("counter", "gauge", "histogram"):
                errors.append(f"{where}: unknown type {kind!r} for {fam}")
            types[fam] = kind
            if fam in seen_families:
                errors.append(f"{where}: family {fam} re-opened; blocks must be contiguous")
            seen_families.append(fam)
            current_family = fam
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"{where}: unparseable sample line {line!r}")
            continue
        name = m.group("name")
        raw_labels = m.group("labels") or ""
        labels = tuple(sorted(LABEL_RE.findall(raw_labels)))
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            errors.append(f"{where}: bad value in {line!r}")
            continue
        fam = family_of(name)
        if fam not in types and name in types:
            fam = name  # e.g. a gauge named *_count would be its own family
        if fam not in types:
            errors.append(f"{where}: sample {name} has no TYPE line")
        elif current_family not in (fam, name):
            errors.append(
                f"{where}: sample {name} appears under family block {current_family}"
            )
        samples.append((name, labels, value))
    return types, samples


def check_structure(path, types, samples, errors):
    by_name = {}
    for name, labels, value in samples:
        by_name.setdefault(name, []).append((labels, value))

    for fam, kind in types.items():
        if kind == "counter":
            for labels, value in by_name.get(fam, []):
                if not fam.endswith("_total"):
                    errors.append(f"{path}: counter {fam} does not end in _total")
                    break
                if value < 0:
                    errors.append(f"{path}: counter {fam}{labels} is negative")
        elif kind == "histogram":
            check_histogram(path, fam, by_name, errors)


def check_histogram(path, fam, by_name, errors):
    """Cumulative monotone buckets; +Inf == _count, per label set."""
    series = {}
    for labels, value in by_name.get(fam + "_bucket", []):
        le = dict(labels).get("le")
        if le is None:
            errors.append(f"{path}: {fam}_bucket sample without le label")
            continue
        rest = tuple(kv for kv in labels if kv[0] != "le")
        series.setdefault(rest, []).append((parse_value(le), value))
    counts = {labels: value for labels, value in by_name.get(fam + "_count", [])}
    for rest, buckets in series.items():
        buckets.sort(key=lambda b: b[0])
        cumulative = [v for _, v in buckets]
        if any(lo > hi for lo, hi in zip(cumulative, cumulative[1:])):
            errors.append(f"{path}: {fam}{dict(rest)} buckets are not cumulative")
        if not buckets or buckets[-1][0] != math.inf:
            errors.append(f"{path}: {fam}{dict(rest)} is missing the +Inf bucket")
            continue
        count = counts.get(rest)
        if count is None:
            errors.append(f"{path}: {fam}{dict(rest)} has buckets but no _count")
        elif buckets[-1][1] != count:
            errors.append(
                f"{path}: {fam}{dict(rest)} +Inf bucket {buckets[-1][1]} != _count {count}"
            )


def check_monotone(first, second, errors):
    """Every counter in scrape 1 must not decrease in scrape 2."""
    types1, samples1 = first
    types2, samples2 = second
    later = {(n, l): v for n, l, v in samples2}
    for name, labels, value in samples1:
        fam = family_of(name)
        kind = types1.get(fam) or types1.get(name)
        is_monotone = kind == "counter" or (
            kind == "histogram" and not name.endswith("_sum")
        )
        if not is_monotone:
            continue
        after = later.get((name, labels))
        if after is None:
            errors.append(f"counter {name}{dict(labels)} vanished between scrapes")
        elif after < value:
            errors.append(
                f"counter {name}{dict(labels)} went backwards: {value} -> {after}"
            )


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip().splitlines()[0])
        print(f"usage: {argv[0]} SCRAPE [SCRAPE2]")
        return 2
    errors = []
    parsed = []
    for path in argv[1:]:
        types, samples = parse(path, errors)
        if not samples:
            errors.append(f"{path}: no samples found")
        check_structure(path, types, samples, errors)
        parsed.append((types, samples))
    if len(parsed) == 2:
        check_monotone(parsed[0], parsed[1], errors)
    for e in errors:
        print(f"FAIL: {e}")
    if errors:
        return 1
    n = sum(len(s) for _, s in parsed)
    print(f"OK: {n} samples across {len(parsed)} scrape(s) pass all checks")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
