//! Quick cross-scheduler comparison for development sanity-checking.
//!
//! Not a paper experiment; runs a shortened heterogeneous Philly-like trace
//! through Sia, Pollux, and Gavel+TJ with one seed — once per simulation
//! engine (legacy round loop vs event-driven). With failure injection off
//! the engines are bit-identical, so the two tables must agree; the JSON
//! payload records per-engine wall-clock so CI can track the perf
//! trajectory.
//!
//! A second scenario has a weeks-long idle gap mid-trace: the round engine
//! grinds through every empty round while the event engine fast-forwards to
//! the next arrival, which is where the event kernel's win shows even when
//! the scheduler dominates busy rounds.

use sia_bench::{aggregates_json, print_table, run_one, scale_work, sweep, Policy};
use sia_cluster::ClusterSpec;
use sia_sim::{EngineKind, SimConfig};
use sia_workloads::{Trace, TraceConfig, TraceKind};

fn main() {
    let cluster = ClusterSpec::heterogeneous_64();
    let seeds = [1u64];
    let policies = [Policy::Sia, Policy::Pollux, Policy::GavelTuned];

    let mut payload = serde_json::Map::new();
    for engine in [EngineKind::Round, EngineKind::Events] {
        let cfg = SimConfig {
            engine,
            ..SimConfig::default()
        };
        let t0 = std::time::Instant::now();
        let mut walls = serde_json::Map::new();
        let aggs: Vec<_> = policies
            .into_iter()
            .map(|p| {
                let t = std::time::Instant::now();
                let a = sweep(p, &cluster, TraceKind::Philly, &seeds, &cfg, 16, 1.0, None);
                let wall = t.elapsed();
                eprintln!("[{}] {}: {:?}", engine.label(), a.label, wall);
                walls.insert(a.label.clone(), serde_json::json!(wall.as_secs_f64()));
                a
            })
            .collect();
        let total = t0.elapsed();
        print_table(
            &format!(
                "quick compare ({} engine, Philly-like, hetero 64)",
                engine.label()
            ),
            &aggs,
        );
        eprintln!("[{}] total: {total:?}", engine.label());
        payload.insert(
            engine.label().to_string(),
            serde_json::json!({
                "total_wall_s": total.as_secs_f64(),
                "wall_s": serde_json::Value::Object(walls),
                "summaries": aggregates_json(&aggs),
            }),
        );
    }

    // Sparse arrivals: one late straggler after a long idle gap.
    let mut trace = Trace::generate(&TraceConfig::new(TraceKind::Philly, 1).with_max_gpus_cap(16));
    trace.jobs.truncate(12);
    scale_work(&mut trace, 0.1);
    if let Some(last) = trace.jobs.last_mut() {
        last.submit_time += 300.0 * 3600.0; // 300 h of idle cluster
    }
    println!("\n== sparse arrivals (300 h idle gap, Sia) ==");
    let mut sparse = serde_json::Map::new();
    for engine in [EngineKind::Round, EngineKind::Events] {
        let cfg = SimConfig {
            engine,
            seed: 1,
            ..SimConfig::default()
        };
        let t = std::time::Instant::now();
        let result = run_one(Policy::Sia, &cluster, &trace, cfg, 1);
        let wall = t.elapsed();
        let summary = sia_metrics::summarize(&result);
        println!(
            "{:>8}: {:>8} logged rounds, avg JCT {:.3} h, wall {wall:?}",
            engine.label(),
            result.rounds.len(),
            summary.avg_jct_hours,
        );
        sparse.insert(
            engine.label().to_string(),
            serde_json::json!({
                "wall_s": wall.as_secs_f64(),
                "rounds": result.rounds.len(),
                "avg_jct_hours": summary.avg_jct_hours,
            }),
        );
    }
    payload.insert("sparse_arrivals".into(), serde_json::Value::Object(sparse));

    sia_bench::write_json("quick_compare", &serde_json::Value::Object(payload));
}
