/root/repo/target/debug/deps/sia_solver-37fe4a8e77bb637a.d: crates/solver/src/lib.rs crates/solver/src/error.rs crates/solver/src/lagrangian.rs crates/solver/src/milp.rs crates/solver/src/problem.rs crates/solver/src/simplex.rs

/root/repo/target/debug/deps/libsia_solver-37fe4a8e77bb637a.rlib: crates/solver/src/lib.rs crates/solver/src/error.rs crates/solver/src/lagrangian.rs crates/solver/src/milp.rs crates/solver/src/problem.rs crates/solver/src/simplex.rs

/root/repo/target/debug/deps/libsia_solver-37fe4a8e77bb637a.rmeta: crates/solver/src/lib.rs crates/solver/src/error.rs crates/solver/src/lagrangian.rs crates/solver/src/milp.rs crates/solver/src/problem.rs crates/solver/src/simplex.rs

crates/solver/src/lib.rs:
crates/solver/src/error.rs:
crates/solver/src/lagrangian.rs:
crates/solver/src/milp.rs:
crates/solver/src/problem.rs:
crates/solver/src/simplex.rs:
