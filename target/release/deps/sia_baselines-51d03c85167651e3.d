/root/repo/target/release/deps/sia_baselines-51d03c85167651e3.d: crates/baselines/src/lib.rs crates/baselines/src/gavel.rs crates/baselines/src/pollux.rs crates/baselines/src/shockwave.rs crates/baselines/src/themis.rs crates/baselines/src/util.rs

/root/repo/target/release/deps/libsia_baselines-51d03c85167651e3.rlib: crates/baselines/src/lib.rs crates/baselines/src/gavel.rs crates/baselines/src/pollux.rs crates/baselines/src/shockwave.rs crates/baselines/src/themis.rs crates/baselines/src/util.rs

/root/repo/target/release/deps/libsia_baselines-51d03c85167651e3.rmeta: crates/baselines/src/lib.rs crates/baselines/src/gavel.rs crates/baselines/src/pollux.rs crates/baselines/src/shockwave.rs crates/baselines/src/themis.rs crates/baselines/src/util.rs

crates/baselines/src/lib.rs:
crates/baselines/src/gavel.rs:
crates/baselines/src/pollux.rs:
crates/baselines/src/shockwave.rs:
crates/baselines/src/themis.rs:
crates/baselines/src/util.rs:
