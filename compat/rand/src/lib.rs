//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the real `rand` can never be fetched. This crate re-implements exactly the
//! API subset the workspace uses (`Rng::random`, `Rng::random_range`,
//! `SeedableRng::seed_from_u64`) with the rand 0.9 method names, so call
//! sites compile unchanged. Streams are deterministic per seed but are NOT
//! bit-compatible with the upstream crate — the simulator only relies on
//! self-consistency, never on a specific published stream.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an RNG (the `StandardUniform`
/// distribution in real rand).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that can produce a uniform sample (`Range`/`RangeInclusive`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// High-level sampling helpers, auto-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (deterministic and
    /// well-mixed; matches upstream semantics, not upstream bits).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Namespace parity with the real crate (unused by the workspace today).
}

pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Counter(3);
        for _ in 0..1000 {
            let v = r.random_range(2usize..7);
            assert!((2..7).contains(&v));
            let w = r.random_range(0..=4u8);
            assert!(w <= 4);
            let f = r.random_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }
}
