/root/repo/target/debug/deps/sim_invariants-63105235d69170f4.d: tests/sim_invariants.rs

/root/repo/target/debug/deps/sim_invariants-63105235d69170f4: tests/sim_invariants.rs

tests/sim_invariants.rs:
