/root/repo/target/release/deps/fig7_arrival_rate-c5724ba0a4411087.d: crates/bench/src/bin/fig7_arrival_rate.rs

/root/repo/target/release/deps/fig7_arrival_rate-c5724ba0a4411087: crates/bench/src/bin/fig7_arrival_rate.rs

crates/bench/src/bin/fig7_arrival_rate.rs:
