//! Concrete placement of configurations onto physical nodes.
//!
//! A [`Placement`] lists `(node id, GPUs used)` pairs for one job. The
//! [`FreeGpus`] tracker maintains per-node free GPU counts and realizes
//! configurations under the Sia placement rules of §3.1:
//!
//! * (a) partial-node allocations must not be split across two nodes;
//! * (b) whole-node allocations must take whole (empty) nodes;
//! * (c) if no placement satisfying (a) and (b) exists, the caller evicts
//!   jobs and retries (handled by the Placer in `sia-core`).

use crate::config::Configuration;
use crate::spec::ClusterSpec;
use crate::view::ClusterView;

/// A concrete assignment of GPUs on physical nodes to one job.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Placement {
    /// `(node id, GPUs used on that node)`, sorted by node id.
    pub slots: Vec<(usize, usize)>,
}

impl Placement {
    /// An empty placement (job receives no resources).
    pub fn empty() -> Self {
        Placement { slots: Vec::new() }
    }

    /// Builds a placement from node slots.
    pub fn new(mut slots: Vec<(usize, usize)>) -> Self {
        slots.sort_unstable();
        Placement { slots }
    }

    /// Total GPUs in this placement.
    pub fn total_gpus(&self) -> usize {
        self.slots.iter().map(|&(_, g)| g).sum()
    }

    /// Number of distinct nodes used.
    pub fn num_nodes(&self) -> usize {
        self.slots.len()
    }

    /// True if no resources are assigned.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True if the placement crosses a node boundary.
    pub fn is_distributed(&self) -> bool {
        self.slots.len() > 1
    }

    /// The GPU type of the placement (panics on an empty placement).
    pub fn gpu_type(&self, spec: &ClusterSpec) -> crate::spec::GpuTypeId {
        spec.nodes()[self.slots[0].0].gpu_type
    }

    /// Returns true if all used nodes carry the same GPU type.
    pub fn is_single_type(&self, spec: &ClusterSpec) -> bool {
        let mut types = self.slots.iter().map(|&(n, _)| spec.nodes()[n].gpu_type);
        match types.next() {
            None => true,
            Some(first) => types.all(|t| t == first),
        }
    }
}

/// Why a configuration could not be placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementError {
    /// Not enough free GPUs of the requested type anywhere.
    InsufficientCapacity,
    /// Enough GPUs exist, but fragmentation prevents a rule-conforming
    /// placement (rule (c) applies: evict and retry).
    Fragmented,
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::InsufficientCapacity => write!(f, "insufficient free GPUs"),
            PlacementError::Fragmented => write!(f, "free GPUs are fragmented"),
        }
    }
}

/// Tracks free GPUs per node and places configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreeGpus {
    free: Vec<usize>,
}

impl FreeGpus {
    /// All GPUs free.
    pub fn all_free(spec: &ClusterSpec) -> Self {
        FreeGpus {
            free: spec.nodes().iter().map(|n| n.num_gpus).collect(),
        }
    }

    /// All *placeable* GPUs free: Active nodes carry their full capacity,
    /// Draining/Removed nodes carry none, so [`FreeGpus::place`] (driven by
    /// the underlying spec's node table) can never land a new placement on
    /// them.
    pub fn for_view(view: &ClusterView) -> Self {
        FreeGpus {
            free: view
                .spec()
                .nodes()
                .iter()
                .map(|n| view.capacity_of(n.id))
                .collect(),
        }
    }

    /// Marks a kept placement's GPUs as used, skipping slots on nodes whose
    /// capacity is not tracked in this pool (Draining nodes during a grace
    /// window): nothing new can be placed there, so there is nothing to
    /// collide with.
    ///
    /// # Panics
    ///
    /// Panics if a slot on a *placeable* node over-commits it.
    pub fn take_available(&mut self, view: &ClusterView, p: &Placement) {
        for &(node, g) in &p.slots {
            if view.is_placeable(node) {
                assert!(self.free[node] >= g, "placement over-commits node {node}");
                self.free[node] -= g;
            }
        }
    }

    /// Free GPU count on a node.
    pub fn on_node(&self, node: usize) -> usize {
        self.free[node]
    }

    /// Total free GPUs of a type.
    pub fn total_of_type(&self, spec: &ClusterSpec, t: crate::spec::GpuTypeId) -> usize {
        spec.nodes_of_type(t).map(|n| self.free[n.id]).sum()
    }

    /// Marks a placement's GPUs as used.
    ///
    /// # Panics
    ///
    /// Panics if the placement over-commits any node.
    pub fn take(&mut self, p: &Placement) {
        for &(node, g) in &p.slots {
            assert!(self.free[node] >= g, "placement over-commits node {node}");
            self.free[node] -= g;
        }
    }

    /// Returns a placement's GPUs to the free pool.
    ///
    /// # Panics
    ///
    /// Panics if this would exceed the node's capacity.
    pub fn release(&mut self, spec: &ClusterSpec, p: &Placement) {
        for &(node, g) in &p.slots {
            self.free[node] += g;
            assert!(
                self.free[node] <= spec.nodes()[node].num_gpus,
                "release exceeds capacity of node {node}"
            );
        }
    }

    /// Attempts to place `cfg` under the Sia placement rules.
    ///
    /// Partial-node allocations use best-fit (tightest node that fits, to
    /// limit fragmentation); whole-node allocations take fully-free nodes.
    /// The free pool is updated on success.
    pub fn place(
        &mut self,
        spec: &ClusterSpec,
        cfg: &Configuration,
    ) -> Result<Placement, PlacementError> {
        let t = cfg.gpu_type;
        if self.total_of_type(spec, t) < cfg.gpus {
            return Err(PlacementError::InsufficientCapacity);
        }
        if cfg.nodes == 1 {
            let r = spec.gpus_per_node_of_type(t);
            let want = cfg.gpus;
            if want == r {
                // Whole-node allocation: must take a fully-free node.
                for n in spec.nodes_of_type(t) {
                    if self.free[n.id] == n.num_gpus {
                        let p = Placement::new(vec![(n.id, want)]);
                        self.take(&p);
                        return Ok(p);
                    }
                }
                return Err(PlacementError::Fragmented);
            }
            // Partial-node allocation: best fit, never split (rule a).
            let mut best: Option<(usize, usize)> = None; // (free, node)
            for n in spec.nodes_of_type(t) {
                let f = self.free[n.id];
                if f >= want {
                    match best {
                        Some((bf, _)) if bf <= f => {}
                        _ => best = Some((f, n.id)),
                    }
                }
            }
            match best {
                Some((_, node)) => {
                    let p = Placement::new(vec![(node, want)]);
                    self.take(&p);
                    Ok(p)
                }
                None => Err(PlacementError::Fragmented),
            }
        } else {
            // Multi-node allocation: take `cfg.nodes` fully-free nodes (rule b).
            let per_node = cfg.gpus_per_node();
            let mut chosen = Vec::with_capacity(cfg.nodes);
            for n in spec.nodes_of_type(t) {
                if self.free[n.id] == n.num_gpus && n.num_gpus == per_node {
                    chosen.push((n.id, per_node));
                    if chosen.len() == cfg.nodes {
                        break;
                    }
                }
            }
            if chosen.len() < cfg.nodes {
                return Err(PlacementError::Fragmented);
            }
            let p = Placement::new(chosen);
            self.take(&p);
            Ok(p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuTypeId;

    fn small_cluster() -> ClusterSpec {
        let mut c = ClusterSpec::new();
        let t = c.add_gpu_kind("t4", 16.0, 1);
        c.add_nodes(t, 3, 4);
        c
    }

    #[test]
    fn partial_allocation_best_fit() {
        let c = small_cluster();
        let t = GpuTypeId(0);
        let mut free = FreeGpus::all_free(&c);
        // Occupy 2 GPUs on node 0 so node 0 has the tightest fit for 2 GPUs.
        free.take(&Placement::new(vec![(0, 2)]));
        let p = free.place(&c, &Configuration::new(1, 2, t)).unwrap();
        assert_eq!(p.slots, vec![(0, 2)]);
    }

    #[test]
    fn whole_node_requires_empty_node() {
        let c = small_cluster();
        let t = GpuTypeId(0);
        let mut free = FreeGpus::all_free(&c);
        // Put 1 GPU on every node: whole-node allocation must fail.
        for n in 0..3 {
            free.take(&Placement::new(vec![(n, 1)]));
        }
        assert_eq!(
            free.place(&c, &Configuration::new(1, 4, t)),
            Err(PlacementError::Fragmented)
        );
    }

    #[test]
    fn multi_node_takes_whole_nodes() {
        let c = small_cluster();
        let t = GpuTypeId(0);
        let mut free = FreeGpus::all_free(&c);
        let p = free.place(&c, &Configuration::new(2, 8, t)).unwrap();
        assert_eq!(p.num_nodes(), 2);
        assert_eq!(p.total_gpus(), 8);
        for &(n, g) in &p.slots {
            assert_eq!(g, 4);
            assert_eq!(free.on_node(n), 0);
        }
    }

    #[test]
    fn insufficient_capacity_detected() {
        let c = small_cluster();
        let t = GpuTypeId(0);
        let mut free = FreeGpus::all_free(&c);
        assert_eq!(
            free.place(&c, &Configuration::new(4, 16, t)),
            Err(PlacementError::InsufficientCapacity)
        );
    }

    #[test]
    fn release_restores_capacity() {
        let c = small_cluster();
        let t = GpuTypeId(0);
        let mut free = FreeGpus::all_free(&c);
        let p = free.place(&c, &Configuration::new(1, 4, t)).unwrap();
        assert_eq!(free.total_of_type(&c, t), 8);
        free.release(&c, &p);
        assert_eq!(free.total_of_type(&c, t), 12);
    }

    #[test]
    fn powers_of_two_pack_without_fragmentation() {
        // Buddy-allocation property: any power-of-two multiset with total
        // <= capacity packs when placed largest-first.
        let c = small_cluster();
        let t = GpuTypeId(0);
        let mut free = FreeGpus::all_free(&c);
        for want in [4usize, 2, 2, 2, 1, 1] {
            free.place(&c, &Configuration::new(1, want, t)).unwrap();
        }
        assert_eq!(free.total_of_type(&c, t), 0);
    }

    #[test]
    fn view_pool_shields_unplaceable_nodes() {
        use crate::view::{ClusterView, NodeHealth};
        let mut view = ClusterView::new(small_cluster());
        let t = GpuTypeId(0);
        view.set_health(1, NodeHealth::Draining);
        view.set_health(2, NodeHealth::Removed);
        let mut free = FreeGpus::for_view(&view);
        assert_eq!(free.total_of_type(view.spec(), t), 4);
        // Whole-node placement must land on the one Active node.
        let p = free
            .place(view.spec(), &Configuration::new(1, 4, t))
            .unwrap();
        assert_eq!(p.slots, vec![(0, 4)]);
        // A second allocation has nowhere to go, even though nodes 1 and 2
        // are physically idle.
        assert_eq!(
            free.place(view.spec(), &Configuration::new(1, 1, t)),
            Err(PlacementError::InsufficientCapacity)
        );
    }

    #[test]
    fn take_available_skips_untracked_nodes() {
        use crate::view::{ClusterView, NodeHealth};
        let mut view = ClusterView::new(small_cluster());
        view.set_health(1, NodeHealth::Draining);
        let mut free = FreeGpus::for_view(&view);
        // A job kept across nodes 0 (Active) and 1 (Draining): only the
        // Active slot is deducted from the pool.
        free.take_available(&view, &Placement::new(vec![(0, 2), (1, 4)]));
        assert_eq!(free.on_node(0), 2);
        assert_eq!(free.on_node(1), 0);
    }

    #[test]
    fn placement_helpers() {
        let c = ClusterSpec::heterogeneous_64();
        let t4 = c.gpu_type_by_name("t4").unwrap();
        let p = Placement::new(vec![(1, 4), (0, 4)]);
        assert_eq!(p.slots, vec![(0, 4), (1, 4)]); // sorted
        assert!(p.is_distributed());
        assert!(p.is_single_type(&c));
        assert_eq!(p.gpu_type(&c), t4);
        assert_eq!(p.total_gpus(), 8);
    }
}
