//! Figure 5: per-job allocation timelines under Sia on the physical-testbed
//! setting, derived from the flight-recorder stream.
//!
//! Tracks three jobs of different models (ResNet50/ImageNet-class, a
//! CIFAR-class ResNet18, and a DeepSpeech2 job) through a Sia run, printing
//! `(time, GPU type, #GPUs, reason)` for every `alloc` record in the trace,
//! plus the active-job count. Expected shape: Sia scales jobs down / moves
//! them to slower GPUs as congestion rises, and back up as it drains — and
//! the recorder's decision reasons say which transition was which.

use sia_bench::{run_one, write_json, Policy};
use sia_cluster::ClusterSpec;
use sia_sim::SimConfig;
use sia_telemetry::TraceEvent;
use sia_workloads::{ModelKind, Trace, TraceConfig, TraceKind};

fn main() {
    let cluster = ClusterSpec::physical_44();
    let trace = Trace::generate(&TraceConfig::new(TraceKind::Physical, 11));
    let result = run_one(Policy::Sia, &cluster, &trace, SimConfig::default(), 11);
    let gpu_types = result.trace.gpu_types();

    // Pick one job of each target model (the longest-running of each kind).
    let mut picks = Vec::new();
    for kind in [
        ModelKind::ResNet50,
        ModelKind::ResNet18,
        ModelKind::DeepSpeech2,
    ] {
        if let Some(rec) = result
            .records
            .iter()
            .filter(|r| r.model == kind)
            .max_by(|a, b| {
                let ja = a.jct().unwrap_or(0.0);
                let jb = b.jct().unwrap_or(0.0);
                ja.total_cmp(&jb)
            })
        {
            picks.push(rec.id);
        }
    }

    let mut payload = serde_json::Map::new();
    for id in &picks {
        let rec = result.records.iter().find(|r| r.id == *id).unwrap();
        println!(
            "\n== Figure 5: allocations for {} ({}) ==",
            rec.name,
            rec.model.name()
        );
        let mut events = Vec::new();
        for r in &result.trace.records {
            let TraceEvent::AllocationChanged {
                job,
                gpu_type,
                gpus,
                reason,
                ..
            } = &r.ev
            else {
                continue;
            };
            if *job != id.0 {
                continue;
            }
            let t_name = gpu_type
                .and_then(|t| gpu_types.get(t))
                .map(String::as_str)
                .unwrap_or("-");
            println!(
                "  t={:>7.1} min  {:>5} x {:<6} ({})",
                r.t / 60.0,
                gpus,
                t_name,
                reason.label()
            );
            events.push(serde_json::json!({
                "time_s": r.t,
                "gpu_type": t_name,
                "gpus": *gpus as u64,
                "reason": reason.label(),
            }));
        }
        payload.insert(rec.name.clone(), serde_json::json!(events));
    }

    let active: Vec<serde_json::Value> = result
        .rounds
        .iter()
        .map(|r| serde_json::json!({"time_s": r.time, "active": r.active_jobs}))
        .collect();
    println!(
        "\nactive jobs: min {} max {}",
        result
            .rounds
            .iter()
            .map(|r| r.active_jobs)
            .min()
            .unwrap_or(0),
        result
            .rounds
            .iter()
            .map(|r| r.active_jobs)
            .max()
            .unwrap_or(0)
    );
    payload.insert("active_jobs".into(), serde_json::json!(active));
    write_json("fig5_timeline", &serde_json::Value::Object(payload));
}
