/root/repo/target/debug/deps/sia_cli-1af6fcb68f973b1b.d: src/bin/sia-cli.rs

/root/repo/target/debug/deps/sia_cli-1af6fcb68f973b1b: src/bin/sia-cli.rs

src/bin/sia-cli.rs:
