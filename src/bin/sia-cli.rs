//! Command-line driver for the Sia simulator.
//!
//! ```text
//! sia-cli [--cluster hetero64|homog64|physical44] [--trace philly|helios|newtrace|physical]
//!         [--policy sia|pollux|gavel|shockwave|themis] [--engine round|events]
//!         [--seed N] [--rate JOBS_PER_HOUR]
//!         [--profiling oracle|bootstrap|noprof] [--json]
//!         [--telemetry-out PATH] [--quiet]
//! ```
//!
//! Runs one simulation and prints the summary (or JSON with `--json`).
//! `--telemetry-out PATH` streams span/counter events as JSONL to PATH;
//! `--quiet` suppresses the human-readable summary.

use sia::baselines::{GavelPolicy, PolluxPolicy, ShockwavePolicy, ThemisPolicy};
use sia::cluster::ClusterSpec;
use sia::core::SiaPolicy;
use sia::metrics::{ftf_ratios, summarize, unfair_fraction, worst_ftf};
use sia::models::ProfilingMode;
use sia::sim::{EngineKind, Scheduler, SimConfig, Simulator};
use sia::workloads::{Trace, TraceConfig, TraceKind};

/// Options that take a value.
const VALUE_OPTS: &[&str] = &[
    "--cluster",
    "--trace",
    "--policy",
    "--engine",
    "--seed",
    "--rate",
    "--profiling",
    "--telemetry-out",
];
/// Boolean flags.
const FLAG_OPTS: &[&str] = &["--json", "--quiet", "--help", "-h"];

/// Command-line arguments, collected once at startup.
struct Args {
    argv: Vec<String>,
}

impl Args {
    fn parse() -> Args {
        Args {
            argv: std::env::args().skip(1).collect(),
        }
    }

    /// Value of `--name VALUE`, if present.
    fn opt(&self, name: &str) -> Option<&str> {
        self.argv
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.argv.get(i + 1))
            .map(String::as_str)
    }

    /// Whether boolean flag `name` is present.
    fn flag(&self, name: &str) -> bool {
        self.argv.iter().any(|a| a == name)
    }

    /// Rejects unrecognized `--options` (values of value-options are skipped).
    fn check_unknown(&self) -> Result<(), String> {
        let mut i = 0;
        while i < self.argv.len() {
            let a = self.argv[i].as_str();
            if VALUE_OPTS.contains(&a) {
                if i + 1 >= self.argv.len() {
                    return Err(format!("option {a} requires a value"));
                }
                i += 2;
            } else if FLAG_OPTS.contains(&a) {
                i += 1;
            } else {
                return Err(format!("unknown argument {a}"));
            }
        }
        Ok(())
    }
}

fn main() {
    let args = Args::parse();
    if args.flag("--help") || args.flag("-h") {
        println!(
            "usage: sia-cli [--cluster hetero64|homog64|physical44] \
             [--trace philly|helios|newtrace|physical] \
             [--policy sia|pollux|gavel|shockwave|themis] \
             [--engine round|events] [--seed N] \
             [--rate JOBS/HR] [--profiling oracle|bootstrap|noprof] [--json] \
             [--telemetry-out PATH] [--quiet]"
        );
        return;
    }
    if let Err(e) = args.check_unknown() {
        eprintln!("{e} (see --help)");
        std::process::exit(2);
    }

    if let Some(path) = args.opt("--telemetry-out") {
        if let Err(e) = sia::telemetry::init_jsonl(path) {
            eprintln!("cannot open telemetry sink {path}: {e}");
            std::process::exit(2);
        }
    }
    let quiet = args.flag("--quiet");

    let cluster = match args.opt("--cluster").unwrap_or("hetero64") {
        "hetero64" => ClusterSpec::heterogeneous_64(),
        "homog64" => ClusterSpec::homogeneous_64(),
        "physical44" => ClusterSpec::physical_44(),
        other => {
            eprintln!("unknown cluster {other}");
            std::process::exit(2);
        }
    };
    let kind = match args.opt("--trace").unwrap_or("philly") {
        "philly" => TraceKind::Philly,
        "helios" => TraceKind::Helios,
        "newtrace" => TraceKind::NewTrace,
        "physical" => TraceKind::Physical,
        other => {
            eprintln!("unknown trace {other}");
            std::process::exit(2);
        }
    };
    let seed: u64 = args.opt("--seed").and_then(|s| s.parse().ok()).unwrap_or(1);
    let policy_name = args.opt("--policy").unwrap_or("sia").to_string();
    let rigid = matches!(policy_name.as_str(), "gavel" | "shockwave" | "themis");
    let mut tcfg = TraceConfig::new(kind, seed).with_max_gpus_cap(16);
    if rigid {
        tcfg = tcfg.with_adaptivity_mix(0.0, 1.0);
    }
    if let Some(rate) = args.opt("--rate").and_then(|s| s.parse().ok()) {
        tcfg = tcfg.with_rate(rate);
    }
    let trace = Trace::generate(&tcfg);

    let engine = match args.opt("--engine").unwrap_or("events") {
        "round" => EngineKind::Round,
        "events" => EngineKind::Events,
        other => {
            eprintln!("unknown engine {other} (expected round or events)");
            std::process::exit(2);
        }
    };

    let profiling = match args.opt("--profiling").unwrap_or("bootstrap") {
        "oracle" => ProfilingMode::Oracle,
        "bootstrap" => ProfilingMode::Bootstrap,
        "noprof" => ProfilingMode::NoProf,
        other => {
            eprintln!("unknown profiling mode {other}");
            std::process::exit(2);
        }
    };

    let mut sched: Box<dyn Scheduler> = match policy_name.as_str() {
        "sia" => Box::new(SiaPolicy::default()),
        "pollux" => Box::new(PolluxPolicy::default()),
        "gavel" => Box::new(GavelPolicy::default()),
        "shockwave" => Box::new(ShockwavePolicy::default()),
        "themis" => Box::new(ThemisPolicy::default()),
        other => {
            eprintln!("unknown policy {other}");
            std::process::exit(2);
        }
    };

    let sim = Simulator::new(
        cluster.clone(),
        &trace,
        SimConfig {
            engine,
            seed,
            profiling_mode: profiling,
            ..SimConfig::default()
        },
    );
    let result = sim.run(sched.as_mut());
    let s = summarize(&result);
    let ratios = ftf_ratios(&result, &cluster);

    if args.flag("--json") {
        println!(
            "{{\"policy\":\"{}\",\"jobs\":{},\"unfinished\":{},\"avg_jct_hours\":{:.4},\
             \"p99_jct_hours\":{:.4},\"makespan_hours\":{:.4},\"gpu_hours_per_job\":{:.4},\
             \"avg_restarts\":{:.3},\"worst_ftf\":{:.3},\"unfair_fraction\":{:.4},\
             \"median_policy_runtime_s\":{:.6}}}",
            s.scheduler,
            result.records.len(),
            s.unfinished,
            s.avg_jct_hours,
            s.p99_jct_hours,
            s.makespan_hours,
            s.gpu_hours_per_job,
            s.avg_restarts,
            worst_ftf(&ratios),
            unfair_fraction(&ratios),
            s.median_policy_runtime,
        );
    } else if !quiet {
        println!("policy          : {}", s.scheduler);
        println!(
            "jobs            : {} submitted, {} unfinished",
            result.records.len(),
            s.unfinished
        );
        println!("avg JCT         : {:.2} h", s.avg_jct_hours);
        println!("p99 JCT         : {:.2} h", s.p99_jct_hours);
        println!("makespan        : {:.2} h", s.makespan_hours);
        println!("GPU-hours/job   : {:.2}", s.gpu_hours_per_job);
        println!("restarts/job    : {:.2}", s.avg_restarts);
        println!("worst FTF rho   : {:.2}", worst_ftf(&ratios));
        println!("unfair fraction : {:.1}%", unfair_fraction(&ratios) * 100.0);
        println!(
            "policy runtime  : {:.1} ms median/round",
            s.median_policy_runtime * 1e3
        );
        if let Some(ph) = sia::metrics::summarize_phases(&result) {
            println!(
                "solver phases   : refit {:.2} ms, goodput {:.2} ms, build {:.2} ms, \
                 solve {:.2} ms, placement {:.2} ms (mean/round over {} rounds)",
                ph.mean_refit_s * 1e3,
                ph.mean_goodput_s * 1e3,
                ph.mean_build_s * 1e3,
                ph.mean_solve_s * 1e3,
                ph.mean_placement_s * 1e3,
                ph.rounds,
            );
        }
    }

    sia::telemetry::shutdown();
}
