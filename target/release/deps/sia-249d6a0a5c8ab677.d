/root/repo/target/release/deps/sia-249d6a0a5c8ab677.d: src/lib.rs

/root/repo/target/release/deps/libsia-249d6a0a5c8ab677.rlib: src/lib.rs

/root/repo/target/release/deps/libsia-249d6a0a5c8ab677.rmeta: src/lib.rs

src/lib.rs:
