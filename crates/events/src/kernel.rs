//! The kernel: clock + event queue + RNG streams + telemetry.

use std::collections::BTreeMap;

use rand_chacha::ChaCha8Rng;
use sia_telemetry::Counter;

use crate::queue::EventQueue;
use crate::rng::StreamRngs;

/// A typed event payload.
///
/// `kind` labels the per-event-type telemetry counters
/// (`events.fired.<kind>`); `priority` is the same-timestamp ordering class
/// — lower values fire first among events with equal time, FIFO within a
/// class. Use priorities to encode causality at shared timestamps (e.g. a
/// completion at a round boundary must be observed before that round's
/// scheduling timer).
pub trait EventPayload {
    /// Stable, static label for telemetry counters.
    fn kind(&self) -> &'static str;

    /// Same-timestamp ordering class; lower fires first. Defaults to 0.
    fn priority(&self) -> u8 {
        0
    }
}

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// A fired event: when it fired, its id, and its payload.
#[derive(Debug)]
pub struct Event<E> {
    /// The handle the event was scheduled under.
    pub id: EventId,
    /// Simulated firing time, seconds.
    pub time: f64,
    /// The typed payload.
    pub payload: E,
}

/// A deterministic discrete-event kernel.
///
/// Owns the simulation clock (monotone, advanced only by [`Kernel::pop`]),
/// the pending-event queue, and the named RNG streams. All scheduling is
/// relative to or at-or-after the current clock; events fire in
/// `(time, priority, seq)` order.
pub struct Kernel<E> {
    clock: f64,
    next_seq: u64,
    queue: EventQueue<E>,
    rngs: StreamRngs,
    ctr_scheduled: Counter,
    ctr_fired: Counter,
    ctr_cancelled: Counter,
    /// Per-event-type fired counters, cached by the payload's static kind.
    fired_by_kind: BTreeMap<&'static str, Counter>,
}

impl<E: EventPayload> Kernel<E> {
    /// Creates a kernel at time 0 whose RNG streams derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Kernel {
            clock: 0.0,
            next_seq: 0,
            queue: EventQueue::new(),
            rngs: StreamRngs::new(seed),
            ctr_scheduled: sia_telemetry::counter("events.scheduled"),
            ctr_fired: sia_telemetry::counter("events.fired"),
            ctr_cancelled: sia_telemetry::counter("events.cancelled"),
            fired_by_kind: BTreeMap::new(),
        }
    }

    /// Current simulated time, seconds.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Schedules `payload` at absolute time `time` (must be finite and not
    /// in the past). Returns a handle usable with [`Kernel::cancel`].
    pub fn schedule_at(&mut self, time: f64, payload: E) -> EventId {
        assert!(
            time >= self.clock,
            "cannot schedule into the past: {} < {}",
            time,
            self.clock
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(time, payload.priority(), seq, payload);
        self.ctr_scheduled.incr();
        EventId(seq)
    }

    /// Schedules `payload` after `delay` seconds (`delay >= 0`).
    pub fn schedule_in(&mut self, delay: f64, payload: E) -> EventId {
        assert!(delay >= 0.0, "negative delay {delay}");
        self.schedule_at(self.clock + delay, payload)
    }

    /// Cancels a pending event. Returns `true` when the event had not yet
    /// fired (nor been cancelled before).
    pub fn cancel(&mut self, id: EventId) -> bool {
        let live = self.queue.cancel(id.0);
        if live {
            self.ctr_cancelled.incr();
        }
        live
    }

    /// Whether `id` is still pending.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.queue.is_pending(id.0)
    }

    /// Fires the earliest pending event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<Event<E>> {
        let (time, seq, payload) = self.queue.pop()?;
        debug_assert!(time >= self.clock, "event queue went backwards");
        self.clock = time;
        self.ctr_fired.incr();
        self.fired_by_kind
            .entry(payload.kind())
            .or_insert_with_key(|kind| sia_telemetry::counter(&format!("events.fired.{kind}")))
            .incr();
        Some(Event {
            id: EventId(seq),
            time,
            payload,
        })
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<f64> {
        self.queue.peek_time()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The named RNG stream (created on first use; see [`StreamRngs`]).
    pub fn rng(&mut self, stream: &str) -> &mut ChaCha8Rng {
        self.rngs.stream(stream)
    }

    /// Explicitly seeds (or reseeds) a named RNG stream.
    pub fn seed_stream(&mut self, stream: &str, seed: u64) {
        self.rngs.seed_stream(stream, seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Timer,
        Work(u32),
    }

    impl EventPayload for Ev {
        fn kind(&self) -> &'static str {
            match self {
                Ev::Timer => "timer",
                Ev::Work(_) => "work",
            }
        }

        fn priority(&self) -> u8 {
            match self {
                Ev::Work(_) => 0,
                Ev::Timer => 1,
            }
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut k = Kernel::new(0);
        k.schedule_at(10.0, Ev::Work(1));
        k.schedule_at(5.0, Ev::Work(2));
        assert_eq!(k.now(), 0.0);
        let e = k.pop().unwrap();
        assert_eq!((e.time, e.payload), (5.0, Ev::Work(2)));
        assert_eq!(k.now(), 5.0);
        k.schedule_in(1.0, Ev::Work(3));
        let e = k.pop().unwrap();
        assert_eq!((e.time, e.payload), (6.0, Ev::Work(3)));
        let e = k.pop().unwrap();
        assert_eq!((e.time, e.payload), (10.0, Ev::Work(1)));
        assert!(k.pop().is_none());
        assert_eq!(k.now(), 10.0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut k = Kernel::new(0);
        k.schedule_at(10.0, Ev::Timer);
        k.pop();
        k.schedule_at(9.0, Ev::Timer);
    }

    #[test]
    fn same_time_orders_by_priority_then_fifo() {
        let mut k = Kernel::new(0);
        k.schedule_at(1.0, Ev::Timer); // priority 1, seq 0
        k.schedule_at(1.0, Ev::Work(1)); // priority 0, seq 1
        k.schedule_at(1.0, Ev::Work(2)); // priority 0, seq 2
        assert_eq!(k.pop().unwrap().payload, Ev::Work(1));
        assert_eq!(k.pop().unwrap().payload, Ev::Work(2));
        assert_eq!(k.pop().unwrap().payload, Ev::Timer);
    }

    #[test]
    fn timer_cancel_and_reschedule() {
        let mut k = Kernel::new(0);
        let t1 = k.schedule_at(60.0, Ev::Timer);
        assert!(k.is_pending(t1));
        // Reschedule: cancel the pending timer, schedule a new one.
        assert!(k.cancel(t1));
        assert!(!k.is_pending(t1));
        assert!(!k.cancel(t1), "cancelling twice reports not-pending");
        let t2 = k.schedule_at(30.0, Ev::Timer);
        k.schedule_at(45.0, Ev::Work(9));
        let e = k.pop().unwrap();
        assert_eq!((e.id, e.time), (t2, 30.0));
        assert_eq!(k.pop().unwrap().payload, Ev::Work(9));
        assert!(k.pop().is_none(), "cancelled timer must never fire");
        // A fired event can no longer be cancelled.
        assert!(!k.cancel(t2));
    }

    #[test]
    fn telemetry_counts_per_kind() {
        let before_work = sia_telemetry::counter_value("events.fired.work");
        let before_all = sia_telemetry::counter_value("events.fired");
        let mut k = Kernel::new(0);
        k.schedule_at(1.0, Ev::Work(1));
        k.schedule_at(2.0, Ev::Timer);
        let cancelled = k.schedule_at(3.0, Ev::Work(2));
        k.cancel(cancelled);
        while k.pop().is_some() {}
        assert_eq!(
            sia_telemetry::counter_value("events.fired.work"),
            before_work + 1
        );
        assert!(sia_telemetry::counter_value("events.fired") >= before_all + 2);
        assert!(sia_telemetry::counter_value("events.cancelled") >= 1);
    }

    #[test]
    fn named_streams_are_independent_of_event_flow() {
        use rand::Rng;
        let mut a = Kernel::<Ev>::new(11);
        let baseline: Vec<u64> = (0..4).map(|_| a.rng("noise").random::<u64>()).collect();
        let mut b = Kernel::<Ev>::new(11);
        let _ = b.rng("failure").random::<f64>(); // extra stream in play
        b.schedule_at(1.0, Ev::Timer);
        b.pop();
        let got: Vec<u64> = (0..4).map(|_| b.rng("noise").random::<u64>()).collect();
        assert_eq!(baseline, got);
    }
}
