//! Figure 4: physical-testbed vs simulator comparison (§5.1).
//!
//! The physical cluster is simulated with noise enabled (measurement,
//! execution and restart jitter — `SimConfig::physical`), run 4 times per
//! scheduler; the "simulated" condition is the clean simulator. Expected
//! shape: Sia < Pollux < Gavel on avgJCT; Sia's simulated-vs-"real" gap
//! small (<~5% in the paper); Pollux's gap and variance larger.

use sia_bench::{run_one, write_json, Policy};
use sia_cluster::ClusterSpec;
use sia_metrics::{cdf, summarize};
use sia_sim::SimConfig;
use sia_workloads::{Trace, TraceConfig, TraceKind};

fn main() {
    let cluster = ClusterSpec::physical_44();
    let trace_seed = 11u64;
    let policies = [Policy::Sia, Policy::Pollux, Policy::GavelTuned];

    let mut payload = serde_json::Map::new();
    println!("== Figure 4: physical (noisy, 4 runs) vs simulated avgJCT, 44-GPU 3-type cluster ==");
    println!(
        "{:<12} {:>14} {:>20} {:>12}",
        "Policy", "sim avgJCT(h)", "real avgJCT(h) ±", "gap(%)"
    );
    for p in policies {
        let mk_trace = || {
            let mut cfg = TraceConfig::new(TraceKind::Physical, trace_seed);
            if p.needs_tuned_jobs() {
                cfg = cfg.with_adaptivity_mix(0.0, 1.0);
            }
            Trace::generate(&cfg)
        };
        let trace = mk_trace();
        let sim_run = run_one(p, &cluster, &trace, SimConfig::default(), trace_seed);
        let sim_sum = summarize(&sim_run);

        let mut real_jcts_all: Vec<f64> = Vec::new();
        let real: Vec<f64> = (0..4u64)
            .map(|i| {
                let r = run_one(p, &cluster, &trace, SimConfig::physical(100 + i), 100 + i);
                real_jcts_all.extend(r.records.iter().filter_map(|j| j.jct()));
                summarize(&r).avg_jct_hours
            })
            .collect();
        let real_mean = real.iter().sum::<f64>() / real.len() as f64;
        let spread = real
            .iter()
            .map(|v| (v - real_mean).abs())
            .fold(0.0_f64, f64::max);
        let gap = (real_mean - sim_sum.avg_jct_hours).abs() / real_mean.max(1e-9) * 100.0;
        println!(
            "{:<12} {:>14.3} {:>14.3} ±{:<5.3} {:>10.1}",
            p.label(),
            sim_sum.avg_jct_hours,
            real_mean,
            spread,
            gap
        );
        let sim_cdf = cdf(&sim_run
            .records
            .iter()
            .filter_map(|j| j.jct())
            .collect::<Vec<_>>());
        payload.insert(
            p.label(),
            serde_json::json!({
                "sim_avg_jct_hours": sim_sum.avg_jct_hours,
                "real_avg_jct_hours_runs": real,
                "gap_percent": gap,
                "sim_jct_cdf": sim_cdf,
                "real_jct_cdf": cdf(&real_jcts_all),
            }),
        );
    }
    write_json("fig4_physical", &serde_json::Value::Object(payload));
}
