/root/repo/target/release/deps/table3_newtrace-848e4e01fb28ecd4.d: crates/bench/src/bin/table3_newtrace.rs

/root/repo/target/release/deps/table3_newtrace-848e4e01fb28ecd4: crates/bench/src/bin/table3_newtrace.rs

crates/bench/src/bin/table3_newtrace.rs:
