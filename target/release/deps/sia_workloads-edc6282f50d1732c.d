/root/repo/target/release/deps/sia_workloads-edc6282f50d1732c.d: crates/workloads/src/lib.rs crates/workloads/src/job.rs crates/workloads/src/trace.rs crates/workloads/src/tuning.rs crates/workloads/src/zoo.rs

/root/repo/target/release/deps/libsia_workloads-edc6282f50d1732c.rlib: crates/workloads/src/lib.rs crates/workloads/src/job.rs crates/workloads/src/trace.rs crates/workloads/src/tuning.rs crates/workloads/src/zoo.rs

/root/repo/target/release/deps/libsia_workloads-edc6282f50d1732c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/job.rs crates/workloads/src/trace.rs crates/workloads/src/tuning.rs crates/workloads/src/zoo.rs

crates/workloads/src/lib.rs:
crates/workloads/src/job.rs:
crates/workloads/src/trace.rs:
crates/workloads/src/tuning.rs:
crates/workloads/src/zoo.rs:
