//! Simulator conservation and accounting invariants, checked end-to-end
//! through the Sia policy.

use sia::cluster::{ClusterSpec, FreeGpus};
use sia::core::SiaPolicy;
use sia::sim::{SimConfig, SimResult, Simulator};
use sia::workloads::{Trace, TraceConfig, TraceKind};

fn run(seed: u64, scale: f64) -> (SimResult, ClusterSpec, Trace) {
    let spec = ClusterSpec::heterogeneous_64();
    let mut trace = Trace::generate(&TraceConfig::new(TraceKind::Philly, seed));
    trace.jobs.truncate(40);
    for j in &mut trace.jobs {
        j.work_target *= scale;
    }
    let sim = Simulator::new(
        spec.clone(),
        &trace,
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    );
    let result = sim.run(&mut SiaPolicy::default());
    (result, spec, trace)
}

#[test]
fn per_round_allocations_respect_capacity_and_types() {
    let (result, spec, _) = run(3, 0.3);
    for round in &result.rounds {
        let mut free = FreeGpus::all_free(&spec);
        for &(_, t, gpus) in &round.allocations {
            assert!(gpus >= 1);
            // Aggregate per-type accounting.
            assert!(
                free.total_of_type(&spec, t) >= gpus,
                "round {} over-commits type {t}",
                round.time
            );
            // Burn the GPUs from arbitrary nodes of the type.
            let mut left = gpus;
            for node in spec.nodes_of_type(t) {
                let take = free.on_node(node.id).min(left);
                if take > 0 {
                    free.take(&sia::cluster::Placement::new(vec![(node.id, take)]));
                    left -= take;
                }
            }
            assert_eq!(left, 0);
        }
    }
}

#[test]
fn gpu_seconds_match_round_logs() {
    let (result, _, _) = run(5, 0.2);
    // Sum of per-round (gpus x round duration) must approximate the sum of
    // per-job gpu_seconds, modulo profiling overhead (added) and mid-round
    // completions (subtracted).
    let from_rounds: f64 = result
        .rounds
        .iter()
        .map(|r| r.allocations.iter().map(|&(_, _, g)| g as f64).sum::<f64>() * 60.0)
        .sum();
    let profiling = result.records.len() as f64 * 20.0 * 3.0; // 3 GPU types
    let from_jobs: f64 = result.records.iter().map(|r| r.gpu_seconds).sum();
    let diff = (from_jobs - profiling - from_rounds).abs();
    assert!(
        diff <= from_rounds * 0.05 + 1e4,
        "accounting drift: rounds {from_rounds} vs jobs {from_jobs} (profiling {profiling})"
    );
}

#[test]
fn work_done_never_exceeds_target_and_finishing_jobs_complete() {
    let (result, _, _) = run(7, 0.25);
    for rec in &result.records {
        assert!(rec.work_done <= rec.work_target * (1.0 + 1e-9));
        if rec.finish_time.is_some() {
            assert!(rec.work_done >= rec.work_target * (1.0 - 1e-9));
            assert!(rec.finish_time.unwrap() >= rec.submit_time);
            assert!(rec.first_start.is_some());
            assert!(rec.first_start.unwrap() <= rec.finish_time.unwrap());
        }
    }
}

#[test]
fn makespan_is_last_completion() {
    let (result, _, _) = run(9, 0.2);
    let last = result
        .records
        .iter()
        .filter_map(|r| r.finish_time)
        .fold(0.0_f64, f64::max);
    assert!((result.makespan - last).abs() < 1e-6);
}

#[test]
fn contention_counts_active_jobs() {
    let (result, _, trace) = run(11, 0.2);
    for round in &result.rounds {
        assert!(round.contention <= trace.jobs.len());
        assert_eq!(round.contention, round.active_jobs);
        assert!(round.allocations.len() <= round.active_jobs);
    }
}

#[test]
fn noise_changes_outcomes_but_not_validity() {
    let spec = ClusterSpec::heterogeneous_64();
    let mut trace = Trace::generate(&TraceConfig::new(TraceKind::Philly, 13));
    trace.jobs.truncate(20);
    for j in &mut trace.jobs {
        j.work_target *= 0.2;
    }
    let clean =
        Simulator::new(spec.clone(), &trace, SimConfig::default()).run(&mut SiaPolicy::default());
    let noisy =
        Simulator::new(spec, &trace, SimConfig::physical(77)).run(&mut SiaPolicy::default());
    assert_eq!(clean.unfinished, 0);
    assert_eq!(noisy.unfinished, 0);
    let cj = clean.avg_jct();
    let nj = noisy.avg_jct();
    assert!(cj > 0.0 && nj > 0.0);
    assert!(
        (cj - nj).abs() > 1e-9,
        "physical noise must perturb schedules"
    );
    // Within a sane band of each other (noise, not chaos).
    assert!(nj < cj * 3.0 && cj < nj * 3.0);
}
