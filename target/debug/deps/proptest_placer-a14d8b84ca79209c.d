/root/repo/target/debug/deps/proptest_placer-a14d8b84ca79209c.d: tests/proptest_placer.rs

/root/repo/target/debug/deps/proptest_placer-a14d8b84ca79209c: tests/proptest_placer.rs

tests/proptest_placer.rs:
