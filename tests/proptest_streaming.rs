//! Property-based tests for the streaming estimators behind the fleet
//! aggregation: Welford mean/variance and the P²/reservoir quantiles must
//! agree with exact batch computation within tolerance, including on
//! adversarial inputs (constants, sorted ramps, extreme magnitudes).

use proptest::prelude::*;
use sia::metrics::{bootstrap_ci_mean, MetricAgg, P2Quantile, Reservoir, Welford};

/// Exact batch mean.
fn batch_mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Exact unbiased batch variance.
fn batch_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = batch_mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Exact linearly-interpolated quantile of a sorted copy.
fn batch_quantile(xs: &[f64], q: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    sorted[lo] + (pos - lo as f64) * (sorted[hi] - sorted[lo])
}

/// Adversarial input families: uniform noise, constants, sorted ramps
/// (ascending and descending), and mixed extreme magnitudes.
fn arb_samples() -> impl Strategy<Value = Vec<f64>> {
    (0usize..5, proptest::collection::vec(-1e3f64..1e3, 2..200)).prop_map(|(family, base)| {
        let n = base.len();
        match family {
            // Uniform noise.
            0 => base,
            // Constant stream (possibly huge magnitude).
            1 => vec![base[0] * 1e9; n],
            // Sorted ascending ramp.
            2 => {
                let mut v = base;
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                v
            }
            // Sorted descending ramp.
            3 => {
                let mut v = base;
                v.sort_by(|a, b| b.partial_cmp(a).unwrap());
                v
            }
            // Mixed extreme magnitudes (±1e9 outliers among small values).
            _ => base
                .iter()
                .enumerate()
                .map(|(i, x)| match i % 3 {
                    0 => x * 1e6,
                    1 => *x,
                    _ => -x * 1e6,
                })
                .collect(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Welford matches exact batch mean/variance to relative tolerance.
    #[test]
    fn welford_matches_batch(xs in arb_samples()) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let m = batch_mean(&xs);
        let v = batch_variance(&xs);
        let scale = xs.iter().fold(1.0f64, |a, x| a.max(x.abs()));
        prop_assert!((w.mean() - m).abs() <= 1e-9 * scale,
            "mean {} vs batch {m}", w.mean());
        prop_assert!((w.variance() - v).abs() <= 1e-7 * scale * scale,
            "variance {} vs batch {v}", w.variance());
        prop_assert_eq!(w.count(), xs.len() as u64);
    }

    /// Merging split streams equals one stream (parallel-axis update).
    #[test]
    fn welford_merge_matches_single_stream(xs in arb_samples(), split in 0usize..200) {
        let split = split.min(xs.len());
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let (mut a, mut b) = (Welford::new(), Welford::new());
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(&b);
        let scale = xs.iter().fold(1.0f64, |acc, x| acc.max(x.abs()));
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-9 * scale);
        prop_assert!((a.variance() - whole.variance()).abs() <= 1e-6 * scale * scale);
        prop_assert_eq!(a.count(), whole.count());
    }

    /// P² stays within the sample range and lands near the exact batch
    /// quantile. P² is an approximation: exact for n <= 5, then
    /// marker-interpolated — accuracy improves with n and degrades on
    /// multi-modal input, so the tolerance is a fraction of the observed
    /// range that tightens as the stream grows. The hard invariant is
    /// range containment; the tolerance catches gross estimator breakage
    /// (e.g. markers collapsing to one end).
    #[test]
    fn p2_quantile_tracks_batch(xs in arb_samples(), q in prop_oneof![Just(0.5), Just(0.95)]) {
        let mut p2 = P2Quantile::new(q);
        for &x in &xs {
            p2.push(x);
        }
        let est = p2.quantile().unwrap();
        let exact = batch_quantile(&xs, q);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(est >= lo && est <= hi, "estimate {est} outside [{lo}, {hi}]");
        let range = (hi - lo).max(1e-12);
        let frac = if xs.len() < 30 { 0.8 } else { 0.45 };
        prop_assert!((est - exact).abs() <= frac * range + 1e-9,
            "P²({q}) {est} too far from exact {exact} (n {}, range {range})", xs.len());
    }

    /// While the reservoir is exhaustive its quantiles are EXACT, and the
    /// MetricAgg summary therefore matches batch order statistics. Fleet
    /// cells with up to RESERVOIR_CAP runs report exact medians/p95s.
    #[test]
    fn exhaustive_reservoir_is_exact(xs in arb_samples()) {
        let mut agg = MetricAgg::new();
        for &x in &xs {
            agg.push(x);
        }
        let s = agg.summary();
        let scale = xs.iter().fold(1.0f64, |a, x| a.max(x.abs()));
        prop_assert!((s.median - batch_quantile(&xs, 0.5)).abs() <= 1e-9 * scale);
        prop_assert!((s.p95 - batch_quantile(&xs, 0.95)).abs() <= 1e-9 * scale);
        prop_assert!((s.mean - batch_mean(&xs)).abs() <= 1e-9 * scale);
        prop_assert!(s.ci95.0 <= s.mean + 1e-12 && s.mean <= s.ci95.1 + 1e-12);
    }

    /// Bootstrap CI brackets the sample mean and is deterministic in the
    /// seed.
    #[test]
    fn bootstrap_ci_brackets_mean(xs in proptest::collection::vec(-100f64..100.0, 3..80), seed in 0u64..1_000_000_000) {
        let (lo, hi) = bootstrap_ci_mean(&xs, 200, seed);
        let m = batch_mean(&xs);
        prop_assert!(lo <= m + 1e-9 && m <= hi + 1e-9, "[{lo}, {hi}] vs mean {m}");
        prop_assert_eq!(bootstrap_ci_mean(&xs, 200, seed), (lo, hi));
    }

    /// Overflowing reservoir keeps exactly `cap` items, all from the
    /// stream, and tracks the total seen.
    #[test]
    fn reservoir_overflow_is_sane(n in 10usize..500, seed in 0u64..1_000_000_000) {
        let cap = 16;
        let mut r = Reservoir::new(cap, seed);
        for i in 0..n {
            r.push(i as f64);
        }
        prop_assert_eq!(r.seen(), n as u64);
        prop_assert_eq!(r.is_exhaustive(), n <= cap);
        prop_assert_eq!(r.items().len(), n.min(cap));
        prop_assert!(r.items().iter().all(|x| *x >= 0.0 && *x < n as f64));
    }
}
