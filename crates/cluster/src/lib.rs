//! Cluster topology types for the Sia scheduler.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: GPU kinds, nodes, heterogeneous cluster specifications, the
//! Sia *configuration* sets of §3.3 of the paper (bundles `(n, r, t)` of `r`
//! GPUs of type `t` spread over `n` nodes), and concrete placements of
//! configurations onto physical nodes.
//!
//! The standard evaluation clusters of the paper are provided as
//! constructors on [`ClusterSpec`]:
//!
//! * [`ClusterSpec::physical_44`] — 3 `rtx` + 1 `quad` + 2 `a100` nodes
//!   (44 GPUs, 3 types), the paper's physical testbed.
//! * [`ClusterSpec::homogeneous_64`] — 16 `t4` nodes (64 GPUs).
//! * [`ClusterSpec::heterogeneous_64`] — 6 `t4` + 3 `rtx` + 2 `a100` nodes
//!   (64 GPUs, 3 types).

#![forbid(unsafe_code)]

pub mod config;
pub mod placement;
pub mod spec;
pub mod view;

pub use config::{
    config_set, config_set_view, configs_for_type, configs_for_type_view, Configuration,
};
pub use placement::{FreeGpus, Placement, PlacementError};
pub use spec::{ClusterSpec, GpuKind, GpuTypeId, Node, NodeGroup};
pub use view::{ClusterView, NodeHealth, NodeState};

/// Identifier of a job, unique within one simulation/cluster lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

// Newtype serialization matches the old serde derive: a bare number.
impl serde_json::ToJson for JobId {
    fn to_json(&self) -> serde_json::Value {
        serde_json::Value::Int(self.0 as i64)
    }
}

impl serde_json::FromJson for JobId {
    fn from_json(v: &serde_json::Value) -> Result<Self, serde_json::Error> {
        <u64 as serde_json::FromJson>::from_json(v).map(JobId)
    }
}
