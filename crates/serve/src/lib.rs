//! The Sia scheduling daemon.
//!
//! `sia-serve` wraps the steppable round engine ([`sia_sim::SimDriver`])
//! in a long-running service: a JSONL command stream (stdin or a Unix
//! socket) carries `submit` / `cancel` / `query` / `snapshot` / `shutdown`
//! requests, each tagged with a client-supplied request id, and the daemon
//! answers with JSONL responses and lifecycle events (`admitted`,
//! `rejected` with a typed reason, `allocated`, `completed`) carrying the
//! originating request ids.
//!
//! Submissions pass through a pluggable admission pipeline before they
//! reach the engine: schema validation, then per-tenant GPU-hour quota and
//! max-pending admission control ([`QuotaLedger`]), then the scheduling
//! policy and placement of the ordinary engine round. Every decision —
//! accept, reject, cancellation refund — lands in the audit stream as a
//! typed `admission` record.
//!
//! The whole daemon state (engine, estimators, RNG, warm starts, pending
//! queue, quota ledger) snapshots to a versioned, length-prefixed,
//! checksummed file ([`snapshot`]); a killed daemon restores from it and
//! continues **bit-identically** — the canonical flight trace of a
//! snapshot/kill/restore run is byte-equal to an uninterrupted one.

#![forbid(unsafe_code)]

pub mod log;
pub mod observe;
pub mod protocol;
pub mod quota;
pub mod server;
pub mod snapshot;
pub mod stats;

pub use log::{LogLevel, Logger};
pub use observe::Observe;
pub use protocol::{parse_request, Command, Request};
pub use quota::{
    AdmissionContext, AdmissionStage, QuotaLedger, QuotaStage, Rejection, SchemaStage,
};
pub use server::{serve_replay, serve_wallclock, Pacing, ServeOptions, Server};
pub use snapshot::{read_snapshot, write_snapshot, SnapshotError, SNAPSHOT_FILE_VERSION};
#[cfg(unix)]
pub use stats::spawn_unix;
pub use stats::{spawn_tcp, StatsHandle};
