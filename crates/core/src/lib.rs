//! The Sia scheduling policy (the paper's primary contribution).
//!
//! Sia is a pre-emptive, round-based scheduler that, every round, chooses a
//! *configuration* — a bundle `(n nodes, r GPUs, GPU type t)` from the
//! restricted set of §3.3 — for every active job so as to maximize
//! cluster-wide normalized goodput:
//!
//! 1. [`matrix`] builds the normalized goodput matrix `G`: per-job goodput
//!    estimates across candidate configurations, row-normalized by the row
//!    minimum, discounted by the restart factor `r_i` (Eq. 3) for
//!    configurations that would move the job, and raised to the fairness
//!    power `p` (§3.4);
//! 2. [`ilp`] assembles and solves the binary ILP of Eq. 4 (at most one
//!    configuration per job; per-GPU-type capacity constraints) using the
//!    from-scratch branch-and-bound solver in `sia-solver`;
//! 3. [`placer`] realizes the chosen configurations on physical nodes under
//!    Sia's placement rules (partial allocations never split across nodes;
//!    whole-node allocations take whole nodes; evict-and-retry on
//!    fragmentation).
//!
//! Adaptive, strong-scaling, rigid and hybrid-parallel (pipeline + data
//! parallel) jobs are all supported, as are non-preemptive reservations.

#![forbid(unsafe_code)]

pub mod ilp;
pub mod matrix;
pub mod placer;
pub mod policy;
pub mod pool;

pub use ilp::{
    solve_assignment, solve_assignment_sharded, solve_assignment_warm, solve_assignment_with_stats,
    AssignmentStats, ForcedAssignments, ShardSolveOptions,
};
pub use matrix::{
    config_fingerprint, max_gpu_demand, prune_config_set, Candidate, MatrixCache, RefreshStats,
    DEFAULT_RESTART_HORIZON_SECS,
};
pub use policy::{ShardConfig, SiaConfig, SiaPolicy};
