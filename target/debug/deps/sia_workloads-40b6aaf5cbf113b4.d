/root/repo/target/debug/deps/sia_workloads-40b6aaf5cbf113b4.d: crates/workloads/src/lib.rs crates/workloads/src/job.rs crates/workloads/src/trace.rs crates/workloads/src/tuning.rs crates/workloads/src/zoo.rs

/root/repo/target/debug/deps/libsia_workloads-40b6aaf5cbf113b4.rlib: crates/workloads/src/lib.rs crates/workloads/src/job.rs crates/workloads/src/trace.rs crates/workloads/src/tuning.rs crates/workloads/src/zoo.rs

/root/repo/target/debug/deps/libsia_workloads-40b6aaf5cbf113b4.rmeta: crates/workloads/src/lib.rs crates/workloads/src/job.rs crates/workloads/src/trace.rs crates/workloads/src/tuning.rs crates/workloads/src/zoo.rs

crates/workloads/src/lib.rs:
crates/workloads/src/job.rs:
crates/workloads/src/trace.rs:
crates/workloads/src/tuning.rs:
crates/workloads/src/zoo.rs:
