//! Test configuration and the deterministic RNG behind generation.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64 stream: tiny, fast, and plenty for test-input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [0, bound). `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}
