//! Simulation outputs: per-job records and per-round logs.

use sia_cluster::{GpuTypeId, JobId};
use sia_telemetry::{AuditStream, FlightTrace};
use sia_workloads::{ModelKind, SizeCategory};

/// Outcome of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job id.
    pub id: JobId,
    /// Job name.
    pub name: String,
    /// Model trained.
    pub model: ModelKind,
    /// Size category.
    pub category: SizeCategory,
    /// Submission time, seconds.
    pub submit_time: f64,
    /// First time the job held resources, if ever.
    pub first_start: Option<f64>,
    /// Completion time; `None` if the simulation horizon was hit first.
    pub finish_time: Option<f64>,
    /// GPU-seconds consumed (including restart overheads and profiling).
    pub gpu_seconds: f64,
    /// Number of restarts (placement changes after first start).
    pub restarts: u32,
    /// Number of injected worker failures the job recovered from.
    pub failures: u32,
    /// Average number of jobs contending for resources over this job's
    /// lifetime (`N_avg` in the finish-time-fairness definition).
    pub avg_contention: f64,
    /// Maximum GPUs the submitter allowed.
    pub max_gpus: usize,
    /// Total work target, efficiency-weighted samples.
    pub work_target: f64,
    /// Work completed by the end of simulation.
    pub work_done: f64,
}

impl JobRecord {
    /// Job completion time (finish − submit); `None` if unfinished.
    pub fn jct(&self) -> Option<f64> {
        self.finish_time.map(|f| f - self.submit_time)
    }

    /// Queueing delay before first start, if the job ever started.
    pub fn queue_delay(&self) -> Option<f64> {
        self.first_start.map(|s| s - self.submit_time)
    }
}

/// How the per-round assignment solve concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveOutcome {
    /// Branch and bound proved optimality.
    Optimal,
    /// A feasible incumbent was returned under a node/time limit.
    Feasible,
    /// Exact limits exhausted; the Lagrangian-relaxation heuristic answered.
    LagrangianFallback,
    /// Even the heuristic assigned nothing; the greedy scan answered.
    GreedyFallback,
    /// No candidates this round (empty problem, nothing to solve).
    Empty,
}

impl SolveOutcome {
    /// Stable lowercase label for reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            SolveOutcome::Optimal => "optimal",
            SolveOutcome::Feasible => "feasible",
            SolveOutcome::LagrangianFallback => "lagrangian_fallback",
            SolveOutcome::GreedyFallback => "greedy_fallback",
            SolveOutcome::Empty => "empty",
        }
    }
}

/// Per-round scheduler introspection: where the policy's wall-clock went and
/// what the underlying solver did. Produced by [`crate::Scheduler::round_stats`];
/// policies that don't track phases leave [`RoundLog::solver_stats`] empty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverStats {
    /// Seconds re-fitting stale goodput estimator rows.
    pub refit_s: f64,
    /// Seconds evaluating the goodput/utility matrix into candidates.
    pub goodput_s: f64,
    /// Seconds building the assignment problem (variables + rows).
    pub build_s: f64,
    /// Seconds inside the MILP/heuristic solve.
    pub solve_s: f64,
    /// Seconds translating chosen configurations into physical placements.
    pub placement_s: f64,
    /// Candidate (job, configuration) pairs offered to the solver.
    pub candidates: usize,
    /// Branch-and-bound nodes explored (0 for fallback/empty solves).
    pub nodes: usize,
    /// Simplex pivots across all node relaxations.
    pub pivots: usize,
    /// Root LP relaxation objective, when the root was solved.
    pub lp_objective: Option<f64>,
    /// Objective of the returned assignment, when one exists.
    pub objective: Option<f64>,
    /// Proven relaxation bound on the optimum: the assignment objective can
    /// be no better than this. `None` when the solve fell back to a
    /// heuristic (no bound available) or had nothing to solve.
    pub best_bound: Option<f64>,
    /// Branch-and-bound nodes discarded because their relaxation bound could
    /// not beat the incumbent.
    pub nodes_pruned: usize,
    /// Node index at which the first incumbent appeared (0 = the warm-start
    /// seed was accepted before the search began).
    pub first_incumbent_node: Option<usize>,
    /// Wall-clock seconds to the first incumbent. Host-dependent; canonical
    /// audit serialization zeroes it, like the trace's `policy_runtime_s`.
    pub first_incumbent_s: Option<f64>,
    /// Goodput-matrix rows reused verbatim from the previous round.
    pub cache_hits: usize,
    /// Goodput-matrix rows re-enumerated this round (dirty jobs).
    pub cache_misses: usize,
    /// Objective of the warm-start incumbent accepted by branch-and-bound,
    /// when the previous round's assignment seeded a feasible incumbent.
    pub incumbent_seed: Option<f64>,
    /// Estimated simplex pivots avoided by warm-starting node LP
    /// relaxations from their parent's basis.
    pub warm_pivots_saved: usize,
    /// Worker threads used for candidate-matrix evaluation.
    pub workers: usize,
    /// Shards solved by the decomposed (price-and-decompose) path; 0 when
    /// the round used the monolithic branch-and-bound.
    pub shards: usize,
    /// A node/time budget stopped at least one solve before an optimality
    /// proof this round; the returned assignment is the anytime incumbent
    /// and `best_bound` still bounds the optimum honestly.
    pub budget_exhausted: bool,
    /// Subgradient iterations of the Lagrangian pricing pass (0 when no
    /// pricing ran this round).
    pub lagrangian_iters: usize,
    /// Final absolute duality gap of the pricing pass.
    pub lagrangian_gap: f64,
    /// Euclidean norm of the final Lagrangian multipliers (GPU prices).
    pub lagrangian_norm: f64,
    /// How the solve concluded.
    pub outcome: SolveOutcome,
}

impl SolverStats {
    /// Sum of all phase timers (≤ the round's `policy_runtime`).
    pub fn phase_total_s(&self) -> f64 {
        self.refit_s + self.goodput_s + self.build_s + self.solve_s + self.placement_s
    }

    /// Proven absolute optimality gap (`best_bound − objective`, clamped at
    /// zero), when both sides exist.
    pub fn gap_abs(&self) -> Option<f64> {
        match (self.best_bound, self.objective) {
            (Some(b), Some(o)) => Some((b - o).max(0.0)),
            _ => None,
        }
    }

    /// Proven relative optimality gap: `gap_abs / max(|best_bound|, 1e-12)`.
    pub fn gap_rel(&self) -> Option<f64> {
        let gap = self.gap_abs()?;
        let bound = self.best_bound?;
        Some(gap / bound.abs().max(1e-12))
    }
}

/// Per-job decision provenance for one scheduling round, reported by
/// policies that expose it ([`crate::Scheduler::round_decisions`]). Values
/// are in the policy's own candidate-value units (normalized goodput for
/// Sia), so `regret()` is directly comparable across rounds of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionInfo {
    /// The job this decision concerns.
    pub job: JobId,
    /// Value of the configuration the solver chose (0.0 when the job was
    /// left unallocated this round).
    pub chosen_value: f64,
    /// Best value among all configurations offered for this job, ignoring
    /// the other jobs — what the job would get if it alone mattered.
    pub best_value: f64,
}

impl DecisionInfo {
    /// What the job gave up for the global optimum: `best − chosen`,
    /// clamped at zero.
    pub fn regret(&self) -> f64 {
        (self.best_value - self.chosen_value).max(0.0)
    }
}

/// Per-round snapshot of cluster state.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundLog {
    /// Round start time, seconds.
    pub time: f64,
    /// Jobs submitted and unfinished at this round.
    pub active_jobs: usize,
    /// Jobs wanting resources (queued + running): the contention metric.
    pub contention: usize,
    /// Per-job allocations this round: `(job, gpu type, gpus)`.
    pub allocations: Vec<(JobId, GpuTypeId, usize)>,
    /// Wall-clock seconds the policy spent computing this round, including
    /// the engine-side validate/apply (placement translation) work.
    pub policy_runtime: f64,
    /// Phase/solver breakdown reported by the policy, if it tracks one.
    pub solver_stats: Option<SolverStats>,
}

/// Full result of one simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Scheduler name.
    pub scheduler: &'static str,
    /// Per-job records (every submitted job, finished or not).
    pub records: Vec<JobRecord>,
    /// Per-round logs.
    pub rounds: Vec<RoundLog>,
    /// Time of the last job completion (or the horizon), seconds.
    pub makespan: f64,
    /// Number of jobs still unfinished at the horizon.
    pub unfinished: usize,
    /// The flight-recorder stream of this run: typed per-job lifecycle
    /// events in simulated time (bounded by `SimConfig::trace_capacity`;
    /// `trace.dropped` counts ring evictions).
    pub trace: FlightTrace,
    /// The decision-quality audit stream of this run: per-round solver
    /// gap/effort records plus per-job decision provenance (bounded by
    /// `SimConfig::audit_capacity`; `audit.dropped` counts ring evictions).
    pub audit: AuditStream,
}

impl SimResult {
    /// Average JCT over finished jobs, seconds.
    pub fn avg_jct(&self) -> f64 {
        let jcts: Vec<f64> = self.records.iter().filter_map(|r| r.jct()).collect();
        if jcts.is_empty() {
            return 0.0;
        }
        jcts.iter().sum::<f64>() / jcts.len() as f64
    }

    /// Total GPU-hours consumed across all jobs.
    pub fn total_gpu_hours(&self) -> f64 {
        self.records.iter().map(|r| r.gpu_seconds).sum::<f64>() / 3600.0
    }

    /// Average restarts per job.
    pub fn avg_restarts(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.restarts as f64).sum::<f64>() / self.records.len() as f64
    }

    /// Median policy runtime per round, seconds.
    pub fn median_policy_runtime(&self) -> f64 {
        let mut v: Vec<f64> = self.rounds.iter().map(|r| r.policy_runtime).collect();
        if v.is_empty() {
            return 0.0;
        }
        // `total_cmp`, not `partial_cmp(..).unwrap()`: a NaN runtime (e.g.
        // from a corrupted log) must not panic summary assembly. NaN sorts
        // last under the IEEE total order.
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(submit: f64, finish: Option<f64>) -> JobRecord {
        JobRecord {
            id: JobId(0),
            name: "r".into(),
            model: ModelKind::ResNet18,
            category: SizeCategory::Small,
            submit_time: submit,
            first_start: Some(submit + 60.0),
            finish_time: finish,
            gpu_seconds: 3600.0,
            restarts: 2,
            failures: 0,
            avg_contention: 4.0,
            max_gpus: 8,
            work_target: 100.0,
            work_done: 100.0,
        }
    }

    #[test]
    fn jct_and_queue_delay() {
        let r = record(100.0, Some(1100.0));
        assert_eq!(r.jct(), Some(1000.0));
        assert_eq!(r.queue_delay(), Some(60.0));
        assert_eq!(record(0.0, None).jct(), None);
    }

    #[test]
    fn aggregate_metrics() {
        let result = SimResult {
            scheduler: "test",
            records: vec![record(0.0, Some(100.0)), record(0.0, Some(300.0))],
            rounds: vec![
                RoundLog {
                    time: 0.0,
                    active_jobs: 2,
                    contention: 2,
                    allocations: vec![],
                    policy_runtime: 0.002,
                    solver_stats: None,
                },
                RoundLog {
                    time: 60.0,
                    active_jobs: 1,
                    contention: 1,
                    allocations: vec![],
                    policy_runtime: 0.004,
                    solver_stats: Some(SolverStats {
                        refit_s: 0.001,
                        goodput_s: 0.001,
                        build_s: 0.0005,
                        solve_s: 0.001,
                        placement_s: 0.0005,
                        candidates: 12,
                        nodes: 3,
                        pivots: 40,
                        lp_objective: Some(5.0),
                        objective: Some(4.5),
                        best_bound: Some(4.5),
                        nodes_pruned: 1,
                        first_incumbent_node: Some(0),
                        first_incumbent_s: Some(0.0),
                        cache_hits: 8,
                        cache_misses: 4,
                        incumbent_seed: Some(4.4),
                        warm_pivots_saved: 10,
                        workers: 2,
                        shards: 0,
                        budget_exhausted: false,
                        lagrangian_iters: 0,
                        lagrangian_gap: 0.0,
                        lagrangian_norm: 0.0,
                        outcome: SolveOutcome::Optimal,
                    }),
                },
            ],
            makespan: 300.0,
            unfinished: 0,
            trace: FlightTrace::default(),
            audit: AuditStream::default(),
        };
        assert!((result.avg_jct() - 200.0).abs() < 1e-9);
        assert!((result.total_gpu_hours() - 2.0).abs() < 1e-9);
        assert!((result.avg_restarts() - 2.0).abs() < 1e-9);
        assert!((result.median_policy_runtime() - 0.004).abs() < 1e-12);
        let stats = result.rounds[1].solver_stats.unwrap();
        assert!((stats.phase_total_s() - 0.004).abs() < 1e-12);
        assert!(stats.phase_total_s() <= result.rounds[1].policy_runtime + 1e-12);
        assert_eq!(stats.outcome.label(), "optimal");
    }

    #[test]
    fn median_policy_runtime_tolerates_nan() {
        // Regression: the percentile sort used `partial_cmp(..).unwrap()`,
        // which panics the moment any runtime sample is NaN.
        let round = |rt: f64| RoundLog {
            time: 0.0,
            active_jobs: 1,
            contention: 1,
            allocations: vec![],
            policy_runtime: rt,
            solver_stats: None,
        };
        let result = SimResult {
            scheduler: "test",
            records: vec![],
            rounds: vec![round(0.002), round(f64::NAN), round(0.001)],
            makespan: 0.0,
            unfinished: 0,
            trace: FlightTrace::default(),
            audit: AuditStream::default(),
        };
        let median = result.median_policy_runtime();
        assert!(
            (median - 0.002).abs() < 1e-12,
            "NaN must sort last, not panic; got {median}"
        );
    }
}
