//! Streaming (single-pass, bounded-memory) statistics for fleet-scale
//! aggregation.
//!
//! A Monte Carlo scenario fleet folds hundreds-to-thousands of per-run
//! summaries into per-cell statistics. Retaining every run would tie memory
//! to fleet size, so aggregation is streaming:
//!
//! * [`Welford`] — numerically stable one-pass mean/variance (Welford's
//!   online algorithm, mergeable via the parallel-axis update);
//! * [`P2Quantile`] — the P² marker estimator of Jain & Chlamtac (1985):
//!   five markers track a target quantile in O(1) memory;
//! * [`Reservoir`] — Algorithm-R reservoir sampling with a deterministic
//!   SplitMix64 stream, feeding the percentile bootstrap (and exact
//!   quantiles whenever the sample still fits the reservoir).
//!
//! Confidence intervals come two ways: a normal approximation
//! (`mean ± 1.96·s/√n`) and a percentile bootstrap over the reservoir
//! ([`bootstrap_ci_mean`]). Everything here is deterministic given the
//! insertion order — the fleet runner folds run summaries in run-id order,
//! so aggregates never depend on worker count.

/// One-pass mean/variance accumulator (Welford's online algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merges another accumulator (parallel-axis / Chan et al. update):
    /// the result is identical (up to rounding) to pushing both streams
    /// into one accumulator.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n;
        self.mean += delta * other.n as f64 / n;
        self.n += other.n;
    }

    /// Observations folded so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Normal-approximation 95% confidence interval on the mean:
    /// `mean ± 1.96·s/√n`. Collapses to the point estimate for n < 2.
    pub fn ci95(&self) -> (f64, f64) {
        if self.n < 2 {
            return (self.mean(), self.mean());
        }
        let half = 1.96 * self.std() / (self.n as f64).sqrt();
        (self.mean - half, self.mean + half)
    }
}

/// P² streaming quantile estimator (Jain & Chlamtac, CACM 1985).
///
/// Tracks the `p`-quantile of a stream with five markers in constant
/// memory. Exact for the first five observations (kept in a buffer);
/// afterwards the markers follow a piecewise-parabolic interpolation. The
/// estimate is always within the observed data range.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    p: f64,
    n: u64,
    buf: [f64; 5],
    heights: [f64; 5],
    /// Actual marker positions (1-based counts).
    npos: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    dn: [f64; 5],
}

impl P2Quantile {
    /// Estimator for the `p`-quantile (`p` clamped to `[0, 1]`).
    pub fn new(p: f64) -> Self {
        let p = p.clamp(0.0, 1.0);
        P2Quantile {
            p,
            n: 0,
            buf: [0.0; 5],
            heights: [0.0; 5],
            npos: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
        }
    }

    /// Target quantile.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Observations folded so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        if self.n < 5 {
            self.buf[self.n as usize] = x;
            self.n += 1;
            if self.n == 5 {
                let mut b = self.buf;
                b.sort_by(f64::total_cmp);
                self.heights = b;
            }
            return;
        }
        // Locate the marker cell and stretch the extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 1..4 {
                if x >= self.heights[i] {
                    k = i;
                }
            }
            k
        };
        self.n += 1;
        for i in (k + 1)..5 {
            self.npos[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.dn[i];
        }
        // Nudge interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.npos[i];
            if (d >= 1.0 && self.npos[i + 1] - self.npos[i] > 1.0)
                || (d <= -1.0 && self.npos[i - 1] - self.npos[i] < -1.0)
            {
                let d = d.signum();
                let h = self.parabolic(i, d);
                self.heights[i] = if self.heights[i - 1] < h && h < self.heights[i + 1] {
                    h
                } else {
                    self.linear(i, d)
                };
                self.npos[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (h, np) = (&self.heights, &self.npos);
        h[i] + d / (np[i + 1] - np[i - 1])
            * ((np[i] - np[i - 1] + d) * (h[i + 1] - h[i]) / (np[i + 1] - np[i])
                + (np[i + 1] - np[i] - d) * (h[i] - h[i - 1]) / (np[i] - np[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i] + d * (self.heights[j] - self.heights[i]) / (self.npos[j] - self.npos[i])
    }

    /// Current quantile estimate: exact (interpolated order statistic) while
    /// fewer than five observations have arrived, the middle P² marker
    /// afterwards. `None` when empty.
    pub fn quantile(&self) -> Option<f64> {
        match self.n {
            0 => None,
            n if n < 5 => {
                let mut v: Vec<f64> = self.buf[..n as usize].to_vec();
                v.sort_by(f64::total_cmp);
                Some(interpolated(&v, self.p))
            }
            _ => Some(self.heights[2]),
        }
    }
}

/// Linear-interpolated quantile of an already-sorted slice.
fn interpolated(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// SplitMix64 step — the deterministic PRNG behind reservoir eviction and
/// the bootstrap resampler (no wall-clock, no global state).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `0..bound` from a SplitMix64 stream.
fn uniform(state: &mut u64, bound: u64) -> u64 {
    // Bounds here are tiny relative to 2^64; modulo bias is negligible for
    // CI purposes and keeps the draw branch-free (determinism is what
    // matters).
    splitmix64(state) % bound.max(1)
}

/// Bounded uniform sample of a stream (Algorithm R), deterministic given
/// the insertion order.
#[derive(Debug, Clone, PartialEq)]
pub struct Reservoir {
    cap: usize,
    seen: u64,
    items: Vec<f64>,
    rng: u64,
}

impl Reservoir {
    /// Reservoir keeping at most `cap` items, evicting uniformly at random
    /// from the `seed`-derived SplitMix64 stream once full.
    pub fn new(cap: usize, seed: u64) -> Self {
        Reservoir {
            cap: cap.max(1),
            seen: 0,
            items: Vec::new(),
            rng: seed ^ 0xD6E8_FEB8_6659_FD93,
        }
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.seen += 1;
        if self.items.len() < self.cap {
            self.items.push(x);
        } else {
            let j = uniform(&mut self.rng, self.seen);
            if (j as usize) < self.cap {
                self.items[j as usize] = x;
            }
        }
    }

    /// Observations offered so far (≥ the retained count).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Whether every observation offered is still retained (sample ≡
    /// population, so quantiles from the reservoir are exact).
    pub fn is_exhaustive(&self) -> bool {
        self.seen as usize == self.items.len()
    }

    /// Retained sample.
    pub fn items(&self) -> &[f64] {
        &self.items
    }

    /// Interpolated quantile of the retained sample (`None` when empty).
    /// Exact while [`Self::is_exhaustive`]; an unbiased estimate after.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.items.is_empty() {
            return None;
        }
        let mut v = self.items.clone();
        v.sort_by(f64::total_cmp);
        Some(interpolated(&v, q))
    }
}

/// Percentile-bootstrap 95% confidence interval on the mean of `samples`:
/// `iters` resamples with replacement (deterministic SplitMix64 stream from
/// `seed`), interval = the 2.5th and 97.5th percentiles of the resampled
/// means. Degenerates to the point estimate for fewer than two samples.
pub fn bootstrap_ci_mean(samples: &[f64], iters: usize, seed: u64) -> (f64, f64) {
    if samples.len() < 2 {
        let v = samples.first().copied().unwrap_or(0.0);
        return (v, v);
    }
    let mut rng = seed ^ 0xA076_1D64_78BD_642F;
    let n = samples.len();
    let mut means = Vec::with_capacity(iters.max(1));
    for _ in 0..iters.max(1) {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += samples[uniform(&mut rng, n as u64) as usize];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(f64::total_cmp);
    (interpolated(&means, 0.025), interpolated(&means, 0.975))
}

/// Bootstrap resamples used by [`MetricAgg::summary`].
pub const BOOTSTRAP_ITERS: usize = 1000;
/// Reservoir capacity used by [`MetricAgg`]: fleets up to this many runs
/// per cell get exact quantiles and a full-sample bootstrap.
pub const RESERVOIR_CAP: usize = 4096;

/// Everything the fleet reports about one scalar metric, folded in one
/// pass: Welford moments, P² median and p95 markers, and a reservoir for
/// the bootstrap.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricAgg {
    welford: Welford,
    p50: P2Quantile,
    p95: P2Quantile,
    reservoir: Reservoir,
}

impl Default for MetricAgg {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricAgg {
    /// Empty aggregate with the default reservoir capacity.
    pub fn new() -> Self {
        MetricAgg {
            welford: Welford::new(),
            p50: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            reservoir: Reservoir::new(RESERVOIR_CAP, 0),
        }
    }

    /// Folds one per-run observation in.
    pub fn push(&mut self, x: f64) {
        self.welford.push(x);
        self.p50.push(x);
        self.p95.push(x);
        self.reservoir.push(x);
    }

    /// Observations folded so far.
    pub fn count(&self) -> u64 {
        self.welford.count()
    }

    /// Point estimates + 95% intervals over everything folded so far.
    pub fn summary(&self) -> MetricSummary {
        let (ci_lo, ci_hi) = self.welford.ci95();
        let (boot_lo, boot_hi) = bootstrap_ci_mean(
            self.reservoir.items(),
            BOOTSTRAP_ITERS,
            self.welford.count(),
        );
        // Prefer exact order statistics while the reservoir still holds the
        // whole sample; fall back to the P² markers on overflow.
        let (median, p95) = if self.reservoir.is_exhaustive() {
            (
                self.reservoir.quantile(0.5).unwrap_or(0.0),
                self.reservoir.quantile(0.95).unwrap_or(0.0),
            )
        } else {
            (
                self.p50.quantile().unwrap_or(0.0),
                self.p95.quantile().unwrap_or(0.0),
            )
        };
        MetricSummary {
            n: self.welford.count(),
            mean: self.welford.mean(),
            std: self.welford.std(),
            ci95: (ci_lo, ci_hi),
            boot_ci95: (boot_lo, boot_hi),
            median,
            p95,
        }
    }
}

/// Snapshot of a [`MetricAgg`]: the row a `FLEET_*.json` cell carries per
/// metric.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricSummary {
    /// Runs folded in.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Normal-approximation 95% CI on the mean.
    pub ci95: (f64, f64),
    /// Percentile-bootstrap 95% CI on the mean.
    pub boot_ci95: (f64, f64),
    /// Median (exact while the reservoir is exhaustive, P² after).
    pub median: f64,
    /// 95th percentile (same sourcing as the median).
    pub p95: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_mean_var(v: &[f64]) -> (f64, f64) {
        let n = v.len() as f64;
        let mean = v.iter().sum::<f64>() / n;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn welford_matches_batch() {
        let v: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 50.0 + 100.0)
            .collect();
        let mut w = Welford::new();
        for &x in &v {
            w.push(x);
        }
        let (m, var) = batch_mean_var(&v);
        assert!((w.mean() - m).abs() < 1e-9);
        assert!((w.variance() - var).abs() < 1e-6);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let v: Vec<f64> = (0..500).map(|i| (i as f64).sqrt() * 3.0 - 20.0).collect();
        let mut whole = Welford::new();
        for &x in &v {
            whole.push(x);
        }
        let (mut a, mut b) = (Welford::new(), Welford::new());
        for &x in &v[..123] {
            a.push(x);
        }
        for &x in &v[123..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-6);
    }

    #[test]
    fn p2_exact_below_five_and_constant() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.quantile(), None);
        for x in [3.0, 1.0, 2.0] {
            q.push(x);
        }
        assert!((q.quantile().unwrap() - 2.0).abs() < 1e-12);
        let mut c = P2Quantile::new(0.95);
        for _ in 0..200 {
            c.push(7.5);
        }
        assert_eq!(c.quantile().unwrap(), 7.5);
    }

    #[test]
    fn p2_tracks_uniform_ramp() {
        // Sorted (adversarial for marker estimators) ramp 0..10_000.
        let mut q = P2Quantile::new(0.5);
        for i in 0..10_000 {
            q.push(i as f64);
        }
        let est = q.quantile().unwrap();
        assert!((est - 5000.0).abs() < 250.0, "median est {est}");
    }

    #[test]
    fn reservoir_exact_until_full_then_bounded() {
        let mut r = Reservoir::new(8, 42);
        for i in 0..8 {
            r.push(i as f64);
        }
        assert!(r.is_exhaustive());
        assert_eq!(r.quantile(1.0).unwrap(), 7.0);
        for i in 8..1000 {
            r.push(i as f64);
        }
        assert!(!r.is_exhaustive());
        assert_eq!(r.items().len(), 8);
        // Deterministic given the same insertion order.
        let mut r2 = Reservoir::new(8, 42);
        for i in 0..1000 {
            r2.push(i as f64);
        }
        assert_eq!(r, r2);
    }

    #[test]
    fn bootstrap_ci_brackets_mean_and_is_deterministic() {
        let v: Vec<f64> = (0..100).map(|i| 10.0 + (i % 7) as f64).collect();
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let (lo, hi) = bootstrap_ci_mean(&v, 500, 9);
        assert!(lo <= mean && mean <= hi, "({lo}, {hi}) vs {mean}");
        assert_eq!((lo, hi), bootstrap_ci_mean(&v, 500, 9));
        assert_eq!(bootstrap_ci_mean(&[5.0], 500, 9), (5.0, 5.0));
        assert_eq!(bootstrap_ci_mean(&[], 500, 9), (0.0, 0.0));
    }

    #[test]
    fn metric_agg_summary_consistency() {
        let mut agg = MetricAgg::new();
        let v: Vec<f64> = (0..64).map(|i| (i as f64 * 1.7) % 13.0).collect();
        for &x in &v {
            agg.push(x);
        }
        let s = agg.summary();
        assert_eq!(s.n, 64);
        let (m, var) = batch_mean_var(&v);
        assert!((s.mean - m).abs() < 1e-9);
        assert!((s.std - var.sqrt()).abs() < 1e-9);
        assert!(s.ci95.0 <= s.mean && s.mean <= s.ci95.1);
        assert!(s.boot_ci95.0 <= s.mean + 1e-9 && s.mean - 1e-9 <= s.boot_ci95.1);
        // Exact quantiles while the reservoir holds everything.
        let mut sorted = v.clone();
        sorted.sort_by(f64::total_cmp);
        assert!((s.median - interpolated(&sorted, 0.5)).abs() < 1e-12);
        assert!((s.p95 - interpolated(&sorted, 0.95)).abs() < 1e-12);
    }
}
