/root/repo/target/debug/deps/policy_invariants-b3114680db86fa99.d: tests/policy_invariants.rs

/root/repo/target/debug/deps/policy_invariants-b3114680db86fa99: tests/policy_invariants.rs

tests/policy_invariants.rs:
