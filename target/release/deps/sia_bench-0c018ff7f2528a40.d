/root/repo/target/release/deps/sia_bench-0c018ff7f2528a40.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/sia_bench-0c018ff7f2528a40: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
