//! Synthetic trace generators for the three evaluation workloads.
//!
//! The proprietary Philly / Helios / newTrace datasets are reproduced from
//! their published statistics (§4.1):
//!
//! * **Philly** — 8 h windows sampled at 20 jobs/hr (160 jobs), dominated by
//!   Small jobs.
//! * **Helios** — same window/rate, but heavier: more Medium/Large/XL jobs
//!   requesting more GPUs, yielding higher cluster load.
//! * **newTrace** — 48 h windows at an average of 20 jobs/hr (960 jobs) with
//!   a diurnal arrival-rate pattern ranging from 5 to 100 jobs/hr, including
//!   submission-script bursts.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sia_cluster::JobId;
use sia_models::AllocShape;

use crate::job::{Adaptivity, JobSpec, SizeCategory};
use crate::zoo::ModelKind;

/// Which production environment a trace mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Microsoft Philly-like: light, Small-dominated.
    Philly,
    /// Helios Saturn-like: heavier job mix, more GPUs per job.
    Helios,
    /// newTrace-like: 48 h diurnal pattern with bursts.
    NewTrace,
    /// The 3-hour, 30-job physical-testbed trace of §5.1.
    Physical,
}

impl TraceKind {
    /// Category mix `(S, M, L, XL)` for this trace kind.
    pub fn category_mix(&self) -> [(SizeCategory, f64); 4] {
        match self {
            TraceKind::Philly => [
                (SizeCategory::Small, 0.72),
                (SizeCategory::Medium, 0.20),
                (SizeCategory::Large, 0.06),
                (SizeCategory::ExtraLarge, 0.02),
            ],
            TraceKind::Helios => [
                (SizeCategory::Small, 0.50),
                (SizeCategory::Medium, 0.30),
                (SizeCategory::Large, 0.15),
                (SizeCategory::ExtraLarge, 0.05),
            ],
            TraceKind::NewTrace => [
                (SizeCategory::Small, 0.60),
                (SizeCategory::Medium, 0.25),
                (SizeCategory::Large, 0.11),
                (SizeCategory::ExtraLarge, 0.04),
            ],
            TraceKind::Physical => [
                (SizeCategory::Small, 0.45),
                (SizeCategory::Medium, 0.35),
                (SizeCategory::Large, 0.15),
                (SizeCategory::ExtraLarge, 0.05),
            ],
        }
    }

    /// Default submission-window length, hours.
    pub fn window_hours(&self) -> f64 {
        match self {
            TraceKind::Philly | TraceKind::Helios => 8.0,
            TraceKind::NewTrace => 48.0,
            TraceKind::Physical => 3.0,
        }
    }

    /// Default average arrival rate, jobs/hour.
    pub fn default_rate(&self) -> f64 {
        match self {
            TraceKind::Physical => 10.0,
            _ => 20.0,
        }
    }
}

/// Parameters for trace generation.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Which workload to mimic.
    pub kind: TraceKind,
    /// RNG seed (traces are fully deterministic given the config).
    pub seed: u64,
    /// Average arrival rate, jobs/hour.
    pub rate_jobs_per_hour: f64,
    /// Submission-window length, hours.
    pub window_hours: f64,
    /// Upper bound applied to every job's `max_gpus` (§4.3 caps tuning at
    /// 16 GPUs on the physical/heterogeneous clusters and 64 on the
    /// homogeneous one).
    pub max_gpus_cap: usize,
    /// Fraction of jobs submitted as strong-scaling (fixed batch).
    pub frac_strong_scaling: f64,
    /// Fraction of jobs submitted as rigid (fixed batch and GPU count).
    pub frac_rigid: f64,
}

impl TraceConfig {
    /// Default configuration for a trace kind.
    pub fn new(kind: TraceKind, seed: u64) -> Self {
        TraceConfig {
            kind,
            seed,
            rate_jobs_per_hour: kind.default_rate(),
            window_hours: kind.window_hours(),
            max_gpus_cap: 16,
            frac_strong_scaling: 0.0,
            frac_rigid: 0.0,
        }
    }

    /// Overrides the arrival rate (Figure 7 sweeps 10–50 jobs/hr).
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate_jobs_per_hour = rate;
        self
    }

    /// Overrides the `max_gpus` cap.
    pub fn with_max_gpus_cap(mut self, cap: usize) -> Self {
        self.max_gpus_cap = cap;
        self
    }

    /// Sets the adaptivity-restriction fractions (Figure 11).
    pub fn with_adaptivity_mix(mut self, strong: f64, rigid: f64) -> Self {
        assert!(strong >= 0.0 && rigid >= 0.0 && strong + rigid <= 1.0);
        self.frac_strong_scaling = strong;
        self.frac_rigid = rigid;
        self
    }
}

/// A generated trace: jobs sorted by submission time.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Jobs in submission order.
    pub jobs: Vec<JobSpec>,
}

impl Trace {
    /// Generates a trace from a configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use sia_workloads::{Trace, TraceConfig, TraceKind};
    ///
    /// let trace = Trace::generate(&TraceConfig::new(TraceKind::Philly, 42));
    /// assert!(!trace.is_empty());
    /// // Deterministic given (kind, seed).
    /// let again = Trace::generate(&TraceConfig::new(TraceKind::Philly, 42));
    /// assert_eq!(trace.len(), again.len());
    /// ```
    pub fn generate(cfg: &TraceConfig) -> Trace {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut jobs = Vec::new();
        let window_secs = cfg.window_hours * 3600.0;
        let mut t = 0.0_f64;
        let mut id = 0u64;
        loop {
            let rate_per_sec = instantaneous_rate(cfg, t) / 3600.0;
            let gap = -rng.random::<f64>().max(1e-12).ln() / rate_per_sec;
            t += gap;
            if t >= window_secs {
                break;
            }
            let category = sample_category(cfg.kind, &mut rng);
            let model = sample_model(category, &mut rng);
            let spec = build_job(JobId(id), model, category, t, cfg, &mut rng);
            jobs.push(spec);
            id += 1;
        }
        Trace { jobs }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the trace has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Adds one hybrid-parallel GPT job at `submit_time` (§5.3).
    pub fn push_hybrid_parallel_job(&mut self, submit_time: f64) {
        let id = JobId(self.jobs.len() as u64 + 100_000);
        let profile = ModelKind::Gpt2p8b.profile();
        let work = reference_work_target(ModelKind::Gpt2p8b, 1.0);
        self.jobs.push(JobSpec {
            id,
            name: format!("gpt-2.8b-{}", id.0),
            model: ModelKind::Gpt2p8b,
            category: SizeCategory::XxLarge,
            submit_time,
            adaptivity: Adaptivity::Adaptive,
            min_gpus: 2, // narrowest pipeline (a100)
            max_gpus: 64,
            work_target: work * profile.hours_on_1_t4,
        });
        self.jobs
            .sort_by(|a, b| a.submit_time.partial_cmp(&b.submit_time).unwrap());
    }
}

/// Arrival rate at time `t` seconds into the window, jobs/hour.
fn instantaneous_rate(cfg: &TraceConfig, t: f64) -> f64 {
    match cfg.kind {
        TraceKind::NewTrace => {
            // Diurnal curve between ~0.25x and ~1.75x the average, plus a
            // deterministic burst hour each day (submission scripts), giving
            // the 5–100 jobs/hr range the paper describes.
            let hours = t / 3600.0;
            let phase = (hours - 8.0) / 24.0 * std::f64::consts::TAU;
            let diurnal = 1.0 + 0.75 * phase.sin();
            let hour_of_day = hours.rem_euclid(24.0);
            let burst = if (14.0..15.0).contains(&hour_of_day) {
                4.0
            } else {
                1.0
            };
            (cfg.rate_jobs_per_hour * diurnal * burst).clamp(5.0, 100.0)
        }
        _ => cfg.rate_jobs_per_hour,
    }
}

fn sample_category(kind: TraceKind, rng: &mut ChaCha8Rng) -> SizeCategory {
    let mix = kind.category_mix();
    let u: f64 = rng.random();
    let mut acc = 0.0;
    for (cat, p) in mix {
        acc += p;
        if u < acc {
            return cat;
        }
    }
    mix[mix.len() - 1].0
}

fn sample_model(cat: SizeCategory, rng: &mut ChaCha8Rng) -> ModelKind {
    let options = ModelKind::for_category(cat);
    options[rng.random_range(0..options.len())]
}

/// Work target (efficiency-weighted samples) that makes `model` run for
/// `hours` on one `t4` GPU at its goodput-optimal batch.
pub fn reference_work_target(model: ModelKind, hours: f64) -> f64 {
    let profile = model.profile();
    let kind = reference_kind(model);
    let params = profile.throughput_params(&kind);
    let point = match profile.pipeline {
        // Hybrid-parallel jobs reference one pipeline replica.
        Some(pipe) => sia_models::optimize_goodput(
            &params,
            &profile.efficiency_params(),
            AllocShape::single(),
            sia_models::BatchLimits::fixed(pipe.replica_batch),
        ),
        None => sia_models::optimize_goodput(
            &params,
            &profile.efficiency_params(),
            AllocShape::single(),
            profile.batch_limits(),
        ),
    }
    .expect("reference configuration must be feasible");
    point.goodput * hours * 3600.0
}

fn reference_kind(model: ModelKind) -> sia_cluster::GpuKind {
    match model {
        // GPT does not fit a t4; reference its rtx pipeline instead.
        ModelKind::Gpt2p8b => sia_cluster::GpuKind {
            name: "rtx".into(),
            mem_gib: 11.0,
            power_rank: 2,
        },
        _ => sia_cluster::GpuKind {
            name: "t4".into(),
            mem_gib: 16.0,
            power_rank: 1,
        },
    }
}

fn build_job(
    id: JobId,
    model: ModelKind,
    category: SizeCategory,
    submit_time: f64,
    cfg: &TraceConfig,
    rng: &mut ChaCha8Rng,
) -> JobSpec {
    let profile = model.profile();
    // Lognormal-ish duration jitter in [0.4x, 2.2x] around the profile's
    // calibrated duration.
    let jitter = (rng.random::<f64>() * 2.0 - 1.0) * 0.85;
    // newTrace jobs are individually lighter (its production system packs
    // many small VM-sized requests): without this, 48 h at 20 jobs/hr of
    // the heavier mix would offer ~2.6x the 64-GPU cluster's capacity and
    // the paper's congestion-builds-then-drains dynamic cannot occur.
    let kind_scale = match cfg.kind {
        TraceKind::NewTrace => 0.35,
        _ => 1.0,
    };
    let hours = profile.hours_on_1_t4 * kind_scale * (1.0 + jitter).max(0.4);
    let work_target = reference_work_target(model, hours);

    let cat_max = match category {
        SizeCategory::Small => 8,
        SizeCategory::Medium => 16,
        SizeCategory::Large => 32,
        SizeCategory::ExtraLarge => 64,
        SizeCategory::XxLarge => 64,
    };
    let max_gpus = cat_max.min(cfg.max_gpus_cap).max(1);

    let u: f64 = rng.random();
    let adaptivity = if u < cfg.frac_rigid {
        let (bsz, n) = crate::tuning::tune_job(model, max_gpus, rng);
        Adaptivity::Rigid {
            batch_size: bsz,
            num_gpus: n,
        }
    } else if u < cfg.frac_rigid + cfg.frac_strong_scaling {
        let (bsz, _) = crate::tuning::tune_job(model, max_gpus, rng);
        Adaptivity::StrongScaling { batch_size: bsz }
    } else {
        Adaptivity::Adaptive
    };

    JobSpec {
        id,
        name: format!("{}-{}", model.name(), id.0),
        model,
        category,
        submit_time,
        adaptivity,
        min_gpus: 1,
        max_gpus,
        work_target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn philly_trace_matches_published_statistics() {
        let trace = Trace::generate(&TraceConfig::new(TraceKind::Philly, 7));
        // 8 h at 20 jobs/hr -> ~160 jobs (Poisson, allow wide band).
        assert!(
            (110..=215).contains(&trace.len()),
            "unexpected job count {}",
            trace.len()
        );
        let small = trace
            .jobs
            .iter()
            .filter(|j| j.category == SizeCategory::Small)
            .count() as f64
            / trace.len() as f64;
        assert!(small > 0.60, "Philly must be Small-dominated: {small}");
        // Sorted by submission time within the window.
        for w in trace.jobs.windows(2) {
            assert!(w[0].submit_time <= w[1].submit_time);
        }
        assert!(trace.jobs.last().unwrap().submit_time < 8.0 * 3600.0);
    }

    #[test]
    fn helios_is_heavier_than_philly() {
        let philly = Trace::generate(&TraceConfig::new(TraceKind::Philly, 11));
        let helios = Trace::generate(&TraceConfig::new(TraceKind::Helios, 11));
        let load = |t: &Trace| -> f64 {
            t.jobs
                .iter()
                .map(|j| j.model.profile().hours_on_1_t4)
                .sum::<f64>()
                / t.len() as f64
        };
        assert!(load(&helios) > load(&philly));
    }

    #[test]
    fn newtrace_spans_48h_with_bursts() {
        let trace = Trace::generate(&TraceConfig::new(TraceKind::NewTrace, 3));
        let horizon = trace.jobs.last().unwrap().submit_time;
        assert!(horizon > 40.0 * 3600.0);
        // Roughly 960 jobs (generous band: diurnal modulation).
        assert!(
            (600..=1500).contains(&trace.len()),
            "got {} jobs",
            trace.len()
        );
        // Hourly arrival counts must vary substantially (diurnal + burst).
        let mut hourly = vec![0usize; 49];
        for j in &trace.jobs {
            hourly[(j.submit_time / 3600.0) as usize] += 1;
        }
        let max = *hourly.iter().max().unwrap() as f64;
        let nonzero_min = hourly.iter().filter(|&&c| c > 0).min().copied().unwrap() as f64;
        assert!(max / nonzero_min.max(1.0) >= 3.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Trace::generate(&TraceConfig::new(TraceKind::Helios, 42));
        let b = Trace::generate(&TraceConfig::new(TraceKind::Helios, 42));
        assert_eq!(a.jobs.len(), b.jobs.len());
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x, y);
        }
        let c = Trace::generate(&TraceConfig::new(TraceKind::Helios, 43));
        assert_ne!(
            a.jobs.iter().map(|j| j.model).collect::<Vec<_>>(),
            c.jobs.iter().map(|j| j.model).collect::<Vec<_>>()
        );
    }

    #[test]
    fn adaptivity_fractions_respected() {
        let cfg = TraceConfig::new(TraceKind::Philly, 5).with_adaptivity_mix(0.5, 0.3);
        let trace = Trace::generate(&cfg);
        let n = trace.len() as f64;
        let rigid = trace
            .jobs
            .iter()
            .filter(|j| j.adaptivity.is_rigid())
            .count() as f64
            / n;
        let strong = trace
            .jobs
            .iter()
            .filter(|j| matches!(j.adaptivity, Adaptivity::StrongScaling { .. }))
            .count() as f64
            / n;
        assert!((rigid - 0.3).abs() < 0.12, "rigid fraction {rigid}");
        assert!((strong - 0.5).abs() < 0.12, "strong fraction {strong}");
    }

    #[test]
    fn work_targets_scale_with_category() {
        let trace = Trace::generate(&TraceConfig::new(TraceKind::Helios, 9));
        let avg = |cat: SizeCategory| {
            let sel: Vec<f64> = trace
                .jobs
                .iter()
                .filter(|j| j.category == cat)
                .map(|j| j.work_target / reference_work_target(j.model, 1.0))
                .collect();
            sel.iter().sum::<f64>() / sel.len().max(1) as f64
        };
        // Hours (work normalized per-model) must be ordered by category.
        assert!(avg(SizeCategory::Small) < avg(SizeCategory::Medium));
        assert!(avg(SizeCategory::Medium) < avg(SizeCategory::Large));
    }

    #[test]
    fn max_gpus_cap_applies() {
        let cfg = TraceConfig::new(TraceKind::Helios, 21).with_max_gpus_cap(4);
        let trace = Trace::generate(&cfg);
        assert!(trace.jobs.iter().all(|j| j.max_gpus <= 4));
    }

    #[test]
    fn hybrid_job_can_be_appended() {
        let mut trace = Trace::generate(&TraceConfig::new(TraceKind::Physical, 1));
        trace.push_hybrid_parallel_job(60.0);
        assert!(trace
            .jobs
            .iter()
            .any(|j| j.model == ModelKind::Gpt2p8b && j.is_hybrid_parallel()));
    }

    #[test]
    fn rate_override_changes_job_count() {
        let lo = Trace::generate(&TraceConfig::new(TraceKind::Helios, 2).with_rate(10.0));
        let hi = Trace::generate(&TraceConfig::new(TraceKind::Helios, 2).with_rate(50.0));
        assert!(hi.len() > 2 * lo.len());
    }
}

impl Trace {
    /// Serializes the trace to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.jobs).expect("trace serialization cannot fail")
    }

    /// Parses a trace from JSON produced by [`Trace::to_json`].
    pub fn from_json(s: &str) -> Result<Trace, serde_json::Error> {
        let mut jobs: Vec<JobSpec> = serde_json::from_str(s)?;
        jobs.sort_by(|a, b| {
            a.submit_time
                .partial_cmp(&b.submit_time)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(Trace { jobs })
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn trace_roundtrips_through_json() {
        let trace =
            Trace::generate(&TraceConfig::new(TraceKind::Philly, 13).with_adaptivity_mix(0.3, 0.2));
        let json = Trace::from_json(&trace.to_json()).unwrap();
        assert_eq!(trace.len(), json.len());
        for (a, b) in trace.jobs.iter().zip(&json.jobs) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.name, b.name);
            assert_eq!(a.model, b.model);
            assert_eq!(a.category, b.category);
            assert_eq!(a.min_gpus, b.min_gpus);
            assert_eq!(a.max_gpus, b.max_gpus);
            // Floats may round-trip to the nearest representable neighbour.
            assert!((a.submit_time - b.submit_time).abs() <= 1e-9 * a.submit_time.abs());
            assert!((a.work_target - b.work_target).abs() <= 1e-9 * a.work_target.abs());
        }
    }

    #[test]
    fn from_json_sorts_by_submit_time() {
        let mut trace = Trace::generate(&TraceConfig::new(TraceKind::Philly, 14));
        trace.jobs.reverse();
        let parsed = Trace::from_json(&trace.to_json()).unwrap();
        for w in parsed.jobs.windows(2) {
            assert!(w[0].submit_time <= w[1].submit_time);
        }
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(Trace::from_json("{not json").is_err());
    }
}

impl Trace {
    /// Adds a batch-inference job (§3.4 "scheduling other workload types"):
    /// throughput-as-goodput, embarrassingly parallel scaling.
    pub fn push_inference_job(&mut self, submit_time: f64, max_gpus: usize) {
        let id = JobId(self.jobs.len() as u64 + 200_000);
        let profile = ModelKind::BertInference.profile();
        self.jobs.push(JobSpec {
            id,
            name: format!("bert-inference-{}", id.0),
            model: ModelKind::BertInference,
            category: profile.category,
            submit_time,
            adaptivity: Adaptivity::Adaptive,
            min_gpus: 1,
            max_gpus,
            work_target: reference_work_target(ModelKind::BertInference, profile.hours_on_1_t4),
        });
        self.jobs
            .sort_by(|a, b| a.submit_time.partial_cmp(&b.submit_time).unwrap());
    }
}

#[cfg(test)]
mod inference_tests {
    use super::*;

    #[test]
    fn inference_jobs_appended_and_sorted() {
        let mut t = Trace::generate(&TraceConfig::new(TraceKind::Physical, 2));
        t.push_inference_job(120.0, 16);
        assert!(t.jobs.iter().any(|j| j.model == ModelKind::BertInference));
        for w in t.jobs.windows(2) {
            assert!(w[0].submit_time <= w[1].submit_time);
        }
    }

    #[test]
    fn inference_goodput_equals_throughput() {
        use sia_models::{optimize_goodput, AllocShape};
        let profile = ModelKind::BertInference.profile();
        let kind = sia_cluster::GpuKind {
            name: "a100".into(),
            mem_gib: 40.0,
            power_rank: 4,
        };
        let p = optimize_goodput(
            &profile.throughput_params(&kind),
            &profile.efficiency_params(),
            AllocShape::dist(8),
            profile.batch_limits(),
        )
        .unwrap();
        assert!((p.efficiency - 1.0).abs() < 1e-6);
        assert!((p.goodput - p.throughput).abs() < 1e-6 * p.throughput);
    }

    #[test]
    fn inference_scales_near_linearly() {
        use sia_models::{optimize_goodput, AllocShape};
        let profile = ModelKind::BertInference.profile();
        let kind = sia_cluster::GpuKind {
            name: "t4".into(),
            mem_gib: 16.0,
            power_rank: 1,
        };
        let params = profile.throughput_params(&kind);
        let eff = profile.efficiency_params();
        let lim = profile.batch_limits();
        let g1 = optimize_goodput(&params, &eff, AllocShape::single(), lim)
            .unwrap()
            .goodput;
        let g16 = optimize_goodput(&params, &eff, AllocShape::dist(16), lim)
            .unwrap()
            .goodput;
        assert!(
            g16 > 13.0 * g1,
            "no gradients -> near-linear scaling, got {}x",
            g16 / g1
        );
    }
}
