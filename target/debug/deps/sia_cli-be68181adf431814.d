/root/repo/target/debug/deps/sia_cli-be68181adf431814.d: src/bin/sia-cli.rs

/root/repo/target/debug/deps/sia_cli-be68181adf431814: src/bin/sia-cli.rs

src/bin/sia-cli.rs:
