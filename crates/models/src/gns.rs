//! Gradient-noise-scale (GNS) measurement, as performed by the Adaptive
//! Executors.
//!
//! Pollux-style systems do not observe `phi` directly: executors accumulate
//! the squared norm of the minibatch gradient (`|g_M|^2`) and an unbiased
//! estimate of the per-sample gradient variance (`tr(Sigma)`), then compute
//! the (pre-conditioned) gradient noise scale as
//!
//! ```text
//! phi = tr(Sigma) / |g|^2
//! ```
//!
//! using the two-batch-size trick of McCandlish et al.: with gradients
//! measured at the per-replica batch `m` and the aggregated batch `M`,
//!
//! ```text
//! |g|^2_est      = (M * |g_M|^2 - m * |g_m|^2) / (M - m)
//! tr(Sigma)_est  = (|g_m|^2 - |g_M|^2) / (1/m - 1/M)
//! ```
//!
//! This module simulates the *measurement process*: given a true `phi`, it
//! synthesizes consistent `(|g_m|^2, |g_M|^2)` pairs (plus sampling noise
//! that shrinks with batch size) and recovers `phi` the way a real executor
//! would. The simulator feeds the recovered value — not the ground truth —
//! to the estimators.

/// Gradient statistics reported by one executor interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradientStats {
    /// Squared gradient norm at the small (per-replica) batch `m`.
    pub sqr_small: f64,
    /// Squared gradient norm at the large (aggregated) batch `M`.
    pub sqr_large: f64,
    /// Small batch size `m`.
    pub small_batch: f64,
    /// Large batch size `M`.
    pub large_batch: f64,
}

impl GradientStats {
    /// Recovers the gradient noise scale `phi = tr(Sigma) / |g|^2` from the
    /// two-batch measurement; `None` when the measurement is degenerate
    /// (`m == M`, or noise produced a non-positive estimate).
    pub fn noise_scale(&self) -> Option<f64> {
        let (m, big_m) = (self.small_batch, self.large_batch);
        if big_m <= m || m <= 0.0 {
            return None;
        }
        let g_sqr = (big_m * self.sqr_large - m * self.sqr_small) / (big_m - m);
        let tr_sigma = (self.sqr_small - self.sqr_large) / (1.0 / m - 1.0 / big_m);
        if g_sqr <= 0.0 || tr_sigma < 0.0 {
            return None;
        }
        Some(tr_sigma / g_sqr)
    }
}

/// Synthesizes the gradient statistics an executor would measure for a job
/// whose true noise scale is `phi_true`, training at per-replica batch `m`
/// and total batch `M`.
///
/// `unit_noise` should be a zero-mean value in `[-1, 1]` (the simulator
/// passes seeded uniform noise); its effect shrinks as `sqrt(m)` grows,
/// mimicking better-averaged statistics at larger batches.
pub fn synthesize_stats(
    phi_true: f64,
    small_batch: f64,
    large_batch: f64,
    unit_noise: f64,
) -> GradientStats {
    // Under the GNS model, E[|g_b|^2] = |g|^2 + tr(Sigma)/b. Set |g|^2 = 1
    // (scale-free) so tr(Sigma) = phi.
    let g_sqr = 1.0;
    let rel = unit_noise * (2.0 / small_batch.max(1.0)).sqrt().min(0.5);
    let sqr_small = (g_sqr + phi_true / small_batch.max(1.0)) * (1.0 + rel);
    let sqr_large = g_sqr + phi_true / large_batch.max(1.0);
    GradientStats {
        sqr_small,
        sqr_large,
        small_batch,
        large_batch,
    }
}

/// Convenience: synthesize-and-recover, falling back to the true value when
/// the noisy measurement is degenerate.
pub fn measure_phi(phi_true: f64, small_batch: f64, large_batch: f64, unit_noise: f64) -> f64 {
    synthesize_stats(phi_true, small_batch, large_batch, unit_noise)
        .noise_scale()
        .unwrap_or(phi_true)
        .max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_measurement_recovers_phi_exactly() {
        for phi in [10.0, 250.0, 4000.0] {
            for (m, big_m) in [(32.0, 256.0), (8.0, 64.0), (128.0, 4096.0)] {
                let stats = synthesize_stats(phi, m, big_m, 0.0);
                let rec = stats.noise_scale().unwrap();
                assert!(
                    (rec - phi).abs() / phi < 1e-9,
                    "phi {phi} m {m} M {big_m}: got {rec}"
                );
            }
        }
    }

    #[test]
    fn noisy_measurement_stays_in_band() {
        let phi = 1000.0;
        for noise in [-1.0, -0.5, 0.5, 1.0] {
            let rec = measure_phi(phi, 64.0, 512.0, noise);
            assert!(rec > 0.0);
            assert!(
                rec > phi * 0.2 && rec < phi * 5.0,
                "noise {noise}: recovered {rec}"
            );
        }
    }

    #[test]
    fn larger_batches_measure_more_accurately() {
        // Moderate noise so neither measurement degenerates to the
        // truth-fallback path.
        let phi = 500.0;
        let small = measure_phi(phi, 32.0, 256.0, 0.3);
        let large = measure_phi(phi, 512.0, 4096.0, 0.3);
        assert!(
            (large - phi).abs() <= (small - phi).abs() + 1e-9,
            "large-batch measurement must be at least as accurate: {small} vs {large}"
        );
    }

    #[test]
    fn degenerate_measurements_rejected() {
        let stats = GradientStats {
            sqr_small: 1.0,
            sqr_large: 1.0,
            small_batch: 64.0,
            large_batch: 64.0,
        };
        assert_eq!(stats.noise_scale(), None);
        // Fallback keeps the simulation alive.
        assert_eq!(measure_phi(100.0, 64.0, 64.0, 0.3), 100.0);
    }

    #[test]
    fn noise_scale_nonnegative_even_with_inverted_norms() {
        // If noise makes |g_m|^2 < |g_M|^2 the tr(Sigma) estimate would be
        // negative; the API must reject rather than return nonsense.
        let stats = GradientStats {
            sqr_small: 0.9,
            sqr_large: 1.1,
            small_batch: 32.0,
            large_batch: 256.0,
        };
        assert_eq!(stats.noise_scale(), None);
    }
}
