/root/repo/target/release/deps/table3_heterogeneous-5b41f89a13940ee8.d: crates/bench/src/bin/table3_heterogeneous.rs

/root/repo/target/release/deps/table3_heterogeneous-5b41f89a13940ee8: crates/bench/src/bin/table3_heterogeneous.rs

crates/bench/src/bin/table3_heterogeneous.rs:
