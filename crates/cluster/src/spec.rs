//! GPU kinds, nodes and cluster specifications.

use std::fmt;

/// Index of a GPU kind within a [`ClusterSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GpuTypeId(pub usize);

impl fmt::Display for GpuTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu-type-{}", self.0)
    }
}

/// A kind of accelerator present in the cluster.
///
/// `power_rank` orders kinds by raw capability and is used only by the
/// Pollux mixed-type fix-up heuristic from §4.3 of the paper
/// (`a100 > quad > rtx > t4`). Performance itself lives in the per-job
/// throughput models, not here.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuKind {
    /// Human-readable name, e.g. `"a100"`.
    pub name: String,
    /// GPU memory in GiB; bounds the per-GPU batch size of each job.
    pub mem_gib: f64,
    /// Larger means "more powerful" for tie-breaking heuristics.
    pub power_rank: u32,
}

/// A group of identical nodes (same GPU kind and per-node GPU count).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeGroup {
    /// The GPU kind installed in every node of this group.
    pub gpu_type: GpuTypeId,
    /// Number of nodes in this group.
    pub num_nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
}

/// One physical node (flattened from the node groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    /// Dense node index, unique across the cluster.
    pub id: usize,
    /// GPU kind installed in this node.
    pub gpu_type: GpuTypeId,
    /// Number of GPUs in this node.
    pub num_gpus: usize,
}

/// A heterogeneous cluster: a set of GPU kinds and node groups.
///
/// # Examples
///
/// ```
/// use sia_cluster::ClusterSpec;
///
/// let c = ClusterSpec::heterogeneous_64();
/// assert_eq!(c.total_gpus(), 64);
/// assert_eq!(c.num_gpu_types(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    kinds: Vec<GpuKind>,
    groups: Vec<NodeGroup>,
    nodes: Vec<Node>,
}

impl ClusterSpec {
    /// Creates an empty cluster; add kinds and node groups with
    /// [`ClusterSpec::add_gpu_kind`] and [`ClusterSpec::add_nodes`].
    pub fn new() -> Self {
        ClusterSpec {
            kinds: Vec::new(),
            groups: Vec::new(),
            nodes: Vec::new(),
        }
    }

    /// Registers a GPU kind and returns its id.
    pub fn add_gpu_kind(&mut self, name: &str, mem_gib: f64, power_rank: u32) -> GpuTypeId {
        let id = GpuTypeId(self.kinds.len());
        self.kinds.push(GpuKind {
            name: name.to_string(),
            mem_gib,
            power_rank,
        });
        id
    }

    /// Adds `num_nodes` nodes of `gpus_per_node` GPUs of kind `gpu_type`.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_type` is unknown or counts are zero.
    pub fn add_nodes(&mut self, gpu_type: GpuTypeId, num_nodes: usize, gpus_per_node: usize) {
        assert!(gpu_type.0 < self.kinds.len(), "unknown GPU type");
        assert!(num_nodes > 0 && gpus_per_node > 0, "empty node group");
        self.groups.push(NodeGroup {
            gpu_type,
            num_nodes,
            gpus_per_node,
        });
        for _ in 0..num_nodes {
            let id = self.nodes.len();
            self.nodes.push(Node {
                id,
                gpu_type,
                num_gpus: gpus_per_node,
            });
        }
    }

    /// Returns the GPU kinds.
    pub fn kinds(&self) -> &[GpuKind] {
        &self.kinds
    }

    /// Returns the kind for a type id.
    pub fn kind(&self, t: GpuTypeId) -> &GpuKind {
        &self.kinds[t.0]
    }

    /// Returns the number of distinct GPU kinds.
    pub fn num_gpu_types(&self) -> usize {
        self.kinds.len()
    }

    /// Returns all GPU type ids.
    pub fn gpu_types(&self) -> impl Iterator<Item = GpuTypeId> + '_ {
        (0..self.kinds.len()).map(GpuTypeId)
    }

    /// Looks up a GPU type id by kind name.
    pub fn gpu_type_by_name(&self, name: &str) -> Option<GpuTypeId> {
        self.kinds
            .iter()
            .position(|k| k.name == name)
            .map(GpuTypeId)
    }

    /// Returns the node groups.
    pub fn groups(&self) -> &[NodeGroup] {
        &self.groups
    }

    /// Returns all nodes (flattened).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Returns nodes of a given GPU type.
    pub fn nodes_of_type(&self, t: GpuTypeId) -> impl Iterator<Item = &Node> + '_ {
        self.nodes.iter().filter(move |n| n.gpu_type == t)
    }

    /// Returns the number of nodes of a given GPU type.
    pub fn num_nodes_of_type(&self, t: GpuTypeId) -> usize {
        self.nodes_of_type(t).count()
    }

    /// Returns the total GPU count of a given type.
    pub fn gpus_of_type(&self, t: GpuTypeId) -> usize {
        self.nodes_of_type(t).map(|n| n.num_gpus).sum()
    }

    /// Returns the total GPU count across all types.
    pub fn total_gpus(&self) -> usize {
        self.nodes.iter().map(|n| n.num_gpus).sum()
    }

    /// Returns the (uniform) per-node GPU count of a type.
    ///
    /// # Panics
    ///
    /// Panics if nodes of this type have differing GPU counts (the Sia
    /// configuration construction assumes uniform groups) or no node of the
    /// type exists.
    pub fn gpus_per_node_of_type(&self, t: GpuTypeId) -> usize {
        let mut it = self.nodes_of_type(t);
        let first = it.next().expect("no nodes of requested GPU type").num_gpus;
        for n in it {
            assert_eq!(
                n.num_gpus, first,
                "nodes of one GPU type must be uniform for configuration construction"
            );
        }
        first
    }

    /// Probability that a uniformly random GPU has type `t` (the `P(G = g)`
    /// weight of the paper's heterogeneous finish-time-fairness, Eq. 6).
    pub fn gpu_type_fraction(&self, t: GpuTypeId) -> f64 {
        self.gpus_of_type(t) as f64 / self.total_gpus() as f64
    }

    // ---- standard evaluation clusters (Section 4.2 / 4.3) ----

    /// The paper's physical testbed: 3 `rtx` (8 GPU) + 1 `quad` (4 GPU) +
    /// 2 `a100` (8 GPU) nodes — 44 GPUs, 3 GPU types.
    pub fn physical_44() -> Self {
        let mut c = ClusterSpec::new();
        let rtx = c.add_gpu_kind("rtx", 11.0, 2);
        let quad = c.add_gpu_kind("quad", 24.0, 3);
        let a100 = c.add_gpu_kind("a100", 40.0, 4);
        c.add_nodes(rtx, 3, 8);
        c.add_nodes(quad, 1, 4);
        c.add_nodes(a100, 2, 8);
        c
    }

    /// The paper's homogeneous setting: 16 `t4` nodes of 4 GPUs (64 GPUs).
    pub fn homogeneous_64() -> Self {
        let mut c = ClusterSpec::new();
        let t4 = c.add_gpu_kind("t4", 16.0, 1);
        c.add_nodes(t4, 16, 4);
        c
    }

    /// The paper's heterogeneous setting: 6 `t4` (4 GPU) + 3 `rtx` (8 GPU) +
    /// 2 `a100` (8 GPU) nodes (64 GPUs, 3 types).
    pub fn heterogeneous_64() -> Self {
        let mut c = ClusterSpec::new();
        let t4 = c.add_gpu_kind("t4", 16.0, 1);
        let rtx = c.add_gpu_kind("rtx", 11.0, 2);
        let a100 = c.add_gpu_kind("a100", 40.0, 4);
        c.add_nodes(t4, 6, 4);
        c.add_nodes(rtx, 3, 8);
        c.add_nodes(a100, 2, 8);
        c
    }

    /// The heterogeneous setting scaled by an integer factor (Figure 9:
    /// 64 GPUs × factor, preserving the type mix).
    pub fn heterogeneous_scaled(factor: usize) -> Self {
        assert!(factor >= 1);
        let mut c = ClusterSpec::new();
        let t4 = c.add_gpu_kind("t4", 16.0, 1);
        let rtx = c.add_gpu_kind("rtx", 11.0, 2);
        let a100 = c.add_gpu_kind("a100", 40.0, 4);
        c.add_nodes(t4, 6 * factor, 4);
        c.add_nodes(rtx, 3 * factor, 8);
        c.add_nodes(a100, 2 * factor, 8);
        c
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec::new()
    }
}

// ---------------------------------------------------------------------------
// JSON encoding (snapshot/restore support). Only the GPU kinds and node
// groups are serialized: the flat node table is rebuilt deterministically
// from the groups on parse, so the two representations cannot drift.
// ---------------------------------------------------------------------------

use serde_json::{Error, FromJson, ToJson, Value};

/// Fetch and decode a required object field.
fn field<T: FromJson>(v: &Value, name: &str) -> Result<T, Error> {
    let member = v
        .get(name)
        .ok_or_else(|| Error::msg(format!("missing field `{name}`")))?;
    T::from_json(member).map_err(|e| Error::msg(format!("field `{name}`: {e}")))
}

impl ToJson for ClusterSpec {
    fn to_json(&self) -> Value {
        let kinds: Vec<Value> = self
            .kinds
            .iter()
            .map(|k| {
                serde_json::json!({
                    "name": &k.name,
                    "mem_gib": k.mem_gib,
                    "power_rank": k.power_rank,
                })
            })
            .collect();
        let groups: Vec<Value> = self
            .groups
            .iter()
            .map(|g| {
                serde_json::json!({
                    "gpu_type": g.gpu_type.0,
                    "num_nodes": g.num_nodes,
                    "gpus_per_node": g.gpus_per_node,
                })
            })
            .collect();
        serde_json::json!({ "kinds": kinds, "groups": groups })
    }
}

impl FromJson for ClusterSpec {
    fn from_json(v: &Value) -> Result<Self, Error> {
        let kinds = v
            .get("kinds")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::msg("ClusterSpec: missing `kinds` array"))?;
        let groups = v
            .get("groups")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::msg("ClusterSpec: missing `groups` array"))?;
        let mut spec = ClusterSpec::new();
        for k in kinds {
            let name: String = field(k, "name")?;
            let mem_gib: f64 = field(k, "mem_gib")?;
            let power_rank: u32 = field(k, "power_rank")?;
            spec.add_gpu_kind(&name, mem_gib, power_rank);
        }
        for g in groups {
            let gpu_type: usize = field(g, "gpu_type")?;
            if gpu_type >= spec.kinds.len() {
                return Err(Error::msg(format!(
                    "ClusterSpec: group references unknown GPU type {gpu_type}"
                )));
            }
            let num_nodes: usize = field(g, "num_nodes")?;
            let gpus_per_node: usize = field(g, "gpus_per_node")?;
            if num_nodes == 0 || gpus_per_node == 0 {
                return Err(Error::msg("ClusterSpec: empty node group"));
            }
            spec.add_nodes(GpuTypeId(gpu_type), num_nodes, gpus_per_node);
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_testbed_matches_paper() {
        let c = ClusterSpec::physical_44();
        assert_eq!(c.total_gpus(), 44);
        assert_eq!(c.num_gpu_types(), 3);
        assert_eq!(c.nodes().len(), 6);
        let rtx = c.gpu_type_by_name("rtx").unwrap();
        assert_eq!(c.gpus_of_type(rtx), 24);
        assert_eq!(c.gpus_per_node_of_type(rtx), 8);
    }

    #[test]
    fn homogeneous_matches_paper() {
        let c = ClusterSpec::homogeneous_64();
        assert_eq!(c.total_gpus(), 64);
        assert_eq!(c.num_gpu_types(), 1);
        assert_eq!(c.nodes().len(), 16);
    }

    #[test]
    fn heterogeneous_matches_paper() {
        let c = ClusterSpec::heterogeneous_64();
        assert_eq!(c.total_gpus(), 64);
        let t4 = c.gpu_type_by_name("t4").unwrap();
        let a100 = c.gpu_type_by_name("a100").unwrap();
        assert_eq!(c.gpus_of_type(t4), 24);
        assert_eq!(c.gpus_of_type(a100), 16);
    }

    #[test]
    fn scaled_cluster_multiplies_gpus() {
        for f in [1, 2, 4, 8, 16, 32] {
            let c = ClusterSpec::heterogeneous_scaled(f);
            assert_eq!(c.total_gpus(), 64 * f);
        }
    }

    #[test]
    fn type_fraction_sums_to_one() {
        let c = ClusterSpec::heterogeneous_64();
        let total: f64 = c.gpu_types().map(|t| c.gpu_type_fraction(t)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn node_ids_are_dense() {
        let c = ClusterSpec::physical_44();
        for (i, n) in c.nodes().iter().enumerate() {
            assert_eq!(n.id, i);
        }
    }

    #[test]
    #[should_panic(expected = "unknown GPU type")]
    fn add_nodes_rejects_unknown_type() {
        let mut c = ClusterSpec::new();
        c.add_nodes(GpuTypeId(3), 1, 4);
    }

    #[test]
    fn spec_round_trips_through_json() {
        use serde_json::{FromJson, ToJson};
        for spec in [
            ClusterSpec::physical_44(),
            ClusterSpec::heterogeneous_64(),
            ClusterSpec::homogeneous_64(),
        ] {
            let back = ClusterSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn spec_json_rejects_bad_group() {
        use serde_json::FromJson;
        let v: serde_json::Value = serde_json::from_str(
            r#"{"kinds": [{"name": "t4", "mem_gib": 16.0, "power_rank": 1}],
                "groups": [{"gpu_type": 7, "num_nodes": 1, "gpus_per_node": 4}]}"#,
        )
        .unwrap();
        assert!(ClusterSpec::from_json(&v).is_err());
    }
}
