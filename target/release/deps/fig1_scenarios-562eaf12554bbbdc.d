/root/repo/target/release/deps/fig1_scenarios-562eaf12554bbbdc.d: crates/bench/src/bin/fig1_scenarios.rs

/root/repo/target/release/deps/fig1_scenarios-562eaf12554bbbdc: crates/bench/src/bin/fig1_scenarios.rs

crates/bench/src/bin/fig1_scenarios.rs:
