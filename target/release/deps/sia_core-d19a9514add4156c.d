/root/repo/target/release/deps/sia_core-d19a9514add4156c.d: crates/core/src/lib.rs crates/core/src/ilp.rs crates/core/src/matrix.rs crates/core/src/placer.rs crates/core/src/policy.rs

/root/repo/target/release/deps/sia_core-d19a9514add4156c: crates/core/src/lib.rs crates/core/src/ilp.rs crates/core/src/matrix.rs crates/core/src/placer.rs crates/core/src/policy.rs

crates/core/src/lib.rs:
crates/core/src/ilp.rs:
crates/core/src/matrix.rs:
crates/core/src/placer.rs:
crates/core/src/policy.rs:
