//! Figure 8: CDFs of the finish-time-fairness ratio (heterogeneous Eq. 6)
//! and of JCT, for Sia / Pollux / Gavel+TJ / Shockwave+TJ on Helios-like
//! traces in the heterogeneous setting.
//!
//! Expected shape: Sia's rho CDF is the most vertical with the smallest
//! worst-case rho and by far the lowest unfair fraction; Shockwave beats
//! Gavel and Pollux on fairness; Gavel has the worst tail.

use sia_bench::{run_one, trace_for, write_json, Policy};
use sia_cluster::ClusterSpec;
use sia_metrics::{cdf, ftf_ratios, unfair_fraction, worst_ftf};
use sia_sim::SimConfig;
use sia_workloads::TraceKind;

fn main() {
    let cluster = ClusterSpec::heterogeneous_64();
    let policies = [
        Policy::Sia,
        Policy::Pollux,
        Policy::GavelTuned,
        Policy::ShockwaveTuned,
    ];
    let seeds: Vec<u64> = (1..=2).collect();

    println!("== Figure 8: finish-time fairness (Helios, hetero 64) ==");
    println!(
        "{:<16} {:>12} {:>16} {:>12}",
        "Policy", "worst rho", "unfair frac(%)", "median rho"
    );
    let mut payload = serde_json::Map::new();
    for p in policies {
        let mut ratios = Vec::new();
        let mut jcts = Vec::new();
        for &seed in &seeds {
            let trace = trace_for(TraceKind::Helios, p, seed, 16);
            let result = run_one(
                p,
                &cluster,
                &trace,
                SimConfig {
                    seed,
                    ..SimConfig::default()
                },
                seed,
            );
            ratios.extend(ftf_ratios(&result, &cluster));
            jcts.extend(result.records.iter().filter_map(|r| r.jct()));
        }
        let rho_values: Vec<f64> = ratios.iter().map(|&(_, r)| r).collect();
        let rho_cdf = cdf(&rho_values);
        let median = rho_cdf
            .iter()
            .find(|&&(_, f)| f >= 0.5)
            .map(|&(x, _)| x)
            .unwrap_or(0.0);
        println!(
            "{:<16} {:>12.2} {:>16.1} {:>12.2}",
            p.label(),
            worst_ftf(&ratios),
            unfair_fraction(&ratios) * 100.0,
            median
        );
        payload.insert(
            p.label(),
            serde_json::json!({
                "worst_ftf": worst_ftf(&ratios),
                "unfair_fraction": unfair_fraction(&ratios),
                "rho_cdf": rho_cdf,
                "jct_cdf_hours": cdf(&jcts.iter().map(|j| j / 3600.0).collect::<Vec<_>>()),
            }),
        );
    }
    write_json("fig8_ftf", &serde_json::Value::Object(payload));
}
