//! Deterministic discrete-event simulation kernel.
//!
//! `sia-events` is the core layer under the cluster simulator: a simulation
//! clock plus a pending-event queue plus named random-number streams, with
//! kernel-level telemetry. It knows nothing about jobs, GPUs or schedulers —
//! `sia-sim` builds its event-driven engine on top of it, and any future
//! subsystem (network models, failure injectors, autoscalers) can share the
//! same kernel.
//!
//! Three guarantees shape the design:
//!
//! * **Deterministic ordering.** Events fire in `(time, priority, seq)`
//!   order: earlier timestamps first, then an explicit same-timestamp
//!   priority class from [`EventPayload::priority`], then FIFO by schedule
//!   order. `f64` timestamps are compared with `total_cmp`, so ordering is
//!   identical on every platform — no `PartialOrd` edge cases, no
//!   map-iteration dependence.
//! * **Stream-independent randomness.** [`Kernel::rng`] hands out named
//!   ChaCha8 streams, each seeded from `(master seed, stream name)`. Adding
//!   an event source that draws from stream `"failure"` never perturbs the
//!   draws of stream `"engine"` — unlike a single shared RNG, where any new
//!   consumer shifts every subsequent draw.
//! * **Cheap cancellation.** [`Kernel::cancel`] is O(log n)-amortized lazy
//!   deletion: cancelled entries are skipped at pop time. Timers are
//!   rescheduled by cancelling and scheduling anew.
//!
//! Kernel telemetry (via `sia-telemetry`, visible in the JSONL sink when one
//! is attached): `events.scheduled`, `events.fired`, `events.cancelled`, and
//! a per-event-type counter `events.fired.<kind>` keyed by
//! [`EventPayload::kind`].

#![forbid(unsafe_code)]

mod kernel;
mod queue;
mod rng;
mod sample;

pub use kernel::{Event, EventId, EventPayload, Kernel};
pub use queue::EventQueue;
pub use rng::{derive_stream_seed, StreamRngs};
pub use sample::{exp_sample, poisson_sample};
