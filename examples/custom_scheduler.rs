//! Implementing a custom scheduling policy against the simulator API.
//!
//! The `sia::sim::Scheduler` trait is the only integration point a policy
//! needs: it receives scheduler-visible job state ([`sia::sim::JobView`],
//! including each job's fitted goodput estimator) and returns placements.
//! This example implements a simple heterogeneity-aware FIFO policy —
//! first-come-first-served, each job getting its best single GPU — and
//! compares it against Sia on the same workload.
//!
//! Run with: `cargo run --release --example custom_scheduler`

use sia::cluster::{ClusterSpec, ClusterView, Configuration, FreeGpus};
use sia::core::SiaPolicy;
use sia::metrics::summarize;
use sia::models::AllocShape;
use sia::sim::{AllocationMap, JobView, Scheduler, SimConfig, Simulator};
use sia::workloads::{Trace, TraceConfig, TraceKind};

/// FIFO with heterogeneity-aware type choice: every job gets one GPU of the
/// type its estimator likes best, in arrival order.
struct HeteroFifo;

impl Scheduler for HeteroFifo {
    fn name(&self) -> &'static str {
        "hetero-fifo"
    }

    fn schedule(
        &mut self,
        _now: f64,
        jobs: &[JobView<'_>],
        cluster: &ClusterView,
    ) -> AllocationMap {
        let spec = cluster.spec();
        let mut order: Vec<&JobView<'_>> = jobs.iter().collect();
        order.sort_by(|a, b| a.spec.submit_time.partial_cmp(&b.spec.submit_time).unwrap());
        let mut free = FreeGpus::for_view(cluster);
        let mut out = AllocationMap::new();
        for view in order {
            // Rank GPU types by estimated single-GPU goodput.
            let mut best: Vec<_> = spec
                .gpu_types()
                .filter(|&t| view.gpus_per_replica(spec, t) == Some(1))
                .filter_map(|t| {
                    view.estimator
                        .estimate(t, AllocShape::single())
                        .map(|p| (t, p.goodput))
                })
                .collect();
            best.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            for (t, _) in best {
                if let Ok(p) = free.place(spec, &Configuration::new(1, 1, t)) {
                    out.insert(view.id, p);
                    break;
                }
            }
        }
        out
    }
}

fn main() {
    let cluster = ClusterSpec::heterogeneous_64();
    let trace = Trace::generate(&TraceConfig::new(TraceKind::Philly, 9).with_max_gpus_cap(16));

    for (name, mut sched) in [
        ("hetero-fifo", Box::new(HeteroFifo) as Box<dyn Scheduler>),
        ("sia", Box::new(SiaPolicy::default())),
    ] {
        let sim = Simulator::new(cluster.clone(), &trace, SimConfig::default());
        let result = sim.run(sched.as_mut());
        let s = summarize(&result);
        println!(
            "{name:<12} avgJCT {:.2} h   p99 {:.2} h   GPUh/job {:.2}",
            s.avg_jct_hours, s.p99_jct_hours, s.gpu_hours_per_job
        );
    }
}
