/root/repo/target/release/deps/fig5_timeline-41dc42b22c2c4083.d: crates/bench/src/bin/fig5_timeline.rs

/root/repo/target/release/deps/fig5_timeline-41dc42b22c2c4083: crates/bench/src/bin/fig5_timeline.rs

crates/bench/src/bin/fig5_timeline.rs:
