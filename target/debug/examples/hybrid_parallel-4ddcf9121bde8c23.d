/root/repo/target/debug/examples/hybrid_parallel-4ddcf9121bde8c23.d: examples/hybrid_parallel.rs

/root/repo/target/debug/examples/hybrid_parallel-4ddcf9121bde8c23: examples/hybrid_parallel.rs

examples/hybrid_parallel.rs:
