//! Decision-quality audit stream (`sia-audit`).
//!
//! Where [`crate::trace`] answers *what happened to job J and when*, this
//! module answers *how good were the scheduler's decisions*: a per-round
//! solver-quality record — proven optimality gap, branch-and-bound effort,
//! warm-start efficacy — plus per-job decision provenance: for every
//! allocation change, what the chosen configuration was worth, what the
//! job's best alternative was worth, and the regret delta between them.
//!
//! Three pieces, deliberately isomorphic to the flight recorder:
//!
//! - [`AuditRecorder`] — bounded in-memory ring plus optional full-fidelity
//!   JSONL spill, owned by one engine run (plain mutation, no locks; the
//!   spill flushes on drop so a panicking run leaves parseable lines).
//! - [`AuditStream`] — the recorded stream, attached to every `SimResult`
//!   next to the flight trace. Serializes to JSONL, parses back, and
//!   canonicalizes for byte comparison.
//! - [`AuditReport`] — the derived view: gap percentiles, worst-gap rounds,
//!   warm-start hit rate, and the per-job regret table. This is the engine
//!   room of `sia-cli audit`.
//!
//! ## Stream schema (one JSON object per line)
//!
//! Every record carries `t` (simulated seconds), `seq` (per-run emission
//! sequence) and `ev` (the kind). Kind-specific fields:
//!
//! ```json
//! {"ev":"meta","scheduler":"sia","round_s":60.0,"gap_tolerance":1e-9,"t":0.0,"seq":0}
//! {"ev":"round","round":3,"contention":5,"objective":41.7,"best_bound":41.7,
//!  "lp_objective":41.9,"gap_abs":0.0,"gap_rel":0.0,"outcome":"optimal",
//!  "nodes":7,"pruned":4,"first_incumbent_node":0,"first_incumbent_s":0.0,
//!  "seed_objective":41.5,"warm_pivots_saved":120,"solve_s":0.0008,"t":180.0,"seq":9}
//! {"ev":"decision","round":3,"job":2,"gpu_type":1,"gpus":4,"reason":"scaled-up",
//!  "chosen_value":0.92,"best_value":0.95,"regret":0.03,"t":180.0,"seq":10}
//! ```
//!
//! `gap_abs`/`gap_rel`/`regret` are derived fields, re-computed from their
//! operands on parse so a hand-edited stream cannot smuggle in an
//! inconsistent gap. `reason` reuses the flight recorder's
//! [`AllocReason`] labels so the two streams cross-reference directly.
//!
//! ## Determinism and cross-engine identity
//!
//! All fields are simulation-determined except `round.solve_s` and
//! `round.first_incumbent_s`, which are host wall-clock, and the emission
//! order. [`AuditStream::canonical_jsonl`] erases exactly these — it zeroes
//! the two wall-clock fields and sorts records by `(t, kind-rank, job)` —
//! so two same-seed runs, on the same engine or across engines (failures
//! off), produce **byte-identical** canonical streams, exactly like the
//! flight trace. `tests/audit_tools.rs` pins this.

use std::collections::{BTreeMap, VecDeque};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use serde_json::{json, Value};

use crate::trace::AllocReason;

/// A typed audit event. Job ids are raw `JobId` values and GPU types are
/// indices into the flight trace's meta name table (the recorder sits below
/// `sia-cluster` in the crate graph, so it speaks plain integers).
#[derive(Debug, Clone, PartialEq)]
pub enum AuditEvent {
    /// Run header: which scheduler produced the stream, its round length,
    /// and the absolute gap at which its solver may stop proving
    /// optimality. Always the first record of a stream.
    Meta {
        /// Scheduler name (e.g. `"sia"`).
        scheduler: String,
        /// Scheduling round duration, seconds.
        round_duration: f64,
        /// The solver's `gap_tolerance`: rounds whose proven absolute gap
        /// is at or below this are optimal by construction.
        gap_tolerance: f64,
    },
    /// Solver-quality record for one scheduling round. Emitted only for
    /// rounds where the policy reported solver stats (baselines that track
    /// no solve produce meta-only streams).
    Round {
        /// Round index (0-based, counting rounds that ran a solve).
        round: u64,
        /// Jobs wanting resources this round.
        contention: usize,
        /// Objective of the returned assignment, when one exists.
        objective: Option<f64>,
        /// Proven relaxation bound on the optimum (`None` on fallback
        /// paths, where no bound exists).
        best_bound: Option<f64>,
        /// Root LP relaxation objective.
        lp_objective: Option<f64>,
        /// How the solve concluded (a `SolveOutcome` label: `optimal`,
        /// `feasible`, `lagrangian_fallback`, `greedy_fallback`, `empty`).
        outcome: String,
        /// Branch-and-bound nodes explored.
        nodes: usize,
        /// Nodes discarded because their bound could not beat the
        /// incumbent.
        pruned: usize,
        /// Node index of the first incumbent (0 = warm-start seed accepted
        /// before the search began).
        first_incumbent_node: Option<u64>,
        /// Wall-clock seconds to the first incumbent (host-dependent;
        /// canonicalization zeroes it).
        first_incumbent_s: Option<f64>,
        /// Objective of the accepted warm-start seed, if any — compare
        /// against `objective` for warm-start efficacy.
        seed_objective: Option<f64>,
        /// Estimated simplex pivots avoided by parent-basis reuse.
        warm_pivots_saved: usize,
        /// Wall-clock seconds inside the MILP/heuristic solve
        /// (host-dependent; canonicalization zeroes it).
        solve_s: f64,
        /// Shards solved by the decomposed path (0 = monolithic round).
        shards: u64,
        /// A node/time budget stopped at least one solve early; the round's
        /// answer is the anytime incumbent.
        budget_exhausted: bool,
        /// Subgradient iterations of the Lagrangian pricing pass (0 when no
        /// pricing ran).
        lagrangian_iters: u64,
        /// Final absolute duality gap of the pricing pass.
        lagrangian_gap: f64,
        /// Euclidean norm of the final Lagrangian multipliers.
        lagrangian_norm: f64,
    },
    /// Decision provenance for one allocation change: what the job got,
    /// what its best alternative was worth, and why the change happened.
    Decision {
        /// Round index the decision belongs to.
        round: u64,
        /// Job id.
        job: u64,
        /// New GPU type index (`None` when the job now holds nothing).
        gpu_type: Option<usize>,
        /// New GPU count (0 when the job now holds nothing).
        gpus: usize,
        /// Why the allocation changed (flight-trace label set).
        reason: AllocReason,
        /// Value of the chosen configuration in the policy's candidate
        /// units (normalized goodput for Sia; 0.0 when unallocated).
        chosen_value: f64,
        /// Best value among all configurations offered for this job alone.
        best_value: f64,
    },
    /// Admission-control outcome for one submission or cancellation
    /// (serve mode): which tenant asked, whether the request was accepted,
    /// and the typed reason when it was not.
    Admission {
        /// Job id the request concerned.
        job: u64,
        /// Tenant that submitted the request.
        tenant: String,
        /// Whether the request passed admission control.
        accepted: bool,
        /// Typed outcome label (e.g. `accepted`, `quota-exceeded`,
        /// `queue-full`, `invalid-spec`, `cancelled`).
        reason: String,
        /// Signed GPU-hours charged against the tenant's quota (negative
        /// for a cancellation refund, 0 for rejections).
        charge_gpu_hours: f64,
    },
}

impl AuditEvent {
    /// Stable kind label (the `ev` field of the JSONL schema).
    pub fn kind(&self) -> &'static str {
        match self {
            AuditEvent::Meta { .. } => "meta",
            AuditEvent::Round { .. } => "round",
            AuditEvent::Decision { .. } => "decision",
            AuditEvent::Admission { .. } => "admission",
        }
    }

    /// The job this event concerns, if any.
    pub fn job(&self) -> Option<u64> {
        match self {
            AuditEvent::Decision { job, .. } | AuditEvent::Admission { job, .. } => Some(*job),
            AuditEvent::Meta { .. } | AuditEvent::Round { .. } => None,
        }
    }

    /// Canonical same-timestamp ordering class: header, then the round's
    /// solver record, then its decisions (by job), then admission outcomes.
    fn rank(&self) -> u8 {
        match self {
            AuditEvent::Meta { .. } => 0,
            AuditEvent::Round { .. } => 1,
            AuditEvent::Decision { .. } => 2,
            AuditEvent::Admission { .. } => 3,
        }
    }

    /// Proven absolute gap of a round record: `best_bound − objective`,
    /// clamped at zero. `None` for non-round records or fallback rounds.
    pub fn gap_abs(&self) -> Option<f64> {
        match self {
            AuditEvent::Round {
                objective: Some(o),
                best_bound: Some(b),
                ..
            } => Some((b - o).max(0.0)),
            _ => None,
        }
    }

    /// Proven relative gap: `gap_abs / max(|best_bound|, 1e-12)`.
    pub fn gap_rel(&self) -> Option<f64> {
        match self {
            AuditEvent::Round {
                best_bound: Some(b),
                ..
            } => self.gap_abs().map(|g| g / b.abs().max(1e-12)),
            _ => None,
        }
    }

    /// Regret of a decision record: `best_value − chosen_value`, clamped
    /// at zero.
    pub fn regret(&self) -> Option<f64> {
        match self {
            AuditEvent::Decision {
                chosen_value,
                best_value,
                ..
            } => Some((best_value - chosen_value).max(0.0)),
            _ => None,
        }
    }
}

/// One recorded audit event: simulated timestamp, emission sequence,
/// payload.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRecord {
    /// Simulated time, seconds.
    pub t: f64,
    /// Per-run emission sequence number (0-based, gap-free).
    pub seq: u64,
    /// The typed event.
    pub ev: AuditEvent,
}

impl AuditRecord {
    /// Serializes to the JSONL schema (derived gap/regret fields included).
    pub fn to_value(&self) -> Value {
        let opt = |x: Option<f64>| match x {
            Some(v) => json!(v),
            None => Value::Null,
        };
        let mut v = match &self.ev {
            AuditEvent::Meta {
                scheduler,
                round_duration,
                gap_tolerance,
            } => json!({
                "scheduler": scheduler,
                "round_s": *round_duration,
                "gap_tolerance": *gap_tolerance,
            }),
            AuditEvent::Round {
                round,
                contention,
                objective,
                best_bound,
                lp_objective,
                outcome,
                nodes,
                pruned,
                first_incumbent_node,
                first_incumbent_s,
                seed_objective,
                warm_pivots_saved,
                solve_s,
                shards,
                budget_exhausted,
                lagrangian_iters,
                lagrangian_gap,
                lagrangian_norm,
            } => json!({
                "round": *round,
                "contention": *contention as u64,
                "objective": opt(*objective),
                "best_bound": opt(*best_bound),
                "lp_objective": opt(*lp_objective),
                "gap_abs": opt(self.ev.gap_abs()),
                "gap_rel": opt(self.ev.gap_rel()),
                "outcome": outcome,
                "nodes": *nodes as u64,
                "pruned": *pruned as u64,
                "first_incumbent_node": match first_incumbent_node {
                    Some(n) => json!(*n),
                    None => Value::Null,
                },
                "first_incumbent_s": opt(*first_incumbent_s),
                "seed_objective": opt(*seed_objective),
                "warm_pivots_saved": *warm_pivots_saved as u64,
                "solve_s": *solve_s,
                "shards": *shards,
                "budget_exhausted": *budget_exhausted,
                "lagrangian_iters": *lagrangian_iters,
                "lagrangian_gap": *lagrangian_gap,
                "lagrangian_norm": *lagrangian_norm,
            }),
            AuditEvent::Decision {
                round,
                job,
                gpu_type,
                gpus,
                reason,
                chosen_value,
                best_value,
            } => json!({
                "round": *round,
                "job": *job,
                "gpu_type": match gpu_type { Some(t) => json!(*t as u64), None => Value::Null },
                "gpus": *gpus as u64,
                "reason": reason.label(),
                "chosen_value": *chosen_value,
                "best_value": *best_value,
                "regret": opt(self.ev.regret()),
            }),
            AuditEvent::Admission {
                job,
                tenant,
                accepted,
                reason,
                charge_gpu_hours,
            } => json!({
                "job": *job,
                "tenant": tenant,
                "accepted": *accepted,
                "reason": reason,
                "charge_gpu_hours": *charge_gpu_hours,
            }),
        };
        if let Value::Object(m) = &mut v {
            m.insert("ev".into(), json!(self.ev.kind()));
            m.insert("t".into(), json!(self.t));
            m.insert("seq".into(), json!(self.seq));
        }
        v
    }

    /// Parses one JSONL record. Derived fields (`gap_abs`, `gap_rel`,
    /// `regret`) are ignored and re-computed from their operands.
    pub fn from_value(v: &Value) -> Result<AuditRecord, String> {
        let kind = v
            .get("ev")
            .and_then(Value::as_str)
            .ok_or("record missing \"ev\"")?;
        let t = v
            .get("t")
            .and_then(Value::as_f64)
            .ok_or("record missing \"t\"")?;
        let seq = v
            .get("seq")
            .and_then(Value::as_u64)
            .ok_or("record missing \"seq\"")?;
        let req_u64 = |field: &str| -> Result<u64, String> {
            v.get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{kind} record missing \"{field}\""))
        };
        let opt_f64 = |field: &str| v.get(field).and_then(Value::as_f64);
        let ev = match kind {
            "meta" => AuditEvent::Meta {
                scheduler: v
                    .get("scheduler")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
                round_duration: opt_f64("round_s").unwrap_or(60.0),
                gap_tolerance: opt_f64("gap_tolerance").unwrap_or(0.0),
            },
            "round" => AuditEvent::Round {
                round: req_u64("round")?,
                contention: req_u64("contention")? as usize,
                objective: opt_f64("objective"),
                best_bound: opt_f64("best_bound"),
                lp_objective: opt_f64("lp_objective"),
                outcome: v
                    .get("outcome")
                    .and_then(Value::as_str)
                    .ok_or("round record missing \"outcome\"")?
                    .to_string(),
                nodes: req_u64("nodes")? as usize,
                pruned: req_u64("pruned")? as usize,
                first_incumbent_node: v.get("first_incumbent_node").and_then(Value::as_u64),
                first_incumbent_s: opt_f64("first_incumbent_s"),
                seed_objective: opt_f64("seed_objective"),
                warm_pivots_saved: req_u64("warm_pivots_saved")? as usize,
                solve_s: opt_f64("solve_s").unwrap_or(0.0),
                // Sharding fields default to "monolithic round" so streams
                // recorded before the decomposed path still parse.
                shards: v.get("shards").and_then(Value::as_u64).unwrap_or(0),
                budget_exhausted: v
                    .get("budget_exhausted")
                    .and_then(Value::as_bool)
                    .unwrap_or(false),
                lagrangian_iters: v
                    .get("lagrangian_iters")
                    .and_then(Value::as_u64)
                    .unwrap_or(0),
                lagrangian_gap: opt_f64("lagrangian_gap").unwrap_or(0.0),
                lagrangian_norm: opt_f64("lagrangian_norm").unwrap_or(0.0),
            },
            "decision" => AuditEvent::Decision {
                round: req_u64("round")?,
                job: req_u64("job")?,
                gpu_type: v
                    .get("gpu_type")
                    .and_then(Value::as_u64)
                    .map(|t| t as usize),
                gpus: req_u64("gpus")? as usize,
                reason: v
                    .get("reason")
                    .and_then(Value::as_str)
                    .and_then(AllocReason::parse)
                    .ok_or("decision record has unknown \"reason\"")?,
                chosen_value: opt_f64("chosen_value").unwrap_or(0.0),
                best_value: opt_f64("best_value").unwrap_or(0.0),
            },
            "admission" => AuditEvent::Admission {
                job: req_u64("job")?,
                tenant: v
                    .get("tenant")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
                accepted: v
                    .get("accepted")
                    .and_then(Value::as_bool)
                    .ok_or("admission record missing \"accepted\"")?,
                reason: v
                    .get("reason")
                    .and_then(Value::as_str)
                    .ok_or("admission record missing \"reason\"")?
                    .to_string(),
                charge_gpu_hours: opt_f64("charge_gpu_hours").unwrap_or(0.0),
            },
            other => return Err(format!("unknown record kind {other:?}")),
        };
        Ok(AuditRecord { t, seq, ev })
    }
}

/// The JSONL spill sink of an [`AuditRecorder`]. Flushed on drop so a
/// panicking run still leaves complete lines behind.
#[derive(Debug)]
struct Spill {
    w: BufWriter<File>,
}

impl Drop for Spill {
    fn drop(&mut self) {
        let _ = self.w.flush();
    }
}

/// The per-run audit recorder: bounded ring plus optional JSONL spill.
///
/// Owned by exactly one engine run — recording is a couple of branches and
/// a `VecDeque` push. When the ring is full the *oldest* record is dropped
/// (and counted); the spill file, when attached, keeps full fidelity.
#[derive(Debug)]
pub struct AuditRecorder {
    ring: VecDeque<AuditRecord>,
    capacity: usize,
    seq: u64,
    dropped: u64,
    spill: Option<Spill>,
}

impl AuditRecorder {
    /// A recorder keeping at most `capacity` records in memory.
    pub fn new(capacity: usize) -> Self {
        AuditRecorder {
            ring: VecDeque::new(),
            capacity,
            seq: 0,
            dropped: 0,
            spill: None,
        }
    }

    /// Attaches a full-fidelity JSONL spill file (truncating `path`).
    pub fn with_spill(capacity: usize, path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        let mut rec = AuditRecorder::new(capacity);
        rec.spill = Some(Spill {
            w: BufWriter::new(file),
        });
        Ok(rec)
    }

    /// Attaches a full-fidelity JSONL spill file (truncating `path`) to an
    /// existing recorder — e.g. one restored from a snapshot. Only records
    /// emitted from this point onward land in the file.
    pub fn attach_spill(&mut self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let file = File::create(path)?;
        self.spill = Some(Spill {
            w: BufWriter::new(file),
        });
        Ok(())
    }

    /// Serializes the recorder state — ring contents, sequence counter,
    /// drop count and capacity — for a daemon snapshot. The spill sink is
    /// not part of the state; re-attach one after restoring.
    pub fn export_state(&self) -> Value {
        json!({
            "capacity": self.capacity as u64,
            "seq": self.seq,
            "dropped": self.dropped,
            "records": self.ring.iter().map(AuditRecord::to_value).collect::<Vec<_>>(),
        })
    }

    /// Rebuilds a recorder from [`AuditRecorder::export_state`] output.
    /// The restored recorder continues the sequence exactly where the
    /// exported one stopped; no spill is attached.
    pub fn from_state(v: &Value) -> Result<Self, String> {
        let capacity = v
            .get("capacity")
            .and_then(Value::as_u64)
            .ok_or("recorder state missing \"capacity\"")? as usize;
        let seq = v
            .get("seq")
            .and_then(Value::as_u64)
            .ok_or("recorder state missing \"seq\"")?;
        let dropped = v
            .get("dropped")
            .and_then(Value::as_u64)
            .ok_or("recorder state missing \"dropped\"")?;
        let mut ring = VecDeque::new();
        for rv in v
            .get("records")
            .and_then(Value::as_array)
            .ok_or("recorder state missing \"records\"")?
        {
            ring.push_back(AuditRecord::from_value(rv)?);
        }
        if ring.len() > capacity {
            return Err("recorder state holds more records than its capacity".into());
        }
        Ok(AuditRecorder {
            ring,
            capacity,
            seq,
            dropped,
            spill: None,
        })
    }

    /// Records one event at simulated time `t_sim`.
    pub fn record(&mut self, t_sim: f64, ev: AuditEvent) {
        let rec = AuditRecord {
            t: t_sim,
            seq: self.seq,
            ev,
        };
        self.seq += 1;
        if let Some(s) = &mut self.spill {
            let _ = writeln!(s.w, "{}", rec.to_value());
        }
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(rec);
    }

    /// Number of records currently held in memory.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records evicted from the ring so far (the spill, if attached,
    /// still has them). Nonzero means the in-memory stream is partial.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Finishes the run: flushes the spill and returns the recorded stream.
    pub fn into_stream(mut self) -> AuditStream {
        if let Some(s) = &mut self.spill {
            let _ = s.w.flush();
        }
        AuditStream {
            records: std::mem::take(&mut self.ring).into(),
            dropped: self.dropped,
        }
    }
}

/// A recorded audit stream (the in-memory ring contents).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditStream {
    /// Records in emission order.
    pub records: Vec<AuditRecord>,
    /// Records evicted from the ring (0 unless the run outgrew the bound;
    /// the JSONL spill, if one was attached, still has them).
    pub dropped: u64,
}

impl AuditStream {
    /// Serializes the stream in emission order, one JSON object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_value().to_string());
            out.push('\n');
        }
        out
    }

    /// Canonical serialization for byte-for-byte comparison: records
    /// sorted by `(t, kind-rank, job)`, `seq` renumbered in that order, and
    /// the host-wall-clock fields (`solve_s`, `first_incumbent_s`) zeroed.
    /// Two same-seed runs — on either engine, or across engines with
    /// failures off — produce identical canonical streams.
    pub fn canonical_jsonl(&self) -> String {
        let mut sorted: Vec<AuditRecord> = self.records.clone();
        sorted.sort_by(|a, b| {
            a.t.total_cmp(&b.t)
                .then(a.ev.rank().cmp(&b.ev.rank()))
                .then(a.ev.job().unwrap_or(0).cmp(&b.ev.job().unwrap_or(0)))
        });
        let mut out = String::new();
        for (i, mut r) in sorted.into_iter().enumerate() {
            r.seq = i as u64;
            if let AuditEvent::Round {
                solve_s,
                first_incumbent_s,
                ..
            } = &mut r.ev
            {
                *solve_s = 0.0;
                *first_incumbent_s = first_incumbent_s.map(|_| 0.0);
            }
            out.push_str(&r.to_value().to_string());
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL stream (e.g. a spill file) back into a stream.
    pub fn parse_jsonl(text: &str) -> Result<AuditStream, String> {
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v: Value = serde_json::from_str(line)
                .map_err(|e| format!("line {}: invalid JSON: {e}", i + 1))?;
            records.push(AuditRecord::from_value(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        Ok(AuditStream {
            records,
            dropped: 0,
        })
    }

    /// The solver's gap tolerance from the meta record, if present.
    pub fn gap_tolerance(&self) -> Option<f64> {
        for r in &self.records {
            if let AuditEvent::Meta { gap_tolerance, .. } = &r.ev {
                return Some(*gap_tolerance);
            }
        }
        None
    }

    /// Derives the analysis report from the stream.
    pub fn report(&self) -> AuditReport {
        let mut scheduler = String::new();
        let mut gap_tolerance = 0.0;
        let mut rounds = 0u64;
        let mut solved_rounds = 0u64;
        let mut proven_rounds = 0u64;
        let mut fallback_rounds = 0u64;
        let mut warm_seeded_rounds = 0u64;
        let mut total_nodes = 0u64;
        let mut total_pruned = 0u64;
        let mut sharded_rounds = 0u64;
        let mut budget_exhausted_rounds = 0u64;
        let mut total_shards = 0u64;
        let mut total_lagrangian_iters = 0u64;
        let mut last_lagrangian_gap = 0.0f64;
        let mut abs_gaps = Vec::new();
        let mut rel_gaps = Vec::new();
        let mut gapped: Vec<WorstRound> = Vec::new();
        let mut jobs: BTreeMap<u64, JobRegret> = BTreeMap::new();
        let mut decisions = 0u64;
        let mut total_regret = 0.0;
        let mut admission_requests = 0u64;
        let mut admission_rejections = 0u64;

        for r in &self.records {
            match &r.ev {
                AuditEvent::Meta {
                    scheduler: s,
                    gap_tolerance: g,
                    ..
                } => {
                    scheduler = s.clone();
                    gap_tolerance = *g;
                }
                AuditEvent::Round {
                    round,
                    outcome,
                    nodes,
                    pruned,
                    seed_objective,
                    shards,
                    budget_exhausted,
                    lagrangian_iters,
                    lagrangian_gap,
                    ..
                } => {
                    rounds += 1;
                    total_nodes += *nodes as u64;
                    total_pruned += *pruned as u64;
                    if *shards > 0 {
                        sharded_rounds += 1;
                        total_shards += *shards;
                    }
                    if *budget_exhausted {
                        budget_exhausted_rounds += 1;
                    }
                    if *lagrangian_iters > 0 {
                        total_lagrangian_iters += *lagrangian_iters;
                        last_lagrangian_gap = *lagrangian_gap;
                    }
                    if outcome == "optimal" {
                        proven_rounds += 1;
                    }
                    if outcome.ends_with("_fallback") {
                        fallback_rounds += 1;
                    }
                    if seed_objective.is_some() {
                        warm_seeded_rounds += 1;
                    }
                    if let (Some(abs), Some(rel)) = (r.ev.gap_abs(), r.ev.gap_rel()) {
                        solved_rounds += 1;
                        abs_gaps.push(abs);
                        rel_gaps.push(rel);
                        gapped.push(WorstRound {
                            round: *round,
                            t: r.t,
                            abs_gap: abs,
                            rel_gap: rel,
                        });
                    }
                }
                AuditEvent::Decision { job, reason, .. } => {
                    decisions += 1;
                    let regret = r.ev.regret().unwrap_or(0.0);
                    total_regret += regret;
                    let entry = jobs.entry(*job).or_insert_with(|| JobRegret {
                        job: *job,
                        decisions: 0,
                        total_regret: 0.0,
                        max_regret: 0.0,
                        fallback_decisions: 0,
                    });
                    entry.decisions += 1;
                    entry.total_regret += regret;
                    entry.max_regret = entry.max_regret.max(regret);
                    if *reason == AllocReason::IlpInfeasibleFallback {
                        entry.fallback_decisions += 1;
                    }
                }
                AuditEvent::Admission { accepted, .. } => {
                    admission_requests += 1;
                    if !accepted {
                        admission_rejections += 1;
                    }
                }
            }
        }

        gapped.sort_by(|a, b| b.rel_gap.total_cmp(&a.rel_gap).then(a.round.cmp(&b.round)));
        gapped.truncate(5);
        abs_gaps.sort_by(f64::total_cmp);
        rel_gaps.sort_by(f64::total_cmp);

        AuditReport {
            scheduler,
            gap_tolerance,
            rounds,
            solved_rounds,
            proven_rounds,
            fallback_rounds,
            warm_seeded_rounds,
            median_abs_gap: percentile_sorted(&abs_gaps, 0.5),
            max_abs_gap: abs_gaps.last().copied().unwrap_or(0.0),
            median_rel_gap: percentile_sorted(&rel_gaps, 0.5),
            p90_rel_gap: percentile_sorted(&rel_gaps, 0.9),
            max_rel_gap: rel_gaps.last().copied().unwrap_or(0.0),
            worst_rounds: gapped,
            total_nodes,
            total_pruned,
            sharded_rounds,
            budget_exhausted_rounds,
            mean_shards: if sharded_rounds > 0 {
                total_shards as f64 / sharded_rounds as f64
            } else {
                0.0
            },
            total_lagrangian_iters,
            last_lagrangian_gap,
            decisions,
            total_regret,
            admission_requests,
            admission_rejections,
            jobs: jobs.into_values().collect(),
            dropped: self.dropped,
        }
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice.
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let pos = q.clamp(0.0, 1.0) * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }
}

/// One entry of the worst-gap table: a round whose proven gap was largest.
#[derive(Debug, Clone, PartialEq)]
pub struct WorstRound {
    /// Round index.
    pub round: u64,
    /// Round start time, simulated seconds.
    pub t: f64,
    /// Proven absolute gap.
    pub abs_gap: f64,
    /// Proven relative gap.
    pub rel_gap: f64,
}

/// Per-job regret accumulated over a run's allocation changes.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRegret {
    /// Job id.
    pub job: u64,
    /// Decision records for this job.
    pub decisions: u64,
    /// Sum of `best_value − chosen_value` across those decisions.
    pub total_regret: f64,
    /// Largest single-decision regret.
    pub max_regret: f64,
    /// Decisions made by a fallback heuristic rather than the exact ILP.
    pub fallback_decisions: u64,
}

/// The derived analysis view over one audit stream.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Scheduler name from the meta record.
    pub scheduler: String,
    /// Solver gap tolerance from the meta record.
    pub gap_tolerance: f64,
    /// Round records observed.
    pub rounds: u64,
    /// Rounds carrying both an objective and a proven bound.
    pub solved_rounds: u64,
    /// Rounds whose solve proved optimality.
    pub proven_rounds: u64,
    /// Rounds answered by a fallback heuristic.
    pub fallback_rounds: u64,
    /// Rounds where the previous allocation seeded the incumbent.
    pub warm_seeded_rounds: u64,
    /// Median proven absolute gap over solved rounds.
    pub median_abs_gap: f64,
    /// Largest proven absolute gap.
    pub max_abs_gap: f64,
    /// Median proven relative gap over solved rounds.
    pub median_rel_gap: f64,
    /// 90th-percentile proven relative gap.
    pub p90_rel_gap: f64,
    /// Largest proven relative gap.
    pub max_rel_gap: f64,
    /// Up to five rounds with the largest relative gaps, worst first.
    pub worst_rounds: Vec<WorstRound>,
    /// Branch-and-bound nodes explored across all rounds.
    pub total_nodes: u64,
    /// Nodes pruned across all rounds.
    pub total_pruned: u64,
    /// Rounds solved by the sharded decomposition path.
    pub sharded_rounds: u64,
    /// Rounds where the per-round time budget expired before the solve
    /// proved optimality (the anytime incumbent was returned instead).
    pub budget_exhausted_rounds: u64,
    /// Mean shard count over sharded rounds (0 when none were sharded).
    pub mean_shards: f64,
    /// Lagrangian pricing iterations summed across all rounds.
    pub total_lagrangian_iters: u64,
    /// Duality gap reported by the most recent round that ran the
    /// Lagrangian pricing pass.
    pub last_lagrangian_gap: f64,
    /// Decision records observed.
    pub decisions: u64,
    /// Sum of regret across all decisions.
    pub total_regret: f64,
    /// Admission records observed (serve mode; 0 for batch runs).
    pub admission_requests: u64,
    /// Admission records that rejected the request.
    pub admission_rejections: u64,
    /// Per-job regret table, sorted by job id.
    pub jobs: Vec<JobRegret>,
    /// Ring-buffer drops in the source stream (the report is partial if
    /// nonzero and the stream didn't come from a spill file).
    pub dropped: u64,
}

impl AuditReport {
    /// Fraction of solved rounds whose warm-start seed was accepted.
    pub fn warm_hit_rate(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        self.warm_seeded_rounds as f64 / self.rounds as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream() -> AuditStream {
        let mut rec = AuditRecorder::new(1024);
        rec.record(
            0.0,
            AuditEvent::Meta {
                scheduler: "sia".into(),
                round_duration: 60.0,
                gap_tolerance: 1e-9,
            },
        );
        rec.record(
            0.0,
            AuditEvent::Round {
                round: 0,
                contention: 2,
                objective: Some(10.0),
                best_bound: Some(10.0),
                lp_objective: Some(10.4),
                outcome: "optimal".into(),
                nodes: 3,
                pruned: 2,
                first_incumbent_node: Some(1),
                first_incumbent_s: Some(0.0004),
                seed_objective: None,
                warm_pivots_saved: 0,
                solve_s: 0.001,
                shards: 0,
                budget_exhausted: false,
                lagrangian_iters: 0,
                lagrangian_gap: 0.0,
                lagrangian_norm: 0.0,
            },
        );
        rec.record(
            0.0,
            AuditEvent::Decision {
                round: 0,
                job: 1,
                gpu_type: Some(1),
                gpus: 4,
                reason: AllocReason::Started,
                chosen_value: 0.9,
                best_value: 0.9,
            },
        );
        rec.record(
            0.0,
            AuditEvent::Decision {
                round: 0,
                job: 0,
                gpu_type: Some(0),
                gpus: 1,
                reason: AllocReason::Started,
                chosen_value: 0.5,
                best_value: 0.8,
            },
        );
        rec.record(
            60.0,
            AuditEvent::Round {
                round: 1,
                contention: 2,
                objective: Some(11.0),
                best_bound: Some(11.5),
                lp_objective: Some(11.6),
                outcome: "feasible".into(),
                nodes: 9,
                pruned: 1,
                first_incumbent_node: Some(0),
                first_incumbent_s: Some(0.0),
                seed_objective: Some(10.0),
                warm_pivots_saved: 40,
                solve_s: 0.002,
                shards: 4,
                budget_exhausted: true,
                lagrangian_iters: 120,
                lagrangian_gap: 0.5,
                lagrangian_norm: 1.25,
            },
        );
        rec.record(
            60.0,
            AuditEvent::Decision {
                round: 1,
                job: 0,
                gpu_type: None,
                gpus: 0,
                reason: AllocReason::Preempted,
                chosen_value: 0.0,
                best_value: 0.8,
            },
        );
        rec.into_stream()
    }

    #[test]
    fn jsonl_round_trips() {
        let stream = sample_stream();
        let text = stream.to_jsonl();
        let parsed = AuditStream::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.records, stream.records);
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn canonical_is_stable_and_zeroes_wall_clock() {
        let stream = sample_stream();
        let mut shuffled = stream.clone();
        shuffled.records.reverse();
        for (i, r) in shuffled.records.iter_mut().enumerate() {
            r.seq = i as u64;
        }
        assert_eq!(stream.canonical_jsonl(), shuffled.canonical_jsonl());
        let canon = stream.canonical_jsonl();
        assert!(
            !canon.contains("0.001") && !canon.contains("0.0004"),
            "canonical form must zero solve_s and first_incumbent_s"
        );
        // Decisions at the same instant sort by job id.
        let decision_jobs: Vec<u64> = AuditStream::parse_jsonl(&canon)
            .unwrap()
            .records
            .iter()
            .filter_map(|r| r.ev.job())
            .collect();
        assert_eq!(decision_jobs, vec![0, 1, 0]);
    }

    #[test]
    fn derived_fields_are_recomputed_on_parse() {
        let stream = sample_stream();
        let mut text = String::new();
        for r in &stream.records {
            let mut v = r.to_value();
            if let Value::Object(m) = &mut v {
                // Tamper with the derived fields; parsing must ignore them.
                if m.contains_key("gap_abs") {
                    m.insert("gap_abs".into(), json!(999.0));
                }
                if m.contains_key("regret") {
                    m.insert("regret".into(), json!(999.0));
                }
            }
            text.push_str(&v.to_string());
            text.push('\n');
        }
        let parsed = AuditStream::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.records, stream.records);
        assert_eq!(parsed.records[1].ev.gap_abs(), Some(0.0));
    }

    #[test]
    fn report_aggregates_gaps_and_regret() {
        let report = sample_stream().report();
        assert_eq!(report.scheduler, "sia");
        assert_eq!(report.rounds, 2);
        assert_eq!(report.solved_rounds, 2);
        assert_eq!(report.proven_rounds, 1);
        assert_eq!(report.warm_seeded_rounds, 1);
        assert!((report.warm_hit_rate() - 0.5).abs() < 1e-12);
        // Gaps: round 0 → 0.0; round 1 → 0.5 abs, 0.5/11.5 rel.
        assert!((report.max_abs_gap - 0.5).abs() < 1e-12);
        assert!((report.max_rel_gap - 0.5 / 11.5).abs() < 1e-12);
        assert!((report.median_abs_gap - 0.25).abs() < 1e-12);
        assert_eq!(report.worst_rounds[0].round, 1);
        // Regret: job 0 has 0.3 + 0.8, job 1 has 0.0.
        assert_eq!(report.decisions, 3);
        assert!((report.total_regret - 1.1).abs() < 1e-12);
        let j0 = &report.jobs[0];
        assert_eq!(j0.job, 0);
        assert_eq!(j0.decisions, 2);
        assert!((j0.total_regret - 1.1).abs() < 1e-12);
        assert!((j0.max_regret - 0.8).abs() < 1e-12);
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut rec = AuditRecorder::new(2);
        for i in 0..5 {
            rec.record(
                i as f64,
                AuditEvent::Decision {
                    round: i,
                    job: i,
                    gpu_type: None,
                    gpus: 0,
                    reason: AllocReason::Preempted,
                    chosen_value: 0.0,
                    best_value: 0.0,
                },
            );
        }
        assert_eq!(rec.len(), 2);
        let stream = rec.into_stream();
        assert_eq!(stream.dropped, 3);
        assert_eq!(stream.records[1].seq, 4);
    }

    #[test]
    fn admission_round_trips_and_reports() {
        let mut rec = AuditRecorder::new(64);
        rec.record(
            0.0,
            AuditEvent::Admission {
                job: 5,
                tenant: "acme".into(),
                accepted: true,
                reason: "accepted".into(),
                charge_gpu_hours: 12.5,
            },
        );
        rec.record(
            0.0,
            AuditEvent::Admission {
                job: 6,
                tenant: "zero".into(),
                accepted: false,
                reason: "quota-exceeded".into(),
                charge_gpu_hours: 0.0,
            },
        );
        let stream = rec.into_stream();
        let parsed = AuditStream::parse_jsonl(&stream.to_jsonl()).unwrap();
        assert_eq!(parsed.records, stream.records);
        let report = stream.report();
        assert_eq!(report.admission_requests, 2);
        assert_eq!(report.admission_rejections, 1);
    }

    #[test]
    fn recorder_state_round_trips_and_resumes_sequence() {
        let mut rec = AuditRecorder::new(8);
        rec.record(
            0.0,
            AuditEvent::Meta {
                scheduler: "sia".into(),
                round_duration: 60.0,
                gap_tolerance: 1e-9,
            },
        );
        rec.record(
            0.0,
            AuditEvent::Admission {
                job: 1,
                tenant: "acme".into(),
                accepted: true,
                reason: "accepted".into(),
                charge_gpu_hours: 2.0,
            },
        );
        let state = rec.export_state();
        let mut back = AuditRecorder::from_state(&state).unwrap();
        rec.record(
            60.0,
            AuditEvent::Admission {
                job: 1,
                tenant: "acme".into(),
                accepted: true,
                reason: "cancelled".into(),
                charge_gpu_hours: -2.0,
            },
        );
        back.record(
            60.0,
            AuditEvent::Admission {
                job: 1,
                tenant: "acme".into(),
                accepted: true,
                reason: "cancelled".into(),
                charge_gpu_hours: -2.0,
            },
        );
        assert_eq!(rec.into_stream(), back.into_stream());
    }

    #[test]
    fn spill_survives_panic_via_drop() {
        let path = std::env::temp_dir().join(format!(
            "sia-audit-spill-panic-{}.jsonl",
            std::process::id()
        ));
        let p = path.clone();
        let handle = std::thread::spawn(move || {
            let mut rec = AuditRecorder::with_spill(16, &p).unwrap();
            rec.record(
                0.0,
                AuditEvent::Meta {
                    scheduler: "sia".into(),
                    round_duration: 60.0,
                    gap_tolerance: 1e-9,
                },
            );
            panic!("simulated crash mid-run");
        });
        assert!(handle.join().is_err(), "the run must have panicked");
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let parsed = AuditStream::parse_jsonl(&text).expect("spill parses after a panic");
        assert_eq!(parsed.records.len(), 1);
    }
}
