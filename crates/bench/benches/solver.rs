//! Microbenchmarks of the LP / branch-and-bound MILP solver on Sia-shaped
//! assignment problems, plus the round-over-round fast-path comparisons:
//! cold vs warm-started MILP and full vs incremental goodput-matrix builds.
//!
//! The vendored criterion stand-in reports no timing data, so this bench
//! uses a hand-rolled `Instant` harness and writes its measurements to
//! `results/BENCH_solver.json`. Set `SIA_BENCH_QUICK=1` for a fast CI
//! smoke run (smaller sizes, fewer iterations).

use std::time::Instant;

use sia_cluster::{config_set, ClusterSpec, ClusterView, JobId, Placement};
use sia_core::MatrixCache;
use sia_models::{BatchLimits, EfficiencyParams, JobEstimator, ThroughputParams};
use sia_sim::JobView;
use sia_solver::{MilpWarmStart, Problem, Sense};
use sia_workloads::{Adaptivity, JobSpec, ModelKind, SizeCategory};

/// Builds a Sia-shaped assignment problem: `jobs` SOS-1 rows over `configs`
/// binary columns each, plus 3 GPU-type capacity rows.
fn assignment_problem(jobs: usize, configs_per_job: usize, binary: bool) -> Problem {
    let mut p = Problem::new(Sense::Maximize);
    let mut by_type: Vec<Vec<(sia_solver::VarId, f64)>> = vec![Vec::new(); 3];
    for j in 0..jobs {
        let mut row = Vec::new();
        for c in 0..configs_per_job {
            let weight = 1.0 + ((j * 31 + c * 17) % 97) as f64 / 97.0;
            let v = if binary {
                p.add_binary_var(weight)
            } else {
                p.add_var(weight, 0.0, 1.0)
            };
            row.push((v, 1.0));
            let gpus = 1 << (c % 5);
            by_type[c % 3].push((v, gpus as f64));
        }
        p.add_le(&row, 1.0);
    }
    // Fractional capacities force fractional LP vertices, so the MILP
    // actually branches instead of solving at the root.
    for (t, row) in by_type.iter().enumerate() {
        p.add_le(row, (jobs * 2 + t * 8) as f64 * 0.83 + 0.37);
    }
    p
}

fn params(speed: f64) -> ThroughputParams {
    ThroughputParams {
        alpha_c: 0.05 / speed,
        beta_c: 0.002 / speed,
        alpha_n: 0.02,
        beta_n: 0.005,
        alpha_d: 0.1,
        beta_d: 0.02,
        gamma: 2.5,
        max_local_bsz: 256.0,
    }
}

struct Fixture {
    specs: Vec<JobSpec>,
    ests: Vec<JobEstimator>,
    curs: Vec<Placement>,
}

impl Fixture {
    fn new(n_jobs: usize) -> Self {
        let specs = (0..n_jobs as u64)
            .map(|i| JobSpec {
                id: JobId(i),
                name: format!("j{i}"),
                model: ModelKind::ResNet18,
                category: SizeCategory::Small,
                submit_time: 0.0,
                adaptivity: Adaptivity::Adaptive,
                min_gpus: 1,
                max_gpus: 16,
                work_target: 1e9,
            })
            .collect();
        let ests = (0..n_jobs)
            .map(|_| {
                JobEstimator::oracle(
                    vec![params(1.0), params(1.8), params(4.0)],
                    EfficiencyParams::new(4000.0, 128.0),
                    BatchLimits::new(128.0, 8192.0),
                )
            })
            .collect();
        Fixture {
            specs,
            ests,
            curs: vec![Placement::empty(); n_jobs],
        }
    }

    fn views(&self) -> Vec<JobView<'_>> {
        self.specs
            .iter()
            .zip(&self.ests)
            .zip(&self.curs)
            .map(|((spec, est), cur)| JobView {
                id: spec.id,
                spec,
                estimator: est,
                current: cur,
                age: 600.0,
                restarts: 1,
                restart_delay: 30.0,
                progress: 0.2,
            })
            .collect()
    }
}

/// Median wall-clock seconds of `iters` runs of `f`.
fn median_s<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    // `cargo bench` runs benches from the crate directory; hop to the
    // workspace root so `results/` is shared with the figure binaries.
    let _ = std::env::set_current_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let quick = std::env::var("SIA_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let iters = if quick { 3 } else { 10 };
    let job_sizes: &[usize] = if quick { &[20, 80] } else { &[20, 80, 320] };
    let mut rows = Vec::new();

    for &jobs in job_sizes {
        let lp = assignment_problem(jobs, 19, false);
        let lp_s = median_s(iters, || {
            lp.solve_lp().unwrap();
        });
        println!("lp_assignment/{jobs}: {:.3} ms", lp_s * 1e3);

        let milp = assignment_problem(jobs, 19, true);
        let cold_s = median_s(iters, || {
            milp.solve_milp().unwrap();
        });
        let cold = milp.solve_milp().unwrap();

        // Warm start from the cold optimum: the round-over-round case where
        // last round's assignment seeds the incumbent.
        let hint = MilpWarmStart {
            hint: cold.solution.values.clone(),
        };
        let opts = sia_solver::MilpOptions::default();
        let warm_s = median_s(iters, || {
            milp.solve_milp_warm(&opts, Some(&hint)).unwrap();
        });
        let warm = milp.solve_milp_warm(&opts, Some(&hint)).unwrap();
        assert!(
            (warm.solution.objective - cold.solution.objective).abs() < 1e-6,
            "warm start changed the optimum"
        );
        println!(
            "milp_assignment/{jobs}: cold {:.3} ms ({} nodes, {} pivots) \
             warm {:.3} ms ({} nodes, {} pivots, {} pivots saved)",
            cold_s * 1e3,
            cold.nodes_explored,
            cold.total_pivots,
            warm_s * 1e3,
            warm.nodes_explored,
            warm.total_pivots,
            warm.warm_pivots_saved,
        );

        rows.push(serde_json::json!({
            "jobs": jobs,
            "lp_s": lp_s,
            "milp_cold_s": cold_s,
            "milp_warm_s": warm_s,
            "milp_warm_speedup": cold_s / warm_s.max(1e-12),
            "cold_nodes": cold.nodes_explored,
            "warm_nodes": warm.nodes_explored,
            "cold_pivots": cold.total_pivots,
            "warm_pivots": warm.total_pivots,
            "warm_pivots_saved": warm.warm_pivots_saved,
            "incumbent_seeded": warm.incumbent_seed_objective.is_some(),
        }));
    }

    // Full vs incremental goodput-matrix build: a fresh cache re-enumerates
    // every row; a second refresh with clean estimators reuses all of them.
    let mut matrix_rows = Vec::new();
    for &jobs in job_sizes {
        let cluster = ClusterView::new(ClusterSpec::heterogeneous_scaled(4));
        let configs = config_set(cluster.spec());
        let fx = Fixture::new(jobs);
        let views = fx.views();
        let full_s = median_s(iters, || {
            let mut cache = MatrixCache::new();
            cache.refresh(&views, &cluster, &configs, 1);
        });
        let mut warm_cache = MatrixCache::new();
        warm_cache.refresh(&views, &cluster, &configs, 1);
        let incr_s = median_s(iters, || {
            warm_cache.refresh(&views, &cluster, &configs, 1);
        });
        println!(
            "matrix_build/{jobs}: full {:.3} ms incremental {:.3} ms ({:.0}x)",
            full_s * 1e3,
            incr_s * 1e3,
            full_s / incr_s.max(1e-12)
        );
        matrix_rows.push(serde_json::json!({
            "jobs": jobs,
            "full_s": full_s,
            "incremental_s": incr_s,
            "incremental_speedup": full_s / incr_s.max(1e-12),
        }));
    }

    sia_bench::write_json(
        "BENCH_solver",
        &serde_json::json!({
            "bench": "solver",
            "quick": quick,
            "iters": iters,
            "assignment": rows,
            "matrix_build": matrix_rows,
        }),
    );
}
