/root/repo/target/release/deps/sia_sim-924d72c65526549d.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/result.rs crates/sim/src/scheduler.rs

/root/repo/target/release/deps/sia_sim-924d72c65526549d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/result.rs crates/sim/src/scheduler.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/result.rs:
crates/sim/src/scheduler.rs:
