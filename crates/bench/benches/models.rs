//! Criterion microbenchmarks of the performance-model hot paths: goodput
//! optimization (called `|jobs| x |configs|` times per scheduling round) and
//! online throughput-model fitting (called per executor report).

use criterion::{criterion_group, criterion_main, Criterion};
use sia_models::{
    fit_throughput, optimize_goodput, AllocShape, BatchLimits, EfficiencyParams, FitSample,
    ThroughputParams,
};

fn params() -> ThroughputParams {
    ThroughputParams {
        alpha_c: 0.05,
        beta_c: 0.002,
        alpha_n: 0.02,
        beta_n: 0.005,
        alpha_d: 0.1,
        beta_d: 0.02,
        gamma: 2.5,
        max_local_bsz: 256.0,
    }
}

fn bench_models(c: &mut Criterion) {
    let p = params();
    let eff = EfficiencyParams::new(2000.0, 128.0);
    let limits = BatchLimits::new(128.0, 8192.0);

    c.bench_function("optimize_goodput_single", |b| {
        b.iter(|| optimize_goodput(&p, &eff, AllocShape::single(), limits))
    });
    c.bench_function("optimize_goodput_dist16", |b| {
        b.iter(|| optimize_goodput(&p, &eff, AllocShape::dist(16), limits))
    });

    let samples: Vec<FitSample> = [1usize, 2, 4, 8]
        .iter()
        .flat_map(|&k| {
            [32.0, 64.0, 128.0].iter().map(move |&m| {
                let shape = if k == 1 {
                    AllocShape::single()
                } else {
                    AllocShape::local(k)
                };
                FitSample {
                    shape,
                    local_bsz: m,
                    accum_steps: 0,
                    iter_time: params().t_iter(shape, m, 0),
                }
            })
        })
        .collect();
    let seed = params();
    c.bench_function("fit_throughput_12_samples", |b| {
        b.iter(|| fit_throughput(&seed, &samples))
    });
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
