//! Quick cross-scheduler comparison for development sanity-checking.
//!
//! Not a paper experiment; runs a shortened heterogeneous Philly-like trace
//! through Sia, Pollux, and Gavel+TJ with one seed.

use sia_bench::{print_table, sweep, Policy};
use sia_cluster::ClusterSpec;
use sia_sim::SimConfig;
use sia_workloads::TraceKind;

fn main() {
    let cluster = ClusterSpec::heterogeneous_64();
    let seeds = [1u64];
    let cfg = SimConfig::default();
    let t0 = std::time::Instant::now();
    let aggs: Vec<_> = [Policy::Sia, Policy::Pollux, Policy::GavelTuned]
        .into_iter()
        .map(|p| {
            let t = std::time::Instant::now();
            let a = sweep(p, &cluster, TraceKind::Philly, &seeds, &cfg, 16, 1.0, None);
            eprintln!("{}: {:?}", a.label, t.elapsed());
            a
        })
        .collect();
    print_table("quick compare (Philly-like, hetero 64, work x1.0)", &aggs);
    eprintln!("total: {:?}", t0.elapsed());
}
