//! Sustained-throughput benchmark for the `sia-serve` daemon.
//!
//! Streams a large burst of `submit` requests (plus interleaved cancels
//! and queries) through an in-process [`Server`] in replay pacing and
//! measures end-to-end admission latency — line parse, schema stage,
//! quota stage, audit record, queue insert — per request. Reports
//! jobs/sec and p50/p99 latency to `results/BENCH_serve.json` with the
//! acceptance thresholds (>= 10k submissions/sec, p99 < 10 ms) evaluated
//! in-place.
//!
//! Requests arrive in nondecreasing virtual-time order inside a single
//! scheduling round, as `sia-cli trace-to-stream` emits them, so the
//! numbers isolate the admission pipeline rather than the MILP solve.

use std::time::Instant;

use sia_bench::write_json;
use sia_cluster::ClusterSpec;
use sia_core::SiaPolicy;
use sia_serve::{ServeOptions, Server};
use sia_sim::{EngineKind, SimConfig};
use sia_workloads::{Trace, TraceConfig, TraceKind};

use serde_json::{json, ToJson, Value};

const SUBMISSIONS: usize = 20_000;
const CANCEL_EVERY: usize = 40;
const QUERY_EVERY: usize = 97;
const MIN_JOBS_PER_SEC: f64 = 10_000.0;
const MAX_P99_S: f64 = 0.010;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    // One template trace supplies realistic model/size mixes; ids and
    // submit times are reassigned so all requests land inside one round.
    let template = Trace::generate(&TraceConfig::new(TraceKind::Philly, 11).with_max_gpus_cap(16));
    let round_s = 60.0;
    let mut lines = Vec::with_capacity(SUBMISSIONS + SUBMISSIONS / CANCEL_EVERY);
    for i in 0..SUBMISSIONS {
        let mut job = template.jobs[i % template.jobs.len()].clone();
        job.id = sia_cluster::JobId(i as u64);
        job.name = format!("bench-{i}");
        job.submit_time = round_s * 0.9 * (i as f64) / (SUBMISSIONS as f64);
        let tenant = format!("tenant-{}", i % 4);
        let line = json!({
            "id": format!("r{i}"),
            "cmd": "submit",
            "at": job.submit_time,
            "tenant": tenant,
            "gpu_hours": 1.0,
            "job": job.to_json(),
        });
        lines.push(serde_json::to_string(&line).expect("request line"));
        if i % CANCEL_EVERY == CANCEL_EVERY - 1 {
            lines.push(format!(
                r#"{{"id":"c{i}","cmd":"cancel","at":{},"job":{i}}}"#,
                job.submit_time
            ));
        }
        if i % QUERY_EVERY == QUERY_EVERY - 1 {
            lines.push(format!(
                r#"{{"id":"q{i}","cmd":"query","at":{}}}"#,
                job.submit_time
            ));
        }
    }

    let mut server = Server::new(
        ClusterSpec::heterogeneous_64(),
        SimConfig {
            engine: EngineKind::Round,
            seed: 11,
            ..SimConfig::default()
        },
        Box::new(SiaPolicy::default()),
        &ServeOptions {
            default_quota: Some(1e9),
            quotas: Vec::new(),
            max_pending: None,
        },
    );

    let mut latencies = Vec::with_capacity(lines.len());
    let mut responses = 0usize;
    let wall_start = Instant::now();
    for line in &lines {
        let t0 = Instant::now();
        let out = server.handle(line);
        latencies.push(t0.elapsed().as_secs_f64());
        responses += out.len();
        debug_assert!(out.iter().all(|v| v.get("ok") != Some(&Value::Bool(false))));
    }
    let wall_s = wall_start.elapsed().as_secs_f64();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let requests = lines.len();
    let jobs_per_sec = requests as f64 / wall_s;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let max = *latencies.last().unwrap_or(&0.0);
    let pass = jobs_per_sec >= MIN_JOBS_PER_SEC && p99 < MAX_P99_S;

    println!(
        "serve throughput: {requests} requests ({SUBMISSIONS} submissions) in {wall_s:.3} s \
         = {jobs_per_sec:.0} req/s"
    );
    println!(
        "admission latency: p50 {:.1} us, p99 {:.1} us, max {:.1} us",
        p50 * 1e6,
        p99 * 1e6,
        max * 1e6
    );
    println!(
        "thresholds: >= {MIN_JOBS_PER_SEC:.0} req/s and p99 < {:.0} ms -> {}",
        MAX_P99_S * 1e3,
        if pass { "PASS" } else { "FAIL" }
    );

    write_json(
        "BENCH_serve",
        &json!({
            "submissions": SUBMISSIONS as u64,
            "requests": requests as u64,
            "responses": responses as u64,
            "wall_s": wall_s,
            "jobs_per_sec": jobs_per_sec,
            "admit_latency_p50_s": p50,
            "admit_latency_p99_s": p99,
            "admit_latency_max_s": max,
            "min_jobs_per_sec_threshold": MIN_JOBS_PER_SEC,
            "max_p99_latency_s_threshold": MAX_P99_S,
            "pass": pass,
        }),
    );
    if !pass {
        std::process::exit(1);
    }
}
