//! Criterion microbenchmarks of per-round policy runtime (§5.6).
//!
//! Benchmarks one `schedule()` call for Sia, Pollux and Gavel against
//! synthetic steady-state job populations on 64- and 256-GPU heterogeneous
//! clusters. The paper reports Sia at ~96 ms median on 64 GPUs (Python/
//! GLPK); this Rust implementation is expected to be far faster in absolute
//! terms while preserving the ordering Gavel < Sia << Pollux.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sia_baselines::{GavelPolicy, PolluxPolicy};
use sia_cluster::{ClusterSpec, ClusterView, JobId, Placement};
use sia_core::SiaPolicy;
use sia_models::{BatchLimits, EfficiencyParams, JobEstimator, ThroughputParams};
use sia_sim::{JobView, Scheduler};
use sia_workloads::{Adaptivity, JobSpec, ModelKind, SizeCategory};

fn params(speed: f64) -> ThroughputParams {
    ThroughputParams {
        alpha_c: 0.05 / speed,
        beta_c: 0.002 / speed,
        alpha_n: 0.02,
        beta_n: 0.005,
        alpha_d: 0.1,
        beta_d: 0.02,
        gamma: 2.5,
        max_local_bsz: 256.0,
    }
}

struct Fixture {
    specs: Vec<JobSpec>,
    ests: Vec<JobEstimator>,
    curs: Vec<Placement>,
}

impl Fixture {
    fn new(n_jobs: usize, rigid: bool) -> Self {
        let specs = (0..n_jobs as u64)
            .map(|i| JobSpec {
                id: JobId(i),
                name: format!("j{i}"),
                model: ModelKind::ResNet18,
                category: SizeCategory::Small,
                submit_time: 0.0,
                adaptivity: if rigid {
                    Adaptivity::Rigid {
                        batch_size: 512.0,
                        num_gpus: 1 + (i as usize % 4),
                    }
                } else {
                    Adaptivity::Adaptive
                },
                min_gpus: 1,
                max_gpus: 16,
                work_target: 1e9,
            })
            .collect();
        let ests = (0..n_jobs)
            .map(|_| {
                JobEstimator::oracle(
                    vec![params(1.0), params(1.8), params(4.0)],
                    EfficiencyParams::new(4000.0, 128.0),
                    if rigid {
                        BatchLimits::fixed(512.0)
                    } else {
                        BatchLimits::new(128.0, 8192.0)
                    },
                )
            })
            .collect();
        Fixture {
            specs,
            ests,
            curs: vec![Placement::empty(); n_jobs],
        }
    }

    fn views(&self) -> Vec<JobView<'_>> {
        self.specs
            .iter()
            .zip(&self.ests)
            .zip(&self.curs)
            .map(|((spec, est), cur)| JobView {
                id: spec.id,
                spec,
                estimator: est,
                current: cur,
                age: 600.0,
                restarts: 1,
                restart_delay: 30.0,
                progress: 0.2,
            })
            .collect()
    }
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_round");
    group.sample_size(10);
    for factor in [1usize, 4] {
        let cluster = ClusterView::new(ClusterSpec::heterogeneous_scaled(factor));
        let n_jobs = 20 * factor;
        let adaptive = Fixture::new(n_jobs, false);
        let rigid = Fixture::new(n_jobs, true);
        let gpus = 64 * factor;

        group.bench_function(BenchmarkId::new("sia", gpus), |b| {
            b.iter_batched(
                SiaPolicy::default,
                |mut p| p.schedule(0.0, &adaptive.views(), &cluster),
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_function(BenchmarkId::new("pollux", gpus), |b| {
            b.iter_batched(
                PolluxPolicy::default,
                |mut p| p.schedule(0.0, &adaptive.views(), &cluster),
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_function(BenchmarkId::new("gavel", gpus), |b| {
            b.iter_batched(
                GavelPolicy::default,
                |mut p| p.schedule(0.0, &rigid.views(), &cluster),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
