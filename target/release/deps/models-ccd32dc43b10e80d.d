/root/repo/target/release/deps/models-ccd32dc43b10e80d.d: crates/bench/benches/models.rs

/root/repo/target/release/deps/models-ccd32dc43b10e80d: crates/bench/benches/models.rs

crates/bench/benches/models.rs:
