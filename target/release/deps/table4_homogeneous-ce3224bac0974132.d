/root/repo/target/release/deps/table4_homogeneous-ce3224bac0974132.d: crates/bench/src/bin/table4_homogeneous.rs

/root/repo/target/release/deps/table4_homogeneous-ce3224bac0974132: crates/bench/src/bin/table4_homogeneous.rs

crates/bench/src/bin/table4_homogeneous.rs:
