//! The JSONL event sink.
//!
//! Disabled by default: every emit helper starts with one relaxed atomic
//! load and returns — the entire cost telemetry adds to un-instrumented
//! runs. Enabling routes events through a buffered writer behind a mutex.
//!
//! Crash safety: the first `init_jsonl` installs a panic hook that flushes
//! the sink, so a run that dies mid-simulation still leaves whole, parseable
//! lines behind (the buffered writer would otherwise truncate mid-line).
//! Every sink lock is poison-tolerant — a panic while holding the writer
//! must not take telemetry down with it.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, Once, OnceLock};

use crate::now_s;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EMITTED: AtomicU64 = AtomicU64::new(0);
static SEQ: AtomicU64 = AtomicU64::new(0);

fn writer() -> &'static Mutex<Option<BufWriter<File>>> {
    static WRITER: OnceLock<Mutex<Option<BufWriter<File>>>> = OnceLock::new();
    WRITER.get_or_init(|| Mutex::new(None))
}

/// Locks the writer, recovering from poisoning: the sink holds no invariant
/// a panicked emitter could have broken mid-write (the worst case is one
/// torn line, which parsers skip), so refusing all further telemetry after
/// one panic would only destroy evidence.
fn lock_writer() -> MutexGuard<'static, Option<BufWriter<File>>> {
    match writer().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Installs (once) a panic hook that flushes the sink before unwinding
/// continues, chained in front of the default hook.
fn install_panic_flush() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(w) = lock_writer().as_mut() {
                let _ = w.flush();
            }
            previous(info);
        }));
    });
}

/// Route events to a JSONL file at `path` (truncating it). Replaces any
/// previous sink.
pub fn init_jsonl(path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = File::create(path)?;
    install_panic_flush();
    let mut guard = lock_writer();
    if let Some(mut old) = guard.replace(BufWriter::new(file)) {
        let _ = old.flush();
    }
    ENABLED.store(true, Ordering::Release);
    Ok(())
}

/// True if a sink is currently accepting events.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Stop emitting events (the sink file, if any, stays open but idle).
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Flush buffered events to the sink file.
pub fn flush() {
    if let Some(w) = lock_writer().as_mut() {
        let _ = w.flush();
    }
}

/// Disable the sink, flush, and close the file.
pub fn shutdown() {
    ENABLED.store(false, Ordering::Release);
    if let Some(mut w) = lock_writer().take() {
        let _ = w.flush();
    }
}

/// Total events written since process start (across all sink files). Only
/// moves while a sink is enabled, which makes "disabled emits nothing"
/// directly testable.
pub fn events_emitted() -> u64 {
    EMITTED.load(Ordering::Relaxed)
}

/// Append one event line. The sequence number is allocated under the writer
/// lock so on-disk order always matches `seq` order.
fn write_event(render: impl FnOnce(u64) -> String) {
    let mut guard = lock_writer();
    if let Some(w) = guard.as_mut() {
        // Re-check under the lock so shutdown() can't race a straggler.
        if ENABLED.load(Ordering::Relaxed) {
            let seq = SEQ.fetch_add(1, Ordering::Relaxed);
            let _ = writeln!(w, "{}", render(seq));
            EMITTED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

pub(crate) fn emit_span(name: &str, start_s: f64, dur_s: f64, depth: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    write_event(|seq| {
        serde_json::json!({
            "ev": "span",
            "name": name,
            "t_s": start_s,
            "dur_s": dur_s,
            "depth": depth,
            "seq": seq,
        })
        .to_string()
    });
}

pub(crate) fn emit_counter(name: &str, delta: u64, total: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    write_event(|seq| {
        serde_json::json!({
            "ev": "counter",
            "name": name,
            "delta": delta,
            "total": total,
            "t_s": now_s(),
            "seq": seq,
        })
        .to_string()
    });
}

pub(crate) fn emit_gauge(name: &str, value: f64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    write_event(|seq| {
        serde_json::json!({
            "ev": "gauge",
            "name": name,
            "value": value,
            "t_s": now_s(),
            "seq": seq,
        })
        .to_string()
    });
}
