//! Converting a static trace into a serve-mode submission stream.
//!
//! `sia-serve` consumes JSONL commands; this module turns a [`Trace`]
//! (generated or loaded from a trace file) into the equivalent stream of
//! `submit` requests — one per job, timestamped with the job's submit
//! time — so a daemon replaying it reproduces exactly the batch run of the
//! same trace. `sia-cli trace-to-stream` is the command-line wrapper.

use serde_json::{json, ToJson};

use crate::trace::Trace;

/// How [`trace_to_stream_jsonl`] shapes the submission stream.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Tenant every submission is filed under.
    pub tenant: String,
    /// GPU-hours charged per GPU of the job's `max_gpus` (the quota charge
    /// scales with job size; 0.0 charges nothing).
    pub gpu_hours_per_gpu: f64,
    /// Append a final `shutdown` request so a replaying daemon drains and
    /// exits cleanly.
    pub shutdown: bool,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            tenant: "default".to_string(),
            gpu_hours_per_gpu: 0.0,
            shutdown: true,
        }
    }
}

/// Renders `trace` as a serve-mode JSONL submission script: one `submit`
/// request per job (request id `sub-<job id>`, `at` = the job's submit
/// time), followed by a `shutdown` request when
/// [`StreamOptions::shutdown`] is set.
pub fn trace_to_stream_jsonl(trace: &Trace, opts: &StreamOptions) -> String {
    let mut out = String::new();
    for job in &trace.jobs {
        let line = json!({
            "id": format!("sub-{}", job.id),
            "cmd": "submit",
            "at": job.submit_time,
            "tenant": opts.tenant.clone(),
            "gpu_hours": opts.gpu_hours_per_gpu * job.max_gpus as f64,
            "job": job.to_json(),
        });
        out.push_str(&serde_json::to_string(&line).expect("stream line serialization"));
        out.push('\n');
    }
    if opts.shutdown {
        out.push_str("{\"id\":\"end\",\"cmd\":\"shutdown\"}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceConfig, TraceKind};
    use serde_json::Value;

    #[test]
    fn stream_covers_every_job_in_submit_order() {
        let mut trace = Trace::generate(&TraceConfig::new(TraceKind::Philly, 5));
        trace.jobs.truncate(12);
        let text = trace_to_stream_jsonl(
            &trace,
            &StreamOptions {
                tenant: "acme".to_string(),
                gpu_hours_per_gpu: 2.0,
                shutdown: true,
            },
        );
        let lines: Vec<Value> = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("each line is JSON"))
            .collect();
        assert_eq!(lines.len(), trace.jobs.len() + 1);
        let mut last_at = 0.0;
        for (line, job) in lines.iter().zip(&trace.jobs) {
            assert_eq!(
                line.get("id").and_then(Value::as_str),
                Some(format!("sub-{}", job.id).as_str())
            );
            assert_eq!(line.get("cmd").and_then(Value::as_str), Some("submit"));
            assert_eq!(
                line.get("at").and_then(Value::as_f64),
                Some(job.submit_time)
            );
            assert_eq!(
                line.get("gpu_hours").and_then(Value::as_f64),
                Some(2.0 * job.max_gpus as f64)
            );
            assert!(job.submit_time >= last_at, "stream must be time-ordered");
            last_at = job.submit_time;
            // The embedded job round-trips to the exact spec.
            use serde_json::FromJson;
            let back = crate::JobSpec::from_json(line.get("job").unwrap()).unwrap();
            assert_eq!(back, *job);
        }
        assert_eq!(
            lines.last().unwrap().get("cmd").and_then(Value::as_str),
            Some("shutdown")
        );
        // Without the shutdown marker the stream is submissions only.
        let bare = trace_to_stream_jsonl(
            &trace,
            &StreamOptions {
                shutdown: false,
                ..StreamOptions::default()
            },
        );
        assert_eq!(bare.lines().count(), trace.jobs.len());
    }
}
