/root/repo/target/release/deps/fig_hybrid_parallel-4ffcfb9c9337fc46.d: crates/bench/src/bin/fig_hybrid_parallel.rs

/root/repo/target/release/deps/fig_hybrid_parallel-4ffcfb9c9337fc46: crates/bench/src/bin/fig_hybrid_parallel.rs

crates/bench/src/bin/fig_hybrid_parallel.rs:
