/root/repo/target/release/examples/load_probe-5b0a099c627e8cdf.d: examples/load_probe.rs

/root/repo/target/release/examples/load_probe-5b0a099c627e8cdf: examples/load_probe.rs

examples/load_probe.rs:
