/root/repo/target/release/deps/sia_cli-a652fe751c4283c0.d: src/bin/sia-cli.rs

/root/repo/target/release/deps/sia_cli-a652fe751c4283c0: src/bin/sia-cli.rs

src/bin/sia-cli.rs:
