//! Leveled, timestamped stderr logging for the daemon.
//!
//! The serving loops and the CLI wrapper used ad-hoc `eprintln!` lines;
//! this module replaces them with a tiny leveled logger so operators can
//! turn rejection-by-rejection detail on (`--log-level debug`) or reduce
//! a production daemon to errors only. Lines are
//! `<RFC 3339 UTC> LEVEL message`, one per call, written to stderr.
//! Std-only: the timestamp comes from [`SystemTime`] via a civil-date
//! conversion, no clock crates involved.

use std::fmt;
use std::str::FromStr;
use std::time::{SystemTime, UNIX_EPOCH};

/// Log verbosity, ordered: `Error < Warn < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Unrecoverable or operator-actionable failures only.
    Error,
    /// Suspicious but non-fatal conditions (dropped records, stalls).
    Warn,
    /// Lifecycle events: startup, shutdown, snapshots, listeners.
    Info,
    /// Per-request detail: every rejection, heartbeat, scrape.
    Debug,
}

impl LogLevel {
    /// Uppercase label used in log lines.
    pub fn label(self) -> &'static str {
        match self {
            LogLevel::Error => "ERROR",
            LogLevel::Warn => "WARN",
            LogLevel::Info => "INFO",
            LogLevel::Debug => "DEBUG",
        }
    }
}

impl FromStr for LogLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "error" => Ok(LogLevel::Error),
            "warn" => Ok(LogLevel::Warn),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            other => Err(format!(
                "unknown log level {other:?} (expected error|warn|info|debug)"
            )),
        }
    }
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Stderr logger filtering by [`LogLevel`]. Cheap to clone.
#[derive(Debug, Clone, Copy)]
pub struct Logger {
    level: LogLevel,
}

impl Logger {
    /// A logger emitting everything at or above `level`.
    pub fn new(level: LogLevel) -> Self {
        Logger { level }
    }

    /// The configured verbosity.
    pub fn level(&self) -> LogLevel {
        self.level
    }

    /// True when a message at `level` would be emitted.
    pub fn enabled(&self, level: LogLevel) -> bool {
        level <= self.level
    }

    /// Emits one line at `level` if the filter admits it.
    pub fn log(&self, level: LogLevel, msg: impl AsRef<str>) {
        if self.enabled(level) {
            eprintln!("{} {} {}", utc_timestamp(), level.label(), msg.as_ref());
        }
    }

    /// Logs at [`LogLevel::Error`].
    pub fn error(&self, msg: impl AsRef<str>) {
        self.log(LogLevel::Error, msg);
    }

    /// Logs at [`LogLevel::Warn`].
    pub fn warn(&self, msg: impl AsRef<str>) {
        self.log(LogLevel::Warn, msg);
    }

    /// Logs at [`LogLevel::Info`].
    pub fn info(&self, msg: impl AsRef<str>) {
        self.log(LogLevel::Info, msg);
    }

    /// Logs at [`LogLevel::Debug`].
    pub fn debug(&self, msg: impl AsRef<str>) {
        self.log(LogLevel::Debug, msg);
    }
}

impl Default for Logger {
    fn default() -> Self {
        Logger::new(LogLevel::Info)
    }
}

/// Current wall-clock instant as `YYYY-MM-DDTHH:MM:SS.mmmZ`.
fn utc_timestamp() -> String {
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    format_unix(now.as_secs(), now.subsec_millis())
}

/// Formats Unix seconds + milliseconds as RFC 3339 UTC.
fn format_unix(secs: u64, millis: u32) -> String {
    let days = secs / 86_400;
    let tod = secs % 86_400;
    let (y, m, d) = civil_from_days(days as i64);
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}.{millis:03}Z",
        tod / 3600,
        (tod % 3600) / 60,
        tod % 60,
    )
}

/// Days-since-epoch to (year, month, day), Howard Hinnant's civil
/// algorithm.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(LogLevel::Error < LogLevel::Debug);
        assert_eq!("warn".parse::<LogLevel>().unwrap(), LogLevel::Warn);
        assert!("verbose".parse::<LogLevel>().is_err());
        let l = Logger::new(LogLevel::Warn);
        assert!(l.enabled(LogLevel::Error));
        assert!(l.enabled(LogLevel::Warn));
        assert!(!l.enabled(LogLevel::Info));
        assert!(!l.enabled(LogLevel::Debug));
    }

    #[test]
    fn timestamps_are_rfc3339() {
        // 2023-03-14T01:59:26.535Z
        assert_eq!(format_unix(1_678_759_166, 535), "2023-03-14T01:59:26.535Z");
        // Epoch and a leap-year day.
        assert_eq!(format_unix(0, 0), "1970-01-01T00:00:00.000Z");
        assert_eq!(format_unix(951_782_400, 1), "2000-02-29T00:00:00.001Z");
    }

    #[test]
    fn civil_conversion_matches_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
    }
}
