/root/repo/target/release/deps/fig_ablation-811a5a8bf0ef81eb.d: crates/bench/src/bin/fig_ablation.rs

/root/repo/target/release/deps/fig_ablation-811a5a8bf0ef81eb: crates/bench/src/bin/fig_ablation.rs

crates/bench/src/bin/fig_ablation.rs:
