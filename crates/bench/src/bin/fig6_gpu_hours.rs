//! Figure 6: min-normalized GPU-hours consumed per model under Sia, Pollux
//! and Gavel on Helios-like traces (heterogeneous setting).
//!
//! Expected shape: Sia matches jobs to GPU types (BERT parked on `a100`,
//! DeepSpeech2 preferring `rtx`), consuming the fewest GPU-hours for the
//! models with strong type affinity; Gavel's time sharing rotates jobs
//! across types and inflates its totals.

use std::collections::BTreeMap;

use sia_bench::{model_hours_json, run_one, trace_for, write_json, Policy};
use sia_cluster::ClusterSpec;
use sia_sim::SimConfig;
use sia_workloads::{ModelKind, TraceKind};

fn main() {
    let cluster = ClusterSpec::heterogeneous_64();
    let policies = [Policy::Sia, Policy::Pollux, Policy::GavelTuned];
    let seeds: Vec<u64> = (1..=2).collect();

    let mut per_policy: BTreeMap<String, BTreeMap<ModelKind, f64>> = BTreeMap::new();
    // Also break down Sia's GPU-hours by (model, gpu type) to show matching.
    let mut sia_type_hours: BTreeMap<(ModelKind, String), f64> = BTreeMap::new();

    for p in policies {
        let mut acc: BTreeMap<ModelKind, (f64, usize)> = BTreeMap::new();
        for &seed in &seeds {
            let trace = trace_for(TraceKind::Helios, p, seed, 16);
            let result = run_one(
                p,
                &cluster,
                &trace,
                SimConfig {
                    seed,
                    ..SimConfig::default()
                },
                seed,
            );
            for rec in &result.records {
                let e = acc.entry(rec.model).or_insert((0.0, 0));
                e.0 += rec.gpu_seconds / 3600.0;
                e.1 += 1;
            }
            if p == Policy::Sia {
                // Attribute GPU time by type from the round logs.
                let round = 60.0;
                let names: BTreeMap<_, _> =
                    result.records.iter().map(|r| (r.id, r.model)).collect();
                for r in &result.rounds {
                    for &(job, t, gpus) in &r.allocations {
                        let model = names[&job];
                        *sia_type_hours
                            .entry((model, cluster.kinds()[t.0].name.clone()))
                            .or_default() += gpus as f64 * round / 3600.0;
                    }
                }
            }
        }
        per_policy.insert(
            p.label(),
            acc.into_iter()
                .map(|(m, (tot, n))| (m, tot / n as f64))
                .collect(),
        );
    }

    println!("== Figure 6: avg GPU-hours per job, by model (Helios, hetero) ==");
    print!("{:<14}", "Model");
    for p in per_policy.keys() {
        print!("{p:>12}");
    }
    println!();
    for model in ModelKind::all() {
        if model == ModelKind::Gpt2p8b {
            continue;
        }
        print!("{:<14}", model.name());
        for hours in per_policy.values() {
            print!("{:>12.2}", hours.get(&model).copied().unwrap_or(0.0));
        }
        println!();
    }

    println!("\nSia GPU-hours by (model, type) — matching behaviour:");
    for ((model, ty), hours) in &sia_type_hours {
        println!("  {:<14} {:<6} {:>8.1} h", model.name(), ty, hours);
    }

    let per_policy_json: serde_json::Map<_, _> = per_policy
        .iter()
        .map(|(k, v)| (k.clone(), model_hours_json(v)))
        .collect();
    let payload = serde_json::json!({
        "per_policy": per_policy_json,
        "sia_type_hours": sia_type_hours
            .iter()
            .map(|((m, t), h)| serde_json::json!({"model": m.name(), "type": t, "hours": h}))
            .collect::<Vec<_>>(),
    });
    write_json("fig6_gpu_hours", &payload);
}
