/root/repo/target/release/deps/policy_runtime-d18b3a9c5b04fca4.d: crates/bench/benches/policy_runtime.rs

/root/repo/target/release/deps/policy_runtime-d18b3a9c5b04fca4: crates/bench/benches/policy_runtime.rs

crates/bench/benches/policy_runtime.rs:
