//! Branch-and-bound mixed-integer linear programming.
//!
//! Nodes carry tightened variable bounds on integer variables; each node is
//! bounded by its LP relaxation (solved with [`crate::simplex`]) and branched
//! on the most-fractional integer variable. A best-first queue (ordered by
//! relaxation bound) keeps the search focused, and incumbents prune the tree.
//!
//! The Sia scheduling ILP is an assignment problem with a handful of capacity
//! rows; its relaxation is usually integral or nearly so, so the tree stays
//! tiny in practice. The solver nevertheless handles general bounded MILPs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::time::{Duration, Instant};

use crate::error::SolverError;
use crate::problem::{Problem, Sense, Solution};
use crate::simplex::{self, Basis};

/// Tolerance within which a value counts as integral.
const INT_TOL: f64 = 1e-6;
/// Bound-vs-incumbent pruning tolerance.
const BOUND_TOL: f64 = 1e-9;

/// Options controlling the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct MilpOptions {
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Optional time budget for the search. `None` (the default) means the
    /// search is bounded by `max_nodes` alone. A budget is converted **once**
    /// per solve into a node budget via [`deterministic_node_budget`] — a
    /// pure cost model of the problem's dimensions — rather than read from a
    /// wall clock at every node, so budget-limited solves stay byte-identical
    /// across machines, load conditions, and reruns.
    pub time_limit: Option<Duration>,
    /// Absolute optimality gap at which the search may stop early.
    pub gap_tolerance: f64,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            max_nodes: 100_000,
            time_limit: None,
            gap_tolerance: 1e-9,
        }
    }
}

/// Warm-start information carried over from a previous, related solve.
///
/// The `hint` is a candidate point for the *current* problem (indexed by
/// variable id). If it is integer-feasible it seeds the incumbent before the
/// search starts, so every node whose relaxation bound cannot beat it is
/// pruned immediately — for round-over-round scheduling, where the previous
/// allocation is usually still near-optimal, this collapses most of the tree.
/// An infeasible or ill-sized hint is silently ignored.
#[derive(Debug, Clone, Default)]
pub struct MilpWarmStart {
    /// Candidate solution values, one per variable of the problem.
    pub hint: Vec<f64>,
}

/// Solution quality reported by the MILP solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// The returned point is proven optimal.
    Optimal,
    /// A feasible point was found, but a node/time limit stopped the proof.
    Feasible,
}

/// Result of a branch-and-bound solve.
#[derive(Debug, Clone)]
pub struct MilpSolution {
    /// The best integer-feasible point found.
    pub solution: Solution,
    /// Whether optimality was proven.
    pub status: MilpStatus,
    /// Number of branch-and-bound nodes explored.
    pub nodes_explored: usize,
    /// Best remaining relaxation bound (in the problem's own sense).
    pub best_bound: f64,
    /// Simplex pivots summed over every successfully solved node relaxation.
    pub total_pivots: usize,
    /// Objective of the root LP relaxation, if the root node was feasible.
    pub root_lp_objective: Option<f64>,
    /// Objective of the accepted warm-start incumbent seed, if any
    /// (in the problem's own sense).
    pub incumbent_seed_objective: Option<f64>,
    /// Nodes discarded without branching because their relaxation bound
    /// (inherited or freshly solved) could not beat the incumbent.
    pub nodes_pruned: usize,
    /// Node count at which the first incumbent appeared: `Some(0)` when the
    /// warm-start seed was accepted before the search began, `Some(n)` when
    /// the n-th explored node produced it, `None` if the solve is infeasible.
    /// Deterministic, unlike a wall-clock time-to-first-incumbent.
    pub first_incumbent_node: Option<usize>,
    /// Wall-clock seconds from search start to the first incumbent (0.0 for
    /// an accepted seed or a pure-LP solve). Host-dependent: consumers that
    /// promise determinism must zero this, as the flight trace does for
    /// `policy_runtime_s`.
    pub first_incumbent_s: Option<f64>,
    /// Nodes whose LP relaxation was solved from the parent's basis
    /// (phase 1 skipped) rather than from a cold slack start.
    pub warm_nodes: usize,
    /// Estimated simplex pivots avoided by basis reuse: for each warm node,
    /// the root relaxation's pivot count minus the node's actual pivots
    /// (clamped at zero). The root solve is the best available proxy for
    /// what a cold re-solve of the node would have cost.
    pub warm_pivots_saved: usize,
}

/// A pending branch-and-bound node.
struct Node {
    /// `(var index, lower, upper)` overrides relative to the root problem.
    bound_overrides: Vec<(usize, f64, f64)>,
    /// Relaxation bound inherited from the parent (maximization form).
    parent_bound: f64,
    depth: usize,
    /// Optimal basis of the parent node's relaxation, shared between both
    /// children. The child LP differs from the parent's only in one variable
    /// bound, so this basis is usually a few pivots from the child optimum.
    parent_basis: Option<Rc<Basis>>,
}

/// Heap ordering: best (largest) parent bound first, then shallow depth.
struct QueuedNode(Node);

impl PartialEq for QueuedNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.parent_bound == other.0.parent_bound && self.0.depth == other.0.depth
    }
}
impl Eq for QueuedNode {}
impl PartialOrd for QueuedNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedNode {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .parent_bound
            .partial_cmp(&other.0.parent_bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.0.depth.cmp(&self.0.depth))
    }
}

/// Converts a time budget into a branch-and-bound node budget using a pure
/// cost model of the problem's dimensions — no wall-clock reads.
///
/// Each node solves one LP relaxation with the dense revised simplex: with
/// `m` rows and `n` columns, a warm-started node re-solve costs on the order
/// of `m^2 * (m + n)` floating-point operations (a few pivots, each touching
/// the `m x m` basis inverse and pricing `n` columns). Dividing an assumed
/// throughput by that per-node cost yields a node budget that depends only on
/// `(m, n, time_limit)`, so two solves of equally-shaped problems under the
/// same budget explore identical trees on any host. The throughput constant
/// is deliberately conservative (slow-host order of magnitude): the budget
/// exists to bound tail latency, and a too-generous node budget would let a
/// slow machine blow through the wall-clock intent.
pub fn deterministic_node_budget(p: &Problem, time_limit: Duration) -> usize {
    // Conservative effective throughput for the dense simplex kernel.
    const FLOPS_PER_SEC: f64 = 2.0e8;
    let m = p.num_constraints().max(1) as f64;
    let n = p.num_vars().max(1) as f64;
    let node_cost_s = (m * m * (m + n) / FLOPS_PER_SEC).max(1e-7);
    let budget = (time_limit.as_secs_f64() / node_cost_s).floor();
    if budget.is_finite() && budget >= 1.0 {
        (budget as u64).min(usize::MAX as u64) as usize
    } else {
        1
    }
}

/// Solves `p` respecting its integrality marks.
///
/// Returns the best integer point found together with a status flag. If no
/// integer-feasible point exists, returns [`SolverError::Infeasible`].
pub fn solve(p: &Problem, opts: &MilpOptions) -> Result<MilpSolution, SolverError> {
    solve_warm(p, opts, None)
}

/// Like [`solve`], optionally seeded with a [`MilpWarmStart`].
///
/// Warm starts never change *whether* a solution is found or its proven
/// status — they only reduce the work: the seed prunes nodes that cannot
/// beat it, and each node's relaxation reuses its parent's optimal basis
/// instead of a cold two-phase start. Telemetry: `solver.milp.warm_seeds`
/// counts accepted incumbent seeds.
pub fn solve_warm(
    p: &Problem,
    opts: &MilpOptions,
    warm: Option<&MilpWarmStart>,
) -> Result<MilpSolution, SolverError> {
    let int_vars = p.integer_vars();
    if int_vars.is_empty() {
        let solution = p.solve_lp()?;
        let best_bound = solution.objective;
        record_outcome(1, solution.pivots, "optimal");
        return Ok(MilpSolution {
            total_pivots: solution.pivots,
            root_lp_objective: Some(solution.objective),
            solution,
            status: MilpStatus::Optimal,
            nodes_explored: 1,
            best_bound,
            nodes_pruned: 0,
            first_incumbent_node: Some(0),
            first_incumbent_s: Some(0.0),
            incumbent_seed_objective: None,
            warm_nodes: 0,
            warm_pivots_saved: 0,
        });
    }

    // Work in maximization form internally.
    let max_sign = match p.sense() {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };

    let start = Instant::now();
    let mut heap = BinaryHeap::new();
    heap.push(QueuedNode(Node {
        bound_overrides: Vec::new(),
        parent_bound: f64::INFINITY,
        depth: 0,
        parent_basis: None,
    }));

    let mut incumbent: Option<Solution> = None;
    let mut incumbent_obj = f64::NEG_INFINITY; // maximization form
    let mut incumbent_seed_objective = None;
    let mut first_incumbent_node = None;
    let mut first_incumbent_s = None;

    // Seed the incumbent from the warm-start hint when it is a valid
    // integer-feasible point of *this* problem (bound changes since the hint
    // was produced — e.g. a new forced assignment — are caught by
    // `max_violation`, which also checks variable bounds).
    if let Some(w) = warm {
        if w.hint.len() == p.num_vars() {
            let mut values = w.hint.clone();
            for &v in &int_vars {
                values[v] = values[v].round();
            }
            if p.max_violation(&values) <= INT_TOL {
                let objective = p.eval_objective(&values);
                incumbent_obj = max_sign * objective;
                incumbent = Some(Solution {
                    objective,
                    values,
                    pivots: 0,
                });
                incumbent_seed_objective = Some(objective);
                first_incumbent_node = Some(0);
                first_incumbent_s = Some(0.0);
                sia_telemetry::counter("solver.milp.warm_seeds").incr();
            }
        }
    }

    // Resolve the effective node budget once per solve: the deterministic
    // conversion of any time budget, capped by the explicit node cap. No
    // wall clock is consulted inside the search loop.
    let node_limit = match opts.time_limit {
        Some(tl) => opts.max_nodes.min(deterministic_node_budget(p, tl)),
        None => opts.max_nodes,
    };

    let mut nodes = 0usize;
    let mut nodes_pruned = 0usize;
    let mut root_infeasible = true;
    let mut limit_hit = false;
    let mut total_pivots = 0usize;
    let mut root_lp_objective = None;
    let mut root_pivots = 0usize;
    let mut warm_nodes = 0usize;
    let mut warm_pivots_saved = 0usize;

    let mut scratch = p.clone();

    while let Some(QueuedNode(node)) = heap.pop() {
        if node.parent_bound <= incumbent_obj + BOUND_TOL {
            nodes_pruned += 1;
            continue; // pruned by a newer incumbent
        }
        if nodes >= node_limit {
            limit_hit = true;
            break;
        }
        nodes += 1;

        // Apply node bounds onto the scratch problem.
        for &(v, lo, up) in &node.bound_overrides {
            scratch.set_bounds(crate::problem::VarId(v), lo, up);
        }
        let lp = simplex::solve_with_warm_start(
            &scratch,
            simplex::default_iteration_limit(&scratch),
            node.parent_basis.as_deref(),
        );
        // Restore root bounds.
        for &(v, _, _) in &node.bound_overrides {
            let vid = crate::problem::VarId(v);
            scratch.set_bounds(vid, p.lower_bounds()[v], p.upper_bounds()[v]);
        }

        let warm_out = match lp {
            Ok(s) => s,
            Err(SolverError::Infeasible) => continue,
            Err(e) => return Err(e),
        };
        let lp = warm_out.solution;
        let node_basis = warm_out.basis.map(Rc::new);
        total_pivots += lp.pivots;
        if node.depth == 0 {
            root_lp_objective = Some(lp.objective);
            root_pivots = lp.pivots;
        }
        if warm_out.warm_used {
            warm_nodes += 1;
            warm_pivots_saved += root_pivots.saturating_sub(lp.pivots);
        }
        root_infeasible = false;
        let node_bound = max_sign * lp.objective;
        if node_bound <= incumbent_obj + BOUND_TOL {
            nodes_pruned += 1;
            continue;
        }

        // Find the most-fractional integer variable.
        let mut branch_var: Option<usize> = None;
        let mut best_frac_dist = INT_TOL;
        for &v in &int_vars {
            let x = lp.values[v];
            let frac = x - x.floor();
            let dist = frac.min(1.0 - frac);
            if dist > best_frac_dist {
                best_frac_dist = dist;
                branch_var = Some(v);
            }
        }

        match branch_var {
            None => {
                // Integral: round off tolerance noise and take as incumbent.
                let mut values = lp.values.clone();
                for &v in &int_vars {
                    values[v] = values[v].round();
                }
                let objective = p.eval_objective(&values);
                let obj_max = max_sign * objective;
                if obj_max > incumbent_obj && p.max_violation(&values) <= 1e-6 {
                    incumbent_obj = obj_max;
                    incumbent = Some(Solution {
                        objective,
                        values,
                        pivots: lp.pivots,
                    });
                    if first_incumbent_node.is_none() {
                        first_incumbent_node = Some(nodes);
                        first_incumbent_s = Some(start.elapsed().as_secs_f64());
                    }
                }
            }
            Some(v) => {
                let x = lp.values[v];
                let floor = x.floor();
                let (root_lo, root_up) = (p.lower_bounds()[v], p.upper_bounds()[v]);
                // Down branch: x <= floor.
                if floor >= root_lo - INT_TOL {
                    let mut bo = node.bound_overrides.clone();
                    merge_override(&mut bo, v, root_lo, floor);
                    heap.push(QueuedNode(Node {
                        bound_overrides: bo,
                        parent_bound: node_bound,
                        depth: node.depth + 1,
                        parent_basis: node_basis.clone(),
                    }));
                }
                // Up branch: x >= ceil.
                let ceil = floor + 1.0;
                if ceil <= root_up + INT_TOL {
                    let mut bo = node.bound_overrides.clone();
                    merge_override(&mut bo, v, ceil, root_up);
                    heap.push(QueuedNode(Node {
                        bound_overrides: bo,
                        parent_bound: node_bound,
                        depth: node.depth + 1,
                        parent_basis: node_basis,
                    }));
                }
            }
        }
    }

    let best_remaining = heap
        .peek()
        .map(|q| q.0.parent_bound)
        .unwrap_or(f64::NEG_INFINITY);

    match incumbent {
        Some(solution) => {
            let proven = !limit_hit || best_remaining <= incumbent_obj + opts.gap_tolerance;
            let status = if proven {
                MilpStatus::Optimal
            } else {
                MilpStatus::Feasible
            };
            record_outcome(
                nodes,
                total_pivots,
                if proven { "optimal" } else { "feasible" },
            );
            let best_bound = max_sign * incumbent_obj.max(best_remaining);
            Ok(MilpSolution {
                solution,
                status,
                nodes_explored: nodes,
                best_bound,
                nodes_pruned,
                first_incumbent_node,
                first_incumbent_s,
                total_pivots,
                root_lp_objective,
                incumbent_seed_objective,
                warm_nodes,
                warm_pivots_saved,
            })
        }
        None => {
            if root_infeasible && !limit_hit {
                record_outcome(nodes, total_pivots, "infeasible");
                Err(SolverError::Infeasible)
            } else if limit_hit {
                record_outcome(nodes, total_pivots, "limit_hit");
                Err(SolverError::IterationLimit(node_limit))
            } else {
                record_outcome(nodes, total_pivots, "infeasible");
                Err(SolverError::Infeasible)
            }
        }
    }
}

/// Bumps the `solver.milp.*` counters once per solve (aggregated, so the
/// branch-and-bound loop itself stays telemetry-free).
fn record_outcome(nodes: usize, pivots: usize, outcome: &str) {
    sia_telemetry::counter("solver.milp.solves").incr();
    sia_telemetry::counter("solver.milp.nodes").add(nodes as u64);
    sia_telemetry::counter("solver.milp.pivots").add(pivots as u64);
    sia_telemetry::counter(&format!("solver.milp.{outcome}")).incr();
}

/// Tightens (or inserts) a bound override for variable `v`.
fn merge_override(overrides: &mut Vec<(usize, f64, f64)>, v: usize, lo: f64, up: f64) {
    for o in overrides.iter_mut() {
        if o.0 == v {
            o.1 = o.1.max(lo);
            o.2 = o.2.min(up);
            return;
        }
    }
    overrides.push((v, lo, up));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn knapsack_small() {
        // maximize 10a + 13b + 7c  s.t.  3a + 4b + 2c <= 6, binary.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary_var(10.0);
        let b = p.add_binary_var(13.0);
        let c = p.add_binary_var(7.0);
        p.add_le(&[(a, 3.0), (b, 4.0), (c, 2.0)], 6.0);
        let s = p.solve_milp().unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        assert_close(s.solution.objective, 20.0); // b + c
        assert_close(s.solution.value(b), 1.0);
        assert_close(s.solution.value(c), 1.0);
    }

    #[test]
    fn lp_relaxation_fractional_but_milp_integral() {
        // Fractional relaxation: x = 2.5 optimal for LP; MILP forces x <= 2.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, 10.0);
        p.set_integer(x);
        p.add_le(&[(x, 2.0)], 5.0);
        let s = p.solve_milp().unwrap();
        assert_close(s.solution.value(x), 2.0);
    }

    #[test]
    fn assignment_with_capacity() {
        // Two jobs, two configs each (1 GPU or 4 GPUs), capacity 5 GPUs;
        // utilities make one job take 4 and the other 1.
        let mut p = Problem::new(Sense::Maximize);
        let a1 = p.add_binary_var(1.0);
        let a4 = p.add_binary_var(3.0);
        let b1 = p.add_binary_var(1.0);
        let b4 = p.add_binary_var(2.0);
        p.add_le(&[(a1, 1.0), (a4, 1.0)], 1.0);
        p.add_le(&[(b1, 1.0), (b4, 1.0)], 1.0);
        p.add_le(&[(a1, 1.0), (a4, 4.0), (b1, 1.0), (b4, 4.0)], 5.0);
        let s = p.solve_milp().unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        assert_close(s.solution.objective, 4.0);
        assert_close(s.solution.value(a4), 1.0);
        assert_close(s.solution.value(b1), 1.0);
    }

    #[test]
    fn infeasible_milp() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_binary_var(1.0);
        let y = p.add_binary_var(1.0);
        p.add_ge(&[(x, 1.0), (y, 1.0)], 3.0);
        assert_eq!(p.solve_milp().unwrap_err(), SolverError::Infeasible);
    }

    #[test]
    fn minimization_sense() {
        // minimize 5x + 4y  s.t.  x + y >= 3, x,y integer in [0,5].
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(5.0, 0.0, 5.0);
        let y = p.add_var(4.0, 0.0, 5.0);
        p.set_integer(x);
        p.set_integer(y);
        p.add_ge(&[(x, 1.0), (y, 1.0)], 3.0);
        let s = p.solve_milp().unwrap();
        assert_close(s.solution.objective, 12.0);
        assert_close(s.solution.value(y), 3.0);
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // maximize 2x + y with x integer, x + y <= 3.5, y <= 1.2.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(2.0, 0.0, 10.0);
        p.set_integer(x);
        let y = p.add_var(1.0, 0.0, 1.2);
        p.add_le(&[(x, 1.0), (y, 1.0)], 3.5);
        let s = p.solve_milp().unwrap();
        assert_close(s.solution.value(x), 3.0);
        assert_close(s.solution.value(y), 0.5);
        assert_close(s.solution.objective, 6.5);
    }

    #[test]
    fn pure_lp_passthrough() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, 2.0);
        p.add_le(&[(x, 1.0)], 5.0);
        let s = p.solve_milp().unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        assert_close(s.solution.objective, 2.0);
    }

    #[test]
    fn milp_bound_never_below_feasible_point() {
        // Randomized-ish structured instance; check optimum >= greedy point.
        let mut p = Problem::new(Sense::Maximize);
        let mut vars = Vec::new();
        for i in 0..8 {
            let v = p.add_binary_var(1.0 + (i as f64 * 0.37).sin().abs());
            vars.push(v);
        }
        let weights: Vec<f64> = (0..8).map(|i| 1.0 + (i % 3) as f64).collect();
        let row: Vec<_> = vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect();
        p.add_le(&row, 7.0);
        let s = p.solve_milp().unwrap();
        // Greedy: take items until capacity.
        let mut cap = 7.0;
        let mut greedy = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            if w <= cap {
                cap -= w;
                greedy += p.objective()[vars[i].index()];
            }
        }
        assert!(s.solution.objective >= greedy - 1e-9);
    }

    #[test]
    fn warm_seed_matches_cold_solution() {
        // Re-solving with the previous optimum as a hint must return the
        // same objective, seed the incumbent, and not explore more nodes.
        let mut p = Problem::new(Sense::Maximize);
        let mut row = Vec::new();
        for i in 0..10 {
            let v = p.add_binary_var(1.0 + (i as f64 * 0.73).sin().abs());
            row.push((v, 1.0 + (i % 3) as f64));
        }
        p.add_le(&row, 9.5);
        let opts = MilpOptions::default();
        let cold = solve(&p, &opts).unwrap();
        let warm = solve_warm(
            &p,
            &opts,
            Some(&MilpWarmStart {
                hint: cold.solution.values.clone(),
            }),
        )
        .unwrap();
        assert_close(warm.solution.objective, cold.solution.objective);
        assert_eq!(warm.status, MilpStatus::Optimal);
        let seed = warm.incumbent_seed_objective.expect("seed accepted");
        assert_close(seed, cold.solution.objective);
        assert!(warm.nodes_explored <= cold.nodes_explored);
        assert!(warm.total_pivots <= cold.total_pivots);
    }

    #[test]
    fn search_accounting_fields_are_populated() {
        // A fractional-relaxation instance that forces real branching, so
        // the incumbent appears at a concrete node and pruning fires.
        let mut p = Problem::new(Sense::Maximize);
        let mut row = Vec::new();
        for i in 0..10 {
            let v = p.add_binary_var(1.0 + (i as f64 * 0.73).sin().abs());
            row.push((v, 1.0 + (i % 3) as f64));
        }
        p.add_le(&row, 9.5);
        let cold = solve(&p, &MilpOptions::default()).unwrap();
        let first = cold.first_incumbent_node.expect("incumbent exists");
        assert!(first >= 1, "cold solve finds its incumbent at a node");
        assert!(first <= cold.nodes_explored);
        // Seeding with the optimum marks the incumbent as pre-search.
        let warm = solve_warm(
            &p,
            &MilpOptions::default(),
            Some(&MilpWarmStart {
                hint: cold.solution.values.clone(),
            }),
        )
        .unwrap();
        assert_eq!(warm.first_incumbent_node, Some(0));
        assert!(
            warm.nodes_pruned >= 1,
            "an optimal seed must prune at least the root's children"
        );
    }

    #[test]
    fn infeasible_warm_hint_is_ignored() {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary_var(2.0);
        let b = p.add_binary_var(3.0);
        p.add_le(&[(a, 1.0), (b, 1.0)], 1.0);
        // Hint violates the SOS row — must be rejected, solve still optimal.
        let warm = MilpWarmStart {
            hint: vec![1.0, 1.0],
        };
        let s = solve_warm(&p, &MilpOptions::default(), Some(&warm)).unwrap();
        assert!(s.incumbent_seed_objective.is_none());
        assert_close(s.solution.objective, 3.0);
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        let mut p = Problem::new(Sense::Maximize);
        let mut row = Vec::new();
        for i in 0..12 {
            let v = p.add_binary_var(1.0 + (i as f64) * 0.01);
            row.push((v, 1.0 + (i % 4) as f64 * 0.5));
        }
        p.add_le(&row, 6.3);
        let opts = MilpOptions {
            max_nodes: 3,
            ..Default::default()
        };
        // With such a tiny node budget we either get a feasible point or a
        // limit error, never a panic or a wrong "optimal" claim of value 0.
        match p.solve_milp_with(&opts) {
            Ok(s) => assert!(s.solution.objective > 0.0),
            Err(SolverError::IterationLimit(_)) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn node_budget_is_a_pure_function_of_dimensions() {
        let mut p = Problem::new(Sense::Maximize);
        let mut row = Vec::new();
        for i in 0..20 {
            let v = p.add_binary_var(1.0 + i as f64 * 0.1);
            row.push((v, 1.0));
        }
        p.add_le(&row, 10.0);
        let tl = Duration::from_millis(50);
        let a = deterministic_node_budget(&p, tl);
        let b = deterministic_node_budget(&p, tl);
        assert_eq!(a, b);
        assert!(a >= 1);
        // More time, never fewer nodes; tiny budget clamps to one node.
        assert!(deterministic_node_budget(&p, Duration::from_secs(10)) >= a);
        assert_eq!(deterministic_node_budget(&p, Duration::from_nanos(1)), 1);
    }

    #[test]
    fn time_limit_is_deterministic_across_repeated_solves() {
        // A fractional instance forced through real branching with a budget
        // tight enough that the node limit binds: every rerun must explore
        // the exact same tree and return the exact same point, because the
        // budget is converted to nodes once, not read from a wall clock.
        let build = || {
            let mut p = Problem::new(Sense::Maximize);
            let mut row = Vec::new();
            for i in 0..14 {
                let v = p.add_binary_var(1.0 + (i as f64) * 0.013);
                row.push((v, 1.0 + (i % 5) as f64 * 0.4));
            }
            p.add_le(&row, 7.1);
            p
        };
        let opts = MilpOptions {
            max_nodes: 100_000,
            time_limit: Some(Duration::from_micros(30)),
            gap_tolerance: 1e-9,
        };
        let p = build();
        let budget = deterministic_node_budget(&p, Duration::from_micros(30));
        assert!(budget < 100_000, "budget must bind for this test");
        let a = solve(&p, &opts).unwrap();
        for _ in 0..3 {
            let b = solve(&build(), &opts).unwrap();
            assert_eq!(a.nodes_explored, b.nodes_explored);
            assert_eq!(a.solution.values, b.solution.values);
            assert_eq!(a.best_bound, b.best_bound);
            assert_eq!(a.status, b.status);
        }
    }
}
