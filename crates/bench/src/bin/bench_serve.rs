//! Sustained-throughput benchmark for the `sia-serve` daemon.
//!
//! Streams a large burst of `submit` requests (plus interleaved cancels
//! and queries) through an in-process [`Server`] in replay pacing and
//! measures end-to-end admission latency — line parse, schema stage,
//! quota stage, audit record, queue insert — per request. Reports
//! jobs/sec and p50/p99 latency to `results/BENCH_serve.json` with the
//! acceptance thresholds (>= 10k submissions/sec, p99 < 10 ms) evaluated
//! in-place.
//!
//! Each repetition also replays the identical workload while a live
//! stats listener is scraped over HTTP at a Prometheus-like cadence,
//! measuring per-scrape latency and the throughput cost of
//! observability. The median of the paired (scraped - quiet) wall-time
//! differences must stay within 1% of the quiet run, or the benchmark
//! fails.
//!
//! Requests arrive in nondecreasing virtual-time order inside a single
//! scheduling round, as `sia-cli trace-to-stream` emits them, so the
//! numbers isolate the admission pipeline rather than the MILP solve.

use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sia_bench::write_json;
use sia_cluster::ClusterSpec;
use sia_core::SiaPolicy;
use sia_serve::{spawn_tcp, ServeOptions, Server};
use sia_sim::{EngineKind, SimConfig};
use sia_workloads::{Trace, TraceConfig, TraceKind};

use serde_json::{json, ToJson, Value};

const SUBMISSIONS: usize = 100_000;
const CANCEL_EVERY: usize = 40;
const QUERY_EVERY: usize = 97;
const MIN_JOBS_PER_SEC: f64 = 10_000.0;
const MAX_P99_S: f64 = 0.010;
/// Wall-time repetitions per mode; the best run of each is compared.
const REPS: usize = 7;
/// Scrape cadence while the daemon is under load (Prometheus defaults to
/// 15 s; this is 60x more aggressive and must still cost < 1%). On a
/// single-core host every scrape's render comes straight out of the
/// serving thread's wall time, so the cadence bounds the overhead floor.
const SCRAPE_INTERVAL: Duration = Duration::from_millis(250);
/// Maximum throughput cost of scraping, percent of the quiet run.
const MAX_SCRAPE_OVERHEAD_PCT: f64 = 1.0;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn build_lines() -> Vec<String> {
    // One template trace supplies realistic model/size mixes; ids and
    // submit times are reassigned so all requests land inside one round.
    let template = Trace::generate(&TraceConfig::new(TraceKind::Philly, 11).with_max_gpus_cap(16));
    let round_s = 60.0;
    let mut lines = Vec::with_capacity(SUBMISSIONS + SUBMISSIONS / CANCEL_EVERY);
    for i in 0..SUBMISSIONS {
        let mut job = template.jobs[i % template.jobs.len()].clone();
        job.id = sia_cluster::JobId(i as u64);
        job.name = format!("bench-{i}");
        job.submit_time = round_s * 0.9 * (i as f64) / (SUBMISSIONS as f64);
        let tenant = format!("tenant-{}", i % 4);
        let line = json!({
            "id": format!("r{i}"),
            "cmd": "submit",
            "at": job.submit_time,
            "tenant": tenant,
            "gpu_hours": 1.0,
            "job": job.to_json(),
        });
        lines.push(serde_json::to_string(&line).expect("request line"));
        if i % CANCEL_EVERY == CANCEL_EVERY - 1 {
            lines.push(format!(
                r#"{{"id":"c{i}","cmd":"cancel","at":{},"job":{i}}}"#,
                job.submit_time
            ));
        }
        if i % QUERY_EVERY == QUERY_EVERY - 1 {
            lines.push(format!(
                r#"{{"id":"q{i}","cmd":"query","at":{}}}"#,
                job.submit_time
            ));
        }
    }
    lines
}

fn fresh_server() -> Server {
    Server::new(
        ClusterSpec::heterogeneous_64(),
        SimConfig {
            engine: EngineKind::Round,
            seed: 11,
            ..SimConfig::default()
        },
        Box::new(SiaPolicy::default()),
        &ServeOptions {
            default_quota: Some(1e9),
            quotas: Vec::new(),
            max_pending: None,
            ..ServeOptions::default()
        },
    )
}

/// One full replay of `lines` through a fresh server. With `scraped`,
/// a side thread hits the server's TCP stats listener for the whole run;
/// its per-scrape latencies come back alongside the request latencies.
fn run_once(lines: &[String], scraped: bool) -> (f64, Vec<f64>, Vec<f64>) {
    let mut server = fresh_server();

    let stop = Arc::new(AtomicBool::new(false));
    let (handle, scraper) = if scraped {
        let handle = spawn_tcp("127.0.0.1:0", server.observe()).expect("bind stats listener");
        let addr = handle.endpoint.clone();
        let flag = Arc::clone(&stop);
        let scraper = std::thread::spawn(move || {
            let mut lats = Vec::new();
            while !flag.load(Ordering::Relaxed) {
                let t0 = Instant::now();
                if let Ok(mut conn) = std::net::TcpStream::connect(&addr) {
                    let _ = write!(conn, "GET /metrics HTTP/1.0\r\n\r\n");
                    let mut body = String::new();
                    let _ = conn.read_to_string(&mut body);
                    assert!(body.contains("sia_serve_uptime_seconds"), "bad scrape");
                }
                lats.push(t0.elapsed().as_secs_f64());
                std::thread::sleep(SCRAPE_INTERVAL);
            }
            lats
        });
        (Some(handle), Some(scraper))
    } else {
        (None, None)
    };

    let mut latencies = Vec::with_capacity(lines.len());
    let wall_start = Instant::now();
    for line in lines {
        let t0 = Instant::now();
        let out = server.handle(line);
        latencies.push(t0.elapsed().as_secs_f64());
        debug_assert!(out.iter().all(|v| v.get("ok") != Some(&Value::Bool(false))));
    }
    let wall_s = wall_start.elapsed().as_secs_f64();

    stop.store(true, Ordering::Relaxed);
    let scrape_lats = scraper.map(|t| t.join().unwrap()).unwrap_or_default();
    if let Some(h) = handle {
        h.stop();
    }
    (wall_s, latencies, scrape_lats)
}

fn main() {
    let lines = build_lines();
    let requests = lines.len();

    // Quiet and scraped reps run as back-to-back pairs so slow drift in
    // background load (CPU frequency, page cache, co-tenants) hits both
    // modes alike. The scrape overhead is the MEDIAN of the per-pair
    // (scraped - quiet) differences: pairing cancels the drift and the
    // median discards the occasional one-sided scheduler spike that a
    // best-of-N wall-clock comparison cannot tell apart from real cost.
    let mut best_quiet = f64::INFINITY;
    let mut latencies = Vec::new();
    let mut best_scraped = f64::INFINITY;
    let mut scrape_lats = Vec::new();
    let mut pair_diffs = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let (quiet_s, lats, _) = run_once(&lines, false);
        if quiet_s < best_quiet {
            best_quiet = quiet_s;
            latencies = lats;
        }
        let (scraped_s, _, slats) = run_once(&lines, true);
        if scraped_s < best_scraped {
            best_scraped = scraped_s;
            scrape_lats = slats;
        }
        pair_diffs.push(scraped_s - quiet_s);
    }
    pair_diffs.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
    let median_diff_s = pair_diffs[pair_diffs.len() / 2];

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    scrape_lats.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let jobs_per_sec = requests as f64 / best_quiet;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let max = *latencies.last().unwrap_or(&0.0);
    let scrape_p50 = percentile(&scrape_lats, 0.50);
    let scrape_p99 = percentile(&scrape_lats, 0.99);
    let overhead_pct = (median_diff_s / best_quiet).max(0.0) * 100.0;
    let pass = jobs_per_sec >= MIN_JOBS_PER_SEC
        && p99 < MAX_P99_S
        && overhead_pct < MAX_SCRAPE_OVERHEAD_PCT
        && !scrape_lats.is_empty();

    println!(
        "serve throughput: {requests} requests ({SUBMISSIONS} submissions) in {best_quiet:.3} s \
         = {jobs_per_sec:.0} req/s (best of {REPS})"
    );
    println!(
        "admission latency: p50 {:.1} us, p99 {:.1} us, max {:.1} us",
        p50 * 1e6,
        p99 * 1e6,
        max * 1e6
    );
    println!(
        "scraped run: {best_scraped:.3} s ({overhead_pct:.2}% overhead, median of {REPS} \
         paired diffs, {} scrapes, scrape p50 {:.1} us, p99 {:.1} us)",
        scrape_lats.len(),
        scrape_p50 * 1e6,
        scrape_p99 * 1e6,
    );
    println!(
        "thresholds: >= {MIN_JOBS_PER_SEC:.0} req/s, p99 < {:.0} ms, \
         scrape overhead < {MAX_SCRAPE_OVERHEAD_PCT}% -> {}",
        MAX_P99_S * 1e3,
        if pass { "PASS" } else { "FAIL" }
    );

    write_json(
        "BENCH_serve",
        &json!({
            "submissions": SUBMISSIONS as u64,
            "requests": requests as u64,
            "wall_s": best_quiet,
            "jobs_per_sec": jobs_per_sec,
            "admit_latency_p50_s": p50,
            "admit_latency_p99_s": p99,
            "admit_latency_max_s": max,
            "scraped_wall_s": best_scraped,
            "scrape_overhead_pct": overhead_pct,
            "scrape_overhead_median_diff_s": median_diff_s,
            "scrape_count": scrape_lats.len() as u64,
            "scrape_latency_p50_s": scrape_p50,
            "scrape_latency_p99_s": scrape_p99,
            "min_jobs_per_sec_threshold": MIN_JOBS_PER_SEC,
            "max_p99_latency_s_threshold": MAX_P99_S,
            "max_scrape_overhead_pct_threshold": MAX_SCRAPE_OVERHEAD_PCT,
            "pass": pass,
        }),
    );
    if !pass {
        std::process::exit(1);
    }
}
