//! End-to-end tests of the sia-serve observability plane through the real
//! CLI binary: the `metrics`/`health` JSONL commands, heartbeats, the
//! read-only stats listener, `sia-cli top`, and the hard parity contract —
//! observability must never perturb the canonical flight/audit streams.

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};

use serde_json::Value;
use sia::telemetry::registry::parse_exposition;
use sia::workloads::{trace_to_stream_jsonl, StreamOptions, Trace, TraceConfig, TraceKind};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sia-cli"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sia_obs_e2e_{}_{name}", std::process::id()))
}

fn small_trace(n: usize) -> Trace {
    let mut trace = Trace::generate(&TraceConfig::new(TraceKind::Philly, 5).with_max_gpus_cap(16));
    trace.jobs.truncate(n);
    for j in &mut trace.jobs {
        j.work_target *= 0.1;
    }
    trace
}

/// Runs `sia-cli serve` with `lines` on stdin, returns (status, stdout).
fn serve_with_input(args: &[&str], lines: &str) -> (std::process::ExitStatus, String) {
    let mut child = cli()
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn sia-cli serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(lines.as_bytes())
        .expect("write stream");
    let out = child.wait_with_output().expect("serve run");
    (out.status, String::from_utf8_lossy(&out.stdout).to_string())
}

/// Finds the response line carrying request id `id`.
fn response_with_id(stdout: &str, id: &str) -> Value {
    let needle = format!("\"id\":\"{id}\"");
    let line = stdout
        .lines()
        .find(|l| l.contains(&needle))
        .unwrap_or_else(|| panic!("no response with id {id}: {stdout}"));
    serde_json::from_str(line).expect("valid response JSON")
}

#[test]
fn metrics_command_reconciles_with_query_stats_and_ledger() {
    let trace = small_trace(10);
    let stream = trace_to_stream_jsonl(
        &trace,
        &StreamOptions {
            tenant: "acme".to_string(),
            gpu_hours_per_gpu: 1.0,
            ..StreamOptions::default()
        },
    );
    let mut lines: Vec<String> = stream.lines().map(str::to_string).collect();
    // Stream shape: submissions then one shutdown; splice the read-only
    // observability commands in just before the drain.
    assert!(lines.last().unwrap().contains("shutdown"));
    let shutdown = lines.pop().unwrap();
    lines.push(r#"{"id":"q","cmd":"query"}"#.to_string());
    lines.push(r#"{"id":"m","cmd":"metrics"}"#.to_string());
    lines.push(r#"{"id":"h","cmd":"health"}"#.to_string());
    lines.push(shutdown);
    let input = lines.join("\n");

    // A quota tight enough that some submissions are rejected, so the
    // rejection counters have something to say.
    let (status, stdout) = serve_with_input(
        &["--quiet", "--quota", "acme=40", "--heartbeat", "3600"],
        &input,
    );
    assert!(status.success(), "serve failed: {stdout}");

    let query = response_with_id(&stdout, "q");
    let stat = |k: &str| query.get(k).and_then(Value::as_f64).unwrap();
    assert!(stat("rejected") > 0.0, "quota produced no rejections");

    // The metrics response is valid exposition and its counters reconcile
    // exactly with the service stats of the query issued one line earlier
    // (no rounds run in between — metrics/health are read-only).
    let metrics = response_with_id(&stdout, "m");
    assert_eq!(metrics.get("ok").and_then(Value::as_bool), Some(true));
    let exposition = metrics
        .get("exposition")
        .and_then(Value::as_str)
        .expect("metrics response carries the exposition");
    let samples = parse_exposition(exposition).expect("valid exposition");
    let family = |name: &str, label: Option<(&str, &str)>| -> f64 {
        samples
            .iter()
            .filter(|s| s.name == name)
            .filter(|s| match label {
                None => true,
                Some((k, v)) => s.labels.iter().any(|(lk, lv)| lk == k && lv == v),
            })
            .map(|s| s.value)
            .sum()
    };
    for state in ["submitted", "admitted", "rejected", "cancelled"] {
        assert_eq!(
            family("sia_serve_jobs_total", Some(("state", state))),
            stat(state),
            "sia_serve_jobs_total{{state={state}}} disagrees with query"
        );
    }
    assert_eq!(
        family("sia_serve_rejections_total", None),
        stat("rejected"),
        "typed rejections must sum to the rejected count"
    );
    assert_eq!(family("sia_serve_active_jobs", None), stat("active"));
    assert_eq!(family("sia_serve_pending_jobs", None), stat("pending"));

    // The tenant's committed-GPU-hour gauge reconciles with the charges
    // acknowledged in this run's admitted events (nothing was cancelled).
    let charged: f64 = stdout
        .lines()
        .filter(|l| l.contains("\"event\":\"admitted\""))
        .map(|l| {
            serde_json::from_str::<Value>(l)
                .unwrap()
                .get("charge_gpu_hours")
                .and_then(Value::as_f64)
                .unwrap()
        })
        .sum();
    let committed = family("sia_tenant_committed_gpu_hours", Some(("tenant", "acme")));
    assert!(
        (committed - charged).abs() < 1e-9,
        "ledger gauge {committed} != acknowledged charges {charged}"
    );
    assert_eq!(
        family("sia_tenant_quota_gpu_hours", Some(("tenant", "acme"))),
        40.0
    );
    // Nothing dropped from the recording rings in a run this small.
    assert_eq!(family("sia_ring_dropped_records", None), 0.0);

    // The health command reports a live, ready, non-stalled daemon.
    let health = response_with_id(&stdout, "h");
    assert_eq!(health.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(health.get("live").and_then(Value::as_bool), Some(true));
    assert_eq!(health.get("ready").and_then(Value::as_bool), Some(true));
    assert_eq!(health.get("stalled").and_then(Value::as_bool), Some(false));

    // Virtual-time heartbeats fired along the replay.
    assert!(
        stdout.contains("\"ev\":\"heartbeat\""),
        "no heartbeat in: {stdout}"
    );

    // `sia-cli top FILE` renders a one-screen summary from the scrape.
    let dump = tmp("top_exposition.txt");
    std::fs::write(&dump, exposition).unwrap();
    let out = cli()
        .args(["top", dump.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let screen = String::from_utf8_lossy(&out.stdout);
    assert!(screen.starts_with("sia-serve"), "got: {screen}");
    assert!(screen.contains("jobs     :"), "got: {screen}");
    assert!(screen.contains("acme"), "got: {screen}");
    std::fs::remove_file(&dump).ok();
}

#[test]
fn observability_never_perturbs_canonical_streams() {
    let trace = small_trace(8);
    let stream = trace_to_stream_jsonl(&trace, &StreamOptions::default());

    let run = |args: &[&str], input: &str, tag: &str| -> (String, String) {
        let trace_out = tmp(&format!("{tag}_trace.jsonl"));
        let audit_out = tmp(&format!("{tag}_audit.jsonl"));
        let mut argv = vec![
            "--seed",
            "3",
            "--quiet",
            "--trace-out",
            trace_out.to_str().unwrap(),
            "--trace-format",
            "jsonl",
            "--audit-out",
            audit_out.to_str().unwrap(),
        ];
        argv.extend_from_slice(args);
        let (status, stdout) = serve_with_input(&argv, input);
        assert!(status.success(), "serve failed: {stdout}");
        let t = std::fs::read_to_string(&trace_out).unwrap();
        let a = std::fs::read_to_string(&audit_out).unwrap();
        std::fs::remove_file(&trace_out).ok();
        std::fs::remove_file(&audit_out).ok();
        (t, a)
    };

    // Baseline: no observability at all.
    let (base_trace, base_audit) = run(&[], &stream, "base");

    // Observability-heavy run: heartbeats, stall watchdog, a live stats
    // listener, debug logging, and read-only metrics/health commands
    // spliced into the stream.
    let mut lines: Vec<String> = stream.lines().map(str::to_string).collect();
    let shutdown = lines.pop().unwrap();
    lines.push(r#"{"id":"m1","cmd":"metrics"}"#.to_string());
    lines.push(r#"{"id":"h1","cmd":"health"}"#.to_string());
    lines.push(shutdown);
    let observed_input = lines.join("\n");
    let (obs_trace, obs_audit) = run(
        &[
            "--heartbeat",
            "1800",
            "--round-deadline",
            "120",
            "--stats-tcp",
            "127.0.0.1:0",
            "--log-level",
            "debug",
        ],
        &observed_input,
        "obs",
    );

    assert_eq!(
        base_trace, obs_trace,
        "observability must not perturb the canonical flight trace"
    );
    assert_eq!(
        base_audit, obs_audit,
        "observability must not perturb the canonical audit stream"
    );
}

#[test]
fn stats_listener_serves_a_live_daemon_and_top_connects() {
    // A wallclock-paced daemon stays alive while we scrape it from other
    // processes/threads; stdin is held open until the shutdown line.
    let mut child: Child = cli()
        .args([
            "serve",
            "--pacing",
            "wallclock",
            "--speed",
            "100000",
            "--stats-tcp",
            "127.0.0.1:0",
            "--log-level",
            "info",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let mut stdin = child.stdin.take().unwrap();

    // The daemon logs the bound stats endpoint at info level.
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let endpoint = loop {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).unwrap() > 0,
            "daemon exited before announcing its stats listener"
        );
        if let Some(rest) = line.split("stats listener on http://").nth(1) {
            break rest.trim().trim_end_matches("/metrics").to_string();
        }
    };

    let scrape = |path: &str| -> (String, String) {
        let mut conn = std::net::TcpStream::connect(&endpoint).expect("connect stats listener");
        write!(conn, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut raw = String::new();
        conn.read_to_string(&mut raw).unwrap();
        let status = raw.lines().next().unwrap_or_default().to_string();
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    };

    // Submit one job, then scrape both endpoints while it runs.
    let trace = small_trace(1);
    let stream = trace_to_stream_jsonl(
        &trace,
        &StreamOptions {
            shutdown: false,
            ..StreamOptions::default()
        },
    );
    stdin.write_all(stream.as_bytes()).unwrap();
    stdin.flush().unwrap();

    let (status, body) = scrape("/metrics");
    assert!(status.contains("200"), "{status}");
    parse_exposition(&body).expect("live scrape must be valid exposition");
    assert!(body.contains("sia_serve_uptime_seconds"), "{body}");

    let (status, body) = scrape("/healthz");
    assert!(status.contains("200"), "{status}\n{body}");
    assert!(body.contains("\"live\":true"), "{body}");

    // `sia-cli top --connect` renders from a genuinely separate process.
    let out = cli()
        .args(["top", "--connect", &endpoint, "--iterations", "1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "top failed: {out:?}");
    let screen = String::from_utf8_lossy(&out.stdout);
    assert!(screen.contains("sia-serve"), "got: {screen}");

    stdin
        .write_all(b"{\"id\":\"end\",\"cmd\":\"shutdown\"}\n")
        .unwrap();
    drop(stdin);
    let out = child.wait_with_output().expect("daemon exit");
    assert!(out.status.success());
}

#[test]
fn log_level_flag_validates_and_filters() {
    // Unknown level: usage error, exit 2.
    let out = cli()
        .args(["serve", "--log-level", "verbose"])
        .stdin(Stdio::null())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown log level"));

    // At error level an orderly run says nothing on stderr; at info the
    // startup line appears, leveled and timestamped.
    let stream = "{\"id\":\"end\",\"cmd\":\"shutdown\"}\n";
    for (level, expect_info) in [("error", false), ("info", true)] {
        let mut child = cli()
            .args(["serve", "--log-level", level])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        child
            .stdin
            .take()
            .unwrap()
            .write_all(stream.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success());
        let stderr = String::from_utf8_lossy(&out.stderr);
        let has_info = stderr.lines().any(|l| l.contains(" INFO serve:"));
        assert_eq!(
            has_info, expect_info,
            "--log-level {level} stderr: {stderr}"
        );
    }
}
