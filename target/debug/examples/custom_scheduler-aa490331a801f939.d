/root/repo/target/debug/examples/custom_scheduler-aa490331a801f939.d: examples/custom_scheduler.rs

/root/repo/target/debug/examples/custom_scheduler-aa490331a801f939: examples/custom_scheduler.rs

examples/custom_scheduler.rs:
