/root/repo/target/release/deps/sia_baselines-2138fed1e89cefb5.d: crates/baselines/src/lib.rs crates/baselines/src/gavel.rs crates/baselines/src/pollux.rs crates/baselines/src/shockwave.rs crates/baselines/src/themis.rs crates/baselines/src/util.rs

/root/repo/target/release/deps/sia_baselines-2138fed1e89cefb5: crates/baselines/src/lib.rs crates/baselines/src/gavel.rs crates/baselines/src/pollux.rs crates/baselines/src/shockwave.rs crates/baselines/src/themis.rs crates/baselines/src/util.rs

crates/baselines/src/lib.rs:
crates/baselines/src/gavel.rs:
crates/baselines/src/pollux.rs:
crates/baselines/src/shockwave.rs:
crates/baselines/src/themis.rs:
crates/baselines/src/util.rs:
