//! Small API-surface checks that exercise corners the larger suites skip.

use sia::cluster::{ClusterSpec, Configuration, FreeGpus, GpuKind, Placement, PlacementError};
use sia::models::{AllocShape, BatchLimits, EfficiencyParams};
use sia::workloads::{reference_work_target, ModelKind, SizeCategory};

#[test]
fn placement_error_display() {
    assert_eq!(
        PlacementError::InsufficientCapacity.to_string(),
        "insufficient free GPUs"
    );
    assert_eq!(
        PlacementError::Fragmented.to_string(),
        "free GPUs are fragmented"
    );
}

#[test]
fn job_id_and_configuration_display() {
    assert_eq!(sia::cluster::JobId(42).to_string(), "job-42");
    let c = ClusterSpec::heterogeneous_64();
    let t4 = c.gpu_type_by_name("t4").unwrap();
    assert_eq!(Configuration::new(2, 8, t4).to_string(), "(2, 8, 0)");
}

#[test]
fn free_gpus_on_node_accounting() {
    let c = ClusterSpec::homogeneous_64();
    let mut free = FreeGpus::all_free(&c);
    assert_eq!(free.on_node(0), 4);
    free.take(&Placement::new(vec![(0, 3)]));
    assert_eq!(free.on_node(0), 1);
    free.release(&c, &Placement::new(vec![(0, 3)]));
    assert_eq!(free.on_node(0), 4);
}

#[test]
fn speed_factor_falls_back_by_power_rank() {
    let exotic = GpuKind {
        name: "h100".into(), // unknown to the zoo
        mem_gib: 80.0,
        power_rank: 9,
    };
    let weak = GpuKind {
        name: "k80".into(),
        mem_gib: 12.0,
        power_rank: 1,
    };
    let p = ModelKind::Bert.profile();
    assert!(p.speed_factor(&exotic) > p.speed_factor(&weak));
    // Fallback throughput params remain valid.
    assert!(p.throughput_params(&exotic).is_valid());
}

#[test]
fn reference_work_scales_linearly_in_hours() {
    let one = reference_work_target(ModelKind::ResNet18, 1.0);
    let three = reference_work_target(ModelKind::ResNet18, 3.0);
    assert!((three / one - 3.0).abs() < 1e-9);
    assert!(one > 0.0);
}

#[test]
fn alloc_shape_constructors() {
    assert_eq!(AllocShape::single().replicas, 1);
    assert!(!AllocShape::single().distributed);
    assert_eq!(AllocShape::local(4).replicas, 4);
    assert!(!AllocShape::local(4).distributed);
    assert!(AllocShape::dist(8).distributed);
}

#[test]
fn batch_limits_invariants() {
    let l = BatchLimits::fixed(64.0);
    assert_eq!(l.min_total, l.max_total);
    let e = EfficiencyParams::new(0.0, 32.0); // phi = 0 is legal (no noise)
    assert!((e.efficiency(32.0) - 1.0).abs() < 1e-12);
    assert!(e.efficiency(64.0) < 1.0);
}

#[test]
fn size_category_ordering_matches_gpu_time_bands() {
    assert!(SizeCategory::Small < SizeCategory::Medium);
    assert!(SizeCategory::Medium < SizeCategory::Large);
    assert!(SizeCategory::Large < SizeCategory::ExtraLarge);
}

#[test]
#[should_panic(expected = "invalid batch limits")]
fn batch_limits_reject_inverted_range() {
    BatchLimits::new(100.0, 10.0);
}
