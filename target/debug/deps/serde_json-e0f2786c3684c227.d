/root/repo/target/debug/deps/serde_json-e0f2786c3684c227.d: compat/serde_json/src/lib.rs compat/serde_json/src/de.rs compat/serde_json/src/ser.rs

/root/repo/target/debug/deps/libserde_json-e0f2786c3684c227.rlib: compat/serde_json/src/lib.rs compat/serde_json/src/de.rs compat/serde_json/src/ser.rs

/root/repo/target/debug/deps/libserde_json-e0f2786c3684c227.rmeta: compat/serde_json/src/lib.rs compat/serde_json/src/de.rs compat/serde_json/src/ser.rs

compat/serde_json/src/lib.rs:
compat/serde_json/src/de.rs:
compat/serde_json/src/ser.rs:
