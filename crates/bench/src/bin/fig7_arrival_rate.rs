//! Figure 7: average JCT vs job arrival rate (Helios-like traces, 64-GPU
//! heterogeneous cluster).
//!
//! Expected shape: all schedulers degrade as the arrival rate grows; Gavel
//! degrades fastest (time sharing under congestion); Sia consistently below
//! Pollux by a wide margin.

use sia_bench::{print_table, sweep, write_json, Policy};
use sia_cluster::ClusterSpec;
use sia_sim::SimConfig;
use sia_workloads::TraceKind;

fn main() {
    let cluster = ClusterSpec::heterogeneous_64();
    let policies = [Policy::Sia, Policy::Pollux, Policy::GavelTuned];
    let rates = [10.0, 20.0, 30.0, 50.0];
    let seeds: Vec<u64> = (1..=2).collect();
    let cfg = SimConfig::default();

    let mut payload = serde_json::Map::new();
    println!("== Figure 7: avg JCT (h) vs arrival rate (jobs/hr), Helios hetero ==");
    print!("{:<10}", "rate");
    for p in policies {
        print!("{:>12}", p.label());
    }
    println!();
    let mut series: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    for &rate in &rates {
        print!("{rate:<10}");
        let mut aggs = Vec::new();
        for p in policies {
            let a = sweep(
                p,
                &cluster,
                TraceKind::Helios,
                &seeds,
                &cfg,
                16,
                1.0,
                Some(rate),
            );
            let jct = a.mean(|s| s.avg_jct_hours);
            print!("{jct:>12.2}");
            series.entry(a.label.clone()).or_default().push(jct);
            aggs.push(a);
        }
        println!();
        if rate == 50.0 {
            print_table("detail at 50 jobs/hr", &aggs);
        }
    }
    for (label, jcts) in &series {
        payload.insert(
            label.clone(),
            serde_json::json!({"rates": rates, "avg_jct_hours": jcts}),
        );
    }
    write_json("fig7_arrival_rate", &serde_json::Value::Object(payload));
}
