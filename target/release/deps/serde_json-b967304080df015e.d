/root/repo/target/release/deps/serde_json-b967304080df015e.d: compat/serde_json/src/lib.rs compat/serde_json/src/de.rs compat/serde_json/src/ser.rs

/root/repo/target/release/deps/serde_json-b967304080df015e: compat/serde_json/src/lib.rs compat/serde_json/src/de.rs compat/serde_json/src/ser.rs

compat/serde_json/src/lib.rs:
compat/serde_json/src/de.rs:
compat/serde_json/src/ser.rs:
