//! Error types for LP/MILP solving.

use std::fmt;

/// Errors returned by the LP and MILP solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The simplex iteration limit was exhausted before convergence.
    IterationLimit(usize),
    /// A model-construction error (bad bounds, unknown variable, NaN input).
    InvalidModel(String),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::Infeasible => write!(f, "problem is infeasible"),
            SolverError::Unbounded => write!(f, "objective is unbounded"),
            SolverError::IterationLimit(n) => {
                write!(f, "simplex iteration limit ({n}) exhausted")
            }
            SolverError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl std::error::Error for SolverError {}
