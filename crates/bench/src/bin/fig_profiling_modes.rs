//! §5.7 profiling-overhead ablation: Sia with Oracle / Bootstrap / NoProf
//! estimators on Helios-like traces (heterogeneous setting).
//!
//! Expected shape: Bootstrap close to Oracle (the paper reports ~8% worse)
//! and clearly better than NoProf (~30%).

use sia_bench::{print_table, write_json, Aggregate, Policy};
use sia_cluster::ClusterSpec;
use sia_metrics::summarize;
use sia_models::ProfilingMode;
use sia_sim::SimConfig;
use sia_workloads::{Trace, TraceConfig, TraceKind};

fn main() {
    let cluster = ClusterSpec::heterogeneous_64();
    let seeds: Vec<u64> = (1..=2).collect();
    let modes = [
        ("Oracle", ProfilingMode::Oracle),
        ("Bootstrap", ProfilingMode::Bootstrap),
        ("NoProf", ProfilingMode::NoProf),
    ];

    let mut aggs = Vec::new();
    for (label, mode) in modes {
        let runs = seeds
            .iter()
            .map(|&seed| {
                let trace = Trace::generate(
                    &TraceConfig::new(TraceKind::Helios, seed).with_max_gpus_cap(16),
                );
                let cfg = SimConfig {
                    seed,
                    profiling_mode: mode,
                    profiling_gpu_seconds: if mode == ProfilingMode::Bootstrap {
                        20.0
                    } else {
                        0.0
                    },
                    ..SimConfig::default()
                };
                summarize(&sia_bench::run_one(
                    Policy::Sia,
                    &cluster,
                    &trace,
                    cfg,
                    seed,
                ))
            })
            .collect();
        aggs.push(Aggregate {
            label: label.to_string(),
            runs,
        });
    }
    print_table("Profiling modes (Sia, Helios hetero)", &aggs);

    let oracle = aggs[0].mean(|s| s.avg_jct_hours);
    println!("\navg JCT normalized to Oracle:");
    for a in &aggs {
        println!(
            "  {:<10} {:.3}",
            a.label,
            a.mean(|s| s.avg_jct_hours) / oracle
        );
    }
    write_json("fig_profiling_modes", &sia_bench::aggregates_json(&aggs));
}
