/root/repo/target/release/deps/quick_compare-db9ade32659c678f.d: crates/bench/src/bin/quick_compare.rs

/root/repo/target/release/deps/quick_compare-db9ade32659c678f: crates/bench/src/bin/quick_compare.rs

crates/bench/src/bin/quick_compare.rs:
