/root/repo/target/release/deps/fig11_adaptivity-243f7b8b0f5cdb7b.d: crates/bench/src/bin/fig11_adaptivity.rs

/root/repo/target/release/deps/fig11_adaptivity-243f7b8b0f5cdb7b: crates/bench/src/bin/fig11_adaptivity.rs

crates/bench/src/bin/fig11_adaptivity.rs:
