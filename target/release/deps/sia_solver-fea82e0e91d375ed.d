/root/repo/target/release/deps/sia_solver-fea82e0e91d375ed.d: crates/solver/src/lib.rs crates/solver/src/error.rs crates/solver/src/lagrangian.rs crates/solver/src/milp.rs crates/solver/src/problem.rs crates/solver/src/simplex.rs

/root/repo/target/release/deps/sia_solver-fea82e0e91d375ed: crates/solver/src/lib.rs crates/solver/src/error.rs crates/solver/src/lagrangian.rs crates/solver/src/milp.rs crates/solver/src/problem.rs crates/solver/src/simplex.rs

crates/solver/src/lib.rs:
crates/solver/src/error.rs:
crates/solver/src/lagrangian.rs:
crates/solver/src/milp.rs:
crates/solver/src/problem.rs:
crates/solver/src/simplex.rs:
