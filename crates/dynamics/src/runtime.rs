//! Compiled, executable capacity timelines.
//!
//! A [`DynamicsRuntime`] compiles a [`DynamicsScript`](crate::DynamicsScript)
//! against a cluster and applies its events to a
//! [`ClusterView`] as simulation time advances. Both simulator engines
//! drive the same [`DynamicsRuntime::poll`] entry point — the round engine
//! at round boundaries, the event engine from exact-time kernel events — so
//! the sequence of [`CapacityChange`]s (and therefore every downstream
//! effect) is identical across engines.
//!
//! Concrete node ids are chosen *at apply time* with a deterministic rule
//! (highest-id eligible node of the type first), so a script never names
//! node ids and stays portable across cluster sizes.

use sia_cluster::{ClusterView, GpuTypeId, NodeHealth};

use crate::script::{CapacityEvent, DynamicsError, DynamicsScript};

/// What a capacity change did, for trace/telemetry consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityChangeKind {
    /// Fresh nodes appeared.
    Added,
    /// Nodes were abruptly killed (evict, losing progress since the last
    /// checkpoint).
    Removed,
    /// Nodes stopped accepting new placements (grace window began).
    DrainStarted,
    /// A drain grace window expired (evict, keeping progress).
    DrainFinished,
    /// Nodes became stragglers.
    Degraded,
    /// Straggler nodes recovered.
    Restored,
}

impl CapacityChangeKind {
    /// Stable label used in telemetry counter names.
    pub fn label(&self) -> &'static str {
        match self {
            CapacityChangeKind::Added => "added",
            CapacityChangeKind::Removed => "removed",
            CapacityChangeKind::DrainStarted => "drain_started",
            CapacityChangeKind::DrainFinished => "drain_finished",
            CapacityChangeKind::Degraded => "degraded",
            CapacityChangeKind::Restored => "restored",
        }
    }
}

/// One applied capacity change: which nodes, when, and what happened.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityChange {
    /// Scripted time of the event (seconds). The engines may *enforce* the
    /// change later (at a round boundary), but record it at this time.
    pub time: f64,
    /// What happened.
    pub kind: CapacityChangeKind,
    /// The GPU type affected.
    pub gpu_type: GpuTypeId,
    /// Concrete node ids affected, ascending.
    pub nodes: Vec<usize>,
    /// Total GPUs across `nodes`.
    pub gpus: usize,
    /// Straggler multiplier (1.0 except for `Degraded`).
    pub factor: f64,
}

impl CapacityChange {
    /// True if jobs placed on `nodes` must be evicted.
    pub fn evicts(&self) -> bool {
        matches!(
            self.kind,
            CapacityChangeKind::Removed | CapacityChangeKind::DrainFinished
        )
    }

    /// True if evicted jobs also lose progress since their last checkpoint
    /// (abrupt kill, as opposed to a graceful drain).
    pub fn lose_progress(&self) -> bool {
        self.kind == CapacityChangeKind::Removed
    }
}

#[derive(Debug, Clone)]
enum OpKind {
    Add {
        gpu_type: GpuTypeId,
        num_nodes: usize,
        gpus_per_node: usize,
    },
    Kill {
        gpu_type: GpuTypeId,
        num_nodes: usize,
    },
    DrainStart {
        gpu_type: GpuTypeId,
        num_nodes: usize,
        drain: usize,
    },
    DrainFinish {
        gpu_type: GpuTypeId,
        drain: usize,
    },
    Degrade {
        gpu_type: GpuTypeId,
        num_nodes: usize,
        factor: f64,
    },
    Restore {
        gpu_type: GpuTypeId,
        num_nodes: usize,
    },
}

#[derive(Debug, Clone)]
struct Op {
    time: f64,
    kind: OpKind,
}

/// A compiled capacity timeline, applied in time order via
/// [`DynamicsRuntime::poll`].
#[derive(Debug, Clone)]
pub struct DynamicsRuntime {
    ops: Vec<Op>,
    next: usize,
    /// Node ids chosen when each drain started, indexed by drain id.
    drains: Vec<Vec<usize>>,
}

impl DynamicsRuntime {
    /// Compiles a script against a cluster, resolving GPU kind names.
    /// A `Drain { grace }` event compiles to a drain-start op at `t` and a
    /// linked drain-finish op at `t + grace`.
    pub fn new(script: &DynamicsScript, view: &ClusterView) -> Result<Self, DynamicsError> {
        script.validate(view.spec())?;
        let resolve = |name: &str| view.gpu_type_by_name(name).expect("validated above");
        let mut ops = Vec::new();
        let mut n_drains = 0usize;
        for e in script.entries() {
            match &e.event {
                CapacityEvent::Add {
                    gpu_type,
                    num_nodes,
                    gpus_per_node,
                } => ops.push(Op {
                    time: e.time,
                    kind: OpKind::Add {
                        gpu_type: resolve(gpu_type),
                        num_nodes: *num_nodes,
                        gpus_per_node: *gpus_per_node,
                    },
                }),
                CapacityEvent::Remove {
                    gpu_type,
                    num_nodes,
                } => ops.push(Op {
                    time: e.time,
                    kind: OpKind::Kill {
                        gpu_type: resolve(gpu_type),
                        num_nodes: *num_nodes,
                    },
                }),
                CapacityEvent::Drain {
                    gpu_type,
                    num_nodes,
                    grace,
                } => {
                    let t = resolve(gpu_type);
                    ops.push(Op {
                        time: e.time,
                        kind: OpKind::DrainStart {
                            gpu_type: t,
                            num_nodes: *num_nodes,
                            drain: n_drains,
                        },
                    });
                    ops.push(Op {
                        time: e.time + grace,
                        kind: OpKind::DrainFinish {
                            gpu_type: t,
                            drain: n_drains,
                        },
                    });
                    n_drains += 1;
                }
                CapacityEvent::Degrade {
                    gpu_type,
                    num_nodes,
                    factor,
                } => ops.push(Op {
                    time: e.time,
                    kind: OpKind::Degrade {
                        gpu_type: resolve(gpu_type),
                        num_nodes: *num_nodes,
                        factor: *factor,
                    },
                }),
                CapacityEvent::Restore {
                    gpu_type,
                    num_nodes,
                } => ops.push(Op {
                    time: e.time,
                    kind: OpKind::Restore {
                        gpu_type: resolve(gpu_type),
                        num_nodes: *num_nodes,
                    },
                }),
            }
        }
        // Stable by time: a zero-grace drain finishes right after it starts.
        ops.sort_by(|a, b| a.time.total_cmp(&b.time));
        Ok(DynamicsRuntime {
            ops,
            next: 0,
            drains: vec![Vec::new(); n_drains],
        })
    }

    /// The times at which ops fire, in order (drain finishes included).
    /// The event engine schedules one kernel event per entry.
    pub fn op_times(&self) -> Vec<f64> {
        self.ops.iter().map(|op| op.time).collect()
    }

    /// The time of the next unapplied op, if any.
    pub fn next_time(&self) -> Option<f64> {
        self.ops.get(self.next).map(|op| op.time)
    }

    /// Applies every op with `time <= now` to the view, returning the
    /// resulting changes in op order. Idempotent per op: each fires once.
    pub fn poll(&mut self, now: f64, view: &mut ClusterView) -> Vec<CapacityChange> {
        let mut out = Vec::new();
        while let Some(op) = self.ops.get(self.next) {
            if op.time > now {
                break;
            }
            let op = op.clone();
            self.next += 1;
            if let Some(change) = self.apply(&op, view) {
                sia_telemetry::counter("dynamics.capacity_events").incr();
                sia_telemetry::counter(&format!("dynamics.{}", change.kind.label())).incr();
                out.push(change);
            }
        }
        out
    }

    /// Highest-id nodes of `gpu_type` satisfying `eligible`, up to `n`,
    /// returned ascending. Highest-first removes the newest capacity first,
    /// which keeps shrink-then-grow scripts from fragmenting low node ids.
    fn select(
        view: &ClusterView,
        gpu_type: GpuTypeId,
        n: usize,
        eligible: impl Fn(&ClusterView, usize) -> bool,
    ) -> Vec<usize> {
        let mut ids: Vec<usize> = view
            .spec()
            .nodes_of_type(gpu_type)
            .map(|nd| nd.id)
            .filter(|&id| eligible(view, id))
            .collect();
        ids.reverse();
        ids.truncate(n);
        ids.reverse();
        ids
    }

    fn apply(&mut self, op: &Op, view: &mut ClusterView) -> Option<CapacityChange> {
        let gpus_of = |view: &ClusterView, ids: &[usize]| -> usize {
            ids.iter().map(|&id| view.spec().nodes()[id].num_gpus).sum()
        };
        match op.kind {
            OpKind::Add {
                gpu_type,
                num_nodes,
                gpus_per_node,
            } => {
                let nodes = view.add_nodes(gpu_type, num_nodes, gpus_per_node);
                Some(CapacityChange {
                    time: op.time,
                    kind: CapacityChangeKind::Added,
                    gpu_type,
                    gpus: num_nodes * gpus_per_node,
                    nodes,
                    factor: 1.0,
                })
            }
            OpKind::Kill {
                gpu_type,
                num_nodes,
            } => {
                let nodes = Self::select(view, gpu_type, num_nodes, |v, id| v.is_placeable(id));
                if nodes.is_empty() {
                    return None;
                }
                for &id in &nodes {
                    view.set_health(id, NodeHealth::Removed);
                }
                Some(CapacityChange {
                    time: op.time,
                    kind: CapacityChangeKind::Removed,
                    gpu_type,
                    gpus: gpus_of(view, &nodes),
                    nodes,
                    factor: 1.0,
                })
            }
            OpKind::DrainStart {
                gpu_type,
                num_nodes,
                drain,
            } => {
                let nodes = Self::select(view, gpu_type, num_nodes, |v, id| v.is_placeable(id));
                if nodes.is_empty() {
                    return None;
                }
                for &id in &nodes {
                    view.set_health(id, NodeHealth::Draining);
                }
                self.drains[drain] = nodes.clone();
                Some(CapacityChange {
                    time: op.time,
                    kind: CapacityChangeKind::DrainStarted,
                    gpu_type,
                    gpus: gpus_of(view, &nodes),
                    nodes,
                    factor: 1.0,
                })
            }
            OpKind::DrainFinish { gpu_type, drain } => {
                let nodes = std::mem::take(&mut self.drains[drain]);
                if nodes.is_empty() {
                    return None;
                }
                for &id in &nodes {
                    view.set_health(id, NodeHealth::Removed);
                }
                Some(CapacityChange {
                    time: op.time,
                    kind: CapacityChangeKind::DrainFinished,
                    gpu_type,
                    gpus: gpus_of(view, &nodes),
                    nodes,
                    factor: 1.0,
                })
            }
            OpKind::Degrade {
                gpu_type,
                num_nodes,
                factor,
            } => {
                let nodes = Self::select(view, gpu_type, num_nodes, |v, id| {
                    v.is_placeable(id) && v.degradation(id) == 1.0
                });
                if nodes.is_empty() {
                    return None;
                }
                for &id in &nodes {
                    view.set_degradation(id, factor);
                }
                Some(CapacityChange {
                    time: op.time,
                    kind: CapacityChangeKind::Degraded,
                    gpu_type,
                    gpus: gpus_of(view, &nodes),
                    nodes,
                    factor,
                })
            }
            OpKind::Restore {
                gpu_type,
                num_nodes,
            } => {
                let nodes =
                    Self::select(view, gpu_type, num_nodes, |v, id| v.degradation(id) != 1.0);
                if nodes.is_empty() {
                    return None;
                }
                for &id in &nodes {
                    view.set_degradation(id, 1.0);
                }
                Some(CapacityChange {
                    time: op.time,
                    kind: CapacityChangeKind::Restored,
                    gpu_type,
                    gpus: gpus_of(view, &nodes),
                    nodes,
                    factor: 1.0,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_cluster::ClusterSpec;

    fn view() -> ClusterView {
        ClusterView::new(ClusterSpec::heterogeneous_64())
    }

    fn script_remove_a100() -> DynamicsScript {
        DynamicsScript::new()
            .at(
                3600.0,
                CapacityEvent::Remove {
                    gpu_type: "a100".into(),
                    num_nodes: 2,
                },
            )
            .at(
                7200.0,
                CapacityEvent::Add {
                    gpu_type: "a100".into(),
                    num_nodes: 2,
                    gpus_per_node: 8,
                },
            )
    }

    #[test]
    fn shrink_then_grow_round_trips_capacity() {
        let mut v = view();
        let a100 = v.gpu_type_by_name("a100").unwrap();
        let mut rt = DynamicsRuntime::new(&script_remove_a100(), &v).unwrap();
        assert_eq!(rt.next_time(), Some(3600.0));
        assert!(rt.poll(1000.0, &mut v).is_empty());
        let removed = rt.poll(3600.0, &mut v);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].kind, CapacityChangeKind::Removed);
        assert_eq!(removed[0].nodes, vec![9, 10]); // highest-id a100 nodes
        assert_eq!(removed[0].gpus, 16);
        assert!(removed[0].lose_progress());
        assert_eq!(v.gpus_of_type(a100), 0);
        let added = rt.poll(10_000.0, &mut v);
        assert_eq!(added.len(), 1);
        assert_eq!(added[0].kind, CapacityChangeKind::Added);
        assert_eq!(added[0].nodes, vec![11, 12]); // fresh ids
        assert_eq!(v.gpus_of_type(a100), 16);
        assert_eq!(rt.next_time(), None);
    }

    #[test]
    fn drain_splits_into_start_and_finish() {
        let mut v = view();
        let t4 = v.gpu_type_by_name("t4").unwrap();
        let script = DynamicsScript::new().at(
            100.0,
            CapacityEvent::Drain {
                gpu_type: "t4".into(),
                num_nodes: 2,
                grace: 300.0,
            },
        );
        let mut rt = DynamicsRuntime::new(&script, &v).unwrap();
        assert_eq!(rt.op_times(), vec![100.0, 400.0]);
        let start = rt.poll(100.0, &mut v);
        assert_eq!(start.len(), 1);
        assert_eq!(start[0].kind, CapacityChangeKind::DrainStarted);
        assert!(!start[0].evicts());
        assert_eq!(v.gpus_of_type(t4), 16); // 4 of 6 nodes left
        assert_eq!(v.health(5), NodeHealth::Draining);
        let finish = rt.poll(400.0, &mut v);
        assert_eq!(finish.len(), 1);
        assert_eq!(finish[0].kind, CapacityChangeKind::DrainFinished);
        assert_eq!(finish[0].nodes, start[0].nodes);
        assert!(finish[0].evicts());
        assert!(!finish[0].lose_progress());
        assert_eq!(v.health(5), NodeHealth::Removed);
    }

    #[test]
    fn degrade_and_restore_toggle_multipliers() {
        let mut v = view();
        let script = DynamicsScript::new()
            .at(
                10.0,
                CapacityEvent::Degrade {
                    gpu_type: "rtx".into(),
                    num_nodes: 1,
                    factor: 0.4,
                },
            )
            .at(
                20.0,
                CapacityEvent::Restore {
                    gpu_type: "rtx".into(),
                    num_nodes: 1,
                },
            );
        let mut rt = DynamicsRuntime::new(&script, &v).unwrap();
        let deg = rt.poll(10.0, &mut v);
        assert_eq!(deg[0].kind, CapacityChangeKind::Degraded);
        assert_eq!(deg[0].factor, 0.4);
        let node = deg[0].nodes[0];
        assert_eq!(v.degradation(node), 0.4);
        let res = rt.poll(20.0, &mut v);
        assert_eq!(res[0].kind, CapacityChangeKind::Restored);
        assert_eq!(res[0].nodes, deg[0].nodes);
        assert_eq!(v.degradation(node), 1.0);
    }

    #[test]
    fn removal_clamps_to_available_nodes() {
        let mut v = view();
        let script = DynamicsScript::new().at(
            0.0,
            CapacityEvent::Remove {
                gpu_type: "a100".into(),
                num_nodes: 99,
            },
        );
        let mut rt = DynamicsRuntime::new(&script, &v).unwrap();
        let changes = rt.poll(0.0, &mut v);
        assert_eq!(changes[0].nodes.len(), 2);
        // A second removal of the same type finds nothing and emits nothing.
        let script2 = DynamicsScript::new().at(
            1.0,
            CapacityEvent::Remove {
                gpu_type: "a100".into(),
                num_nodes: 1,
            },
        );
        let mut rt2 = DynamicsRuntime::new(&script2, &v).unwrap();
        assert!(rt2.poll(1.0, &mut v).is_empty());
    }

    #[test]
    fn same_seed_compilation_is_deterministic() {
        let s = script_remove_a100();
        let mut va = view();
        let mut vb = view();
        let mut ra = DynamicsRuntime::new(&s, &va).unwrap();
        let mut rb = DynamicsRuntime::new(&s, &vb).unwrap();
        assert_eq!(ra.poll(1e9, &mut va), rb.poll(1e9, &mut vb));
        assert_eq!(va, vb);
    }
}
