/root/repo/target/release/deps/fig1_scenarios-d0ad4ecf568e79ec.d: crates/bench/src/bin/fig1_scenarios.rs

/root/repo/target/release/deps/fig1_scenarios-d0ad4ecf568e79ec: crates/bench/src/bin/fig1_scenarios.rs

crates/bench/src/bin/fig1_scenarios.rs:
