//! The Sia scheduling ILP (Eq. 4 / Eq. 5 of the paper).
//!
//! Binary variable `A_ij` selects configuration `j` for job `i`. The rows
//! are tiny by construction: one SOS-1 row per job (`sum_j A_ij <= 1`) and
//! one GPU-capacity row per GPU type — §3.3's configuration restrictions
//! guarantee that any solution of this ILP admits a physical placement, so
//! no per-node rows are needed.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use sia_cluster::{ClusterView, Configuration, JobId};
use sia_sim::SolveOutcome;
use sia_solver::{
    merge_shards, plan_shards, solve_assignment_lagrangian, solve_shard, AssignmentItem,
    DecomposeOptions, MilpOptions, MilpWarmStart, Problem, Sense, ShardOutcome, SolverError,
};

use crate::matrix::Candidate;
use crate::pool;

/// Jobs whose resources are pinned this round (non-preemptive jobs and
/// reservations, §3.4): the matching candidate is forced into the solution.
pub type ForcedAssignments = BTreeMap<JobId, Configuration>;

/// Introspection for one [`solve_assignment_with_stats`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssignmentStats {
    /// Seconds spent building the ILP (variables + rows).
    pub build_s: f64,
    /// Seconds spent inside the MILP solve and any fallbacks.
    pub solve_s: f64,
    /// Branch-and-bound nodes explored (0 on the fallback paths).
    pub nodes: usize,
    /// Simplex pivots across all node relaxations.
    pub pivots: usize,
    /// Root LP relaxation objective, when the root was solved.
    pub lp_objective: Option<f64>,
    /// Total weight of the returned assignment, when one exists.
    pub objective: Option<f64>,
    /// Proven relaxation bound on the optimum (`None` on fallback paths,
    /// where no bound is available).
    pub best_bound: Option<f64>,
    /// Branch-and-bound nodes discarded because their bound could not beat
    /// the incumbent.
    pub nodes_pruned: usize,
    /// Node index of the first incumbent (0 = warm-start seed accepted).
    pub first_incumbent_node: Option<usize>,
    /// Wall-clock seconds to the first incumbent (0.0 for seed/pure-LP;
    /// host-dependent, so canonical audit serialization zeroes it).
    pub first_incumbent_s: Option<f64>,
    /// Objective of the previous-round allocation accepted as the
    /// branch-and-bound incumbent seed ([`solve_assignment_warm`]).
    pub incumbent_seed: Option<f64>,
    /// Branch-and-bound nodes re-solved from their parent's simplex basis.
    pub warm_nodes: usize,
    /// Estimated simplex pivots avoided by parent-basis reuse.
    pub warm_pivots_saved: usize,
    /// Shards solved by the decomposed path (0 on the monolithic path).
    pub shards: usize,
    /// A node/time budget stopped at least one solve before an optimality
    /// proof; the reported solution is the anytime incumbent.
    pub budget_exhausted: bool,
    /// Subgradient iterations of the Lagrangian pricing pass (0 when no
    /// pricing ran).
    pub lagrangian_iters: usize,
    /// Final absolute duality gap of the pricing pass.
    pub lagrangian_gap: f64,
    /// Euclidean norm of the final Lagrangian multipliers (capacity prices).
    pub lagrangian_norm: f64,
    /// How the solve concluded.
    pub outcome: SolveOutcome,
}

/// Solves the assignment ILP over weighted candidates.
///
/// Returns the chosen configuration per job (jobs may be absent: they
/// receive no resources this round). Falls back to a greedy assignment when
/// the branch-and-bound solver hits its node/time limits.
pub fn solve_assignment(
    cluster: &ClusterView,
    candidates: &[Candidate],
    forced: &ForcedAssignments,
    opts: &MilpOptions,
) -> BTreeMap<JobId, Configuration> {
    solve_assignment_with_stats(cluster, candidates, forced, opts).0
}

/// Like [`solve_assignment`], additionally reporting where the time went and
/// how the branch-and-bound concluded.
pub fn solve_assignment_with_stats(
    cluster: &ClusterView,
    candidates: &[Candidate],
    forced: &ForcedAssignments,
    opts: &MilpOptions,
) -> (BTreeMap<JobId, Configuration>, AssignmentStats) {
    solve_assignment_warm(cluster, candidates, forced, opts, None)
}

/// Like [`solve_assignment_with_stats`], warm-started with the previous
/// round's chosen configurations.
///
/// The previous allocation — restricted to candidates that still exist, and
/// overridden by `forced` entries — is offered to branch-and-bound as an
/// initial incumbent. When it is still feasible (the common round-over-round
/// case) every node whose bound cannot beat it is pruned on arrival, which
/// collapses most of the search tree; when it is not (capacity changed, a
/// candidate vanished), the hint is rejected inside the solver and the solve
/// proceeds exactly as cold.
pub fn solve_assignment_warm(
    cluster: &ClusterView,
    candidates: &[Candidate],
    forced: &ForcedAssignments,
    opts: &MilpOptions,
    prev: Option<&BTreeMap<JobId, Configuration>>,
) -> (BTreeMap<JobId, Configuration>, AssignmentStats) {
    if candidates.is_empty() {
        let stats = AssignmentStats {
            build_s: 0.0,
            solve_s: 0.0,
            nodes: 0,
            pivots: 0,
            lp_objective: None,
            objective: None,
            best_bound: None,
            nodes_pruned: 0,
            first_incumbent_node: None,
            first_incumbent_s: None,
            incumbent_seed: None,
            warm_nodes: 0,
            warm_pivots_saved: 0,
            shards: 0,
            budget_exhausted: false,
            lagrangian_iters: 0,
            lagrangian_gap: 0.0,
            lagrangian_norm: 0.0,
            outcome: SolveOutcome::Empty,
        };
        return (BTreeMap::new(), stats);
    }

    // Build the incumbent hint: 1.0 exactly on candidates matching the
    // previous round's choice (forced assignments take precedence so the
    // hint cannot contradict the forced variable bounds).
    let warm = prev.and_then(|prev| {
        let mut hint = vec![0.0; candidates.len()];
        let mut any = false;
        for (i, c) in candidates.iter().enumerate() {
            let want = forced.get(&c.job).or_else(|| prev.get(&c.job));
            if want == Some(&c.config) {
                hint[i] = 1.0;
                any = true;
            }
        }
        any.then_some(MilpWarmStart { hint })
    });

    let build_t0 = Instant::now();
    let build_span = sia_telemetry::span("policy.milp_build");
    let mut problem = Problem::new(Sense::Maximize);
    let vars: Vec<_> = candidates
        .iter()
        .map(|c| problem.add_binary_var(c.weight))
        .collect();

    // Force reserved / non-preemptive assignments.
    for (i, c) in candidates.iter().enumerate() {
        if forced.get(&c.job) == Some(&c.config) {
            problem.set_bounds(vars[i], 1.0, 1.0);
        }
    }

    // One configuration per job.
    let mut by_job: BTreeMap<JobId, Vec<usize>> = BTreeMap::new();
    for (i, c) in candidates.iter().enumerate() {
        by_job.entry(c.job).or_default().push(i);
    }
    for idxs in by_job.values() {
        let row: Vec<_> = idxs.iter().map(|&i| (vars[i], 1.0)).collect();
        problem.add_le(&row, 1.0);
    }

    // Per-type GPU capacity (Active nodes only).
    for t in cluster.gpu_types() {
        let row: Vec<_> = candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.config.gpu_type == t)
            .map(|(i, c)| (vars[i], c.config.gpus as f64))
            .collect();
        if !row.is_empty() {
            problem.add_le(&row, cluster.gpus_of_type(t) as f64);
        }
    }
    drop(build_span);
    let build_s = build_t0.elapsed().as_secs_f64();

    let solve_t0 = Instant::now();
    let solve_span = sia_telemetry::span("policy.milp_solve");
    let solved = problem.solve_milp_warm(opts, warm.as_ref());
    drop(solve_span);
    match solved {
        Ok(milp) => {
            let mut out = BTreeMap::new();
            for (i, c) in candidates.iter().enumerate() {
                if milp.solution.value(vars[i]) > 0.5 {
                    out.insert(c.job, c.config);
                }
            }
            let stats = AssignmentStats {
                build_s,
                solve_s: solve_t0.elapsed().as_secs_f64(),
                nodes: milp.nodes_explored,
                pivots: milp.total_pivots,
                lp_objective: milp.root_lp_objective,
                objective: Some(milp.solution.objective),
                best_bound: Some(milp.best_bound),
                nodes_pruned: milp.nodes_pruned,
                first_incumbent_node: milp.first_incumbent_node,
                first_incumbent_s: milp.first_incumbent_s,
                incumbent_seed: milp.incumbent_seed_objective,
                warm_nodes: milp.warm_nodes,
                warm_pivots_saved: milp.warm_pivots_saved,
                shards: 0,
                budget_exhausted: milp.status == sia_solver::MilpStatus::Feasible,
                lagrangian_iters: 0,
                lagrangian_gap: 0.0,
                lagrangian_norm: 0.0,
                outcome: match milp.status {
                    sia_solver::MilpStatus::Optimal => SolveOutcome::Optimal,
                    sia_solver::MilpStatus::Feasible => SolveOutcome::Feasible,
                },
            };
            (out, stats)
        }
        Err(SolverError::Infeasible) if !forced.is_empty() => {
            // Over-constrained reservations: retry without them, folding
            // this attempt's build/solve time into the retry's stats.
            sia_telemetry::counter("policy.ilp.reservation_retries").incr();
            let failed_solve_s = solve_t0.elapsed().as_secs_f64();
            let (out, mut stats) =
                solve_assignment_warm(cluster, candidates, &ForcedAssignments::new(), opts, prev);
            stats.build_s += build_s;
            stats.solve_s += failed_solve_s;
            (out, stats)
        }
        // Node/time limits exhausted: fall back to the Lagrangian
        // relaxation heuristic (near-optimal on this problem structure),
        // then plain greedy if even that fails to assign anything.
        Err(_) => {
            sia_telemetry::counter("policy.ilp.fallbacks").incr();
            let lagrangian = lagrangian_assignment(cluster, candidates);
            let (out, outcome) = if lagrangian.is_empty() {
                (
                    greedy_assignment(cluster, candidates),
                    SolveOutcome::GreedyFallback,
                )
            } else {
                (lagrangian, SolveOutcome::LagrangianFallback)
            };
            let stats = AssignmentStats {
                build_s,
                solve_s: solve_t0.elapsed().as_secs_f64(),
                nodes: 0,
                pivots: 0,
                lp_objective: None,
                objective: Some(assignment_weight(candidates, &out)),
                best_bound: None,
                nodes_pruned: 0,
                first_incumbent_node: None,
                first_incumbent_s: None,
                incumbent_seed: None,
                warm_nodes: 0,
                warm_pivots_saved: 0,
                shards: 0,
                budget_exhausted: true,
                lagrangian_iters: if outcome == SolveOutcome::LagrangianFallback {
                    50
                } else {
                    0
                },
                lagrangian_gap: 0.0,
                lagrangian_norm: 0.0,
                outcome,
            };
            (out, stats)
        }
    }
}

/// Per-round knobs of the sharded (price-and-decompose) solve path.
#[derive(Debug, Clone)]
pub struct ShardSolveOptions {
    /// Decomposition parameters (cohort size, escalation threshold, pricing
    /// iterations) plus the per-shard branch-and-bound options.
    pub decompose: DecomposeOptions,
    /// Per-round time budget in seconds, split across the estimated shard
    /// count and converted into a deterministic per-shard node budget.
    /// `None` leaves each shard bounded by `decompose.milp.max_nodes` alone.
    pub round_budget: Option<f64>,
    /// Worker threads for the shard fan-out (see [`pool::resolve_workers`]).
    pub workers: usize,
}

impl Default for ShardSolveOptions {
    fn default() -> Self {
        ShardSolveOptions {
            decompose: DecomposeOptions::default(),
            round_budget: None,
            workers: 1,
        }
    }
}

/// Solves the assignment ILP via the sharded price-and-decompose path
/// (`sia_solver::decompose`), fanning independent shard solves out over the
/// deterministic worker pool.
///
/// Reserved jobs are pre-assigned before pricing: a forced job whose
/// matching candidate exists takes its configuration off the top (its
/// capacity is deducted, its other candidates are dropped), mirroring the
/// monolithic path where forcing binds only when the candidate exists. The
/// result is identical at any worker count: shards are planned
/// deterministically, solved independently, and merged in plan order.
pub fn solve_assignment_sharded(
    cluster: &ClusterView,
    candidates: &[Candidate],
    forced: &ForcedAssignments,
    opts: &ShardSolveOptions,
) -> (BTreeMap<JobId, Configuration>, AssignmentStats) {
    if candidates.is_empty() {
        let (_, stats) =
            solve_assignment_warm(cluster, candidates, forced, &opts.decompose.milp, None);
        return (BTreeMap::new(), stats);
    }

    let build_t0 = Instant::now();
    let build_span = sia_telemetry::span("policy.shard_build");

    // Pre-assign reservations that have a matching candidate.
    let mut out: BTreeMap<JobId, Configuration> = BTreeMap::new();
    let mut forced_weight = 0.0_f64;
    let mut capacities: Vec<f64> = {
        let max_row = cluster.gpu_types().map(|t| t.0).max().unwrap_or(0);
        let mut caps = vec![0.0_f64; max_row + 1];
        for t in cluster.gpu_types() {
            caps[t.0] = cluster.gpus_of_type(t) as f64;
        }
        caps
    };
    for c in candidates {
        if forced.get(&c.job) == Some(&c.config) && !out.contains_key(&c.job) {
            out.insert(c.job, c.config);
            forced_weight += c.weight;
            let row = c.config.gpu_type.0;
            capacities[row] = (capacities[row] - c.config.gpus as f64).max(0.0);
        }
    }

    // Items over the remaining (unforced) candidates; group = job index in
    // the sorted job list, exactly as the Lagrangian fallback builds it.
    let jobs: Vec<JobId> = {
        let mut v: Vec<JobId> = candidates
            .iter()
            .map(|c| c.job)
            .filter(|j| !out.contains_key(j))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let group_of: BTreeMap<JobId, usize> = jobs.iter().enumerate().map(|(i, &j)| (j, i)).collect();
    let mut items: Vec<AssignmentItem> = Vec::new();
    let mut item_cand: Vec<usize> = Vec::new();
    for (i, c) in candidates.iter().enumerate() {
        if let Some(&g) = group_of.get(&c.job) {
            items.push(AssignmentItem {
                group: g,
                usage: vec![(c.config.gpu_type.0, c.config.gpus as f64)],
                weight: c.weight,
            });
            item_cand.push(i);
        }
    }
    drop(build_span);
    let build_s = build_t0.elapsed().as_secs_f64();

    // Split any round budget across the estimated shard count so the whole
    // fan-out respects it; the conversion to node budgets is deterministic
    // (see `sia_solver::milp::deterministic_node_budget`).
    let mut dec = opts.decompose.clone();
    if let Some(budget_s) = opts.round_budget {
        let est_shards = jobs.len().div_ceil(dec.max_shard_groups.max(1)).max(1);
        let per_shard = (budget_s / est_shards as f64).max(1e-6);
        dec.milp.time_limit = Some(Duration::from_secs_f64(per_shard));
    }

    let solve_t0 = Instant::now();
    let solve_span = sia_telemetry::span("policy.shard_solve");
    let plan = plan_shards(&items, &capacities, &dec);
    let workers = pool::resolve_workers(opts.workers);
    let outcomes: Vec<ShardOutcome> =
        pool::ordered_map(&plan.shards, workers, |s| solve_shard(s, &items, &dec.milp));
    let merged = merge_shards(&plan, &outcomes, &items, &capacities, &dec);
    drop(solve_span);

    for (&g, &i) in &merged.chosen {
        out.insert(jobs[g], candidates[item_cand[i]].config);
    }

    let objective = merged.objective + forced_weight;
    let stats = AssignmentStats {
        build_s,
        solve_s: solve_t0.elapsed().as_secs_f64(),
        nodes: merged.nodes,
        pivots: merged.pivots,
        lp_objective: None,
        objective: Some(objective),
        best_bound: Some(merged.best_bound + forced_weight),
        nodes_pruned: 0,
        first_incumbent_node: None,
        first_incumbent_s: None,
        incumbent_seed: None,
        warm_nodes: 0,
        warm_pivots_saved: 0,
        shards: merged.shards,
        budget_exhausted: merged.budget_exhausted,
        lagrangian_iters: merged.lagrangian.iterations,
        lagrangian_gap: merged.lagrangian.duality_gap,
        lagrangian_norm: merged.lagrangian.multiplier_norm,
        outcome: if merged.escalated && !merged.budget_exhausted {
            SolveOutcome::Optimal
        } else {
            SolveOutcome::Feasible
        },
    };
    (out, stats)
}

/// Total candidate weight of an assignment (the quantity the ILP maximizes).
fn assignment_weight(candidates: &[Candidate], chosen: &BTreeMap<JobId, Configuration>) -> f64 {
    candidates
        .iter()
        .filter(|c| chosen.get(&c.job) == Some(&c.config))
        .map(|c| c.weight)
        .sum()
}

/// Anytime fallback: projected-subgradient Lagrangian relaxation over the
/// same candidate set (see `sia_solver::lagrangian`).
fn lagrangian_assignment(
    cluster: &ClusterView,
    candidates: &[Candidate],
) -> BTreeMap<JobId, Configuration> {
    let jobs: Vec<JobId> = {
        let mut v: Vec<JobId> = candidates.iter().map(|c| c.job).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let group_of: BTreeMap<JobId, usize> = jobs.iter().enumerate().map(|(i, &j)| (j, i)).collect();
    let items: Vec<AssignmentItem> = candidates
        .iter()
        .map(|c| AssignmentItem {
            group: group_of[&c.job],
            usage: vec![(c.config.gpu_type.0, c.config.gpus as f64)],
            weight: c.weight,
        })
        .collect();
    let capacities: Vec<f64> = cluster
        .gpu_types()
        .map(|t| cluster.gpus_of_type(t) as f64)
        .collect();
    let sol = solve_assignment_lagrangian(&items, &capacities, 50);
    sol.chosen
        .into_iter()
        .map(|(g, i)| (jobs[g], candidates[i].config))
        .collect()
}

/// Greedy fallback: scan candidates by descending weight, assign when the
/// job is unassigned and capacity remains.
fn greedy_assignment(
    cluster: &ClusterView,
    candidates: &[Candidate],
) -> BTreeMap<JobId, Configuration> {
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| {
        candidates[b]
            .weight
            .partial_cmp(&candidates[a].weight)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut capacity: BTreeMap<usize, i64> = cluster
        .gpu_types()
        .map(|t| (t.0, cluster.gpus_of_type(t) as i64))
        .collect();
    let mut out = BTreeMap::new();
    for i in order {
        let c = &candidates[i];
        if out.contains_key(&c.job) {
            continue;
        }
        let cap = capacity.get_mut(&c.config.gpu_type.0).expect("known type");
        if *cap >= c.config.gpus as i64 {
            *cap -= c.config.gpus as i64;
            out.insert(c.job, c.config);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_cluster::{ClusterSpec, GpuTypeId};

    fn cand(job: u64, cfg: Configuration, weight: f64) -> Candidate {
        Candidate {
            job: JobId(job),
            config: cfg,
            replicas: cfg.gpus,
            value: weight,
            weight,
            keeps_current: false,
        }
    }

    fn two_type_cluster() -> ClusterView {
        // Matches the running example of §3.4: 1 node x 2 A-GPUs,
        // 1 node x 4 B-GPUs.
        let mut c = ClusterSpec::new();
        let a = c.add_gpu_kind("A", 16.0, 1);
        let b = c.add_gpu_kind("B", 16.0, 2);
        c.add_nodes(a, 1, 2);
        c.add_nodes(b, 1, 4);
        ClusterView::new(c)
    }

    #[test]
    fn reproduces_paper_running_example() {
        // Table 1's normalized goodput matrix: J1 and J2 over
        // C = {(1,1,A),(1,2,A),(1,1,B),(1,2,B),(1,4,B)} with utilities
        // J1: 1 2 1 2 3 ; J2: 2 1 2 3 4 (boxed optimum: J1 -> (1,4,B)=3... )
        // The paper boxes J1=(1,4,B) and J2=(1,2,A); we encode utilities so
        // that exactly that assignment is optimal: J1 gets 3 on (1,4,B) and
        // J2 gets 2 on (1,2,A), total 5, beating any alternative.
        let c = two_type_cluster();
        let a = GpuTypeId(0);
        let b = GpuTypeId(1);
        let configs = [
            Configuration::new(1, 1, a),
            Configuration::new(1, 2, a),
            Configuration::new(1, 1, b),
            Configuration::new(1, 2, b),
            Configuration::new(1, 4, b),
        ];
        let j1 = [1.0, 2.0, 1.0, 2.0, 3.0];
        let j2 = [2.0, 2.5, 2.0, 2.8, 2.9];
        let mut cands = Vec::new();
        for (i, cfg) in configs.iter().enumerate() {
            cands.push(cand(1, *cfg, j1[i]));
            cands.push(cand(2, *cfg, j2[i]));
        }
        let sol = solve_assignment(
            &c,
            &cands,
            &ForcedAssignments::new(),
            &MilpOptions::default(),
        );
        assert_eq!(sol[&JobId(1)], Configuration::new(1, 4, b));
        assert_eq!(sol[&JobId(2)], Configuration::new(1, 2, a));
    }

    #[test]
    fn capacity_respected() {
        let c = two_type_cluster();
        let b = GpuTypeId(1);
        // Three jobs all wanting all 4 B GPUs: only one can win.
        let cands: Vec<_> = (0..3)
            .map(|j| cand(j, Configuration::new(1, 4, b), 10.0 + j as f64))
            .collect();
        let sol = solve_assignment(
            &c,
            &cands,
            &ForcedAssignments::new(),
            &MilpOptions::default(),
        );
        assert_eq!(sol.len(), 1);
        assert!(sol.contains_key(&JobId(2)), "highest weight wins");
    }

    #[test]
    fn at_most_one_config_per_job() {
        let c = two_type_cluster();
        let a = GpuTypeId(0);
        let b = GpuTypeId(1);
        let cands = vec![
            cand(1, Configuration::new(1, 1, a), 5.0),
            cand(1, Configuration::new(1, 1, b), 5.0),
        ];
        let sol = solve_assignment(
            &c,
            &cands,
            &ForcedAssignments::new(),
            &MilpOptions::default(),
        );
        assert_eq!(sol.len(), 1);
    }

    #[test]
    fn forced_assignment_wins_even_if_suboptimal() {
        let c = two_type_cluster();
        let b = GpuTypeId(1);
        let cands = vec![
            cand(1, Configuration::new(1, 4, b), 100.0),
            cand(2, Configuration::new(1, 4, b), 1.0),
        ];
        let mut forced = ForcedAssignments::new();
        forced.insert(JobId(2), Configuration::new(1, 4, b));
        let sol = solve_assignment(&c, &cands, &forced, &MilpOptions::default());
        assert_eq!(sol.get(&JobId(2)), Some(&Configuration::new(1, 4, b)));
        assert!(
            !sol.contains_key(&JobId(1)),
            "capacity went to the reservation"
        );
    }

    #[test]
    fn greedy_fallback_respects_capacity() {
        let c = two_type_cluster();
        let b = GpuTypeId(1);
        let cands: Vec<_> = (0..4)
            .map(|j| cand(j, Configuration::new(1, 2, b), 1.0 + j as f64))
            .collect();
        let sol = greedy_assignment(&c, &cands);
        assert_eq!(sol.len(), 2); // 4 GPUs / 2 each
        let used: usize = sol.values().map(|cfg| cfg.gpus).sum();
        assert!(used <= 4);
    }

    #[test]
    fn empty_candidates_empty_solution() {
        let c = two_type_cluster();
        let sol = solve_assignment(&c, &[], &ForcedAssignments::new(), &MilpOptions::default());
        assert!(sol.is_empty());
    }

    #[test]
    fn sharded_solve_matches_monolithic_on_small_instances() {
        let c = two_type_cluster();
        let a = GpuTypeId(0);
        let b = GpuTypeId(1);
        let mut cands = Vec::new();
        for j in 0..6u64 {
            for (t, g) in [(a, 1usize), (a, 2), (b, 2), (b, 4)] {
                cands.push(cand(
                    j,
                    Configuration::new(1, g, t),
                    1.0 + j as f64 * 0.3 + g as f64,
                ));
            }
        }
        let (mono, mono_stats) = solve_assignment_with_stats(
            &c,
            &cands,
            &ForcedAssignments::new(),
            &MilpOptions::default(),
        );
        let (shard, shard_stats) = solve_assignment_sharded(
            &c,
            &cands,
            &ForcedAssignments::new(),
            &ShardSolveOptions::default(),
        );
        // Small instance escalates to an exact solve: same objective.
        let close = (mono_stats.objective.unwrap() - shard_stats.objective.unwrap()).abs();
        assert!(close < 1e-6, "objectives differ by {close}");
        assert_eq!(mono.len(), shard.len());
        assert!(shard_stats.lagrangian_iters > 0);
        assert!(shard_stats.best_bound.unwrap() + 1e-9 >= shard_stats.objective.unwrap());
    }

    #[test]
    fn sharded_solve_honors_forced_assignments() {
        let c = two_type_cluster();
        let b = GpuTypeId(1);
        let cands = vec![
            cand(1, Configuration::new(1, 4, b), 100.0),
            cand(2, Configuration::new(1, 4, b), 1.0),
        ];
        let mut forced = ForcedAssignments::new();
        forced.insert(JobId(2), Configuration::new(1, 4, b));
        let (sol, stats) =
            solve_assignment_sharded(&c, &cands, &forced, &ShardSolveOptions::default());
        assert_eq!(sol.get(&JobId(2)), Some(&Configuration::new(1, 4, b)));
        assert!(
            !sol.contains_key(&JobId(1)),
            "capacity went to the reservation"
        );
        assert!(stats.objective.unwrap() >= 1.0);
    }

    #[test]
    fn sharded_solve_identical_across_worker_counts() {
        let c = two_type_cluster();
        let a = GpuTypeId(0);
        let b = GpuTypeId(1);
        let mut cands = Vec::new();
        for j in 0..12u64 {
            for (t, g) in [(a, 1usize), (a, 2), (b, 1), (b, 2), (b, 4)] {
                cands.push(cand(
                    j,
                    Configuration::new(1, g, t),
                    1.0 + (j as f64 * 0.7).sin().abs() + g as f64 * 0.4,
                ));
            }
        }
        // Force the pure sharded path so the worker fan-out actually runs.
        let mk = |workers| ShardSolveOptions {
            decompose: sia_solver::DecomposeOptions {
                escalation_vars: 0,
                max_shard_groups: 3,
                ..Default::default()
            },
            round_budget: Some(0.05),
            workers,
        };
        let (base, base_stats) =
            solve_assignment_sharded(&c, &cands, &ForcedAssignments::new(), &mk(1));
        assert!(base_stats.shards >= 2);
        for workers in [2usize, 0] {
            let (sol, stats) =
                solve_assignment_sharded(&c, &cands, &ForcedAssignments::new(), &mk(workers));
            assert_eq!(base, sol, "workers={workers}");
            assert_eq!(base_stats.objective, stats.objective);
            assert_eq!(base_stats.best_bound, stats.best_bound);
            assert_eq!(base_stats.nodes, stats.nodes);
            assert_eq!(base_stats.shards, stats.shards);
        }
        // Capacity respected.
        let mut used = std::collections::BTreeMap::new();
        for cfg in base.values() {
            *used.entry(cfg.gpu_type).or_insert(0usize) += cfg.gpus;
        }
        assert!(used.get(&GpuTypeId(0)).copied().unwrap_or(0) <= 2);
        assert!(used.get(&GpuTypeId(1)).copied().unwrap_or(0) <= 4);
    }
}

#[cfg(test)]
mod fallback_tests {
    use super::*;
    use sia_cluster::{ClusterSpec, GpuTypeId};

    #[test]
    fn lagrangian_fallback_used_under_tiny_limits() {
        // A two-type cluster and enough candidates that a 0-node budget
        // forces the fallback; it must return a feasible assignment.
        let mut c = ClusterSpec::new();
        let a = c.add_gpu_kind("A", 16.0, 1);
        let b = c.add_gpu_kind("B", 16.0, 2);
        c.add_nodes(a, 2, 4);
        c.add_nodes(b, 2, 4);
        let c = ClusterView::new(c);
        let mut cands = Vec::new();
        for j in 0..10u64 {
            for (t, g) in [(a, 1usize), (a, 2), (b, 1), (b, 4)] {
                cands.push(Candidate {
                    job: JobId(j),
                    config: Configuration::new(1, g, t),
                    replicas: g,
                    value: 1.0 + (j as f64) * 0.1 + g as f64 * 0.2,
                    weight: 1.0 + (j as f64) * 0.1 + g as f64 * 0.2,
                    keeps_current: false,
                });
            }
        }
        let opts = MilpOptions {
            max_nodes: 0, // force the limit path
            ..MilpOptions::default()
        };
        let sol = solve_assignment(&c, &cands, &ForcedAssignments::new(), &opts);
        assert!(!sol.is_empty());
        let mut used = std::collections::BTreeMap::new();
        for cfg in sol.values() {
            *used.entry(cfg.gpu_type).or_insert(0usize) += cfg.gpus;
        }
        assert!(used.get(&GpuTypeId(0)).copied().unwrap_or(0) <= 8);
        assert!(used.get(&GpuTypeId(1)).copied().unwrap_or(0) <= 8);
    }
}
