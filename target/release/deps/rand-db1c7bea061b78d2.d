/root/repo/target/release/deps/rand-db1c7bea061b78d2.d: compat/rand/src/lib.rs

/root/repo/target/release/deps/rand-db1c7bea061b78d2: compat/rand/src/lib.rs

compat/rand/src/lib.rs:
