/root/repo/target/release/deps/fig_hybrid_parallel-4d91cc99df36d555.d: crates/bench/src/bin/fig_hybrid_parallel.rs

/root/repo/target/release/deps/fig_hybrid_parallel-4d91cc99df36d555: crates/bench/src/bin/fig_hybrid_parallel.rs

crates/bench/src/bin/fig_hybrid_parallel.rs:
