/root/repo/target/release/deps/fig8_ftf-e6cd116d9c18b99c.d: crates/bench/src/bin/fig8_ftf.rs

/root/repo/target/release/deps/fig8_ftf-e6cd116d9c18b99c: crates/bench/src/bin/fig8_ftf.rs

crates/bench/src/bin/fig8_ftf.rs:
