//! Admission control: the pluggable stage pipeline and the per-tenant
//! GPU-hour quota ledger.
//!
//! A submission passes every [`AdmissionStage`] in order before it reaches
//! the scheduler; the first failing stage rejects it with a typed reason
//! that lands in the response line and the audit stream. The built-in
//! pipeline is schema validation ([`SchemaStage`]) followed by quota and
//! queue-depth control ([`QuotaStage`]); embedders can splice in their own
//! stages.

use std::collections::BTreeMap;

use serde_json::{json, Value};
use sia_workloads::JobSpec;

/// Typed rejection: which stage refused and a stable reason label
/// (`invalid-spec`, `duplicate-id`, `queue-full`, `zero-quota`,
/// `quota-exceeded`), optionally followed by `: detail`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Name of the stage that refused.
    pub stage: &'static str,
    /// Stable reason label, optionally `label: detail`.
    pub reason: String,
}

impl Rejection {
    fn new(stage: &'static str, reason: impl Into<String>) -> Self {
        Rejection {
            stage,
            reason: reason.into(),
        }
    }

    /// The reason's stable label (everything before the first `:`).
    pub fn label(&self) -> &str {
        self.reason.split(':').next().unwrap_or(&self.reason)
    }
}

/// What an admission stage gets to look at.
#[derive(Debug)]
pub struct AdmissionContext<'a> {
    /// The job being admitted.
    pub job: &'a JobSpec,
    /// Tenant submitting it.
    pub tenant: &'a str,
    /// GPU-hours the tenant would be charged.
    pub charge_gpu_hours: f64,
    /// Jobs currently waiting for admission at a round boundary.
    pub pending: usize,
    /// True when the submitted job id is already taken.
    pub duplicate_id: bool,
}

/// One stage of the admission pipeline.
pub trait AdmissionStage {
    /// Stage name (reported in rejections and the audit stream).
    fn name(&self) -> &'static str;
    /// Checks one submission; `Err` rejects it with a typed reason.
    fn check(&self, ctx: &AdmissionContext<'_>, ledger: &QuotaLedger) -> Result<(), Rejection>;
}

/// Schema validation: the spec must be internally consistent before any
/// resource accounting happens.
#[derive(Debug, Default)]
pub struct SchemaStage;

impl AdmissionStage for SchemaStage {
    fn name(&self) -> &'static str {
        "schema"
    }

    fn check(&self, ctx: &AdmissionContext<'_>, _ledger: &QuotaLedger) -> Result<(), Rejection> {
        if ctx.duplicate_id {
            return Err(Rejection::new(
                self.name(),
                format!("duplicate-id: job {} already exists", ctx.job.id),
            ));
        }
        let j = ctx.job;
        if j.min_gpus == 0 {
            return Err(Rejection::new(
                self.name(),
                "invalid-spec: min_gpus must be >= 1",
            ));
        }
        if j.max_gpus < j.min_gpus {
            return Err(Rejection::new(
                self.name(),
                "invalid-spec: max_gpus must be >= min_gpus",
            ));
        }
        if !j.work_target.is_finite() || j.work_target <= 0.0 {
            return Err(Rejection::new(
                self.name(),
                "invalid-spec: work_target must be finite and positive",
            ));
        }
        if !j.submit_time.is_finite() || j.submit_time < 0.0 {
            return Err(Rejection::new(
                self.name(),
                "invalid-spec: submit_time must be finite and non-negative",
            ));
        }
        Ok(())
    }
}

/// Quota and queue-depth control: the tenant must have GPU-hour headroom
/// and the admission queue must not exceed its bound.
#[derive(Debug, Default)]
pub struct QuotaStage {
    /// Upper bound on jobs waiting for admission; `None` disables the
    /// check.
    pub max_pending: Option<usize>,
}

impl AdmissionStage for QuotaStage {
    fn name(&self) -> &'static str {
        "quota"
    }

    fn check(&self, ctx: &AdmissionContext<'_>, ledger: &QuotaLedger) -> Result<(), Rejection> {
        if let Some(cap) = self.max_pending {
            if ctx.pending >= cap {
                return Err(Rejection::new(
                    self.name(),
                    format!(
                        "queue-full: {} submissions already pending (cap {cap})",
                        ctx.pending
                    ),
                ));
            }
        }
        ledger
            .check(ctx.tenant, ctx.charge_gpu_hours)
            .map_err(|reason| Rejection::new(self.name(), reason))
    }
}

/// Per-tenant GPU-hour accounting.
///
/// A tenant's quota is the total GPU-hours it may have *committed*
/// (admitted and not refunded) at any instant. Admission is
/// boundary-inclusive: a charge that lands exactly on the quota is
/// accepted; the first hour past it is not. A quota of zero bars the
/// tenant outright (`zero-quota`), and cancellations refund the job's
/// full charge.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuotaLedger {
    /// GPU-hour quota applied to tenants without an explicit entry;
    /// `None` = unlimited.
    default_quota: Option<f64>,
    /// Per-tenant quota overrides.
    quotas: BTreeMap<String, f64>,
    /// GPU-hours currently committed per tenant.
    committed: BTreeMap<String, f64>,
}

impl QuotaLedger {
    /// Creates a ledger where unlisted tenants get `default_quota`
    /// (`None` = unlimited).
    pub fn new(default_quota: Option<f64>) -> Self {
        QuotaLedger {
            default_quota,
            ..QuotaLedger::default()
        }
    }

    /// Sets one tenant's quota, replacing any previous value.
    pub fn set_quota(&mut self, tenant: impl Into<String>, gpu_hours: f64) {
        self.quotas.insert(tenant.into(), gpu_hours);
    }

    /// The quota governing `tenant` (`None` = unlimited).
    pub fn quota(&self, tenant: &str) -> Option<f64> {
        self.quotas.get(tenant).copied().or(self.default_quota)
    }

    /// GPU-hours currently committed by `tenant`.
    pub fn committed(&self, tenant: &str) -> f64 {
        self.committed.get(tenant).copied().unwrap_or(0.0)
    }

    /// Every tenant the ledger knows about (explicit quota or committed
    /// hours), sorted and deduplicated — the iteration key of per-tenant
    /// metric gauges.
    pub fn tenants(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .quotas
            .keys()
            .chain(self.committed.keys())
            .cloned()
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Read-only admission check: would charging `tenant` `gpu_hours`
    /// respect its quota? Returns the typed reason on refusal.
    pub fn check(&self, tenant: &str, gpu_hours: f64) -> Result<(), String> {
        let Some(quota) = self.quota(tenant) else {
            return Ok(());
        };
        if quota <= 0.0 {
            return Err(format!(
                "zero-quota: tenant {tenant:?} has no GPU-hour quota"
            ));
        }
        let committed = self.committed(tenant);
        if committed + gpu_hours <= quota {
            Ok(())
        } else {
            Err(format!(
                "quota-exceeded: tenant {tenant:?} committed {committed} + {gpu_hours} > quota {quota} GPU-hours"
            ))
        }
    }

    /// Commits a charge (call after every stage accepted).
    pub fn charge(&mut self, tenant: &str, gpu_hours: f64) {
        *self.committed.entry(tenant.to_string()).or_insert(0.0) += gpu_hours;
    }

    /// Refunds a previously committed charge (cancellation). Clamped at
    /// zero so double refunds cannot mint headroom.
    pub fn refund(&mut self, tenant: &str, gpu_hours: f64) {
        if let Some(c) = self.committed.get_mut(tenant) {
            *c = (*c - gpu_hours).max(0.0);
        }
    }

    /// Serializes the ledger for a daemon snapshot.
    pub fn to_json(&self) -> Value {
        let null_or = |q: Option<f64>| q.map(Value::Float).unwrap_or(Value::Null);
        json!({
            "default_quota": null_or(self.default_quota),
            "quotas": Value::Object(
                self.quotas.iter().map(|(k, &v)| (k.clone(), Value::Float(v))).collect()
            ),
            "committed": Value::Object(
                self.committed.iter().map(|(k, &v)| (k.clone(), Value::Float(v))).collect()
            ),
        })
    }

    /// Rebuilds a ledger from [`QuotaLedger::to_json`].
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let map_of = |name: &str| -> Result<BTreeMap<String, f64>, String> {
            v.get(name)
                .and_then(Value::as_object)
                .ok_or_else(|| format!("ledger: missing {name}"))?
                .iter()
                .map(|(k, val)| {
                    val.as_f64()
                        .map(|f| (k.clone(), f))
                        .ok_or_else(|| format!("ledger: bad entry for {k:?} in {name}"))
                })
                .collect()
        };
        let default_quota = match v.get("default_quota") {
            None | Some(Value::Null) => None,
            Some(q) => Some(q.as_f64().ok_or("ledger: bad default_quota")?),
        };
        Ok(QuotaLedger {
            default_quota,
            quotas: map_of("quotas")?,
            committed: map_of("committed")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_is_inclusive() {
        let mut ledger = QuotaLedger::new(Some(100.0));
        ledger.charge("acme", 60.0);
        // Exactly at the boundary: admitted.
        assert!(ledger.check("acme", 40.0).is_ok());
        ledger.charge("acme", 40.0);
        // One more hour: refused with the typed label.
        let err = ledger.check("acme", 1.0).unwrap_err();
        assert!(err.starts_with("quota-exceeded"), "got: {err}");
    }

    #[test]
    fn zero_quota_bars_tenant() {
        let mut ledger = QuotaLedger::new(None);
        ledger.set_quota("interns", 0.0);
        let err = ledger.check("interns", 0.0).unwrap_err();
        assert!(err.starts_with("zero-quota"), "got: {err}");
        // Unlimited default still applies to everyone else.
        assert!(ledger.check("staff", 1e9).is_ok());
    }

    #[test]
    fn refund_restores_headroom_and_clamps() {
        let mut ledger = QuotaLedger::new(Some(50.0));
        ledger.charge("acme", 50.0);
        assert!(ledger.check("acme", 10.0).is_err());
        ledger.refund("acme", 50.0);
        assert!(ledger.check("acme", 50.0).is_ok());
        // Double refund cannot go negative.
        ledger.refund("acme", 50.0);
        assert_eq!(ledger.committed("acme"), 0.0);
    }

    #[test]
    fn ledger_round_trips_through_json() {
        let mut ledger = QuotaLedger::new(Some(100.0));
        ledger.set_quota("a", 10.0);
        ledger.set_quota("b", 0.0);
        ledger.charge("a", 4.5);
        let back = QuotaLedger::from_json(&ledger.to_json()).unwrap();
        assert_eq!(ledger, back);
        let unlimited = QuotaLedger::new(None);
        assert_eq!(
            QuotaLedger::from_json(&unlimited.to_json()).unwrap(),
            unlimited
        );
    }

    #[test]
    fn rejection_label_strips_detail() {
        let r = Rejection::new("quota", "queue-full: 5 pending (cap 5)");
        assert_eq!(r.label(), "queue-full");
    }
}
