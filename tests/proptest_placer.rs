//! Property-based tests for the Sia Placer: every capacity-feasible ILP
//! output must be realizable without drops (the §3.3 guarantee end-to-end).

use proptest::prelude::*;
use sia::cluster::{config_set, ClusterSpec, ClusterView, Configuration, JobId, Placement};
use sia::core::placer::realize;

fn arb_cluster() -> impl Strategy<Value = ClusterSpec> {
    proptest::collection::vec((1usize..=6, prop_oneof![Just(4usize), Just(8)]), 1..=3).prop_map(
        |groups| {
            let mut c = ClusterSpec::new();
            for (i, (nodes, gpn)) in groups.into_iter().enumerate() {
                let t = c.add_gpu_kind(&format!("g{i}"), 16.0, i as u32 + 1);
                c.add_nodes(t, nodes, gpn);
            }
            c
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any capacity-respecting multiset of valid configurations is placed
    /// in full (no drops), nodes are never over-committed, and distributed
    /// jobs never share nodes with anyone.
    #[test]
    fn capacity_feasible_decisions_always_place(
        spec in arb_cluster(),
        picks in proptest::collection::vec(0usize..1000, 0..20),
    ) {
        let configs = config_set(&spec);
        let mut remaining: Vec<i64> = spec
            .gpu_types()
            .map(|t| spec.gpus_of_type(t) as i64)
            .collect();
        let mut decisions: Vec<(JobId, Configuration, Placement)> = Vec::new();
        for (i, pick) in picks.iter().enumerate() {
            let cfg = configs[pick % configs.len()];
            if remaining[cfg.gpu_type.0] >= cfg.gpus as i64 {
                remaining[cfg.gpu_type.0] -= cfg.gpus as i64;
                decisions.push((JobId(i as u64), cfg, Placement::empty()));
            }
        }
        let view = ClusterView::new(spec.clone());
        let out = realize(&view, &decisions);
        prop_assert_eq!(out.dropped, 0, "capacity-feasible set must place");
        prop_assert_eq!(out.allocations.len(), decisions.len());

        // Node capacity and rule checks.
        let mut used = vec![0usize; spec.nodes().len()];
        for (job, cfg, _) in &decisions {
            let p = &out.allocations[job];
            prop_assert_eq!(p.total_gpus(), cfg.gpus);
            prop_assert_eq!(p.num_nodes(), cfg.nodes);
            prop_assert!(p.is_single_type(&spec));
            for &(node, g) in &p.slots {
                prop_assert_eq!(spec.nodes()[node].gpu_type, cfg.gpu_type);
                used[node] += g;
            }
        }
        for (n, &u) in used.iter().enumerate() {
            prop_assert!(u <= spec.nodes()[n].num_gpus, "node {} over-committed", n);
        }
        // Rule: multi-node jobs own their nodes exclusively.
        for (job, cfg, _) in &decisions {
            if cfg.nodes > 1 {
                let mine: std::collections::BTreeSet<usize> =
                    out.allocations[job].slots.iter().map(|&(n, _)| n).collect();
                for (other, _, _) in &decisions {
                    if other != job {
                        for &(n, _) in &out.allocations[other].slots {
                            prop_assert!(!mine.contains(&n),
                                "distributed job shares node {}", n);
                        }
                    }
                }
            }
        }
    }

    /// Keeping current placements never breaks feasibility: re-realizing the
    /// previous round's own output is a no-op (zero evictions).
    #[test]
    fn idempotent_re_realization(
        spec in arb_cluster(),
        picks in proptest::collection::vec(0usize..1000, 0..12),
    ) {
        let configs = config_set(&spec);
        let mut remaining: Vec<i64> = spec
            .gpu_types()
            .map(|t| spec.gpus_of_type(t) as i64)
            .collect();
        let mut decisions: Vec<(JobId, Configuration, Placement)> = Vec::new();
        for (i, pick) in picks.iter().enumerate() {
            let cfg = configs[pick % configs.len()];
            if remaining[cfg.gpu_type.0] >= cfg.gpus as i64 {
                remaining[cfg.gpu_type.0] -= cfg.gpus as i64;
                decisions.push((JobId(i as u64), cfg, Placement::empty()));
            }
        }
        let view = ClusterView::new(spec.clone());
        let first = realize(&view, &decisions);
        let with_current: Vec<_> = decisions
            .iter()
            .map(|(j, cfg, _)| (*j, *cfg, first.allocations[j].clone()))
            .collect();
        let second = realize(&view, &with_current);
        prop_assert_eq!(second.evictions, 0);
        prop_assert_eq!(&second.allocations, &first.allocations);
    }
}
