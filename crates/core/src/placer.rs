//! The Sia Placer: realizes chosen configurations on physical nodes.
//!
//! Placement rules (§3.1): (a) partial-node allocations never split across
//! nodes, (b) whole-node allocations take whole nodes, (c) if fragmentation
//! prevents a rule-conforming placement, evict and retry. Because the ILP's
//! capacity constraints together with the §3.3 configuration restrictions
//! guarantee a placement exists when packing from scratch, the retry is a
//! clean re-pack in canonical order — the "evictions" are exactly the jobs
//! whose kept placements had to move.

use std::collections::BTreeMap;

use sia_cluster::{ClusterView, Configuration, FreeGpus, JobId, Placement};
use sia_sim::AllocationMap;

use crate::matrix::matches_placement;

/// Result of placement realization.
#[derive(Debug, Clone)]
pub struct PlacerOutcome {
    /// Final placements per job.
    pub allocations: AllocationMap,
    /// Jobs evicted from their kept placements by the fragmentation retry.
    pub evictions: usize,
    /// Jobs that could not be placed at all (should not happen for valid
    /// ILP output; tracked defensively).
    pub dropped: usize,
}

/// Realizes `decisions` (configuration per job, plus each job's current
/// placement for move-avoidance) into concrete placements.
pub fn realize(
    cluster: &ClusterView,
    decisions: &[(JobId, Configuration, Placement)],
) -> PlacerOutcome {
    let _span = sia_telemetry::span("placement.realize");
    sia_telemetry::counter("placement.realizes").incr();
    let spec = cluster.spec();
    // Attempt 1: keep matching current placements, place the rest around
    // them (reduces unnecessary migration / de-fragmentation restarts).
    if let Some(allocations) = try_with_keeps(cluster, decisions) {
        return PlacerOutcome {
            allocations,
            evictions: 0,
            dropped: 0,
        };
    }
    // Attempt 2 (rule c): evict everything and re-pack in canonical order.
    sia_telemetry::counter("placement.fragmentation_retries").incr();
    let mut free = FreeGpus::for_view(cluster);
    let mut order: Vec<usize> = (0..decisions.len()).collect();
    canonical_sort(&mut order, decisions);
    let mut allocations = AllocationMap::new();
    let mut dropped = 0usize;
    let mut evictions = 0usize;
    for i in order {
        let (job, cfg, current) = &decisions[i];
        match free.place(spec, cfg) {
            Ok(p) => {
                if !current.is_empty() && p != *current {
                    evictions += 1;
                }
                allocations.insert(*job, p);
            }
            Err(_) => dropped += 1,
        }
    }
    if evictions > 0 {
        sia_telemetry::counter("placement.evictions").add(evictions as u64);
    }
    if dropped > 0 {
        sia_telemetry::counter("placement.dropped").add(dropped as u64);
    }
    PlacerOutcome {
        allocations,
        evictions,
        dropped,
    }
}

/// Attempt 1: honor kept placements; `None` on fragmentation.
fn try_with_keeps(
    cluster: &ClusterView,
    decisions: &[(JobId, Configuration, Placement)],
) -> Option<AllocationMap> {
    let spec = cluster.spec();
    // Free pool shields Draining/Removed nodes; kept placements on Draining
    // nodes deduct only what the pool tracks (the eviction sweep runs before
    // scheduling, so no current placement references a Removed node).
    let mut free = FreeGpus::for_view(cluster);
    let mut allocations = AllocationMap::new();
    let mut rest: Vec<usize> = Vec::new();
    for (i, (job, cfg, current)) in decisions.iter().enumerate() {
        if matches_placement(spec, cfg, current) {
            free.take_available(cluster, current);
            allocations.insert(*job, current.clone());
        } else {
            rest.push(i);
        }
    }
    canonical_sort(&mut rest, decisions);
    for i in rest {
        let (job, cfg, _) = &decisions[i];
        match free.place(spec, cfg) {
            Ok(p) => {
                allocations.insert(*job, p);
            }
            Err(_) => return None,
        }
    }
    Some(allocations)
}

/// Canonical packing order: multi-node (descending node count) first, then
/// partial-node allocations by descending GPU count (buddy packing).
fn canonical_sort(order: &mut [usize], decisions: &[(JobId, Configuration, Placement)]) {
    order.sort_by_key(|&i| {
        let cfg = &decisions[i].1;
        (
            std::cmp::Reverse(cfg.nodes),
            std::cmp::Reverse(cfg.gpus),
            decisions[i].0,
        )
    });
}

/// Convenience: realize an ILP solution map against current placements.
pub fn realize_map(
    cluster: &ClusterView,
    chosen: &BTreeMap<JobId, Configuration>,
    current: &BTreeMap<JobId, Placement>,
) -> PlacerOutcome {
    let decisions: Vec<_> = chosen
        .iter()
        .map(|(&job, &cfg)| {
            let cur = current.get(&job).cloned().unwrap_or_else(Placement::empty);
            (job, cfg, cur)
        })
        .collect();
    realize(cluster, &decisions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_cluster::{ClusterSpec, GpuTypeId};

    fn cluster() -> ClusterView {
        // 4 nodes x 4 t4 GPUs.
        let mut c = ClusterSpec::new();
        let t = c.add_gpu_kind("t4", 16.0, 1);
        c.add_nodes(t, 4, 4);
        ClusterView::new(c)
    }

    #[test]
    fn keeps_current_placements_when_possible() {
        let c = cluster();
        let t = GpuTypeId(0);
        let current = Placement::new(vec![(2, 2)]);
        let decisions = vec![
            (JobId(1), Configuration::new(1, 2, t), current.clone()),
            (JobId(2), Configuration::new(1, 4, t), Placement::empty()),
        ];
        let out = realize(&c, &decisions);
        assert_eq!(out.evictions, 0);
        assert_eq!(out.dropped, 0);
        assert_eq!(out.allocations[&JobId(1)], current);
        assert_eq!(out.allocations[&JobId(2)].total_gpus(), 4);
        // Whole-node job must not share node 2.
        assert!(out.allocations[&JobId(2)]
            .slots
            .iter()
            .all(|&(n, _)| n != 2));
    }

    #[test]
    fn fragmentation_triggers_repack() {
        let c = cluster();
        let t = GpuTypeId(0);
        // Four jobs currently holding 1 GPU on each of the four nodes; a new
        // job needs 2 whole nodes. Keeping all four placements fragments the
        // cluster, so the placer must evict some.
        let decisions = vec![
            (
                JobId(1),
                Configuration::new(1, 1, t),
                Placement::new(vec![(0, 1)]),
            ),
            (
                JobId(2),
                Configuration::new(1, 1, t),
                Placement::new(vec![(1, 1)]),
            ),
            (
                JobId(3),
                Configuration::new(1, 1, t),
                Placement::new(vec![(2, 1)]),
            ),
            (
                JobId(4),
                Configuration::new(1, 1, t),
                Placement::new(vec![(3, 1)]),
            ),
            (JobId(5), Configuration::new(2, 8, t), Placement::empty()),
        ];
        let out = realize(&c, &decisions);
        assert_eq!(out.dropped, 0);
        assert_eq!(out.allocations.len(), 5);
        assert!(out.evictions > 0, "some jobs must have moved");
        let multi = &out.allocations[&JobId(5)];
        assert_eq!(multi.num_nodes(), 2);
        assert_eq!(multi.total_gpus(), 8);
    }

    #[test]
    fn capacity_tight_packing_succeeds() {
        let c = cluster();
        let t = GpuTypeId(0);
        // Exactly fills the cluster: one 2-node job + 2x4 + 4x2 partials
        // would exceed; use 1x(2,8) + 2x(1,4) = 16 GPUs.
        let decisions = vec![
            (JobId(1), Configuration::new(2, 8, t), Placement::empty()),
            (JobId(2), Configuration::new(1, 4, t), Placement::empty()),
            (JobId(3), Configuration::new(1, 4, t), Placement::empty()),
        ];
        let out = realize(&c, &decisions);
        assert_eq!(out.dropped, 0);
        let used: usize = out.allocations.values().map(|p| p.total_gpus()).sum();
        assert_eq!(used, 16);
    }

    #[test]
    fn distributed_jobs_never_share_nodes() {
        let c = cluster();
        let t = GpuTypeId(0);
        let decisions = vec![
            (JobId(1), Configuration::new(2, 8, t), Placement::empty()),
            (JobId(2), Configuration::new(2, 8, t), Placement::empty()),
        ];
        let out = realize(&c, &decisions);
        let a: Vec<usize> = out.allocations[&JobId(1)]
            .slots
            .iter()
            .map(|&(n, _)| n)
            .collect();
        let b: Vec<usize> = out.allocations[&JobId(2)]
            .slots
            .iter()
            .map(|&(n, _)| n)
            .collect();
        assert!(a.iter().all(|n| !b.contains(n)));
    }
}
