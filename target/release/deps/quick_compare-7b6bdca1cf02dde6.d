/root/repo/target/release/deps/quick_compare-7b6bdca1cf02dde6.d: crates/bench/src/bin/quick_compare.rs

/root/repo/target/release/deps/quick_compare-7b6bdca1cf02dde6: crates/bench/src/bin/quick_compare.rs

crates/bench/src/bin/quick_compare.rs:
