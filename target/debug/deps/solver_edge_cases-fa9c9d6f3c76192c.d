/root/repo/target/debug/deps/solver_edge_cases-fa9c9d6f3c76192c.d: tests/solver_edge_cases.rs

/root/repo/target/debug/deps/solver_edge_cases-fa9c9d6f3c76192c: tests/solver_edge_cases.rs

tests/solver_edge_cases.rs:
