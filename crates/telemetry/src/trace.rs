//! The simulated-time flight recorder.
//!
//! Where the rest of `sia-telemetry` answers *where does the scheduler's
//! host wall-clock go*, this module answers *what happened to job J inside
//! the simulation, and why*: a typed per-job lifecycle event stream stamped
//! with **simulated** time, recorded by both simulation engines through the
//! same shared helpers so the two streams are comparable record-for-record.
//!
//! Three pieces:
//!
//! - [`FlightRecorder`] — the per-run recorder: a bounded in-memory ring
//!   (always on; overflow drops the *oldest* records and counts them) plus
//!   an optional full-fidelity JSONL spill file. The recorder is owned by
//!   one engine run, so recording is plain mutation — no locks at all.
//!   The spill is flushed on drop, so a run that panics mid-simulation
//!   still leaves a parseable JSONL file behind.
//! - [`FlightTrace`] — the recorded stream, attached to every `SimResult`.
//!   Serializes to JSONL, parses back, canonicalizes for byte comparison,
//!   and exports to the Chrome trace-event format (loadable in Perfetto /
//!   `chrome://tracing`).
//! - [`TraceReport`] — the derived per-job attribution view: queueing
//!   delay, restart count/overhead, allocation churn, time on each GPU
//!   type, and the cluster occupancy time series. This is the engine room
//!   of `sia-cli trace-report`.
//!
//! ## Stream schema (one JSON object per line)
//!
//! Every record carries `t` (simulated seconds), `seq` (per-run emission
//! sequence) and `ev` (the kind). Kind-specific fields:
//!
//! ```json
//! {"ev":"meta","gpu_types":["rtx","a100","t4"],"round_s":60.0,"t":0.0,"seq":0}
//! {"ev":"submitted","job":3,"name":"philly-3","model":"resnet50","t":41.0,"seq":7}
//! {"ev":"admitted","job":3,"t":41.0,"seq":8}
//! {"ev":"alloc","job":3,"gpu_type":1,"gpus":4,"reason":"scaled-up","restart":true,"t":120.0,"seq":19}
//! {"ev":"restart_started","job":3,"cost_s":42.5,"t":120.0,"seq":20}
//! {"ev":"restart_finished","job":3,"t":162.5,"seq":21}
//! {"ev":"failed","job":3,"count":1,"t":507.3,"seq":30}
//! {"ev":"completed","job":3,"t":841.9,"seq":44}
//! {"ev":"round","contention":5,"policy_runtime_s":0.0031,"t":120.0,"seq":18}
//! ```
//!
//! `alloc` records describe the *new* allocation (`gpu_type` is `null` and
//! `gpus` is 0 when the job lost its resources); `reason` is one of the
//! [`AllocReason`] labels and `restart` flags whether the change preempted
//! a running job (i.e. counts toward the job's restart total).
//!
//! ## Determinism and cross-engine identity
//!
//! All fields are simulation-determined except `round.policy_runtime_s`,
//! which is host wall-clock, and the emission *order*, which reflects each
//! engine's processing order (the round engine logs a completion when its
//! execute scan discovers it; the event engine logs it when the completion
//! event fires). [`FlightTrace::canonical_jsonl`] erases exactly these two
//! artifacts — it zeroes `policy_runtime_s` and sorts records by
//! `(t, kind-rank, job)` — and nothing else, so two same-seed runs, on the
//! same engine or across engines (failures off), produce **byte-identical**
//! canonical streams. `tests/engine_parity.rs` pins this.

use std::collections::{BTreeMap, VecDeque};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use serde_json::{json, Value};

/// Why an allocation changed. Stable labels appear in the JSONL stream and
/// in `trace-report` output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocReason {
    /// A queued job received its first resources (or resources after a
    /// preemption gap).
    Started,
    /// Same GPU type, more GPUs.
    ScaledUp,
    /// Same GPU type, fewer GPUs.
    ScaledDown,
    /// Different GPU type, or a same-size move across nodes.
    Migrated,
    /// A running job lost all resources to a scheduling decision.
    Preempted,
    /// The job finished and released its resources.
    Completed,
    /// The change was decided by a fallback heuristic after the exact ILP
    /// exhausted its limits (`SolveOutcome::{Lagrangian,Greedy}Fallback`).
    IlpInfeasibleFallback,
    /// The job's nodes left the cluster (abrupt kill or expired drain
    /// grace window): the engine evicted it, not a scheduling decision.
    CapacityLost,
    /// A client cancelled the job (serve mode): the release was requested,
    /// not decided by the scheduler or caused by completion.
    Cancelled,
}

impl AllocReason {
    /// Stable lowercase label used in the JSONL stream.
    pub fn label(self) -> &'static str {
        match self {
            AllocReason::Started => "started",
            AllocReason::ScaledUp => "scaled-up",
            AllocReason::ScaledDown => "scaled-down",
            AllocReason::Migrated => "migrated",
            AllocReason::Preempted => "preempted",
            AllocReason::Completed => "completed",
            AllocReason::IlpInfeasibleFallback => "ilp-infeasible-fallback",
            AllocReason::CapacityLost => "capacity-lost",
            AllocReason::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`AllocReason::label`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "started" => AllocReason::Started,
            "scaled-up" => AllocReason::ScaledUp,
            "scaled-down" => AllocReason::ScaledDown,
            "migrated" => AllocReason::Migrated,
            "preempted" => AllocReason::Preempted,
            "completed" => AllocReason::Completed,
            "ilp-infeasible-fallback" => AllocReason::IlpInfeasibleFallback,
            "capacity-lost" => AllocReason::CapacityLost,
            "cancelled" => AllocReason::Cancelled,
            _ => return None,
        })
    }
}

/// A typed flight-recorder event. Job ids are the raw `JobId` values;
/// GPU types are indices into the [`TraceEvent::Meta`] name table (the
/// recorder sits below `sia-cluster` in the crate graph, so it speaks plain
/// integers).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Run header: GPU type name table and the scheduling-round duration.
    /// Always the first record of a stream.
    Meta {
        /// GPU type names, indexed by `gpu_type` fields.
        gpu_types: Vec<String>,
        /// Scheduling round duration, seconds.
        round_duration: f64,
    },
    /// A job entered the system (stamped with its submission instant).
    JobSubmitted {
        /// Job id.
        job: u64,
        /// Job name.
        name: String,
        /// Model name.
        model: String,
    },
    /// The engine admitted the job (built its estimator, charged profiling).
    JobAdmitted {
        /// Job id.
        job: u64,
    },
    /// The job's allocation changed; fields describe the new allocation.
    AllocationChanged {
        /// Job id.
        job: u64,
        /// New GPU type index (`None` when the job now holds nothing).
        gpu_type: Option<usize>,
        /// New GPU count (0 when the job now holds nothing).
        gpus: usize,
        /// Why the allocation changed.
        reason: AllocReason,
        /// Whether the change preempted a running job (counts as a restart).
        restart: bool,
    },
    /// The job began paying checkpoint-restore time.
    RestartStarted {
        /// Job id.
        job: u64,
        /// Seconds of restore time added by this event.
        checkpoint_cost: f64,
    },
    /// The job finished its checkpoint-restore and resumed useful work.
    RestartFinished {
        /// Job id.
        job: u64,
    },
    /// Injected worker failure(s) rolled the job back to its checkpoint.
    JobFailed {
        /// Job id.
        job: u64,
        /// Number of failures observed at this instant (the round engine
        /// draws a per-round Poisson count; the event engine always 1).
        count: u64,
    },
    /// The job completed its work target.
    JobCompleted {
        /// Job id.
        job: u64,
    },
    /// A client cancelled the job before it completed (serve mode).
    JobCancelled {
        /// Job id.
        job: u64,
    },
    /// A scheduling round ran (only rounds with at least one active job).
    RoundScheduled {
        /// Jobs wanting resources this round.
        contention: usize,
        /// Host wall-clock seconds the policy + apply took (the only
        /// non-deterministic field in the stream; canonicalization zeroes
        /// it).
        policy_runtime: f64,
    },
    /// Fresh nodes joined the cluster (capacity grew).
    CapacityAdded {
        /// GPU type index (meta name table).
        gpu_type: usize,
        /// Number of nodes added.
        nodes: usize,
        /// Total GPUs added.
        gpus: usize,
    },
    /// Nodes left the cluster (capacity shrank). Stamped with the scripted
    /// event time even when eviction is enforced at the next round boundary.
    CapacityRemoved {
        /// GPU type index (meta name table).
        gpu_type: usize,
        /// Number of nodes removed.
        nodes: usize,
        /// Total GPUs removed.
        gpus: usize,
        /// True when the removal completed a drain (evicted jobs keep their
        /// progress); false for an abrupt kill (progress rolls back to the
        /// last checkpoint).
        graceful: bool,
    },
    /// Nodes stopped accepting new placements ahead of a graceful removal.
    DrainStarted {
        /// GPU type index (meta name table).
        gpu_type: usize,
        /// Number of nodes draining.
        nodes: usize,
        /// Total GPUs on the draining nodes.
        gpus: usize,
    },
    /// Per-node straggler multiplier changed (`factor == 1.0` restores
    /// full speed).
    NodeDegraded {
        /// GPU type index (meta name table).
        gpu_type: usize,
        /// Number of nodes affected.
        nodes: usize,
        /// Throughput multiplier now in effect on those nodes.
        factor: f64,
    },
}

impl TraceEvent {
    /// Stable kind label (the `ev` field of the JSONL schema).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Meta { .. } => "meta",
            TraceEvent::JobSubmitted { .. } => "submitted",
            TraceEvent::JobAdmitted { .. } => "admitted",
            TraceEvent::AllocationChanged { .. } => "alloc",
            TraceEvent::RestartStarted { .. } => "restart_started",
            TraceEvent::RestartFinished { .. } => "restart_finished",
            TraceEvent::JobFailed { .. } => "failed",
            TraceEvent::JobCompleted { .. } => "completed",
            TraceEvent::JobCancelled { .. } => "cancelled",
            TraceEvent::RoundScheduled { .. } => "round",
            TraceEvent::CapacityAdded { .. } => "capacity_added",
            TraceEvent::CapacityRemoved { .. } => "capacity_removed",
            TraceEvent::DrainStarted { .. } => "drain_started",
            TraceEvent::NodeDegraded { .. } => "degraded",
        }
    }

    /// The job this event concerns, if any.
    pub fn job(&self) -> Option<u64> {
        match *self {
            TraceEvent::JobSubmitted { job, .. }
            | TraceEvent::JobAdmitted { job }
            | TraceEvent::AllocationChanged { job, .. }
            | TraceEvent::RestartStarted { job, .. }
            | TraceEvent::RestartFinished { job }
            | TraceEvent::JobFailed { job, .. }
            | TraceEvent::JobCompleted { job }
            | TraceEvent::JobCancelled { job } => Some(job),
            TraceEvent::Meta { .. }
            | TraceEvent::RoundScheduled { .. }
            | TraceEvent::CapacityAdded { .. }
            | TraceEvent::CapacityRemoved { .. }
            | TraceEvent::DrainStarted { .. }
            | TraceEvent::NodeDegraded { .. } => None,
        }
    }

    /// Canonical same-timestamp ordering class (mirrors the event engine's
    /// same-timestamp priorities: completions before admissions before the
    /// round, with the round's own decisions last).
    fn rank(&self) -> u8 {
        match self {
            TraceEvent::Meta { .. } => 0,
            TraceEvent::JobCompleted { .. } => 1,
            TraceEvent::JobFailed { .. } => 2,
            TraceEvent::JobSubmitted { .. } => 3,
            TraceEvent::JobAdmitted { .. } => 4,
            TraceEvent::RestartFinished { .. } => 5,
            TraceEvent::RoundScheduled { .. } => 6,
            TraceEvent::AllocationChanged { .. } => 7,
            TraceEvent::RestartStarted { .. } => 8,
            // Capacity events sort after job records at the same instant;
            // both engines record them at the scripted event time, so any
            // fixed relative order keeps the canonical streams identical.
            TraceEvent::CapacityAdded { .. } => 9,
            TraceEvent::CapacityRemoved { .. } => 10,
            TraceEvent::DrainStarted { .. } => 11,
            TraceEvent::NodeDegraded { .. } => 12,
            // Cancellations are client requests delivered at a round
            // boundary; sorting them after everything else at the same
            // instant keeps pre-existing streams untouched.
            TraceEvent::JobCancelled { .. } => 13,
        }
    }
}

/// One recorded event: simulated timestamp, emission sequence, payload.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Simulated time, seconds.
    pub t: f64,
    /// Per-run emission sequence number (0-based, gap-free).
    pub seq: u64,
    /// The typed event.
    pub ev: TraceEvent,
}

impl FlightRecord {
    /// Serializes to the JSONL schema.
    pub fn to_value(&self) -> Value {
        let mut v = match &self.ev {
            TraceEvent::Meta {
                gpu_types,
                round_duration,
            } => json!({
                "gpu_types": gpu_types.iter().map(|s| json!(s)).collect::<Vec<_>>(),
                "round_s": *round_duration,
            }),
            TraceEvent::JobSubmitted { job, name, model } => json!({
                "job": *job, "name": name, "model": model,
            }),
            TraceEvent::JobAdmitted { job } => json!({ "job": *job }),
            TraceEvent::AllocationChanged {
                job,
                gpu_type,
                gpus,
                reason,
                restart,
            } => json!({
                "job": *job,
                "gpu_type": match gpu_type { Some(t) => json!(*t as u64), None => Value::Null },
                "gpus": *gpus as u64,
                "reason": reason.label(),
                "restart": *restart,
            }),
            TraceEvent::RestartStarted {
                job,
                checkpoint_cost,
            } => json!({ "job": *job, "cost_s": *checkpoint_cost }),
            TraceEvent::RestartFinished { job } => json!({ "job": *job }),
            TraceEvent::JobFailed { job, count } => json!({ "job": *job, "count": *count }),
            TraceEvent::JobCompleted { job } => json!({ "job": *job }),
            TraceEvent::JobCancelled { job } => json!({ "job": *job }),
            TraceEvent::RoundScheduled {
                contention,
                policy_runtime,
            } => json!({
                "contention": *contention as u64,
                "policy_runtime_s": *policy_runtime,
            }),
            TraceEvent::CapacityAdded {
                gpu_type,
                nodes,
                gpus,
            } => json!({
                "gpu_type": *gpu_type as u64,
                "nodes": *nodes as u64,
                "gpus": *gpus as u64,
            }),
            TraceEvent::CapacityRemoved {
                gpu_type,
                nodes,
                gpus,
                graceful,
            } => json!({
                "gpu_type": *gpu_type as u64,
                "nodes": *nodes as u64,
                "gpus": *gpus as u64,
                "graceful": *graceful,
            }),
            TraceEvent::DrainStarted {
                gpu_type,
                nodes,
                gpus,
            } => json!({
                "gpu_type": *gpu_type as u64,
                "nodes": *nodes as u64,
                "gpus": *gpus as u64,
            }),
            TraceEvent::NodeDegraded {
                gpu_type,
                nodes,
                factor,
            } => json!({
                "gpu_type": *gpu_type as u64,
                "nodes": *nodes as u64,
                "factor": *factor,
            }),
        };
        if let Value::Object(m) = &mut v {
            m.insert("ev".into(), json!(self.ev.kind()));
            m.insert("t".into(), json!(self.t));
            m.insert("seq".into(), json!(self.seq));
        }
        v
    }

    /// Parses one JSONL record.
    pub fn from_value(v: &Value) -> Result<FlightRecord, String> {
        let kind = v
            .get("ev")
            .and_then(Value::as_str)
            .ok_or("record missing \"ev\"")?;
        let t = v
            .get("t")
            .and_then(Value::as_f64)
            .ok_or("record missing \"t\"")?;
        let seq = v
            .get("seq")
            .and_then(Value::as_u64)
            .ok_or("record missing \"seq\"")?;
        let job = |field: &str| -> Result<u64, String> {
            v.get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{kind} record missing \"{field}\""))
        };
        let ev = match kind {
            "meta" => TraceEvent::Meta {
                gpu_types: v
                    .get("gpu_types")
                    .and_then(Value::as_array)
                    .ok_or("meta record missing \"gpu_types\"")?
                    .iter()
                    .map(|s| s.as_str().unwrap_or("?").to_string())
                    .collect(),
                round_duration: v.get("round_s").and_then(Value::as_f64).unwrap_or(60.0),
            },
            "submitted" => TraceEvent::JobSubmitted {
                job: job("job")?,
                name: v
                    .get("name")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
                model: v
                    .get("model")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
            },
            "admitted" => TraceEvent::JobAdmitted { job: job("job")? },
            "alloc" => TraceEvent::AllocationChanged {
                job: job("job")?,
                gpu_type: v
                    .get("gpu_type")
                    .and_then(Value::as_u64)
                    .map(|t| t as usize),
                gpus: job("gpus")? as usize,
                reason: v
                    .get("reason")
                    .and_then(Value::as_str)
                    .and_then(AllocReason::parse)
                    .ok_or("alloc record has unknown \"reason\"")?,
                restart: v.get("restart").and_then(Value::as_bool).unwrap_or(false),
            },
            "restart_started" => TraceEvent::RestartStarted {
                job: job("job")?,
                checkpoint_cost: v.get("cost_s").and_then(Value::as_f64).unwrap_or(0.0),
            },
            "restart_finished" => TraceEvent::RestartFinished { job: job("job")? },
            "failed" => TraceEvent::JobFailed {
                job: job("job")?,
                count: v.get("count").and_then(Value::as_u64).unwrap_or(1),
            },
            "completed" => TraceEvent::JobCompleted { job: job("job")? },
            "cancelled" => TraceEvent::JobCancelled { job: job("job")? },
            "round" => TraceEvent::RoundScheduled {
                contention: job("contention")? as usize,
                policy_runtime: v
                    .get("policy_runtime_s")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
            },
            "capacity_added" => TraceEvent::CapacityAdded {
                gpu_type: job("gpu_type")? as usize,
                nodes: job("nodes")? as usize,
                gpus: job("gpus")? as usize,
            },
            "capacity_removed" => TraceEvent::CapacityRemoved {
                gpu_type: job("gpu_type")? as usize,
                nodes: job("nodes")? as usize,
                gpus: job("gpus")? as usize,
                graceful: v.get("graceful").and_then(Value::as_bool).unwrap_or(false),
            },
            "drain_started" => TraceEvent::DrainStarted {
                gpu_type: job("gpu_type")? as usize,
                nodes: job("nodes")? as usize,
                gpus: job("gpus")? as usize,
            },
            "degraded" => TraceEvent::NodeDegraded {
                gpu_type: job("gpu_type")? as usize,
                nodes: job("nodes")? as usize,
                factor: v.get("factor").and_then(Value::as_f64).unwrap_or(1.0),
            },
            other => return Err(format!("unknown record kind {other:?}")),
        };
        Ok(FlightRecord { t, seq, ev })
    }
}

/// The JSONL spill sink of a [`FlightRecorder`]. Flushed on drop so a
/// panicking run still leaves complete lines behind.
#[derive(Debug)]
struct Spill {
    w: BufWriter<File>,
}

impl Drop for Spill {
    fn drop(&mut self) {
        let _ = self.w.flush();
    }
}

/// The per-run flight recorder: bounded ring plus optional JSONL spill.
///
/// Always on and owned by exactly one engine run — recording is a couple of
/// branches and a `VecDeque` push, with no synchronization. When the ring is
/// full the *oldest* record is dropped (and counted); the spill file, when
/// attached, keeps full fidelity regardless of the ring bound.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: VecDeque<FlightRecord>,
    capacity: usize,
    seq: u64,
    dropped: u64,
    spill: Option<Spill>,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` records in memory.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: VecDeque::new(),
            capacity,
            seq: 0,
            dropped: 0,
            spill: None,
        }
    }

    /// Attaches a full-fidelity JSONL spill file (truncating `path`).
    pub fn with_spill(capacity: usize, path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        let mut rec = FlightRecorder::new(capacity);
        rec.spill = Some(Spill {
            w: BufWriter::new(file),
        });
        Ok(rec)
    }

    /// Attaches a full-fidelity JSONL spill file (truncating `path`) to an
    /// existing recorder — e.g. one restored from a snapshot. Only records
    /// emitted from this point onward land in the file.
    pub fn attach_spill(&mut self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let file = File::create(path)?;
        self.spill = Some(Spill {
            w: BufWriter::new(file),
        });
        Ok(())
    }

    /// Serializes the recorder state — ring contents, sequence counter,
    /// drop count and capacity — for a daemon snapshot. The spill sink is
    /// not part of the state; re-attach one after restoring.
    pub fn export_state(&self) -> Value {
        json!({
            "capacity": self.capacity as u64,
            "seq": self.seq,
            "dropped": self.dropped,
            "records": self.ring.iter().map(FlightRecord::to_value).collect::<Vec<_>>(),
        })
    }

    /// Rebuilds a recorder from [`FlightRecorder::export_state`] output.
    /// The restored recorder continues the sequence exactly where the
    /// exported one stopped; no spill is attached.
    pub fn from_state(v: &Value) -> Result<Self, String> {
        let capacity = v
            .get("capacity")
            .and_then(Value::as_u64)
            .ok_or("recorder state missing \"capacity\"")? as usize;
        let seq = v
            .get("seq")
            .and_then(Value::as_u64)
            .ok_or("recorder state missing \"seq\"")?;
        let dropped = v
            .get("dropped")
            .and_then(Value::as_u64)
            .ok_or("recorder state missing \"dropped\"")?;
        let mut ring = VecDeque::new();
        for rv in v
            .get("records")
            .and_then(Value::as_array)
            .ok_or("recorder state missing \"records\"")?
        {
            ring.push_back(FlightRecord::from_value(rv)?);
        }
        if ring.len() > capacity {
            return Err("recorder state holds more records than its capacity".into());
        }
        Ok(FlightRecorder {
            ring,
            capacity,
            seq,
            dropped,
            spill: None,
        })
    }

    /// Records one event at simulated time `t_sim`.
    pub fn record(&mut self, t_sim: f64, ev: TraceEvent) {
        let rec = FlightRecord {
            t: t_sim,
            seq: self.seq,
            ev,
        };
        self.seq += 1;
        if let Some(s) = &mut self.spill {
            let _ = writeln!(s.w, "{}", rec.to_value());
        }
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(rec);
    }

    /// Number of records currently held in memory.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records evicted from the ring so far (the spill, if attached,
    /// still has them). Nonzero means the in-memory trace is partial.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Finishes the run: flushes the spill and returns the recorded stream.
    pub fn into_trace(mut self) -> FlightTrace {
        if let Some(s) = &mut self.spill {
            let _ = s.w.flush();
        }
        FlightTrace {
            records: std::mem::take(&mut self.ring).into(),
            dropped: self.dropped,
        }
    }
}

/// A recorded flight-recorder stream (the in-memory ring contents).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightTrace {
    /// Records in emission order.
    pub records: Vec<FlightRecord>,
    /// Records evicted from the ring (0 unless the run outgrew the bound;
    /// the JSONL spill, if one was attached, still has them).
    pub dropped: u64,
}

impl FlightTrace {
    /// Serializes the stream in emission order, one JSON object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_value().to_string());
            out.push('\n');
        }
        out
    }

    /// Canonical serialization for byte-for-byte comparison: records sorted
    /// by `(t, kind-rank, job)`, `seq` renumbered in that order, and the
    /// host-wall-clock `policy_runtime_s` zeroed. Two same-seed runs — on
    /// either engine, or across engines with failures off — produce
    /// identical canonical streams.
    pub fn canonical_jsonl(&self) -> String {
        let mut sorted: Vec<FlightRecord> = self.records.clone();
        sorted.sort_by(|a, b| {
            a.t.total_cmp(&b.t)
                .then(a.ev.rank().cmp(&b.ev.rank()))
                .then(a.ev.job().unwrap_or(0).cmp(&b.ev.job().unwrap_or(0)))
        });
        let mut out = String::new();
        for (i, mut r) in sorted.into_iter().enumerate() {
            r.seq = i as u64;
            if let TraceEvent::RoundScheduled { policy_runtime, .. } = &mut r.ev {
                *policy_runtime = 0.0;
            }
            out.push_str(&r.to_value().to_string());
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL stream (e.g. a spill file) back into a trace.
    pub fn parse_jsonl(text: &str) -> Result<FlightTrace, String> {
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v: Value = serde_json::from_str(line)
                .map_err(|e| format!("line {}: invalid JSON: {e}", i + 1))?;
            records.push(FlightRecord::from_value(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        Ok(FlightTrace {
            records,
            dropped: 0,
        })
    }

    /// GPU type name table from the meta record (empty if absent).
    pub fn gpu_types(&self) -> Vec<String> {
        for r in &self.records {
            if let TraceEvent::Meta { gpu_types, .. } = &r.ev {
                return gpu_types.clone();
            }
        }
        Vec::new()
    }

    /// Scheduling-round duration from the meta record.
    pub fn round_duration(&self) -> Option<f64> {
        for r in &self.records {
            if let TraceEvent::Meta { round_duration, .. } = &r.ev {
                return Some(*round_duration);
            }
        }
        None
    }

    /// Exports the stream as a Chrome trace-event JSON document (loadable
    /// in Perfetto / `chrome://tracing`).
    ///
    /// Layout: one *process* (pid) per GPU type (pid 0 is the cluster-wide
    /// lifecycle lane), one *thread* (tid) per job. Allocation intervals
    /// are complete (`"X"`) slices on the GPU type that hosts them; job
    /// lifecycle marks (submitted / completed / failed) are instant (`"i"`)
    /// events on pid 0; per-type occupancy is a counter (`"C"`) series.
    /// Timestamps are microseconds of simulated time.
    pub fn chrome_trace(&self) -> Value {
        let types = self.gpu_types();
        let mut events: Vec<Value> = Vec::new();
        let us = |t: f64| t * 1e6;

        events.push(json!({
            "name": "process_name", "ph": "M", "ts": 0.0, "pid": 0u64, "tid": 0u64,
            "args": {"name": "cluster"},
        }));
        for (i, name) in types.iter().enumerate() {
            events.push(json!({
                "name": "process_name", "ph": "M", "ts": 0.0,
                "pid": (i + 1) as u64, "tid": 0u64,
                "args": {"name": format!("gpu:{name}")},
            }));
        }

        // Open allocation per job: (type index, gpus, since, reason label).
        let mut open: BTreeMap<u64, (usize, usize, f64, &'static str)> = BTreeMap::new();
        // Net capacity change per type (GPUs), relative to the initial
        // cluster (the stream does not carry absolute capacity).
        let mut cap_delta: Vec<i64> = vec![0; types.len().max(1)];
        // (pid, tid) pairs already given a thread_name metadata event.
        let mut named: std::collections::BTreeSet<(u64, u64)> = std::collections::BTreeSet::new();
        let mut job_names: BTreeMap<u64, String> = BTreeMap::new();
        let mut end_time = 0.0_f64;

        let name_thread = |events: &mut Vec<Value>,
                           named: &mut std::collections::BTreeSet<(u64, u64)>,
                           job_names: &BTreeMap<u64, String>,
                           pid: u64,
                           job: u64| {
            if named.insert((pid, job)) {
                let label = job_names
                    .get(&job)
                    .cloned()
                    .unwrap_or_else(|| format!("job-{job}"));
                events.push(json!({
                    "name": "thread_name", "ph": "M", "ts": 0.0, "pid": pid, "tid": job,
                    "args": {"name": label},
                }));
            }
        };
        let close_slice =
            |events: &mut Vec<Value>,
             t: f64,
             job: u64,
             (ty, gpus, since, reason): (usize, usize, f64, &'static str)| {
                let type_name = types.get(ty).map(String::as_str).unwrap_or("?");
                events.push(json!({
                    "name": format!("{gpus}x {type_name}"),
                    "cat": "alloc", "ph": "X",
                    "ts": us(since), "dur": us((t - since).max(0.0)),
                    "pid": (ty + 1) as u64, "tid": job,
                    "args": {"gpus": gpus as u64, "reason": reason},
                }));
            };

        for r in &self.records {
            end_time = end_time.max(r.t);
            match &r.ev {
                TraceEvent::Meta { .. } => {}
                TraceEvent::JobSubmitted { job, name, model } => {
                    job_names.insert(*job, format!("{name} ({model})"));
                    name_thread(&mut events, &mut named, &job_names, 0, *job);
                    events.push(json!({
                        "name": "submitted", "cat": "lifecycle", "ph": "i", "s": "t",
                        "ts": us(r.t), "pid": 0u64, "tid": *job,
                    }));
                }
                TraceEvent::JobAdmitted { .. } => {}
                TraceEvent::AllocationChanged {
                    job,
                    gpu_type,
                    gpus,
                    reason,
                    ..
                } => {
                    if let Some(o) = open.remove(job) {
                        close_slice(&mut events, r.t, *job, o);
                    }
                    if let (Some(ty), true) = (*gpu_type, *gpus > 0) {
                        name_thread(&mut events, &mut named, &job_names, (ty + 1) as u64, *job);
                        open.insert(*job, (ty, *gpus, r.t, reason.label()));
                    }
                }
                TraceEvent::RestartStarted { .. } | TraceEvent::RestartFinished { .. } => {}
                TraceEvent::JobFailed { job, count } => {
                    events.push(json!({
                        "name": format!("failed x{count}"), "cat": "lifecycle", "ph": "i",
                        "s": "t", "ts": us(r.t), "pid": 0u64, "tid": *job,
                    }));
                }
                TraceEvent::JobCompleted { job } => {
                    events.push(json!({
                        "name": "completed", "cat": "lifecycle", "ph": "i", "s": "t",
                        "ts": us(r.t), "pid": 0u64, "tid": *job,
                    }));
                }
                TraceEvent::JobCancelled { job } => {
                    events.push(json!({
                        "name": "cancelled", "cat": "lifecycle", "ph": "i", "s": "t",
                        "ts": us(r.t), "pid": 0u64, "tid": *job,
                    }));
                }
                TraceEvent::RoundScheduled { contention, .. } => {
                    let mut per_type = vec![0u64; types.len().max(1)];
                    for (ty, gpus, _, _) in open.values() {
                        if let Some(slot) = per_type.get_mut(*ty) {
                            *slot += *gpus as u64;
                        }
                    }
                    for (ty, total) in per_type.iter().enumerate() {
                        events.push(json!({
                            "name": "occupancy", "ph": "C", "ts": us(r.t),
                            "pid": (ty + 1) as u64, "tid": 0u64,
                            "args": {"gpus": *total},
                        }));
                    }
                    events.push(json!({
                        "name": "contention", "ph": "C", "ts": us(r.t),
                        "pid": 0u64, "tid": 0u64,
                        "args": {"jobs": *contention as u64},
                    }));
                }
                TraceEvent::CapacityAdded {
                    gpu_type,
                    nodes,
                    gpus,
                } => {
                    events.push(json!({
                        "name": format!("capacity +{gpus} ({nodes} nodes)"),
                        "cat": "capacity", "ph": "i", "s": "p",
                        "ts": us(r.t), "pid": (*gpu_type + 1) as u64, "tid": 0u64,
                    }));
                    if let Some(d) = cap_delta.get_mut(*gpu_type) {
                        *d += *gpus as i64;
                        events.push(json!({
                            "name": "capacity_delta", "ph": "C", "ts": us(r.t),
                            "pid": (*gpu_type + 1) as u64, "tid": 0u64,
                            "args": {"gpus": *d},
                        }));
                    }
                }
                TraceEvent::CapacityRemoved {
                    gpu_type,
                    nodes,
                    gpus,
                    graceful,
                } => {
                    let how = if *graceful { "drained" } else { "killed" };
                    events.push(json!({
                        "name": format!("capacity -{gpus} ({nodes} nodes {how})"),
                        "cat": "capacity", "ph": "i", "s": "p",
                        "ts": us(r.t), "pid": (*gpu_type + 1) as u64, "tid": 0u64,
                    }));
                    if let Some(d) = cap_delta.get_mut(*gpu_type) {
                        *d -= *gpus as i64;
                        events.push(json!({
                            "name": "capacity_delta", "ph": "C", "ts": us(r.t),
                            "pid": (*gpu_type + 1) as u64, "tid": 0u64,
                            "args": {"gpus": *d},
                        }));
                    }
                }
                TraceEvent::DrainStarted {
                    gpu_type,
                    nodes,
                    gpus,
                } => {
                    events.push(json!({
                        "name": format!("drain started ({nodes} nodes, {gpus} GPUs)"),
                        "cat": "capacity", "ph": "i", "s": "p",
                        "ts": us(r.t), "pid": (*gpu_type + 1) as u64, "tid": 0u64,
                    }));
                }
                TraceEvent::NodeDegraded {
                    gpu_type,
                    nodes,
                    factor,
                } => {
                    events.push(json!({
                        "name": format!("degraded x{factor} ({nodes} nodes)"),
                        "cat": "capacity", "ph": "i", "s": "p",
                        "ts": us(r.t), "pid": (*gpu_type + 1) as u64, "tid": 0u64,
                    }));
                }
            }
        }
        // Close any slice left open at the horizon at the last known time
        // plus one round (the engine charges the full final round).
        let close_at = end_time + self.round_duration().unwrap_or(0.0);
        for (job, o) in std::mem::take(&mut open) {
            close_slice(&mut events, close_at, job, o);
        }

        json!({ "traceEvents": events, "displayTimeUnit": "ms" })
    }

    /// Derives the per-job attribution report from the stream.
    pub fn report(&self) -> TraceReport {
        let gpu_types = self.gpu_types();
        let round_duration = self.round_duration().unwrap_or(60.0);
        let n_types = gpu_types.len();
        let mut jobs: BTreeMap<u64, JobTraceStats> = BTreeMap::new();
        // Open allocation per job: (type index, gpus, since).
        let mut open: BTreeMap<u64, (usize, usize, f64)> = BTreeMap::new();
        let mut occupancy = Vec::new();
        let mut capacity_events: Vec<CapacitySample> = Vec::new();
        let mut rounds = 0u64;
        let mut total_policy_runtime_s = 0.0;
        let mut last_round_t = f64::NEG_INFINITY;
        let mut end_time = 0.0_f64;

        let blank = |job: u64, n_types: usize| JobTraceStats {
            job,
            name: String::new(),
            model: String::new(),
            submitted: 0.0,
            first_start: None,
            completed: None,
            cancelled: None,
            restarts: 0,
            restart_overhead_s: 0.0,
            alloc_changes: 0,
            failures: 0,
            seconds_by_type: vec![0.0; n_types],
            gpu_seconds_by_type: vec![0.0; n_types],
        };
        let close = |stats: &mut JobTraceStats, (ty, gpus, since): (usize, usize, f64), t: f64| {
            let dt = (t - since).max(0.0);
            if ty >= stats.seconds_by_type.len() {
                stats.seconds_by_type.resize(ty + 1, 0.0);
                stats.gpu_seconds_by_type.resize(ty + 1, 0.0);
            }
            stats.seconds_by_type[ty] += dt;
            stats.gpu_seconds_by_type[ty] += dt * gpus as f64;
        };

        for r in &self.records {
            end_time = end_time.max(r.t);
            match &r.ev {
                TraceEvent::Meta { .. } => {}
                TraceEvent::JobSubmitted { job, name, model } => {
                    let s = jobs.entry(*job).or_insert_with(|| blank(*job, n_types));
                    s.name = name.clone();
                    s.model = model.clone();
                    s.submitted = r.t;
                }
                TraceEvent::JobAdmitted { .. } => {}
                TraceEvent::AllocationChanged {
                    job,
                    gpu_type,
                    gpus,
                    reason,
                    restart,
                } => {
                    let s = jobs.entry(*job).or_insert_with(|| blank(*job, n_types));
                    if let Some(o) = open.remove(job) {
                        close(s, o, r.t);
                    }
                    if *restart {
                        s.restarts += 1;
                    }
                    if !matches!(*reason, AllocReason::Completed | AllocReason::Cancelled) {
                        s.alloc_changes += 1;
                    }
                    if let (Some(ty), true) = (*gpu_type, *gpus > 0) {
                        if s.first_start.is_none() {
                            s.first_start = Some(r.t);
                        }
                        open.insert(*job, (ty, *gpus, r.t));
                    }
                }
                TraceEvent::RestartStarted {
                    job,
                    checkpoint_cost,
                } => {
                    let s = jobs.entry(*job).or_insert_with(|| blank(*job, n_types));
                    s.restart_overhead_s += checkpoint_cost;
                }
                TraceEvent::RestartFinished { .. } => {}
                TraceEvent::JobFailed { job, count } => {
                    let s = jobs.entry(*job).or_insert_with(|| blank(*job, n_types));
                    s.failures += count;
                }
                TraceEvent::JobCompleted { job } => {
                    let s = jobs.entry(*job).or_insert_with(|| blank(*job, n_types));
                    s.completed = Some(r.t);
                }
                TraceEvent::JobCancelled { job } => {
                    let s = jobs.entry(*job).or_insert_with(|| blank(*job, n_types));
                    s.cancelled = Some(r.t);
                }
                TraceEvent::RoundScheduled {
                    contention: _,
                    policy_runtime,
                } => {
                    rounds += 1;
                    total_policy_runtime_s += policy_runtime;
                    last_round_t = r.t;
                }
                TraceEvent::CapacityAdded {
                    gpu_type,
                    nodes,
                    gpus,
                } => capacity_events.push(CapacitySample {
                    t: r.t,
                    kind: "added",
                    gpu_type: *gpu_type,
                    nodes: *nodes,
                    gpus: *gpus,
                    delta_gpus: *gpus as i64,
                    factor: 1.0,
                }),
                TraceEvent::CapacityRemoved {
                    gpu_type,
                    nodes,
                    gpus,
                    graceful,
                } => capacity_events.push(CapacitySample {
                    t: r.t,
                    kind: if *graceful { "drained" } else { "killed" },
                    gpu_type: *gpu_type,
                    nodes: *nodes,
                    gpus: *gpus,
                    delta_gpus: -(*gpus as i64),
                    factor: 1.0,
                }),
                TraceEvent::DrainStarted {
                    gpu_type,
                    nodes,
                    gpus,
                } => capacity_events.push(CapacitySample {
                    t: r.t,
                    kind: "drain_started",
                    gpu_type: *gpu_type,
                    nodes: *nodes,
                    gpus: *gpus,
                    delta_gpus: 0,
                    factor: 1.0,
                }),
                TraceEvent::NodeDegraded {
                    gpu_type,
                    nodes,
                    factor,
                } => capacity_events.push(CapacitySample {
                    t: r.t,
                    kind: if *factor == 1.0 {
                        "restored"
                    } else {
                        "degraded"
                    },
                    gpu_type: *gpu_type,
                    nodes: *nodes,
                    gpus: 0,
                    delta_gpus: 0,
                    factor: *factor,
                }),
            }
            // Occupancy is sampled *after* each round's allocation records
            // land, i.e. at the next record boundary past the round; doing
            // it here (after every record) keeps the last sample per round
            // timestamp, which is the post-apply state.
            if let TraceEvent::AllocationChanged { .. } | TraceEvent::RoundScheduled { .. } = r.ev {
                let mut per_type = vec![0usize; n_types.max(1)];
                for (ty, gpus, _) in open.values() {
                    if let Some(slot) = per_type.get_mut(*ty) {
                        *slot += *gpus;
                    }
                }
                match occupancy.last_mut() {
                    Some(OccupancySample {
                        t, gpus_by_type, ..
                    }) if *t == r.t => {
                        *gpus_by_type = per_type;
                    }
                    _ => occupancy.push(OccupancySample {
                        t: r.t,
                        gpus_by_type: per_type,
                        contention: 0,
                    }),
                }
            }
            if let TraceEvent::RoundScheduled { contention, .. } = r.ev {
                if let Some(last) = occupancy.last_mut() {
                    if last.t == r.t {
                        last.contention = contention;
                    }
                }
            }
        }

        // Jobs still holding GPUs at the end of the stream ran through the
        // final executed round; the engine charges that whole round.
        let horizon_end = if last_round_t.is_finite() {
            end_time.max(last_round_t + round_duration)
        } else {
            end_time
        };
        for (job, o) in std::mem::take(&mut open) {
            if let Some(s) = jobs.get_mut(&job) {
                close(s, o, horizon_end);
            }
        }

        TraceReport {
            gpu_types,
            round_duration,
            jobs: jobs.into_values().collect(),
            rounds,
            total_policy_runtime_s,
            occupancy,
            capacity_events,
            end_time: horizon_end,
            dropped: self.dropped,
        }
    }
}

/// Per-job attribution derived from a flight-recorder stream.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTraceStats {
    /// Job id.
    pub job: u64,
    /// Job name (from the submitted record).
    pub name: String,
    /// Model name.
    pub model: String,
    /// Submission time, simulated seconds.
    pub submitted: f64,
    /// First instant the job held resources.
    pub first_start: Option<f64>,
    /// Completion instant, if the job finished within the trace.
    pub completed: Option<f64>,
    /// Cancellation instant, if a client cancelled the job (serve mode).
    pub cancelled: Option<f64>,
    /// Restarts (allocation changes that preempted a running job).
    pub restarts: u64,
    /// Total checkpoint-restore seconds charged (includes the initial
    /// cold-start restore and failure-recovery restores).
    pub restart_overhead_s: f64,
    /// Allocation changes excluding the completion release (churn).
    pub alloc_changes: u64,
    /// Injected worker failures recovered from.
    pub failures: u64,
    /// Seconds spent holding each GPU type (indexed like the meta table).
    pub seconds_by_type: Vec<f64>,
    /// GPU-seconds consumed on each GPU type.
    pub gpu_seconds_by_type: Vec<f64>,
}

impl JobTraceStats {
    /// Queueing delay before first start (`None` if the job never started).
    pub fn queue_delay(&self) -> Option<f64> {
        self.first_start.map(|s| s - self.submitted)
    }

    /// Job completion time (`None` if unfinished).
    pub fn jct(&self) -> Option<f64> {
        self.completed.map(|c| c - self.submitted)
    }

    /// Total GPU-seconds across all types.
    pub fn gpu_seconds(&self) -> f64 {
        self.gpu_seconds_by_type.iter().sum()
    }
}

/// One capacity-timeline entry of a [`TraceReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct CapacitySample {
    /// Scripted event time, simulated seconds.
    pub t: f64,
    /// What happened: `added`, `killed`, `drained`, `drain_started`,
    /// `degraded` or `restored`.
    pub kind: &'static str,
    /// GPU type index (meta name table).
    pub gpu_type: usize,
    /// Nodes affected.
    pub nodes: usize,
    /// GPUs on the affected nodes (0 for degradation events).
    pub gpus: usize,
    /// Signed change to placeable capacity, GPUs (0 for drain-start and
    /// degradation events).
    pub delta_gpus: i64,
    /// Straggler multiplier now in effect (1.0 unless degraded).
    pub factor: f64,
}

/// Cluster allocation state at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancySample {
    /// Simulated time, seconds.
    pub t: f64,
    /// GPUs allocated per type (indexed like the meta table).
    pub gpus_by_type: Vec<usize>,
    /// Jobs wanting resources at this instant (0 for non-round samples).
    pub contention: usize,
}

/// The derived analysis view over one flight-recorder stream.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// GPU type names.
    pub gpu_types: Vec<String>,
    /// Scheduling-round duration, seconds.
    pub round_duration: f64,
    /// Per-job stats, sorted by job id.
    pub jobs: Vec<JobTraceStats>,
    /// Scheduling rounds observed.
    pub rounds: u64,
    /// Total host wall-clock spent in policy + apply across rounds.
    pub total_policy_runtime_s: f64,
    /// Cluster occupancy time series (one sample per allocation change or
    /// scheduling round).
    pub occupancy: Vec<OccupancySample>,
    /// Capacity timeline: every capacity event in the stream, in record
    /// order (empty unless the run had cluster dynamics).
    pub capacity_events: Vec<CapacitySample>,
    /// End of the accounted window, simulated seconds.
    pub end_time: f64,
    /// Ring-buffer drops in the source trace (the report is partial if
    /// nonzero and the stream didn't come from a spill file).
    pub dropped: u64,
}

impl TraceReport {
    /// Mean GPUs held per type over `[0, end_time]`, by trapezoid-free
    /// step integration of the occupancy series.
    pub fn mean_occupancy(&self) -> Vec<f64> {
        let n = self.gpu_types.len().max(1);
        let mut area = vec![0.0_f64; n];
        if self.end_time <= 0.0 {
            return area;
        }
        for w in self.occupancy.windows(2) {
            let dt = (w[1].t - w[0].t).max(0.0);
            for (i, g) in w[0].gpus_by_type.iter().enumerate() {
                if i < n {
                    area[i] += dt * *g as f64;
                }
            }
        }
        if let Some(last) = self.occupancy.last() {
            let dt = (self.end_time - last.t).max(0.0);
            for (i, g) in last.gpus_by_type.iter().enumerate() {
                if i < n {
                    area[i] += dt * *g as f64;
                }
            }
        }
        area.iter().map(|a| a / self.end_time).collect()
    }

    /// Peak GPUs held per type.
    pub fn peak_occupancy(&self) -> Vec<usize> {
        let n = self.gpu_types.len().max(1);
        let mut peak = vec![0usize; n];
        for s in &self.occupancy {
            for (i, g) in s.gpus_by_type.iter().enumerate() {
                if i < n && *g > peak[i] {
                    peak[i] = *g;
                }
            }
        }
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> FlightTrace {
        let mut rec = FlightRecorder::new(1024);
        rec.record(
            0.0,
            TraceEvent::Meta {
                gpu_types: vec!["rtx".into(), "a100".into()],
                round_duration: 60.0,
            },
        );
        rec.record(
            0.0,
            TraceEvent::JobSubmitted {
                job: 0,
                name: "j0".into(),
                model: "resnet18".into(),
            },
        );
        rec.record(0.0, TraceEvent::JobAdmitted { job: 0 });
        rec.record(
            0.0,
            TraceEvent::RoundScheduled {
                contention: 1,
                policy_runtime: 0.002,
            },
        );
        rec.record(
            0.0,
            TraceEvent::AllocationChanged {
                job: 0,
                gpu_type: Some(1),
                gpus: 2,
                reason: AllocReason::Started,
                restart: false,
            },
        );
        rec.record(
            0.0,
            TraceEvent::RestartStarted {
                job: 0,
                checkpoint_cost: 30.0,
            },
        );
        rec.record(30.0, TraceEvent::RestartFinished { job: 0 });
        rec.record(
            60.0,
            TraceEvent::RoundScheduled {
                contention: 1,
                policy_runtime: 0.001,
            },
        );
        rec.record(
            60.0,
            TraceEvent::AllocationChanged {
                job: 0,
                gpu_type: Some(1),
                gpus: 4,
                reason: AllocReason::ScaledUp,
                restart: true,
            },
        );
        rec.record(
            60.0,
            TraceEvent::RestartStarted {
                job: 0,
                checkpoint_cost: 30.0,
            },
        );
        rec.record(100.0, TraceEvent::JobCompleted { job: 0 });
        rec.record(
            100.0,
            TraceEvent::AllocationChanged {
                job: 0,
                gpu_type: None,
                gpus: 0,
                reason: AllocReason::Completed,
                restart: false,
            },
        );
        rec.into_trace()
    }

    #[test]
    fn jsonl_round_trips() {
        let trace = sample_trace();
        let text = trace.to_jsonl();
        let parsed = FlightTrace::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.records, trace.records);
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn canonical_is_stable_under_reordering() {
        let trace = sample_trace();
        let mut shuffled = trace.clone();
        shuffled.records.reverse();
        for (i, r) in shuffled.records.iter_mut().enumerate() {
            r.seq = i as u64; // seq is renumbered by canonicalization anyway
        }
        assert_eq!(trace.canonical_jsonl(), shuffled.canonical_jsonl());
        assert!(
            !trace.canonical_jsonl().contains("0.002"),
            "canonical form must zero the wall-clock field"
        );
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..10 {
            rec.record(i as f64, TraceEvent::JobAdmitted { job: i });
        }
        assert_eq!(rec.len(), 3);
        let trace = rec.into_trace();
        assert_eq!(trace.dropped, 7);
        assert_eq!(trace.records.len(), 3);
        // The *newest* records survive.
        assert_eq!(trace.records[0].ev, TraceEvent::JobAdmitted { job: 7 });
        assert_eq!(trace.records[2].seq, 9);
    }

    #[test]
    fn report_attributes_per_job() {
        let report = sample_trace().report();
        assert_eq!(report.gpu_types, vec!["rtx".to_string(), "a100".into()]);
        assert_eq!(report.rounds, 2);
        assert!((report.total_policy_runtime_s - 0.003).abs() < 1e-12);
        assert_eq!(report.jobs.len(), 1);
        let j = &report.jobs[0];
        assert_eq!(j.queue_delay(), Some(0.0));
        assert_eq!(j.jct(), Some(100.0));
        assert_eq!(j.restarts, 1);
        assert_eq!(j.alloc_changes, 2);
        assert!((j.restart_overhead_s - 60.0).abs() < 1e-12);
        // 60 s at 2 GPUs + 40 s at 4 GPUs, all on type 1 (a100).
        assert!((j.seconds_by_type[1] - 100.0).abs() < 1e-9);
        assert!((j.gpu_seconds_by_type[1] - 280.0).abs() < 1e-9);
        assert_eq!(j.seconds_by_type[0], 0.0);
        // Occupancy peaks at 4 GPUs of type 1.
        assert_eq!(report.peak_occupancy(), vec![0, 4]);
    }

    #[test]
    fn chrome_export_shape() {
        let doc = sample_trace().chrome_trace();
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        assert!(!events.is_empty());
        let mut slices = 0;
        for e in events {
            let ph = e.get("ph").and_then(Value::as_str).expect("ph present");
            assert!(["M", "X", "i", "C"].contains(&ph), "unexpected phase {ph}");
            assert!(e.get("ts").and_then(Value::as_f64).unwrap() >= 0.0);
            assert!(e.get("pid").and_then(Value::as_u64).is_some());
            assert!(e.get("tid").and_then(Value::as_u64).is_some());
            if ph == "X" {
                slices += 1;
                assert!(e.get("dur").and_then(Value::as_f64).unwrap() >= 0.0);
                let pid = e.get("pid").and_then(Value::as_u64).unwrap();
                assert!(pid >= 1, "allocation slices live on GPU-type pids");
            }
        }
        assert_eq!(slices, 2, "two allocation intervals for the sample job");
    }

    #[test]
    fn recorder_state_round_trips_and_resumes_sequence() {
        let mut rec = FlightRecorder::new(4);
        for i in 0..7 {
            rec.record(i as f64, TraceEvent::JobAdmitted { job: i });
        }
        rec.record(7.0, TraceEvent::JobCancelled { job: 3 });
        let state = rec.export_state();
        let mut back = FlightRecorder::from_state(&state).unwrap();
        // The restored recorder continues where the original stopped.
        rec.record(8.0, TraceEvent::JobCompleted { job: 0 });
        back.record(8.0, TraceEvent::JobCompleted { job: 0 });
        let (a, b) = (rec.into_trace(), back.into_trace());
        assert_eq!(a, b);
        assert_eq!(a.dropped, 5);
        assert_eq!(a.records.last().unwrap().seq, 8);
    }

    #[test]
    fn cancelled_round_trips_and_reports() {
        let mut rec = FlightRecorder::new(64);
        rec.record(
            0.0,
            TraceEvent::Meta {
                gpu_types: vec!["t4".into()],
                round_duration: 60.0,
            },
        );
        rec.record(
            0.0,
            TraceEvent::JobSubmitted {
                job: 1,
                name: "j1".into(),
                model: "bert".into(),
            },
        );
        rec.record(
            60.0,
            TraceEvent::AllocationChanged {
                job: 1,
                gpu_type: Some(0),
                gpus: 2,
                reason: AllocReason::Started,
                restart: false,
            },
        );
        rec.record(120.0, TraceEvent::JobCancelled { job: 1 });
        rec.record(
            120.0,
            TraceEvent::AllocationChanged {
                job: 1,
                gpu_type: None,
                gpus: 0,
                reason: AllocReason::Cancelled,
                restart: false,
            },
        );
        let trace = rec.into_trace();
        let parsed = FlightTrace::parse_jsonl(&trace.to_jsonl()).unwrap();
        assert_eq!(parsed.records, trace.records);
        let report = trace.report();
        let j = &report.jobs[0];
        assert_eq!(j.cancelled, Some(120.0));
        assert_eq!(j.completed, None);
        assert_eq!(
            j.alloc_changes, 1,
            "the cancellation release is not churn, like completion"
        );
    }

    #[test]
    fn spill_survives_panic_via_drop() {
        let path = std::env::temp_dir().join(format!(
            "sia-trace-spill-panic-{}.jsonl",
            std::process::id()
        ));
        let p = path.clone();
        let handle = std::thread::spawn(move || {
            let mut rec = FlightRecorder::with_spill(16, &p).unwrap();
            rec.record(
                0.0,
                TraceEvent::Meta {
                    gpu_types: vec!["t4".into()],
                    round_duration: 60.0,
                },
            );
            rec.record(1.0, TraceEvent::JobAdmitted { job: 0 });
            panic!("simulated crash mid-run");
        });
        assert!(handle.join().is_err(), "the run must have panicked");
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let parsed = FlightTrace::parse_jsonl(&text).expect("spill parses after a panic");
        assert_eq!(parsed.records.len(), 2);
    }
}
