/root/repo/target/release/deps/sia_bench-63ffe9cea225697d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsia_bench-63ffe9cea225697d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsia_bench-63ffe9cea225697d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
