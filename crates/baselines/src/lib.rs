//! Baseline DL-cluster schedulers the Sia paper compares against.
//!
//! * [`pollux`] — Pollux (OSDI '21), the state-of-the-art *adaptivity-aware*
//!   scheduler: per-job goodput models plus a genetic-algorithm search over
//!   per-node GPU allocations. Heterogeneity-blind; extended for mixed
//!   clusters exactly as §4.3 describes (virtual 4-GPU nodes + a
//!   majority-type fix-up heuristic).
//! * [`gavel`] — Gavel (OSDI '20), the state-of-the-art
//!   *heterogeneity-aware* scheduler: a max-sum-throughput LP over
//!   `(job, GPU type)` time fractions realized by round-based time sharing.
//!   Jobs are rigid (TunedJobs).
//! * [`shockwave`] — a faithful-in-spirit simplification of Shockwave
//!   (NSDI '23): round-based planning for rigid jobs that balances
//!   finish-time fairness with efficiency (see DESIGN.md for the
//!   simplification note).
//! * [`themis`] — Themis (NSDI '20) simplified: leximin finish-time-fairness
//!   allocation for rigid jobs.
//!
//! All baselines implement [`sia_sim::Scheduler`] and run against the same
//! simulator and estimators as Sia.

#![forbid(unsafe_code)]

pub mod gavel;
pub mod pollux;
pub mod shockwave;
pub mod themis;
pub mod util;

pub use gavel::{GavelConfig, GavelObjective, GavelPolicy};
pub use pollux::{PolluxConfig, PolluxPolicy};
pub use shockwave::{ShockwaveConfig, ShockwavePolicy};
pub use themis::{ThemisConfig, ThemisPolicy};
