//! Elastically scaling a hybrid-parallel (pipeline + data parallel) GPT job.
//!
//! Sia is the first cluster scheduler that elastically scales hybrid
//! parallel jobs (§5.3): the 2.8B GPT model runs as 2-GPU pipelines on
//! `a100` nodes or 8-GPU pipelines on `rtx` nodes, and data parallelism
//! scales it out in whole-pipeline units. This example submits one GPT job
//! alongside background jobs and prints the allocation trajectory.
//!
//! Run with: `cargo run --release --example hybrid_parallel`

use sia::cluster::ClusterSpec;
use sia::core::SiaPolicy;
use sia::sim::{SimConfig, Simulator};
use sia::workloads::{ModelKind, Trace, TraceConfig, TraceKind};

fn main() {
    // A mixed rtx/a100 cluster (t4s cannot fit the 2.8B model at all).
    let mut cluster = ClusterSpec::new();
    let rtx = cluster.add_gpu_kind("rtx", 11.0, 2);
    let a100 = cluster.add_gpu_kind("a100", 40.0, 4);
    cluster.add_nodes(rtx, 4, 8);
    cluster.add_nodes(a100, 2, 8);

    // Background workload plus one GPT finetuning job.
    let mut trace = Trace::generate(
        &TraceConfig::new(TraceKind::Physical, 3)
            .with_rate(8.0)
            .with_max_gpus_cap(16),
    );
    trace.push_hybrid_parallel_job(60.0);
    let gpt = trace
        .jobs
        .iter()
        .find(|j| j.model == ModelKind::Gpt2p8b)
        .expect("GPT job present");
    println!(
        "GPT job {}: pipeline widths a100=2 rtx=8, batch range {}..{}",
        gpt.id,
        ModelKind::Gpt2p8b.profile().min_batch,
        ModelKind::Gpt2p8b.profile().max_batch
    );
    let gpt_id = gpt.id;

    let sim = Simulator::new(cluster.clone(), &trace, SimConfig::default());
    let result = sim.run(&mut SiaPolicy::default());

    println!("\nGPT allocation trajectory (replicas = GPUs / pipeline width):");
    let mut last = None;
    for round in &result.rounds {
        let alloc = round
            .allocations
            .iter()
            .find(|(j, _, _)| *j == gpt_id)
            .map(|&(_, t, g)| (t, g));
        if alloc != last {
            match alloc {
                Some((t, g)) => {
                    let name = &cluster.kind(t).name;
                    let width = if name == "a100" { 2 } else { 8 };
                    println!(
                        "  t={:>6.1} min: {:>2} x {:<5} = {} replicas",
                        round.time / 60.0,
                        g,
                        name,
                        g / width
                    );
                }
                None => println!("  t={:>6.1} min: preempted", round.time / 60.0),
            }
            last = alloc;
        }
    }
    let rec = result.records.iter().find(|r| r.id == gpt_id).unwrap();
    match rec.jct() {
        Some(jct) => println!(
            "\nGPT finished in {:.1} h with {} restarts, {:.1} GPU-hours",
            jct / 3600.0,
            rec.restarts,
            rec.gpu_seconds / 3600.0
        ),
        None => println!("\nGPT did not finish within the horizon"),
    }
}
