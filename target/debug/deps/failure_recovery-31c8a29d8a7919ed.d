/root/repo/target/debug/deps/failure_recovery-31c8a29d8a7919ed.d: tests/failure_recovery.rs

/root/repo/target/debug/deps/failure_recovery-31c8a29d8a7919ed: tests/failure_recovery.rs

tests/failure_recovery.rs:
