//! Gavel (OSDI '20): heterogeneity-aware scheduling for rigid jobs.
//!
//! Gavel expresses scheduling as a continuous LP over a `(job, GPU type)`
//! allocation matrix `X` (the fraction of time each job should spend on
//! each GPU type) and realizes `X` with round-based time sharing: each
//! round, `(job, type)` pairs are prioritized by `X_jg / f_jg` where `f_jg`
//! is the fraction of time the job has actually received on that type so
//! far. We use the `max-sum-throughput` policy, which the paper selects as
//! Gavel's best-performing policy on these traces.
//!
//! Gavel does not adapt batch sizes or GPU counts: every job runs with its
//! submitted (tuned) configuration. Time sharing means jobs are swapped
//! between types and in/out of the cluster, paying checkpoint-restore
//! overheads — the behaviour that collapses under newTrace congestion.

use std::collections::BTreeMap;

use sia_cluster::{ClusterView, GpuTypeId, JobId};
use sia_sim::{AllocationMap, JobView, Scheduler};
use sia_solver::{Problem, Sense};

use crate::util::{point_for, rigid_demand, LooseFree};

/// Gavel scheduling objective (the Gavel paper ships a family of policies;
/// the Sia paper selects `max-sum-throughput` as the best-performing one on
/// these traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GavelObjective {
    /// Maximize total cluster throughput (the paper's choice).
    #[default]
    MaxSumThroughput,
    /// Max-min fairness over normalized per-job throughput (water filling).
    MaxMinFairness,
    /// Max-min over completion *rates* (throughput / remaining work), an
    /// LP analogue of Gavel's minimize-makespan policy.
    MinMakespan,
}

/// Tunables for Gavel.
#[derive(Debug, Clone)]
pub struct GavelConfig {
    /// Round duration, seconds (paper default for Gavel: 360 s).
    pub round_duration: f64,
    /// Which Gavel policy objective to optimize.
    pub objective: GavelObjective,
}

impl Default for GavelConfig {
    fn default() -> Self {
        GavelConfig {
            round_duration: 360.0,
            objective: GavelObjective::MaxSumThroughput,
        }
    }
}

/// The Gavel scheduling policy.
#[derive(Debug, Clone, Default)]
pub struct GavelPolicy {
    cfg: GavelConfig,
    /// Seconds each job has run on each GPU type.
    time_run: BTreeMap<JobId, Vec<f64>>,
}

impl GavelPolicy {
    /// Creates Gavel with explicit configuration.
    pub fn new(cfg: GavelConfig) -> Self {
        GavelPolicy {
            cfg,
            time_run: BTreeMap::new(),
        }
    }

    /// Solves the policy LP, returning `X[job][type]` time fractions.
    ///
    /// For `MaxSumThroughput`, objective coefficients are down-weighted by
    /// each job's achieved time share, which realizes the time-sharing
    /// behaviour of Gavel's round-based mechanism (without it, identical
    /// jobs make the LP degenerate and an arbitrary vertex starves the rest
    /// forever). The max-min objectives introduce an auxiliary epigraph
    /// variable `z` with one `>=` row per job.
    fn solve_lp(&self, jobs: &[JobView<'_>], cluster: &ClusterView) -> BTreeMap<JobId, Vec<f64>> {
        let spec = cluster.spec();
        let n_types = spec.num_gpu_types();
        let mut problem = Problem::new(Sense::Maximize);
        let mut vars = Vec::new(); // (job idx, type idx, var, demand, throughput)
        for (ji, view) in jobs.iter().enumerate() {
            let demand = rigid_demand(view);
            let achieved: f64 = self
                .time_run
                .get(&view.id)
                .map(|r| r.iter().sum::<f64>() / view.age.max(self.cfg.round_duration))
                .unwrap_or(0.0);
            let share_weight = 1.0 / (0.25 + achieved);
            for t in spec.gpu_types() {
                if let Some(p) = point_for(view, spec, t, demand) {
                    if p.throughput > 0.0 {
                        let obj = match self.cfg.objective {
                            GavelObjective::MaxSumThroughput => p.throughput * share_weight,
                            _ => 0.0, // max-min objectives only maximize z
                        };
                        let v = problem.add_var(obj, 0.0, 1.0);
                        vars.push((ji, t, v, demand, p.throughput));
                    }
                }
            }
        }
        // Each job's total time fraction is at most 1.
        for ji in 0..jobs.len() {
            let row: Vec<_> = vars
                .iter()
                .filter(|&&(j, _, _, _, _)| j == ji)
                .map(|&(_, _, v, _, _)| (v, 1.0))
                .collect();
            if !row.is_empty() {
                problem.add_le(&row, 1.0);
            }
        }
        // Expected GPU usage per type cannot exceed capacity.
        for t in spec.gpu_types() {
            let row: Vec<_> = vars
                .iter()
                .filter(|&&(_, vt, _, _, _)| vt == t)
                .map(|&(_, _, v, d, _)| (v, d as f64))
                .collect();
            if !row.is_empty() {
                problem.add_le(&row, cluster.gpus_of_type(t) as f64);
            }
        }
        // Epigraph rows for the max-min objectives.
        if self.cfg.objective != GavelObjective::MaxSumThroughput {
            let z = problem.add_var(1.0, 0.0, f64::INFINITY);
            for (ji, view) in jobs.iter().enumerate() {
                let norm = match self.cfg.objective {
                    GavelObjective::MaxMinFairness => {
                        // Normalize by the job's best single-type throughput.
                        vars.iter()
                            .filter(|&&(j, _, _, _, _)| j == ji)
                            .map(|&(_, _, _, _, thr)| thr)
                            .fold(0.0_f64, f64::max)
                    }
                    GavelObjective::MinMakespan => {
                        // Normalize by remaining work: z becomes a lower
                        // bound on every job's completion rate.
                        ((1.0 - view.progress).max(1e-3) * view.spec.work_target).max(1.0)
                    }
                    GavelObjective::MaxSumThroughput => unreachable!(),
                };
                let mut row: Vec<_> = vars
                    .iter()
                    .filter(|&&(j, _, _, _, _)| j == ji)
                    .map(|&(_, _, v, _, thr)| (v, thr / norm.max(1e-9)))
                    .collect();
                if row.is_empty() {
                    continue;
                }
                row.push((z, -1.0));
                problem.add_ge(&row, 0.0);
            }
        }
        let mut x: BTreeMap<JobId, Vec<f64>> =
            jobs.iter().map(|v| (v.id, vec![0.0; n_types])).collect();
        if let Ok(sol) = problem.solve_lp() {
            for &(ji, t, v, _, _) in &vars {
                x.get_mut(&jobs[ji].id).expect("job present")[t.0] = sol.value(v);
            }
        }
        x
    }
}

impl Scheduler for GavelPolicy {
    fn name(&self) -> &'static str {
        "gavel"
    }

    fn round_duration(&self) -> f64 {
        self.cfg.round_duration
    }

    fn schedule(
        &mut self,
        _now: f64,
        jobs: &[JobView<'_>],
        cluster: &ClusterView,
    ) -> AllocationMap {
        let _span = sia_telemetry::span("baseline.gavel.schedule");
        sia_telemetry::counter("baseline.gavel.rounds").incr();
        let spec = cluster.spec();
        let n_types = spec.num_gpu_types();

        // Account the previous round's received time per type.
        let live: Vec<JobId> = jobs.iter().map(|v| v.id).collect();
        self.time_run.retain(|id, _| live.contains(id));
        for view in jobs {
            let entry = self
                .time_run
                .entry(view.id)
                .or_insert_with(|| vec![0.0; n_types]);
            if !view.current.is_empty() {
                entry[view.current.gpu_type(spec).0] += self.cfg.round_duration;
            }
        }

        let x = self.solve_lp(jobs, cluster);

        // Priorities: X_jg / f_jg with f the achieved time fraction.
        let mut prio: Vec<(f64, usize, GpuTypeId)> = Vec::new();
        for (ji, view) in jobs.iter().enumerate() {
            let run = &self.time_run[&view.id];
            let age = view.age.max(self.cfg.round_duration);
            for t in spec.gpu_types() {
                let target = x[&view.id][t.0];
                if target <= 1e-6 {
                    continue;
                }
                let achieved = run[t.0] / age;
                prio.push((target / (achieved + 1e-3), ji, t));
            }
        }
        prio.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

        let mut free = LooseFree::for_view(cluster);
        let mut out = AllocationMap::new();
        for &(_, ji, t) in &prio {
            let view = &jobs[ji];
            if out.contains_key(&view.id) {
                continue;
            }
            let demand = rigid_demand(view);
            if let Some(p) = free.take(spec, t, demand) {
                out.insert(view.id, p);
            }
        }
        // Work conservation: fill leftovers with unassigned jobs on any type
        // they can use.
        for view in jobs {
            if out.contains_key(&view.id) {
                continue;
            }
            let demand = rigid_demand(view);
            let mut best: Option<(f64, GpuTypeId)> = None;
            for t in spec.gpu_types() {
                if free.total_of_type(spec, t) < demand {
                    continue;
                }
                if let Some(p) = point_for(view, spec, t, demand) {
                    match best {
                        Some((thr, _)) if thr >= p.throughput => {}
                        _ => best = Some((p.throughput, t)),
                    }
                }
            }
            if let Some((_, t)) = best {
                if let Some(p) = free.take(spec, t, demand) {
                    out.insert(view.id, p);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_cluster::{ClusterSpec, Placement};
    use sia_models::{BatchLimits, EfficiencyParams, JobEstimator, ThroughputParams};
    use sia_workloads::{Adaptivity, JobSpec, ModelKind, SizeCategory};

    fn params(speed: f64) -> ThroughputParams {
        ThroughputParams {
            alpha_c: 0.05 / speed,
            beta_c: 0.002 / speed,
            alpha_n: 0.02,
            beta_n: 0.005,
            alpha_d: 0.1,
            beta_d: 0.02,
            gamma: 2.5,
            max_local_bsz: 256.0,
        }
    }

    struct Fx {
        specs: Vec<JobSpec>,
        ests: Vec<JobEstimator>,
        curs: Vec<Placement>,
    }

    impl Fx {
        fn new(n: usize, demand: usize) -> Self {
            let specs = (0..n as u64)
                .map(|i| JobSpec {
                    id: JobId(i),
                    name: format!("j{i}"),
                    model: ModelKind::ResNet18,
                    category: SizeCategory::Small,
                    submit_time: 0.0,
                    adaptivity: Adaptivity::Rigid {
                        batch_size: 512.0,
                        num_gpus: demand,
                    },
                    min_gpus: 1,
                    max_gpus: 64,
                    work_target: 1e9,
                })
                .collect();
            let ests = (0..n)
                .map(|_| {
                    JobEstimator::oracle(
                        vec![params(1.0), params(1.8), params(4.0)],
                        EfficiencyParams::new(2000.0, 128.0),
                        BatchLimits::fixed(512.0),
                    )
                })
                .collect();
            Fx {
                specs,
                ests,
                curs: vec![Placement::empty(); n],
            }
        }

        fn views(&self) -> Vec<JobView<'_>> {
            self.specs
                .iter()
                .zip(&self.ests)
                .zip(&self.curs)
                .map(|((spec, est), cur)| JobView {
                    id: spec.id,
                    spec,
                    estimator: est,
                    current: cur,
                    age: 400.0,
                    restarts: 0,
                    restart_delay: 30.0,
                    progress: 0.1,
                })
                .collect()
        }
    }

    #[test]
    fn allocates_rigid_demand_exactly() {
        let cluster = ClusterView::new(ClusterSpec::heterogeneous_64());
        let fx = Fx::new(4, 4);
        let mut gavel = GavelPolicy::default();
        let out = gavel.schedule(0.0, &fx.views(), &cluster);
        assert_eq!(out.len(), 4);
        for p in out.values() {
            assert_eq!(p.total_gpus(), 4);
        }
    }

    #[test]
    fn respects_capacity_under_contention() {
        let cluster = ClusterView::new(ClusterSpec::heterogeneous_64());
        let fx = Fx::new(30, 4); // 120 GPUs demanded, 64 available
        let mut gavel = GavelPolicy::default();
        let out = gavel.schedule(0.0, &fx.views(), &cluster);
        let used: usize = out.values().map(|p| p.total_gpus()).sum();
        assert!(used <= 64);
        assert!(out.len() <= 16);
        assert!(out.len() >= 14, "work conserving: got {}", out.len());
    }

    #[test]
    fn time_sharing_rotates_starved_jobs_in() {
        let cluster = ClusterView::new(ClusterSpec::heterogeneous_64());
        let mut fx = Fx::new(30, 4);
        let mut gavel = GavelPolicy::default();
        let mut ever_allocated = std::collections::BTreeSet::new();
        for _ in 0..12 {
            let out = gavel.schedule(0.0, &fx.views(), &cluster);
            for (id, p) in &out {
                ever_allocated.insert(*id);
                let i = id.0 as usize;
                fx.curs[i] = p.clone();
            }
            for (i, s) in fx.specs.iter().enumerate() {
                if !out.contains_key(&s.id) {
                    fx.curs[i] = Placement::empty();
                }
            }
        }
        assert!(
            ever_allocated.len() >= 25,
            "time sharing must rotate jobs: {}",
            ever_allocated.len()
        );
    }

    #[test]
    fn single_job_gets_fastest_type() {
        let cluster = ClusterView::new(ClusterSpec::heterogeneous_64());
        let fx = Fx::new(1, 4);
        let mut gavel = GavelPolicy::default();
        let out = gavel.schedule(0.0, &fx.views(), &cluster);
        let p = &out[&JobId(0)];
        let a100 = cluster.gpu_type_by_name("a100").unwrap();
        assert_eq!(p.gpu_type(cluster.spec()), a100);
    }
}

#[cfg(test)]
mod objective_tests {
    use super::*;
    use sia_cluster::{ClusterSpec, Placement};
    use sia_models::{BatchLimits, EfficiencyParams, JobEstimator, ThroughputParams};
    use sia_workloads::{Adaptivity, JobSpec, ModelKind, SizeCategory};

    fn params(speed: f64) -> ThroughputParams {
        ThroughputParams {
            alpha_c: 0.05 / speed,
            beta_c: 0.002 / speed,
            alpha_n: 0.02,
            beta_n: 0.005,
            alpha_d: 0.1,
            beta_d: 0.02,
            gamma: 2.5,
            max_local_bsz: 256.0,
        }
    }

    struct Fx {
        specs: Vec<JobSpec>,
        ests: Vec<JobEstimator>,
        curs: Vec<Placement>,
        progress: Vec<f64>,
    }

    impl Fx {
        fn new(n: usize, demand: usize) -> Self {
            Fx {
                specs: (0..n as u64)
                    .map(|i| JobSpec {
                        id: JobId(i),
                        name: format!("j{i}"),
                        model: ModelKind::ResNet18,
                        category: SizeCategory::Small,
                        submit_time: 0.0,
                        adaptivity: Adaptivity::Rigid {
                            batch_size: 512.0,
                            num_gpus: demand,
                        },
                        min_gpus: 1,
                        max_gpus: 64,
                        work_target: 1e7,
                    })
                    .collect(),
                ests: (0..n)
                    .map(|_| {
                        JobEstimator::oracle(
                            vec![params(1.0), params(1.8), params(4.0)],
                            EfficiencyParams::new(2000.0, 128.0),
                            BatchLimits::fixed(512.0),
                        )
                    })
                    .collect(),
                curs: vec![Placement::empty(); n],
                progress: vec![0.1; n],
            }
        }

        fn views(&self) -> Vec<JobView<'_>> {
            self.specs
                .iter()
                .zip(&self.ests)
                .zip(self.curs.iter().zip(&self.progress))
                .map(|((spec, est), (cur, &progress))| JobView {
                    id: spec.id,
                    spec,
                    estimator: est,
                    current: cur,
                    age: 400.0,
                    restarts: 0,
                    restart_delay: 30.0,
                    progress,
                })
                .collect()
        }
    }

    #[test]
    fn max_min_fairness_spreads_shares() {
        // 30 identical jobs, capacity 16 slots of 4 GPUs: under max-min,
        // every job's LP share must be equal (16/30 each, up to tolerance).
        let cluster = ClusterView::new(ClusterSpec::heterogeneous_64());
        let fx = Fx::new(30, 4);
        let gavel = GavelPolicy::new(GavelConfig {
            objective: GavelObjective::MaxMinFairness,
            ..Default::default()
        });
        let x = gavel.solve_lp(&fx.views(), &cluster);
        let shares: Vec<f64> = x.values().map(|row| row.iter().sum::<f64>()).collect();
        let min = shares.iter().cloned().fold(f64::INFINITY, f64::min);
        // No job is starved under max-min fairness.
        assert!(min > 0.2, "max-min must give everyone a share, min {min}");
    }

    #[test]
    fn min_makespan_prioritizes_jobs_with_more_remaining_work() {
        let cluster = ClusterView::new(ClusterSpec::heterogeneous_64());
        let mut fx = Fx::new(20, 4);
        // Job 0 is nearly done; job 1 has everything left.
        fx.progress[0] = 0.99;
        fx.progress[1] = 0.0;
        let gavel = GavelPolicy::new(GavelConfig {
            objective: GavelObjective::MinMakespan,
            ..Default::default()
        });
        let x = gavel.solve_lp(&fx.views(), &cluster);
        let share = |i: u64| x[&JobId(i)].iter().sum::<f64>();
        assert!(
            share(1) > share(0),
            "job with more remaining work should receive more time: {} vs {}",
            share(1),
            share(0)
        );
    }

    #[test]
    fn all_objectives_schedule_end_to_end() {
        let cluster = ClusterView::new(ClusterSpec::heterogeneous_64());
        let fx = Fx::new(10, 4);
        for objective in [
            GavelObjective::MaxSumThroughput,
            GavelObjective::MaxMinFairness,
            GavelObjective::MinMakespan,
        ] {
            let mut gavel = GavelPolicy::new(GavelConfig {
                objective,
                ..Default::default()
            });
            let out = gavel.schedule(0.0, &fx.views(), &cluster);
            assert!(!out.is_empty(), "{objective:?} allocated nothing");
            let used: usize = out.values().map(|p| p.total_gpus()).sum();
            assert!(used <= 64);
        }
    }
}
