/root/repo/target/release/deps/sia_sim-e7e54f24511aa346.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/result.rs crates/sim/src/scheduler.rs

/root/repo/target/release/deps/libsia_sim-e7e54f24511aa346.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/result.rs crates/sim/src/scheduler.rs

/root/repo/target/release/deps/libsia_sim-e7e54f24511aa346.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/result.rs crates/sim/src/scheduler.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/result.rs:
crates/sim/src/scheduler.rs:
