//! Sia configuration sets (§3.3 of the paper).
//!
//! A configuration is a resource bundle `(n, r, t)`: `r` GPUs of type `t`
//! spread over `n` nodes. Sia restricts the allocation search space to a
//! small valid set per GPU type:
//!
//! * the *single-node* set `{(1, 2^0, t), (1, 2^1, t), …, (1, R, t)}` —
//!   powers of two up to the per-node GPU count `R`;
//! * the *multi-node* set `{(2, 2R, t), …, (N, N·R, t)}` — whole nodes only.
//!
//! Restricting single-node allocations to powers of two and multi-node
//! allocations to whole nodes guarantees (buddy-allocation argument /
//! submesh-shape-covering theorem) that any allocation vector satisfying the
//! per-type GPU capacity constraint admits a physical placement in which no
//! two distributed jobs share a node.

use crate::spec::{ClusterSpec, GpuTypeId};
use crate::view::ClusterView;

/// A resource bundle `(n, r, t)`: `r` GPUs of type `t` over `n` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Configuration {
    /// Number of nodes spanned.
    pub nodes: usize,
    /// Total number of GPUs.
    pub gpus: usize,
    /// GPU type.
    pub gpu_type: GpuTypeId,
}

impl Configuration {
    /// Creates a configuration; `gpus` must be positive and divisible over
    /// `nodes`.
    pub fn new(nodes: usize, gpus: usize, gpu_type: GpuTypeId) -> Self {
        debug_assert!(nodes >= 1 && gpus >= nodes);
        Configuration {
            nodes,
            gpus,
            gpu_type,
        }
    }

    /// Returns true if this configuration spans more than one node.
    pub fn is_distributed(&self) -> bool {
        self.nodes > 1
    }

    /// GPUs used per node (whole-node constraint makes this uniform).
    pub fn gpus_per_node(&self) -> usize {
        self.gpus.div_ceil(self.nodes)
    }
}

impl std::fmt::Display for Configuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.nodes, self.gpus, self.gpu_type.0)
    }
}

/// Builds the valid configuration set for one GPU type of a cluster.
///
/// Includes single-node powers of two up to the per-node GPU count `R`
/// (plus `R` itself when `R` is not a power of two, modelling the virtual
/// node decomposition of §3.3), and whole-node multiples `(n, n·R)` for
/// `2 <= n <= N`.
pub fn configs_for_type(spec: &ClusterSpec, t: GpuTypeId) -> Vec<Configuration> {
    let n_nodes = spec.num_nodes_of_type(t);
    if n_nodes == 0 {
        return Vec::new();
    }
    configs_from(n_nodes, spec.gpus_per_node_of_type(t), t)
}

/// Builds the valid configuration set for one GPU type of a *view*,
/// counting Active nodes only (a fully drained or removed type yields no
/// configurations).
pub fn configs_for_type_view(view: &ClusterView, t: GpuTypeId) -> Vec<Configuration> {
    let n_nodes = view.num_nodes_of_type(t);
    if n_nodes == 0 {
        return Vec::new();
    }
    configs_from(n_nodes, view.gpus_per_node_of_type(t), t)
}

fn configs_from(n_nodes: usize, r: usize, t: GpuTypeId) -> Vec<Configuration> {
    let mut out = Vec::new();
    let mut g = 1usize;
    while g < r {
        out.push(Configuration::new(1, g, t));
        g *= 2;
    }
    out.push(Configuration::new(1, r, t));
    for n in 2..=n_nodes {
        out.push(Configuration::new(n, n * r, t));
    }
    out
}

/// Builds the full Sia configuration set `C` (the union over GPU types).
///
/// # Examples
///
/// ```
/// use sia_cluster::{config_set, ClusterSpec};
///
/// // The running example from §3.4: one node with 2 A GPUs and one node
/// // with 4 B GPUs yields C = {(1,1,A),(1,2,A),(1,1,B),(1,2,B),(1,4,B)}.
/// let mut c = ClusterSpec::new();
/// let a = c.add_gpu_kind("A", 16.0, 1);
/// let b = c.add_gpu_kind("B", 16.0, 2);
/// c.add_nodes(a, 1, 2);
/// c.add_nodes(b, 1, 4);
/// let set = config_set(&c);
/// assert_eq!(set.len(), 5);
/// ```
pub fn config_set(spec: &ClusterSpec) -> Vec<Configuration> {
    let mut out = Vec::new();
    for t in spec.gpu_types() {
        out.extend(configs_for_type(spec, t));
    }
    out
}

/// Builds the Sia configuration set over the *Active* capacity of a view.
///
/// With every node Active this is identical to [`config_set`] on the
/// underlying spec; drained/removed nodes shrink (or empty) the per-type
/// sets, which is what invalidates goodput-matrix rows downstream.
pub fn config_set_view(view: &ClusterView) -> Vec<Configuration> {
    let mut out = Vec::new();
    for t in view.gpu_types() {
        out.extend(configs_for_type_view(view, t));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_type_powers_of_two_and_whole_nodes() {
        let mut c = ClusterSpec::new();
        let t = c.add_gpu_kind("t4", 16.0, 1);
        c.add_nodes(t, 4, 8);
        let set = configs_for_type(&c, t);
        let gpus: Vec<usize> = set.iter().map(|cfg| cfg.gpus).collect();
        assert_eq!(gpus, vec![1, 2, 4, 8, 16, 24, 32]);
        let nodes: Vec<usize> = set.iter().map(|cfg| cfg.nodes).collect();
        assert_eq!(nodes, vec![1, 1, 1, 1, 2, 3, 4]);
    }

    #[test]
    fn set_size_matches_n_plus_log_r() {
        // |C| = N + log2(R) for a single type (paper §3.3).
        let mut c = ClusterSpec::new();
        let t = c.add_gpu_kind("t4", 16.0, 1);
        let (n, r) = (16usize, 8usize);
        c.add_nodes(t, n, r);
        let set = configs_for_type(&c, t);
        assert_eq!(set.len(), n + (r as f64).log2() as usize);
    }

    #[test]
    fn non_power_of_two_nodes_include_r() {
        let mut c = ClusterSpec::new();
        let t = c.add_gpu_kind("odd", 16.0, 1);
        c.add_nodes(t, 2, 6);
        let set = configs_for_type(&c, t);
        let gpus: Vec<usize> = set.iter().map(|cfg| cfg.gpus).collect();
        assert_eq!(gpus, vec![1, 2, 4, 6, 12]);
    }

    #[test]
    fn heterogeneous_64_set() {
        let c = ClusterSpec::heterogeneous_64();
        let set = config_set(&c);
        // t4: 1,2,4 + 8..24 by node (n=2..6) => 3 + 5 = 8
        // rtx: 1,2,4,8 + 16,24 => 6
        // a100: 1,2,4,8 + 16 => 5
        assert_eq!(set.len(), 8 + 6 + 5);
        // Multi-node configurations always use whole nodes.
        for cfg in &set {
            if cfg.is_distributed() {
                let r = c.gpus_per_node_of_type(cfg.gpu_type);
                assert_eq!(cfg.gpus, cfg.nodes * r);
            }
        }
    }

    #[test]
    fn view_set_shrinks_with_capacity() {
        use crate::view::{ClusterView, NodeHealth};
        let mut view = ClusterView::new(ClusterSpec::heterogeneous_64());
        let a100 = view.gpu_type_by_name("a100").unwrap();
        assert_eq!(config_set_view(&view), config_set(view.spec()));
        let ids: Vec<usize> = view.spec().nodes_of_type(a100).map(|n| n.id).collect();
        view.set_health(ids[1], NodeHealth::Removed);
        // a100: 1,2,4,8 only (one node left) => 5 - 1 = 4 configs.
        assert_eq!(configs_for_type_view(&view, a100).len(), 4);
        view.set_health(ids[0], NodeHealth::Draining);
        assert!(configs_for_type_view(&view, a100).is_empty());
    }

    #[test]
    fn display_matches_paper_tuple_form() {
        let cfg = Configuration::new(2, 16, GpuTypeId(0));
        assert_eq!(cfg.to_string(), "(2, 16, 0)");
    }
}
