//! Figure 9: median policy runtime vs cluster size, Helios-like traces
//! scaled proportionally.
//!
//! Two sweeps:
//!
//! * **Comparison** (64 → 2048 GPUs): Sia vs Pollux vs Gavel+TJ, both
//!   simulation engines per cell so the JSON records a wall-clock
//!   before/after. Expected shape: Gavel fastest (tiny LP); Sia around a
//!   second at 2048 GPUs; Pollux's genetic algorithm orders of magnitude
//!   slower at scale.
//! * **Scale** (4096 → 65536 GPUs): Sia with the sharded MILP
//!   decomposition and an anytime per-round budget. The monolithic
//!   branch-and-bound is infeasible here (the dense simplex alone blows
//!   past a round), so each cell is gated instead on the anytime
//!   contract: median round runtime ≤ the round budget, and median
//!   proven relative gap ≤ 10x the solver's gap tolerance. Any gate
//!   violation makes the process exit nonzero, so CI can run this
//!   directly.
//!
//! An optional argument restricts the comparison scale factors, e.g.
//! `fig9_scalability 1,2,4,8` (any unparseable argument means `1,2,4,8`).
//! Setting `SIA_BENCH_QUICK=1` skips the comparison sweep and runs only
//! the 4096-GPU scale cell — the CI perf-smoke configuration.

use sia_bench::{run_one, write_json, Policy};
use sia_cluster::ClusterSpec;
use sia_metrics::{percentile, summarize_phases};
use sia_sim::{EngineKind, SimConfig, SimResult};
use sia_workloads::{Trace, TraceConfig, TraceKind};

/// Per-round anytime budget for the sharded scale sweep, seconds.
const ROUND_BUDGET_S: u32 = 15;

/// Scale factors for the sharded sweep: 4096, 16384 and 65536 GPUs.
const SCALE_FACTORS: [usize; 3] = [64, 256, 1024];

/// Median relative gap gate: 10x the sharded policy's gap tolerance.
const GAP_GATE: f64 = 10.0 * 1e-3;

/// Median policy runtime over the steady-state rounds (warm-up skipped).
fn median_runtimes(result: &SimResult) -> (f64, f64, f64) {
    let runtimes: Vec<f64> = result
        .rounds
        .iter()
        .map(|r| r.policy_runtime)
        .skip(result.rounds.len() / 3)
        .collect();
    (
        percentile(&runtimes, 0.5),
        percentile(&runtimes, 0.25),
        percentile(&runtimes, 0.75),
    )
}

fn main() {
    let quick = std::env::var("SIA_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let factors: Vec<usize> = std::env::args()
        .nth(1)
        .map(|arg| {
            let parsed: Vec<usize> = arg
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect();
            if parsed.is_empty() {
                vec![1, 2, 4, 8]
            } else {
                parsed
            }
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8, 16, 32]);
    let policies = [Policy::Sia, Policy::Pollux, Policy::GavelTuned];

    let mut payload = serde_json::Map::new();
    let mut series: std::collections::BTreeMap<String, Vec<(usize, f64, f64, f64)>> =
        Default::default();
    // Whole-simulation wall-clock per engine, per cell: (gpus, round, events).
    let mut wall_series: std::collections::BTreeMap<String, Vec<(usize, f64, f64)>> =
        Default::default();
    // Per-phase breakdown (refit/goodput/build/solve/placement) for policies
    // that report SolverStats — shows where Sia's runtime goes as the
    // cluster grows.
    let mut phase_series: std::collections::BTreeMap<String, Vec<serde_json::Value>> =
        Default::default();

    if !quick {
        println!("== Figure 9: median policy runtime (s) vs cluster size ==");
        print!("{:<10}", "#GPUs");
        for p in policies {
            print!("{:>14}", p.label());
        }
        println!();

        for &f in &factors {
            let cluster = ClusterSpec::heterogeneous_scaled(f);
            print!("{:<10}", 64 * f);
            for p in policies {
                // Proportionally scaled load: rate x factor, short window; we
                // only need enough rounds for a stable runtime median.
                let mut tcfg = TraceConfig::new(TraceKind::Helios, 7)
                    .with_rate(20.0 * f as f64)
                    .with_max_gpus_cap(16);
                if p.needs_tuned_jobs() {
                    tcfg = tcfg.with_adaptivity_mix(0.0, 1.0);
                }
                tcfg.window_hours = 1.0;
                let trace = Trace::generate(&tcfg);
                let mut result = None;
                let mut walls = [0.0_f64; 2];
                for (slot, engine) in [EngineKind::Round, EngineKind::Events]
                    .into_iter()
                    .enumerate()
                {
                    let cfg = SimConfig {
                        engine,
                        seed: 7,
                        max_hours: 0.35,
                        ..SimConfig::default()
                    };
                    let t = std::time::Instant::now();
                    let r = run_one(p, &cluster, &trace, cfg, 7);
                    walls[slot] = t.elapsed().as_secs_f64();
                    result = Some(r);
                }
                let result = result.expect("both engines ran");
                wall_series
                    .entry(p.label())
                    .or_default()
                    .push((64 * f, walls[0], walls[1]));
                let (median, p25, p75) = median_runtimes(&result);
                print!("{median:>14.4}");
                series
                    .entry(p.label())
                    .or_default()
                    .push((64 * f, median, p25, p75));
                if let Some(ph) = summarize_phases(&result) {
                    phase_series
                        .entry(p.label())
                        .or_default()
                        .push(serde_json::json!({
                            "gpus": 64 * f,
                            "mean_refit_s": ph.mean_refit_s,
                            "mean_goodput_s": ph.mean_goodput_s,
                            "mean_build_s": ph.mean_build_s,
                            "mean_solve_s": ph.mean_solve_s,
                            "mean_placement_s": ph.mean_placement_s,
                            "mean_candidates": ph.mean_candidates,
                            "milp_nodes": ph.total_nodes,
                            "simplex_pivots": ph.total_pivots,
                            "fallback_rounds": ph.fallback_rounds,
                            "matrix_cache_hits": ph.total_cache_hits,
                            "matrix_cache_misses": ph.total_cache_misses,
                            "warm_seeded_rounds": ph.warm_seeded_rounds,
                            "warm_pivots_saved": ph.total_warm_pivots_saved,
                            // Gap-over-scale series (sia-audit): does the proven
                            // optimality gap widen as the MILP grows?
                            "bounded_rounds": ph.bounded_rounds,
                            "mean_best_bound": ph.mean_best_bound,
                            "median_rel_gap": ph.median_rel_gap,
                            "max_rel_gap": ph.max_rel_gap,
                            "milp_nodes_pruned": ph.total_nodes_pruned,
                            "mean_seed_objective": ph.mean_seed_objective,
                        }));
                }
            }
            println!();
        }

        println!("\n== simulation wall-clock (s), round engine -> event engine ==");
        print!("{:<10}", "#GPUs");
        for p in policies {
            print!("{:>24}", p.label());
        }
        println!();
        for (row, &f) in factors.iter().enumerate() {
            print!("{:<10}", 64 * f);
            for p in policies {
                let (_, a, b) = wall_series[&p.label()][row];
                print!("{:>24}", format!("{a:.2} -> {b:.2}"));
            }
            println!();
        }
    }

    // -- Scale sweep: sharded Sia with the anytime round budget. --------
    let scale_factors: &[usize] = if quick {
        &SCALE_FACTORS[..1]
    } else {
        &SCALE_FACTORS
    };
    let sharded = Policy::SiaSharded {
        round_budget_s: ROUND_BUDGET_S,
    };
    let mut scale_rows = Vec::new();
    let mut gate_failures = Vec::new();
    println!(
        "\n== scale sweep: {} with {ROUND_BUDGET_S} s round budget ==",
        sharded.label()
    );
    println!(
        "{:<10} {:>10} {:>10} {:>9} {:>8} {:>9} {:>11} {:>8}",
        "#GPUs", "median(s)", "p75(s)", "rel-gap", "shards", "budgeted", "exhausted", "wall(s)"
    );
    for &f in scale_factors {
        let cluster = ClusterSpec::heterogeneous_scaled(f);
        let mut tcfg = TraceConfig::new(TraceKind::Helios, 7)
            .with_rate(20.0 * f as f64)
            .with_max_gpus_cap(16);
        tcfg.window_hours = 1.0;
        let trace = Trace::generate(&tcfg);
        // Fewer (but still enough-for-a-median) rounds at the largest
        // scales: each round's absolute cost grows with the job count.
        let max_hours = match f {
            0..=127 => 0.35,
            128..=511 => 0.25,
            _ => 0.15,
        };
        let cfg = SimConfig {
            engine: EngineKind::Events,
            seed: 7,
            max_hours,
            ..SimConfig::default()
        };
        let t = std::time::Instant::now();
        let result = run_one(sharded, &cluster, &trace, cfg, 7);
        let wall = t.elapsed().as_secs_f64();
        let (median, p25, p75) = median_runtimes(&result);
        let ph = summarize_phases(&result);
        let median_rel_gap = ph.as_ref().map_or(0.0, |p| p.median_rel_gap);
        let budget_ok = median <= ROUND_BUDGET_S as f64;
        let gap_ok = median_rel_gap <= GAP_GATE;
        if !budget_ok {
            gate_failures.push(format!(
                "{} GPUs: median round runtime {median:.2} s exceeds the {ROUND_BUDGET_S} s budget",
                64 * f
            ));
        }
        if !gap_ok {
            gate_failures.push(format!(
                "{} GPUs: median rel gap {median_rel_gap:.3e} exceeds the {GAP_GATE:.1e} gate",
                64 * f
            ));
        }
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>9.2e} {:>8.1} {:>8}/{:<2} {:>9} {:>8.1}",
            64 * f,
            median,
            p75,
            median_rel_gap,
            ph.as_ref().map_or(0.0, |p| p.mean_shards),
            ph.as_ref().map_or(0, |p| p.sharded_rounds),
            ph.as_ref().map_or(0, |p| p.rounds),
            ph.as_ref().map_or(0, |p| p.budget_exhausted_rounds),
            wall,
        );
        scale_rows.push(serde_json::json!({
            "gpus": 64 * f,
            "median_s": median,
            "p25_s": p25,
            "p75_s": p75,
            "round_budget_s": ROUND_BUDGET_S,
            "budget_ok": budget_ok,
            "median_rel_gap": median_rel_gap,
            "gap_gate": GAP_GATE,
            "gap_ok": gap_ok,
            "rounds": ph.as_ref().map_or(0, |p| p.rounds),
            "sharded_rounds": ph.as_ref().map_or(0, |p| p.sharded_rounds),
            "mean_shards": ph.as_ref().map_or(0.0, |p| p.mean_shards),
            "budget_exhausted_rounds": ph.as_ref().map_or(0, |p| p.budget_exhausted_rounds),
            "mean_lagrangian_iters": ph.as_ref().map_or(0.0, |p| p.mean_lagrangian_iters),
            "mean_solve_s": ph.as_ref().map_or(0.0, |p| p.mean_solve_s),
            "mean_goodput_s": ph.as_ref().map_or(0.0, |p| p.mean_goodput_s),
            "mean_candidates": ph.as_ref().map_or(0.0, |p| p.mean_candidates),
            "max_rel_gap": ph.as_ref().map_or(0.0, |p| p.max_rel_gap),
            "wall_s": wall,
            "jobs": trace.jobs.len(),
        }));
    }
    payload.insert(
        format!("{}_scale", sharded.label()),
        serde_json::Value::Array(scale_rows),
    );

    for (label, pts) in &series {
        payload.insert(
            label.clone(),
            serde_json::json!(pts
                .iter()
                .map(|&(g, med, p25, p75)| serde_json::json!({
                    "gpus": g, "median_s": med, "p25_s": p25, "p75_s": p75
                }))
                .collect::<Vec<_>>()),
        );
    }
    for (label, pts) in wall_series {
        payload.insert(
            format!("{label}_wall"),
            serde_json::json!(pts
                .iter()
                .map(|&(g, a, b)| serde_json::json!({
                    "gpus": g, "wall_round_s": a, "wall_events_s": b
                }))
                .collect::<Vec<_>>()),
        );
    }
    for (label, pts) in phase_series {
        payload.insert(format!("{label}_phases"), serde_json::Value::Array(pts));
    }
    if quick {
        // The quick cell overwrites nothing: CI writes its own artifact so
        // the committed full-sweep results stay intact.
        write_json(
            "fig9_scalability_quick",
            &serde_json::Value::Object(payload),
        );
    } else {
        write_json("fig9_scalability", &serde_json::Value::Object(payload));
    }

    if !gate_failures.is_empty() {
        eprintln!("\nscale-gate FAILURES:");
        for f in &gate_failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("\nscale gates: all cells within budget and gap tolerance");
}
