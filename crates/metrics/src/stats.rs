//! Aggregate scheduler statistics (Tables 3 and 4).

use std::collections::BTreeMap;

use sia_sim::SimResult;
use sia_workloads::ModelKind;

/// The metric row the paper's tables report per `(trace, policy)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Scheduler name.
    pub scheduler: &'static str,
    /// Number of finished jobs.
    pub finished: usize,
    /// Number of jobs unfinished at the horizon.
    pub unfinished: usize,
    /// Average job completion time, hours.
    pub avg_jct_hours: f64,
    /// 99th-percentile JCT, hours.
    pub p99_jct_hours: f64,
    /// Makespan (last completion), hours.
    pub makespan_hours: f64,
    /// Average GPU-hours consumed per job.
    pub gpu_hours_per_job: f64,
    /// Mean contention (jobs wanting resources) over rounds.
    pub avg_contention: f64,
    /// Peak contention.
    pub max_contention: usize,
    /// Average restarts per job.
    pub avg_restarts: f64,
    /// Median policy runtime per round, seconds.
    pub median_policy_runtime: f64,
    /// Per-phase scheduler breakdown, for policies that report one.
    pub solver: Option<SolverPhaseSummary>,
}

/// Where the scheduler's per-round wall-clock went, averaged over the rounds
/// that reported a [`sia_sim::SolverStats`] (§5.6 scalability breakdowns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverPhaseSummary {
    /// Rounds that carried solver stats.
    pub rounds: usize,
    /// Mean seconds re-fitting stale goodput rows.
    pub mean_refit_s: f64,
    /// Mean seconds evaluating the goodput/utility matrix.
    pub mean_goodput_s: f64,
    /// Mean seconds building the assignment ILP.
    pub mean_build_s: f64,
    /// Mean seconds solving it (including fallbacks).
    pub mean_solve_s: f64,
    /// Mean seconds realizing placements.
    pub mean_placement_s: f64,
    /// Mean candidate count offered to the solver per round.
    pub mean_candidates: f64,
    /// Branch-and-bound nodes explored across all rounds.
    pub total_nodes: u64,
    /// Simplex pivots across all rounds.
    pub total_pivots: u64,
    /// Rounds resolved by a heuristic fallback instead of the exact solver.
    pub fallback_rounds: usize,
    /// Goodput-matrix rows reused across all rounds (fast-path cache hits).
    pub total_cache_hits: u64,
    /// Goodput-matrix rows re-enumerated across all rounds.
    pub total_cache_misses: u64,
    /// Rounds whose branch-and-bound accepted the warm-start incumbent seed.
    pub warm_seeded_rounds: usize,
    /// Estimated simplex pivots avoided via parent-basis warm starts.
    pub total_warm_pivots_saved: u64,
    /// Rounds carrying a proven relaxation bound (exact solves only;
    /// fallback rounds have no bound).
    pub bounded_rounds: usize,
    /// Mean proven bound over bounded rounds.
    pub mean_best_bound: f64,
    /// Median proven relative optimality gap over bounded rounds.
    pub median_rel_gap: f64,
    /// Largest proven relative optimality gap.
    pub max_rel_gap: f64,
    /// Branch-and-bound nodes pruned by bound across all rounds.
    pub total_nodes_pruned: u64,
    /// Mean objective of accepted warm-start seeds, over seeded rounds.
    pub mean_seed_objective: f64,
    /// Rounds solved by the sharded decomposition path.
    pub sharded_rounds: usize,
    /// Mean shard count over sharded rounds (0 when none were sharded).
    pub mean_shards: f64,
    /// Rounds where the per-round time budget expired before optimality
    /// was proven (the anytime incumbent was returned instead).
    pub budget_exhausted_rounds: usize,
    /// Mean Lagrangian pricing iterations over rounds that ran pricing.
    pub mean_lagrangian_iters: f64,
}

/// Aggregates per-round [`sia_sim::SolverStats`] into a phase summary
/// (`None` when no round reported stats).
pub fn summarize_phases(result: &SimResult) -> Option<SolverPhaseSummary> {
    let stats: Vec<_> = result
        .rounds
        .iter()
        .filter_map(|r| r.solver_stats)
        .collect();
    if stats.is_empty() {
        return None;
    }
    let n = stats.len() as f64;
    let mean = |f: fn(&sia_sim::SolverStats) -> f64| stats.iter().map(f).sum::<f64>() / n;
    let bounds: Vec<f64> = stats.iter().filter_map(|s| s.best_bound).collect();
    let mut rel_gaps: Vec<f64> = stats.iter().filter_map(|s| s.gap_rel()).collect();
    rel_gaps.sort_by(f64::total_cmp);
    let seeds: Vec<f64> = stats.iter().filter_map(|s| s.incumbent_seed).collect();
    let mean_of = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    Some(SolverPhaseSummary {
        rounds: stats.len(),
        mean_refit_s: mean(|s| s.refit_s),
        mean_goodput_s: mean(|s| s.goodput_s),
        mean_build_s: mean(|s| s.build_s),
        mean_solve_s: mean(|s| s.solve_s),
        mean_placement_s: mean(|s| s.placement_s),
        mean_candidates: mean(|s| s.candidates as f64),
        total_nodes: stats.iter().map(|s| s.nodes as u64).sum(),
        total_pivots: stats.iter().map(|s| s.pivots as u64).sum(),
        fallback_rounds: stats
            .iter()
            .filter(|s| {
                matches!(
                    s.outcome,
                    sia_sim::SolveOutcome::LagrangianFallback
                        | sia_sim::SolveOutcome::GreedyFallback
                )
            })
            .count(),
        total_cache_hits: stats.iter().map(|s| s.cache_hits as u64).sum(),
        total_cache_misses: stats.iter().map(|s| s.cache_misses as u64).sum(),
        warm_seeded_rounds: stats.iter().filter(|s| s.incumbent_seed.is_some()).count(),
        total_warm_pivots_saved: stats.iter().map(|s| s.warm_pivots_saved as u64).sum(),
        bounded_rounds: bounds.len(),
        mean_best_bound: mean_of(&bounds),
        median_rel_gap: if rel_gaps.is_empty() {
            0.0
        } else {
            rel_gaps[rel_gaps.len() / 2]
        },
        max_rel_gap: rel_gaps.last().copied().unwrap_or(0.0),
        total_nodes_pruned: stats.iter().map(|s| s.nodes_pruned as u64).sum(),
        mean_seed_objective: mean_of(&seeds),
        sharded_rounds: stats.iter().filter(|s| s.shards > 0).count(),
        mean_shards: mean_of(
            &stats
                .iter()
                .filter(|s| s.shards > 0)
                .map(|s| s.shards as f64)
                .collect::<Vec<_>>(),
        ),
        budget_exhausted_rounds: stats.iter().filter(|s| s.budget_exhausted).count(),
        mean_lagrangian_iters: mean_of(
            &stats
                .iter()
                .filter(|s| s.lagrangian_iters > 0)
                .map(|s| s.lagrangian_iters as f64)
                .collect::<Vec<_>>(),
        ),
    })
}

/// Linear-interpolated percentile of an unsorted sample (`q` in `[0, 1]`).
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q.clamp(0.0, 1.0) * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Empirical CDF: sorted `(value, cumulative fraction)` points.
pub fn cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len() as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// Builds the paper's table row from one simulation result.
pub fn summarize(result: &SimResult) -> Summary {
    let jcts: Vec<f64> = result.records.iter().filter_map(|r| r.jct()).collect();
    let finished = jcts.len();
    let avg = if finished > 0 {
        jcts.iter().sum::<f64>() / finished as f64
    } else {
        0.0
    };
    let contentions: Vec<f64> = result.rounds.iter().map(|r| r.contention as f64).collect();
    let avg_contention = if contentions.is_empty() {
        0.0
    } else {
        contentions.iter().sum::<f64>() / contentions.len() as f64
    };
    Summary {
        scheduler: result.scheduler,
        finished,
        unfinished: result.unfinished,
        avg_jct_hours: avg / 3600.0,
        p99_jct_hours: percentile(&jcts, 0.99) / 3600.0,
        makespan_hours: result.makespan / 3600.0,
        gpu_hours_per_job: if result.records.is_empty() {
            0.0
        } else {
            result.total_gpu_hours() / result.records.len() as f64
        },
        avg_contention,
        max_contention: result
            .rounds
            .iter()
            .map(|r| r.contention)
            .max()
            .unwrap_or(0),
        avg_restarts: result.avg_restarts(),
        median_policy_runtime: result.median_policy_runtime(),
        solver: summarize_phases(result),
    }
}

/// Average GPU-hours per job, split by model (Figure 6).
pub fn gpu_hours_by_model(result: &SimResult) -> BTreeMap<ModelKind, f64> {
    let mut sums: BTreeMap<ModelKind, (f64, usize)> = BTreeMap::new();
    for r in &result.records {
        let e = sums.entry(r.model).or_insert((0.0, 0));
        e.0 += r.gpu_seconds / 3600.0;
        e.1 += 1;
    }
    sums.into_iter()
        .map(|(m, (total, n))| (m, total / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_cluster::JobId;
    use sia_sim::{JobRecord, RoundLog};
    use sia_workloads::SizeCategory;

    fn record(id: u64, model: ModelKind, jct: Option<f64>, gpu_secs: f64) -> JobRecord {
        JobRecord {
            id: JobId(id),
            name: format!("j{id}"),
            model,
            category: SizeCategory::Small,
            submit_time: 0.0,
            first_start: Some(10.0),
            finish_time: jct,
            gpu_seconds: gpu_secs,
            restarts: 1,
            failures: 0,
            avg_contention: 3.0,
            max_gpus: 8,
            work_target: 100.0,
            work_done: 100.0,
        }
    }

    fn result(records: Vec<JobRecord>) -> SimResult {
        let unfinished = records.iter().filter(|r| r.finish_time.is_none()).count();
        SimResult {
            scheduler: "test",
            records,
            rounds: vec![RoundLog {
                time: 0.0,
                active_jobs: 2,
                contention: 2,
                allocations: vec![],
                policy_runtime: 0.01,
                solver_stats: None,
            }],
            makespan: 7200.0,
            unfinished,
            trace: Default::default(),
            audit: Default::default(),
        }
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn cdf_monotone_and_ends_at_one() {
        let pts = cdf(&[3.0, 1.0, 2.0]);
        assert_eq!(pts.len(), 3);
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn summary_aggregates() {
        let r = result(vec![
            record(0, ModelKind::ResNet18, Some(3600.0), 3600.0),
            record(1, ModelKind::Bert, Some(7200.0), 7200.0),
            record(2, ModelKind::Bert, None, 1800.0),
        ]);
        let s = summarize(&r);
        assert_eq!(s.finished, 2);
        assert_eq!(s.unfinished, 1);
        assert!((s.avg_jct_hours - 1.5).abs() < 1e-9);
        assert!((s.makespan_hours - 2.0).abs() < 1e-9);
        assert!((s.gpu_hours_per_job - (3.5 / 3.0)).abs() < 1e-9);
        assert_eq!(s.max_contention, 2);
    }

    #[test]
    fn per_model_gpu_hours() {
        let r = result(vec![
            record(0, ModelKind::ResNet18, Some(100.0), 3600.0),
            record(1, ModelKind::Bert, Some(100.0), 7200.0),
            record(2, ModelKind::Bert, Some(100.0), 3600.0),
        ]);
        let by = gpu_hours_by_model(&r);
        assert!((by[&ModelKind::ResNet18] - 1.0).abs() < 1e-9);
        assert!((by[&ModelKind::Bert] - 1.5).abs() < 1e-9);
    }
}

/// Cluster GPU utilization per round: fraction of `total_gpus` allocated.
pub fn utilization_series(result: &SimResult, total_gpus: usize) -> Vec<(f64, f64)> {
    result
        .rounds
        .iter()
        .map(|r| {
            let used: usize = r.allocations.iter().map(|&(_, _, g)| g).sum();
            (r.time, used as f64 / total_gpus.max(1) as f64)
        })
        .collect()
}

/// Mean cluster utilization over the busy period (rounds with any active
/// jobs).
pub fn avg_utilization(result: &SimResult, total_gpus: usize) -> f64 {
    let busy: Vec<f64> = result
        .rounds
        .iter()
        .filter(|r| r.active_jobs > 0)
        .map(|r| {
            let used: usize = r.allocations.iter().map(|&(_, _, g)| g).sum();
            used as f64 / total_gpus.max(1) as f64
        })
        .collect();
    if busy.is_empty() {
        0.0
    } else {
        busy.iter().sum::<f64>() / busy.len() as f64
    }
}

#[cfg(test)]
mod util_tests {
    use super::*;
    use sia_cluster::{GpuTypeId, JobId};
    use sia_sim::RoundLog;

    fn round(time: f64, gpus: usize, active: usize) -> RoundLog {
        RoundLog {
            time,
            active_jobs: active,
            contention: active,
            allocations: if gpus > 0 {
                vec![(JobId(0), GpuTypeId(0), gpus)]
            } else {
                vec![]
            },
            policy_runtime: 0.0,
            solver_stats: None,
        }
    }

    fn result_with(rounds: Vec<RoundLog>) -> SimResult {
        SimResult {
            scheduler: "t",
            records: vec![],
            rounds,
            makespan: 0.0,
            unfinished: 0,
            trace: Default::default(),
            audit: Default::default(),
        }
    }

    #[test]
    fn utilization_series_tracks_allocations() {
        let r = result_with(vec![
            round(0.0, 32, 2),
            round(60.0, 64, 2),
            round(120.0, 0, 0),
        ]);
        let s = utilization_series(&r, 64);
        assert_eq!(s.len(), 3);
        assert!((s[0].1 - 0.5).abs() < 1e-12);
        assert!((s[1].1 - 1.0).abs() < 1e-12);
        assert_eq!(s[2].1, 0.0);
    }

    #[test]
    fn avg_utilization_ignores_idle_rounds() {
        let r = result_with(vec![round(0.0, 32, 1), round(60.0, 0, 0)]);
        assert!((avg_utilization(&r, 64) - 0.5).abs() < 1e-12);
        assert_eq!(avg_utilization(&result_with(vec![]), 64), 0.0);
    }
}
