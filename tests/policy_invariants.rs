//! End-to-end invariants of the Sia policy: adaptivity restrictions,
//! hybrid-parallel widths, scale-up discipline and reservations.

use sia::cluster::{ClusterSpec, Configuration, JobId};
use sia::core::SiaPolicy;
use sia::sim::{SimConfig, Simulator};
use sia::workloads::{Adaptivity, ModelKind, Trace, TraceConfig, TraceKind};

fn short_trace(seed: u64, n: usize) -> Trace {
    let mut t = Trace::generate(&TraceConfig::new(TraceKind::Philly, seed).with_max_gpus_cap(16));
    t.jobs.truncate(n);
    for j in &mut t.jobs {
        j.work_target *= 0.1;
    }
    t
}

#[test]
fn rigid_jobs_keep_their_gpu_count() {
    let cluster = ClusterSpec::heterogeneous_64();
    let mut trace = short_trace(4, 16);
    for j in &mut trace.jobs {
        j.adaptivity = Adaptivity::Rigid {
            batch_size: j.model.profile().min_batch * 4.0,
            num_gpus: 2,
        };
    }
    let result =
        Simulator::new(cluster, &trace, SimConfig::default()).run(&mut SiaPolicy::default());
    for round in &result.rounds {
        for &(_, _, gpus) in &round.allocations {
            assert_eq!(gpus, 2, "rigid jobs must run with exactly their count");
        }
    }
    assert_eq!(result.unfinished, 0);
}

#[test]
fn max_gpus_respected_for_adaptive_jobs() {
    let cluster = ClusterSpec::heterogeneous_64();
    let mut trace = short_trace(5, 8);
    for j in &mut trace.jobs {
        j.max_gpus = 4;
    }
    let result =
        Simulator::new(cluster, &trace, SimConfig::default()).run(&mut SiaPolicy::default());
    for round in &result.rounds {
        for &(_, _, gpus) in &round.allocations {
            assert!(gpus <= 4);
        }
    }
}

#[test]
fn scale_up_at_most_doubles_per_round() {
    let cluster = ClusterSpec::heterogeneous_64();
    let trace = short_trace(6, 6);
    let result =
        Simulator::new(cluster, &trace, SimConfig::default()).run(&mut SiaPolicy::default());
    let mut last: std::collections::BTreeMap<JobId, usize> = Default::default();
    for round in &result.rounds {
        let mut now: std::collections::BTreeMap<JobId, usize> = Default::default();
        for &(job, _, gpus) in &round.allocations {
            now.insert(job, gpus);
            let prev = last.get(&job).copied().unwrap_or(0);
            if prev == 0 {
                assert_eq!(gpus, 1, "queued DP jobs must start at one GPU");
            } else {
                assert!(
                    gpus <= 2 * prev,
                    "job {job} jumped {prev} -> {gpus} in one round"
                );
            }
        }
        last = now;
    }
}

#[test]
fn hybrid_parallel_allocations_are_whole_pipelines() {
    let mut cluster = ClusterSpec::new();
    let rtx = cluster.add_gpu_kind("rtx", 11.0, 2);
    let a100 = cluster.add_gpu_kind("a100", 40.0, 4);
    cluster.add_nodes(rtx, 4, 8);
    cluster.add_nodes(a100, 2, 8);
    let mut trace = short_trace(7, 4);
    trace.push_hybrid_parallel_job(0.0);
    let gpt_id = trace
        .jobs
        .iter()
        .find(|j| j.model == ModelKind::Gpt2p8b)
        .unwrap()
        .id;
    // Shrink GPT work so the test completes quickly.
    for j in &mut trace.jobs {
        if j.id == gpt_id {
            j.work_target *= 0.05;
        }
    }
    let result = Simulator::new(cluster.clone(), &trace, SimConfig::default())
        .run(&mut SiaPolicy::default());
    let mut saw_gpt = false;
    for round in &result.rounds {
        for &(job, t, gpus) in &round.allocations {
            if job == gpt_id {
                saw_gpt = true;
                let width = match cluster.kind(t).name.as_str() {
                    "a100" => 2,
                    "rtx" => 8,
                    other => panic!("GPT placed on impossible type {other}"),
                };
                assert_eq!(gpus % width, 0, "partial pipeline allocation");
            }
        }
    }
    assert!(saw_gpt, "the GPT job must be scheduled");
}

#[test]
fn reservations_hold_every_round() {
    let cluster = ClusterSpec::heterogeneous_64();
    let trace = short_trace(8, 12);
    let a100 = cluster.gpu_type_by_name("a100").unwrap();
    let reserved = trace.jobs[0].id;
    let mut sia = SiaPolicy::default();
    sia.reserve(reserved, Configuration::new(1, 1, a100));
    let result = Simulator::new(cluster.clone(), &trace, SimConfig::default()).run(&mut sia);
    // From its submission until completion, the reserved job must hold
    // exactly 1 a100 GPU in every round.
    let rec = result.records.iter().find(|r| r.id == reserved).unwrap();
    let finish = rec.finish_time.expect("reserved job finishes");
    for round in &result.rounds {
        if round.time >= rec.submit_time && round.time + 60.0 < finish {
            let alloc = round.allocations.iter().find(|(j, _, _)| *j == reserved);
            let (_, t, g) = alloc.expect("reserved job allocated every round");
            assert_eq!(*t, a100);
            assert_eq!(*g, 1);
        }
    }
    assert_eq!(rec.restarts, 0, "reservations never restart");
}

#[test]
fn strong_scaling_jobs_adapt_count_but_not_batch() {
    let cluster = ClusterSpec::heterogeneous_64();
    let mut trace = short_trace(9, 6);
    for j in &mut trace.jobs {
        j.adaptivity = Adaptivity::StrongScaling {
            batch_size: j.model.profile().min_batch * 2.0,
        };
    }
    let result =
        Simulator::new(cluster, &trace, SimConfig::default()).run(&mut SiaPolicy::default());
    assert_eq!(result.unfinished, 0);
    // Strong-scaling jobs can still use multiple GPUs.
    let multi = result
        .rounds
        .iter()
        .flat_map(|r| r.allocations.iter())
        .any(|&(_, _, g)| g > 1);
    assert!(multi, "strong-scaling jobs should scale out");
}
