/root/repo/target/debug/deps/sia_cluster-6d3dea4c9d6d3a5b.d: crates/cluster/src/lib.rs crates/cluster/src/config.rs crates/cluster/src/placement.rs crates/cluster/src/spec.rs

/root/repo/target/debug/deps/libsia_cluster-6d3dea4c9d6d3a5b.rlib: crates/cluster/src/lib.rs crates/cluster/src/config.rs crates/cluster/src/placement.rs crates/cluster/src/spec.rs

/root/repo/target/debug/deps/libsia_cluster-6d3dea4c9d6d3a5b.rmeta: crates/cluster/src/lib.rs crates/cluster/src/config.rs crates/cluster/src/placement.rs crates/cluster/src/spec.rs

crates/cluster/src/lib.rs:
crates/cluster/src/config.rs:
crates/cluster/src/placement.rs:
crates/cluster/src/spec.rs:
