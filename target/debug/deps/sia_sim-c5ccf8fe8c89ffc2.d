/root/repo/target/debug/deps/sia_sim-c5ccf8fe8c89ffc2.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/result.rs crates/sim/src/scheduler.rs

/root/repo/target/debug/deps/libsia_sim-c5ccf8fe8c89ffc2.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/result.rs crates/sim/src/scheduler.rs

/root/repo/target/debug/deps/libsia_sim-c5ccf8fe8c89ffc2.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/result.rs crates/sim/src/scheduler.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/result.rs:
crates/sim/src/scheduler.rs:
