//! Typed, labeled metrics registry with Prometheus text exposition.
//!
//! The process-wide registry of the crate root ([`crate::counter`] and
//! friends) is a flat map of dotted names — ideal for hot-path
//! accumulation, but unlabeled and without a wire format. This module adds
//! the *exposition* layer a live daemon needs:
//!
//! - **Typed families** ([`MetricsRegistry`]): counters, gauges and
//!   histograms with explicit help text and label sets, addressed as
//!   `family{label="value"}` instances. Handles ([`LabeledCounter`],
//!   [`LabeledGauge`], [`LabeledHistogram`]) are atomics-backed and cheap
//!   to clone; look them up once and cache them on hot paths.
//! - **Deterministic rendering** ([`MetricsRegistry::render`]): Prometheus
//!   text format 0.0.4, families sorted by name, instances sorted by label
//!   vector, label values escaped, one `# HELP`/`# TYPE` pair per family.
//!   Identical metric state always renders to identical bytes, so the
//!   format is golden-file testable.
//! - **Histograms** with *inclusive* log-spaced upper bounds (a sample
//!   equal to a boundary lands in that boundary's bucket, matching
//!   Prometheus `le` semantics), rendered cumulatively with a `+Inf`
//!   bucket whose count always equals the sample count.
//! - **A legacy bridge** ([`prometheus_globals`]): every counter, gauge
//!   and histogram of the process-wide dotted registry rendered under
//!   sanitized `sia_*` names, so the exposition endpoint is the single
//!   place all existing telemetry is findable at runtime.
//! - **A parser** ([`parse_exposition`]) for consumers (`sia-cli top`,
//!   tests, the CI shape checker) that need to read samples back.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Canonicalized label set: pairs sorted by label name.
type LabelSet = Vec<(String, String)>;

/// The kind of a metric family, fixed at first registration.
#[derive(Clone, PartialEq)]
enum FamilyKind {
    Counter,
    Gauge,
    /// Inclusive upper bucket bounds, strictly increasing, `+Inf` implied.
    Histogram(Arc<Vec<f64>>),
}

impl FamilyKind {
    fn type_label(&self) -> &'static str {
        match self {
            FamilyKind::Counter => "counter",
            FamilyKind::Gauge => "gauge",
            FamilyKind::Histogram(_) => "histogram",
        }
    }
}

/// Shared state of one `family{labels}` instance.
#[derive(Default)]
struct Instance {
    /// Counter value, or gauge f64 bits.
    scalar: AtomicU64,
    /// Histogram per-bucket counts (non-cumulative), last slot = `+Inf`.
    buckets: Vec<AtomicU64>,
    /// Histogram sample count.
    count: AtomicU64,
    /// Histogram sum, f64 bits, CAS-updated.
    sum_bits: AtomicU64,
}

impl Instance {
    fn add_f64(cell: &AtomicU64, value: f64) {
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// One metric family: kind, help text and its labeled instances.
struct Family {
    kind: FamilyKind,
    help: String,
    instances: BTreeMap<LabelSet, Arc<Instance>>,
}

/// Handle to one labeled monotone counter.
#[derive(Clone)]
pub struct LabeledCounter {
    inner: Arc<Instance>,
}

impl LabeledCounter {
    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.inner.scalar.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.inner.scalar.load(Ordering::Relaxed)
    }
}

/// Handle to one labeled last-value-wins gauge.
#[derive(Clone)]
pub struct LabeledGauge {
    inner: Arc<Instance>,
}

impl LabeledGauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.inner.scalar.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.inner.scalar.load(Ordering::Relaxed))
    }
}

/// Handle to one labeled histogram with inclusive upper bucket bounds.
#[derive(Clone)]
pub struct LabeledHistogram {
    bounds: Arc<Vec<f64>>,
    inner: Arc<Instance>,
}

impl LabeledHistogram {
    /// Records one sample. A sample exactly equal to a bucket's upper
    /// bound counts in that bucket (Prometheus `le` is inclusive).
    pub fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .partition_point(|&b| b < value)
            .min(self.inner.buckets.len() - 1);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        Instance::add_f64(&self.inner.sum_bits, value);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }
}

/// A registry of typed metric families rendering to Prometheus text.
///
/// Thread-safe: handles update via relaxed atomics; registration and
/// rendering take the registry lock. [`Default`] yields an empty registry.
#[derive(Default)]
pub struct MetricsRegistry {
    families: RwLock<BTreeMap<String, Family>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Looks up (registering on first use) a counter instance.
    ///
    /// # Panics
    ///
    /// Panics if `name` or a label name is not a valid Prometheus
    /// identifier, or if the family exists with a different type.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> LabeledCounter {
        let inner = self.instance(name, help, labels, FamilyKind::Counter);
        LabeledCounter { inner }
    }

    /// Looks up (registering on first use) a gauge instance.
    ///
    /// # Panics
    ///
    /// Same contract as [`MetricsRegistry::counter`].
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> LabeledGauge {
        let inner = self.instance(name, help, labels, FamilyKind::Gauge);
        LabeledGauge { inner }
    }

    /// Looks up (registering on first use) a histogram instance with the
    /// given inclusive upper bucket `bounds` (strictly increasing; the
    /// `+Inf` bucket is implicit). The bounds of the first registration
    /// win for the whole family.
    ///
    /// # Panics
    ///
    /// Panics on invalid names, a kind mismatch, or empty/unsorted bounds.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> LabeledHistogram {
        assert!(!bounds.is_empty(), "histogram {name}: no bucket bounds");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name}: bounds must be strictly increasing"
        );
        let kind = FamilyKind::Histogram(Arc::new(bounds.to_vec()));
        let inner = self.instance(name, help, labels, kind);
        let fams = self.families.read().unwrap();
        let FamilyKind::Histogram(bounds) = &fams[name].kind else {
            unreachable!("instance() verified the kind");
        };
        LabeledHistogram {
            bounds: Arc::clone(bounds),
            inner,
        }
    }

    /// Convenience: sets `family{labels}` to `value`, registering the
    /// gauge on first use. For scrape-time state pushes, not hot paths.
    pub fn set_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.gauge(name, help, labels).set(value);
    }

    fn instance(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: FamilyKind,
    ) -> Arc<Instance> {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?} on {name}");
        }
        let mut key: LabelSet = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        key.sort();
        // Fast path: steady-state lookups of an already-registered
        // instance only take the read lock, so they contend neither with
        // each other nor with a concurrent scrape's render snapshot.
        {
            let fams = self.families.read().unwrap();
            if let Some(fam) = fams.get(name) {
                assert!(
                    fam.kind.type_label() == kind.type_label(),
                    "metric family {name} re-registered as a different type"
                );
                if let Some(inst) = fam.instances.get(&key) {
                    return Arc::clone(inst);
                }
            }
        }
        let mut fams = self.families.write().unwrap();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            kind: kind.clone(),
            help: help.to_string(),
            instances: BTreeMap::new(),
        });
        assert!(
            fam.kind.type_label() == kind.type_label(),
            "metric family {name} re-registered as a different type"
        );
        let n_buckets = match &fam.kind {
            FamilyKind::Histogram(bounds) => bounds.len() + 1,
            _ => 0,
        };
        Arc::clone(fam.instances.entry(key).or_insert_with(|| {
            Arc::new(Instance {
                buckets: (0..n_buckets).map(|_| AtomicU64::new(0)).collect(),
                ..Instance::default()
            })
        }))
    }

    /// Renders the registry in Prometheus text exposition format 0.0.4:
    /// families sorted by name, one `# HELP` and `# TYPE` line each,
    /// instances sorted by label set, label values escaped. Families with
    /// no instances are omitted. Identical state renders identical bytes.
    ///
    /// The registry lock is held only long enough to clone the family
    /// structure (names, labels, `Arc`s to the atomics); the text is
    /// formatted after it drops, so a scrape stalls hot-path writers for
    /// microseconds rather than the full render.
    pub fn render(&self) -> String {
        /// One family cloned out of the lock: name, help, kind, instances.
        type FamilySnapshot = (String, String, FamilyKind, Vec<(LabelSet, Arc<Instance>)>);
        let snapshot: Vec<FamilySnapshot> = {
            let fams = self.families.read().unwrap();
            fams.iter()
                .filter(|(_, fam)| !fam.instances.is_empty())
                .map(|(name, fam)| {
                    (
                        name.clone(),
                        fam.help.clone(),
                        fam.kind.clone(),
                        fam.instances
                            .iter()
                            .map(|(labels, inst)| (labels.clone(), Arc::clone(inst)))
                            .collect(),
                    )
                })
                .collect()
        };
        let mut out = String::new();
        for (name, help, kind, instances) in &snapshot {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
            let _ = writeln!(out, "# TYPE {name} {}", kind.type_label());
            for (labels, inst) in instances {
                match kind {
                    FamilyKind::Counter => {
                        let _ = writeln!(
                            out,
                            "{name}{} {}",
                            render_labels(labels, None),
                            inst.scalar.load(Ordering::Relaxed)
                        );
                    }
                    FamilyKind::Gauge => {
                        let _ = writeln!(
                            out,
                            "{name}{} {}",
                            render_labels(labels, None),
                            fmt_f64(f64::from_bits(inst.scalar.load(Ordering::Relaxed)))
                        );
                    }
                    FamilyKind::Histogram(bounds) => {
                        render_histogram_lines(
                            &mut out,
                            name,
                            labels,
                            bounds,
                            &snapshot_buckets(inst),
                            inst.count.load(Ordering::Relaxed),
                            f64::from_bits(inst.sum_bits.load(Ordering::Relaxed)),
                        );
                    }
                }
            }
        }
        out
    }
}

fn snapshot_buckets(inst: &Instance) -> Vec<u64> {
    inst.buckets
        .iter()
        .map(|b| b.load(Ordering::Relaxed))
        .collect()
}

/// Writes the `_bucket`/`_sum`/`_count` lines of one histogram instance.
/// `per_bucket` is non-cumulative with the `+Inf` overflow slot last.
fn render_histogram_lines(
    out: &mut String,
    name: &str,
    labels: &LabelSet,
    bounds: &[f64],
    per_bucket: &[u64],
    count: u64,
    sum: f64,
) {
    let mut cum = 0u64;
    for (i, bound) in bounds.iter().enumerate() {
        cum += per_bucket.get(i).copied().unwrap_or(0);
        let le = fmt_f64(*bound);
        let _ = writeln!(
            out,
            "{name}_bucket{} {cum}",
            render_labels(labels, Some(&le))
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {count}",
        render_labels(labels, Some("+Inf"))
    );
    let _ = writeln!(out, "{name}_sum{} {}", render_labels(labels, None), {
        fmt_f64(sum)
    });
    let _ = writeln!(out, "{name}_count{} {count}", render_labels(labels, None));
}

/// The default latency buckets: log-spaced 1–2.5–5 per decade from 1 µs
/// to 10 s (inclusive upper bounds; `+Inf` implicit).
pub fn latency_buckets() -> Vec<f64> {
    let mut out = Vec::with_capacity(22);
    for exp in -6..0 {
        let decade = 10f64.powi(exp);
        out.extend([decade, 2.5 * decade, 5.0 * decade]);
    }
    out.extend([1.0, 2.5, 5.0, 10.0]);
    out
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Renders a sorted label set (with an optional trailing `le`) as
/// `{k="v",...}`, or the empty string when there are no labels.
fn render_labels(labels: &LabelSet, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    if let Some(le) = le {
        if !labels.is_empty() {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Escapes a label value per the exposition format: backslash, quote and
/// newline.
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes help text: backslash and newline (quotes are legal in help).
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Deterministic float rendering for sample values and `le` bounds:
/// shortest round-trip decimal, `+Inf`/`-Inf`/`NaN` spelled the
/// Prometheus way.
pub fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Sanitizes a dotted telemetry name into a Prometheus identifier under
/// the `sia_` namespace: `engine.rounds` becomes `sia_engine_rounds`.
pub fn sanitize_name(dotted: &str) -> String {
    let mut out = String::with_capacity(dotted.len() + 4);
    out.push_str("sia_");
    for c in dotted.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders the process-wide dotted registry ([`crate::counter`],
/// [`crate::gauge`], [`crate::histogram`]) in exposition format under
/// sanitized `sia_*` names: counters gain a `_total` suffix, histograms
/// render their log2 ring buckets cumulatively. Families are sorted, so
/// the output is deterministic for deterministic metric state.
pub fn prometheus_globals() -> String {
    let mut out = String::new();
    for (name, value) in crate::counters_snapshot() {
        let prom = format!("{}_total", sanitize_name(&name));
        let _ = writeln!(out, "# HELP {prom} Process counter {name}.");
        let _ = writeln!(out, "# TYPE {prom} counter");
        let _ = writeln!(out, "{prom} {value}");
    }
    for (name, value) in crate::gauges_snapshot() {
        let Some(value) = value else { continue };
        let prom = sanitize_name(&name);
        let _ = writeln!(out, "# HELP {prom} Process gauge {name}.");
        let _ = writeln!(out, "# TYPE {prom} gauge");
        let _ = writeln!(out, "{prom} {}", fmt_f64(value));
    }
    for (name, buckets, count, sum) in crate::histograms_exposition_snapshot() {
        let prom = sanitize_name(&name);
        let _ = writeln!(out, "# HELP {prom} Process histogram {name}.");
        let _ = writeln!(out, "# TYPE {prom} histogram");
        let mut cum = 0u64;
        for (upper, n) in buckets {
            if n == 0 {
                continue;
            }
            cum += n;
            let _ = writeln!(out, "{prom}_bucket{{le=\"{}\"}} {cum}", fmt_f64(upper));
        }
        let _ = writeln!(out, "{prom}_bucket{{le=\"+Inf\"}} {count}");
        let _ = writeln!(out, "{prom}_sum {}", fmt_f64(sum));
        let _ = writeln!(out, "{prom}_count {count}");
    }
    out
}

/// The process-default exposition registry. Long-running services
/// (`sia-serve`) publish their typed metrics here; one-shot tools build
/// their own [`MetricsRegistry`] for isolation.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name (bucket/sum/count suffixes included).
    pub name: String,
    /// Label pairs in file order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// Value of the named label, if present.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses Prometheus text exposition format into its samples, skipping
/// comments and blank lines. Fails with a 1-based line number on
/// malformed lines.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample(line).map_err(|e| format!("line {}: {e}", idx + 1))?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, value) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').ok_or("unterminated label set")?;
            if close < brace {
                return Err("mismatched braces".to_string());
            }
            (&line[..close + 1], line[close + 1..].trim())
        }
        None => {
            let sp = line.find(char::is_whitespace).ok_or("missing value")?;
            (&line[..sp], line[sp..].trim())
        }
    };
    // Exposition timestamps (a second trailing integer) are not emitted by
    // this crate; take the first token as the value and ignore the rest.
    let value_tok = value.split_whitespace().next().ok_or("missing value")?;
    let value = match value_tok {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse::<f64>().map_err(|_| format!("bad value {v:?}"))?,
    };
    let (name, labels) = match head.find('{') {
        None => (head.to_string(), Vec::new()),
        Some(brace) => {
            let name = head[..brace].to_string();
            let body = &head[brace + 1..head.len() - 1];
            (name, parse_labels(body)?)
        }
    };
    if !valid_metric_name(&name) {
        return Err(format!("bad metric name {name:?}"));
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = rest[..eq].trim().to_string();
        if !valid_label_name(&key) {
            return Err(format!("bad label name {key:?}"));
        }
        let after = &rest[eq + 1..];
        let after = after.strip_prefix('"').ok_or("label value not quoted")?;
        // Scan for the closing quote, honoring backslash escapes.
        let mut value = String::new();
        let mut chars = after.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, esc)) => value.push(esc),
                    None => return Err("dangling escape".to_string()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or("unterminated label value")?;
        labels.push((key, value));
        rest = after[end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(labels)
}

/// Aggregated histogram read-back: sums `<family>_bucket` samples across
/// all instances of `family` in `samples` and returns the cumulative
/// `(upper_bound, count)` pairs sorted by bound (`+Inf` last), for
/// quantile estimation by consumers like `sia-cli top`.
pub fn bucket_counts(samples: &[Sample], family: &str) -> Vec<(f64, f64)> {
    let bucket_name = format!("{family}_bucket");
    let mut by_bound: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
    for s in samples.iter().filter(|s| s.name == bucket_name) {
        let Some(le) = s.label("le") else { continue };
        let bound = match le {
            "+Inf" => f64::INFINITY,
            v => match v.parse::<f64>() {
                Ok(b) => b,
                Err(_) => continue,
            },
        };
        // total_cmp-compatible ordered key so +Inf sorts last.
        let key = bound.to_bits() ^ (((bound.to_bits() as i64 >> 63) as u64) >> 1);
        let entry = by_bound.entry(key).or_insert((bound, 0.0));
        entry.1 += s.value;
    }
    by_bound.into_values().collect()
}

/// Upper-bound estimate of quantile `q` (in `[0, 1]`) from cumulative
/// bucket counts as returned by [`bucket_counts`]. Returns `None` when
/// there are no samples.
pub fn bucket_quantile(cumulative: &[(f64, f64)], q: f64) -> Option<f64> {
    let total = cumulative.last()?.1;
    if total <= 0.0 {
        return None;
    }
    let target = total * q.clamp(0.0, 1.0);
    for &(bound, cum) in cumulative {
        if cum >= target && cum > 0.0 {
            return Some(bound);
        }
    }
    Some(cumulative.last()?.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_boundary_sample_lands_in_lower_bucket() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t_boundary_seconds", "t", &[0.001, 0.01, 0.1], &[]);
        // Exactly 0.01: must count in the le="0.01" bucket, not le="0.1".
        h.observe(0.01);
        let text = reg.render();
        assert!(
            text.contains("t_boundary_seconds_bucket{le=\"0.01\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("t_boundary_seconds_bucket{le=\"0.001\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn inf_bucket_count_equals_sample_count() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t_inf_seconds", "t", &[0.5, 1.0], &[]);
        for v in [0.1, 0.5, 0.7, 1.0, 99.0, 1e12] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        let text = reg.render();
        assert!(
            text.contains("t_inf_seconds_bucket{le=\"+Inf\"} 6"),
            "{text}"
        );
        assert!(text.contains("t_inf_seconds_count 6"), "{text}");
        // Cumulative: 0.5 bucket has {0.1, 0.5}; 1.0 bucket adds {0.7, 1.0}.
        assert!(
            text.contains("t_inf_seconds_bucket{le=\"0.5\"} 2"),
            "{text}"
        );
        assert!(text.contains("t_inf_seconds_bucket{le=\"1\"} 4"), "{text}");
    }

    #[test]
    fn latency_buckets_are_increasing_and_cover_microseconds_to_seconds() {
        let b = latency_buckets();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(b.first(), Some(&1e-6));
        assert_eq!(b.last(), Some(&10.0));
    }

    #[test]
    fn render_sorts_families_and_instances_and_escapes() {
        let reg = MetricsRegistry::new();
        reg.counter("zz_total", "last family", &[]).add(1);
        reg.counter("aa_total", "first family", &[("tenant", "b")])
            .add(2);
        reg.counter("aa_total", "first family", &[("tenant", "a \"x\"\n\\")])
            .incr();
        let text = reg.render();
        let aa = text.find("aa_total").unwrap();
        let zz = text.find("zz_total").unwrap();
        assert!(aa < zz, "families must sort by name:\n{text}");
        let esc = text
            .find("aa_total{tenant=\"a \\\"x\\\"\\n\\\\\"} 1")
            .expect("escaped instance");
        let plain = text.find("aa_total{tenant=\"b\"} 2").unwrap();
        assert!(esc < plain, "instances must sort by label value:\n{text}");
    }

    #[test]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("t_kind", "c", &[]);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.gauge("t_kind", "g", &[]);
        }));
        assert!(err.is_err());
    }

    #[test]
    fn parse_round_trips_rendered_output() {
        let reg = MetricsRegistry::new();
        reg.counter("rt_total", "c", &[("a", "x,y=\"z\"")]).add(7);
        reg.gauge("rt_gauge", "g", &[]).set(-2.5);
        let h = reg.histogram("rt_seconds", "h", &[1.0, 2.0], &[("op", "go")]);
        h.observe(1.5);
        h.observe(3.0);
        let samples = parse_exposition(&reg.render()).unwrap();
        let c = samples.iter().find(|s| s.name == "rt_total").unwrap();
        assert_eq!(c.value, 7.0);
        assert_eq!(c.label("a"), Some("x,y=\"z\""));
        let g = samples.iter().find(|s| s.name == "rt_gauge").unwrap();
        assert_eq!(g.value, -2.5);
        let cum = bucket_counts(&samples, "rt_seconds");
        assert_eq!(cum.len(), 3);
        assert_eq!(cum[0], (1.0, 0.0));
        assert_eq!(cum[1], (2.0, 1.0));
        assert_eq!(cum[2].1, 2.0);
        assert!(cum[2].0.is_infinite());
        assert_eq!(bucket_quantile(&cum, 0.5), Some(2.0));
        assert!(bucket_quantile(&cum, 0.99).unwrap().is_infinite());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_exposition("x{y=\"} 1").is_err());
        assert!(parse_exposition("1bad 2").is_err());
        assert!(parse_exposition("name_only").is_err());
        assert!(parse_exposition("ok 1\n# comment\n\nok 2").is_ok());
    }

    #[test]
    fn globals_bridge_renders_sanitized_families() {
        crate::counter("regtest.bridge.hits").add(3);
        crate::gauge("regtest.bridge.depth").set(4.5);
        crate::histogram("regtest.bridge.lat").record(0.25);
        let text = prometheus_globals();
        assert!(text.contains("# TYPE sia_regtest_bridge_hits_total counter"));
        assert!(text.contains("sia_regtest_bridge_depth 4.5"));
        assert!(text.contains("# TYPE sia_regtest_bridge_lat histogram"));
        assert!(text.contains("sia_regtest_bridge_lat_count 1"));
        let samples = parse_exposition(&text).unwrap();
        assert!(samples
            .iter()
            .any(|s| s.name == "sia_regtest_bridge_hits_total" && s.value >= 3.0));
    }
}
