/root/repo/target/release/deps/sia_models-0e653b92e1078129.d: crates/models/src/lib.rs crates/models/src/efficiency.rs crates/models/src/estimator.rs crates/models/src/fit.rs crates/models/src/gns.rs crates/models/src/goodput.rs crates/models/src/throughput.rs

/root/repo/target/release/deps/libsia_models-0e653b92e1078129.rlib: crates/models/src/lib.rs crates/models/src/efficiency.rs crates/models/src/estimator.rs crates/models/src/fit.rs crates/models/src/gns.rs crates/models/src/goodput.rs crates/models/src/throughput.rs

/root/repo/target/release/deps/libsia_models-0e653b92e1078129.rmeta: crates/models/src/lib.rs crates/models/src/efficiency.rs crates/models/src/estimator.rs crates/models/src/fit.rs crates/models/src/gns.rs crates/models/src/goodput.rs crates/models/src/throughput.rs

crates/models/src/lib.rs:
crates/models/src/efficiency.rs:
crates/models/src/estimator.rs:
crates/models/src/fit.rs:
crates/models/src/gns.rs:
crates/models/src/goodput.rs:
crates/models/src/throughput.rs:
