/root/repo/target/debug/deps/bootstrap_modes-9b249f1dfaf005c6.d: tests/bootstrap_modes.rs

/root/repo/target/debug/deps/bootstrap_modes-9b249f1dfaf005c6: tests/bootstrap_modes.rs

tests/bootstrap_modes.rs:
