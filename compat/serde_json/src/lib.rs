//! Offline stand-in for `serde_json`.
//!
//! The build environment cannot fetch crates, so this crate implements the
//! subset of the `serde_json` surface the workspace uses — [`Value`],
//! [`Map`], [`Error`], [`json!`], [`to_string`], [`to_string_pretty`] and
//! [`from_str`] — on top of `std` alone. Because the real `serde` is equally
//! unavailable, serialization goes through the local [`ToJson`] / [`FromJson`]
//! traits instead of `Serialize` / `Deserialize`; types that previously
//! derived serde implement these by hand (the wire format is kept identical
//! to what the derives produced, so stored JSON keeps parsing).

// The `json!` array expansion builds a Vec then pushes into it; only this
// crate's own tests see the lint (expansions in dependent crates count as
// external macros and are exempt).
#![allow(clippy::vec_init_then_push)]

use std::collections::BTreeMap;
use std::fmt;

mod de;
mod ser;

pub use de::from_str;
pub use ser::{to_string, to_string_pretty};

/// Object type. A `BTreeMap` keeps key order deterministic, which the bench
/// harness relies on for stable `results/*.json` diffs. The (defaulted) type
/// parameters exist so call sites written for the real crate — e.g.
/// `collect::<serde_json::Map<_, _>>()` — compile unchanged.
pub type Map<K = String, V = Value> = BTreeMap<K, V>;

/// A parsed or constructed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integers are kept exact rather than routed through f64 so counters
    /// round-trip and render without a trailing `.0`.
    Int(i64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(f as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup mirroring `value["key"]` / `value.get("key")`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&ser::write_compact(self))
    }
}

/// Parse / serialize error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
    line: usize,
    column: usize,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>, line: usize, column: usize) -> Self {
        Error {
            msg: msg.into(),
            line,
            column,
        }
    }

    /// A position-less error, for `FromJson` implementations downstream.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error::new(msg, 0, 0)
    }

    pub fn line(&self) -> usize {
        self.line
    }

    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} at line {} column {}",
                self.msg, self.line, self.column
            )
        } else {
            f.write_str(&self.msg)
        }
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Conversions used by `json!` value positions.
// ---------------------------------------------------------------------------

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Int(v as i64)
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Self {
                Value::Int(*v as i64)
            }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&f64> for Value {
    fn from(v: &f64) -> Self {
        Value::Float(*v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v as f64)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&Vec<T>> for Value {
    fn from(v: &Vec<T>) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<A: Into<Value>, B: Into<Value>> From<(A, B)> for Value {
    fn from((a, b): (A, B)) -> Self {
        Value::Array(vec![a.into(), b.into()])
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

impl FromIterator<(String, Value)> for Value {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Value::Object(iter.into_iter().collect())
    }
}

impl FromIterator<Value> for Value {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Value::Array(iter.into_iter().collect())
    }
}

// ---------------------------------------------------------------------------
// ToJson / FromJson: the local replacement for serde's Serialize/Deserialize.
// ---------------------------------------------------------------------------

/// Serialize to a [`Value`]. Stand-in for `serde::Serialize`.
pub trait ToJson {
    fn to_json(&self) -> Value;
}

/// Deserialize from a [`Value`]. Stand-in for `serde::Deserialize`.
pub trait FromJson: Sized {
    fn from_json(v: &Value) -> Result<Self, Error>;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(Error::msg(format!("expected array, got {other}"))),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

macro_rules! impl_json_prim {
    ($($t:ty => $as:ident / $what:literal),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::from(*self)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                v.$as()
                    .and_then(|x| <$t>::try_from_json_num(x))
                    .ok_or_else(|| Error::msg(format!(concat!("expected ", $what, ", got {}"), v)))
            }
        }
    )*};
}

/// Narrowing helper so `FromJson` integer impls can share one macro.
trait TryFromJsonNum<Src>: Sized {
    fn try_from_json_num(src: Src) -> Option<Self>;
}

macro_rules! impl_narrow {
    ($($t:ty),*) => {$(
        impl TryFromJsonNum<i64> for $t {
            fn try_from_json_num(src: i64) -> Option<Self> {
                <$t>::try_from(src).ok()
            }
        }
    )*};
}

impl_narrow!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl TryFromJsonNum<f64> for f64 {
    fn try_from_json_num(src: f64) -> Option<Self> {
        Some(src)
    }
}

impl TryFromJsonNum<bool> for bool {
    fn try_from_json_num(src: bool) -> Option<Self> {
        Some(src)
    }
}

impl_json_prim!(
    i8 => as_i64 / "integer",
    i16 => as_i64 / "integer",
    i32 => as_i64 / "integer",
    i64 => as_i64 / "integer",
    u8 => as_i64 / "integer",
    u16 => as_i64 / "integer",
    u32 => as_i64 / "integer",
    u64 => as_i64 / "integer",
    usize => as_i64 / "integer",
    isize => as_i64 / "integer",
    f64 => as_f64 / "number",
    bool => as_bool / "bool"
);

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg(format!("expected string, got {v}")))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

// ---------------------------------------------------------------------------
// json! macro: a tt-muncher handling nested object/array literals with
// arbitrary expressions (including calls with internal commas) in value
// position.
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {{
        let mut array: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_array_items!(array; () $($tt)+);
        $crate::Value::Array(array)
    }};
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_object_items!(object; $($tt)+);
        $crate::Value::Object(object)
    }};
    ($expr:expr) => { $crate::Value::from($expr) };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_object_items {
    ($obj:ident;) => {};
    ($obj:ident; $key:literal : $($rest:tt)+) => {
        $crate::json_object_value!($obj [$key] () $($rest)+);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_object_value {
    // Value finished by a top-level comma.
    ($obj:ident [$key:literal] ($($val:tt)+) , $($rest:tt)*) => {
        $obj.insert($key.to_string(), $crate::json_internal!($($val)+));
        $crate::json_object_items!($obj; $($rest)*);
    };
    // Value runs to the end of input.
    ($obj:ident [$key:literal] ($($val:tt)+)) => {
        $obj.insert($key.to_string(), $crate::json_internal!($($val)+));
    };
    // Accumulate one token into the value.
    ($obj:ident [$key:literal] ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_object_value!($obj [$key] ($($val)* $next) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_array_items {
    ($arr:ident; ()) => {};
    ($arr:ident; ($($val:tt)+) , $($rest:tt)*) => {
        $arr.push($crate::json_internal!($($val)+));
        $crate::json_array_items!($arr; () $($rest)*);
    };
    ($arr:ident; ($($val:tt)+)) => {
        $arr.push($crate::json_internal!($($val)+));
    };
    ($arr:ident; ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_array_items!($arr; ($($val)* $next) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let n = 3usize;
        let v = json!({
            "int": n,
            "float": 1.5,
            "str": "hi",
            "call": format!("{}-{}", 1, 2),
            "nested": {"a": [1, 2, 3], "b": null},
            "arr": [{"x": 1.0}, {"x": 2.0}],
            "pairs": vec![(1.0, 2.0), (3.0, 4.0)],
            "flag": true,
        });
        let obj = v.as_object().unwrap();
        assert_eq!(obj["int"], Value::Int(3));
        assert_eq!(obj["call"], Value::String("1-2".into()));
        assert_eq!(obj["nested"].get("a").unwrap().as_array().unwrap().len(), 3);
        assert!(obj["nested"].get("b").unwrap().is_null());
        assert_eq!(obj["arr"].as_array().unwrap().len(), 2);
        assert_eq!(
            obj["pairs"].as_array().unwrap()[1],
            Value::Array(vec![Value::Float(3.0), Value::Float(4.0)])
        );
    }

    #[test]
    fn display_round_trips() {
        let v = json!({"a": [1, 2.5, "x"], "b": {"c": true}});
        let s = v.to_string();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_round_trips() {
        let v = json!([{"k": -1.25e-3}, null, [[]], "esc\"\n\t"]);
        let s = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = from_str::<Value>("{\"a\": }").unwrap_err();
        assert!(err.line() >= 1);
        assert!(err.to_string().contains("line"));
    }

    #[test]
    fn map_collect_compiles_like_serde_json() {
        let m: Map<_, _> = vec![("k".to_string(), Value::Int(1))].into_iter().collect();
        assert_eq!(json!({"k": 1}), Value::Object(m));
    }
}
