//! Bounded-variable, two-phase revised simplex.
//!
//! The implementation keeps variable bounds out of the constraint matrix
//! (nonbasic variables rest at their lower or upper bound), maintains a dense
//! basis inverse with eta updates and periodic refactorization, and uses a
//! Dantzig pricing rule with a Bland's-rule fallback for anti-cycling.
//!
//! Problems are converted to the internal standard form
//! `maximize c·x  s.t.  A x = b,  l <= x <= u` by adding one slack or surplus
//! column per inequality row. An all-slack starting basis is used when the
//! slack values are feasible; otherwise artificial columns are added and a
//! phase-1 objective (minimize the sum of artificials) restores feasibility.

// Dense linear-algebra kernels below index several parallel arrays by row;
// iterator rewrites obscure the math without helping codegen.
#![allow(clippy::needless_range_loop)]

use crate::error::SolverError;
use crate::problem::{ConstraintOp, Problem, Sense, Solution};

/// Reduced-cost optimality tolerance.
const OPT_TOL: f64 = 1e-9;
/// Primal feasibility tolerance.
const FEAS_TOL: f64 = 1e-7;
/// Minimum acceptable pivot magnitude.
const PIVOT_TOL: f64 = 1e-8;
/// Refactorize the basis inverse every this many pivots.
const REFACTOR_EVERY: usize = 128;

/// Where a nonbasic variable currently rests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarState {
    Basic(usize),
    AtLower,
    AtUpper,
}

/// Opaque snapshot of a simplex basis, captured after a successful solve and
/// installable into a later solve of a *structurally identical* problem (same
/// constraint rows, same structural and slack columns).
///
/// Bounds are allowed to differ between the capturing and the receiving
/// problem: installation refactorizes, which recomputes every basic value at
/// the receiver's bounds and re-seats nonbasic variables on their (possibly
/// moved) rest bounds. This is exactly the branch-and-bound case — a child
/// node's LP differs from its parent's only in one variable bound, so the
/// parent's optimal basis is a primal-feasible (often optimal) starting point
/// and phase 1 can be skipped entirely.
#[derive(Debug, Clone)]
pub struct Basis {
    /// Number of constraint rows the basis was captured against.
    m: usize,
    /// Number of structural + slack columns (artificials excluded).
    n_cols: usize,
    /// Basic column index per row; all entries are `< n_cols`.
    basis: Vec<usize>,
    /// Rest state per structural/slack column.
    state: Vec<VarState>,
}

/// Result of a warm-capable LP solve ([`solve_with_warm_start`]).
#[derive(Debug, Clone)]
pub struct WarmOutcome {
    /// The optimal solution, identical in meaning to [`solve_with_limit`]'s.
    pub solution: Solution,
    /// Final basis, exportable for a future warm start. `None` when the
    /// optimal basis still contains artificial columns (degenerate phase-1
    /// leftovers), which would not be portable across tableaus.
    pub basis: Option<Basis>,
    /// Whether the supplied warm basis was accepted (dimensions matched and
    /// it was primal-feasible under the new bounds). When `false` the solve
    /// ran cold from the usual slack/artificial start.
    pub warm_used: bool,
}

/// Internal standard-form tableau data.
struct Tableau {
    /// Number of rows (constraints).
    m: usize,
    /// Sparse columns: `cols[j]` lists `(row, coefficient)`.
    cols: Vec<Vec<(usize, f64)>>,
    /// Right-hand side (after sign normalization).
    b: Vec<f64>,
    /// Lower bounds per column.
    lower: Vec<f64>,
    /// Upper bounds per column (may be `INFINITY`).
    upper: Vec<f64>,
    /// Phase-2 objective (maximization form).
    cost: Vec<f64>,
    /// Number of structural (user) variables.
    n_struct: usize,
    /// Index of first artificial column, if any.
    first_artificial: usize,
}

/// Mutable solver state over a [`Tableau`].
struct State {
    basis: Vec<usize>,
    state: Vec<VarState>,
    /// Dense row-major basis inverse, `m x m`.
    binv: Vec<f64>,
    /// Values of basic variables, by row.
    xb: Vec<f64>,
    pivots_since_refactor: usize,
}

impl Tableau {
    fn from_problem(p: &Problem) -> Result<(Tableau, State), SolverError> {
        let n = p.num_vars();
        let m = p.num_constraints();
        for (j, (&lo, &up)) in p
            .lower_bounds()
            .iter()
            .zip(p.upper_bounds().iter())
            .enumerate()
        {
            if !lo.is_finite() {
                return Err(SolverError::InvalidModel(format!(
                    "variable {j} has non-finite lower bound"
                )));
            }
            if lo > up {
                return Err(SolverError::InvalidModel(format!(
                    "variable {j} has lower bound {lo} > upper bound {up}"
                )));
            }
        }

        let sign = match p.sense() {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };

        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut cost: Vec<f64> = p.objective().iter().map(|&c| sign * c).collect();
        let mut lower = p.lower_bounds().to_vec();
        let mut upper = p.upper_bounds().to_vec();
        let mut b = Vec::with_capacity(m);
        let mut slack_of_row: Vec<Option<usize>> = vec![None; m];

        for (i, con) in p.constraints().iter().enumerate() {
            if !con.rhs.is_finite() || con.terms.iter().any(|&(_, a)| !a.is_finite()) {
                return Err(SolverError::InvalidModel(format!(
                    "constraint {i} has non-finite data"
                )));
            }
            for &(v, a) in &con.terms {
                if a != 0.0 {
                    cols[v.0].push((i, a));
                }
            }
            b.push(con.rhs);
            match con.op {
                ConstraintOp::Le => {
                    let j = cols.len();
                    cols.push(vec![(i, 1.0)]);
                    cost.push(0.0);
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                    slack_of_row[i] = Some(j);
                }
                ConstraintOp::Ge => {
                    let j = cols.len();
                    cols.push(vec![(i, -1.0)]);
                    cost.push(0.0);
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                    slack_of_row[i] = Some(j);
                }
                ConstraintOp::Eq => {}
            }
        }

        // Coalesce duplicate (row, coeff) entries within each structural column.
        for col in cols.iter_mut().take(n) {
            col.sort_by_key(|&(r, _)| r);
            let mut out: Vec<(usize, f64)> = Vec::with_capacity(col.len());
            for &(r, a) in col.iter() {
                match out.last_mut() {
                    Some((lr, la)) if *lr == r => *la += a,
                    _ => out.push((r, a)),
                }
            }
            out.retain(|&(_, a)| a != 0.0);
            *col = out;
        }

        // Residuals with every non-artificial column at its lower bound.
        let mut resid = b.clone();
        for (j, col) in cols.iter().enumerate() {
            let lo = lower[j];
            if lo != 0.0 {
                for &(r, a) in col {
                    resid[r] -= a * lo;
                }
            }
        }

        // Seed the basis with slacks where feasible; otherwise artificials.
        let mut basis = vec![usize::MAX; m];
        let mut state = vec![VarState::AtLower; cols.len()];
        let first_artificial = cols.len();
        let mut xb = vec![0.0; m];
        let mut n_artificial = 0usize;
        for i in 0..m {
            let usable_slack = match slack_of_row[i] {
                Some(j) => {
                    // Slack column is +/-1 in row i only; basic value must be
                    // feasible (slack lower bound is 0, upper infinite).
                    let coef = cols[j][0].1;
                    let val = resid[i] / coef;
                    if val >= -FEAS_TOL {
                        Some((j, val.max(0.0)))
                    } else {
                        None
                    }
                }
                None => None,
            };
            match usable_slack {
                Some((j, val)) => {
                    basis[i] = j;
                    state[j] = VarState::Basic(i);
                    xb[i] = val;
                }
                None => {
                    let j = cols.len();
                    let coef = if resid[i] >= 0.0 { 1.0 } else { -1.0 };
                    cols.push(vec![(i, coef)]);
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                    cost.push(0.0);
                    state.push(VarState::Basic(i));
                    basis[i] = j;
                    xb[i] = resid[i].abs();
                    n_artificial += 1;
                }
            }
        }
        let _ = n_artificial;

        // The starting basis is diagonal with entries +/-1, so its inverse is
        // the same diagonal.
        let mut binv = vec![0.0; m * m];
        for (i, &bj) in basis.iter().enumerate() {
            binv[i * m + i] = 1.0 / cols[bj][0].1;
        }

        let tab = Tableau {
            m,
            cols,
            b,
            lower,
            upper,
            cost,
            n_struct: n,
            first_artificial,
        };
        let st = State {
            basis,
            state,
            binv,
            xb,
            pivots_since_refactor: 0,
        };
        Ok((tab, st))
    }

    fn n_total(&self) -> usize {
        self.cols.len()
    }

    fn has_artificials(&self) -> bool {
        self.first_artificial < self.n_total()
    }
}

impl State {
    /// Rebuilds the basis inverse and basic values from scratch.
    fn refactorize(&mut self, tab: &Tableau) -> Result<(), SolverError> {
        let m = tab.m;
        // Dense basis matrix.
        let mut mat = vec![0.0; m * m];
        for (k, &j) in self.basis.iter().enumerate() {
            for &(r, a) in &tab.cols[j] {
                mat[r * m + k] = a;
            }
        }
        // Gauss-Jordan inversion with partial pivoting.
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            let mut piv = col;
            let mut best = mat[col * m + col].abs();
            for r in (col + 1)..m {
                let v = mat[r * m + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-12 {
                return Err(SolverError::InvalidModel(
                    "singular basis during refactorization".into(),
                ));
            }
            if piv != col {
                for c in 0..m {
                    mat.swap(col * m + c, piv * m + c);
                    inv.swap(col * m + c, piv * m + c);
                }
            }
            let d = mat[col * m + col];
            for c in 0..m {
                mat[col * m + c] /= d;
                inv[col * m + c] /= d;
            }
            for r in 0..m {
                if r != col {
                    let f = mat[r * m + col];
                    if f != 0.0 {
                        for c in 0..m {
                            mat[r * m + c] -= f * mat[col * m + c];
                            inv[r * m + c] -= f * inv[col * m + c];
                        }
                    }
                }
            }
        }
        self.binv = inv;

        // Recompute basic values: x_B = B^-1 (b - N x_N).
        let mut rhs = tab.b.clone();
        for (j, col) in tab.cols.iter().enumerate() {
            let val = match self.state[j] {
                VarState::Basic(_) => continue,
                VarState::AtLower => tab.lower[j],
                VarState::AtUpper => tab.upper[j],
            };
            if val != 0.0 {
                for &(r, a) in col {
                    rhs[r] -= a * val;
                }
            }
        }
        for i in 0..m {
            let mut v = 0.0;
            for k in 0..m {
                v += self.binv[i * m + k] * rhs[k];
            }
            self.xb[i] = v;
        }
        self.pivots_since_refactor = 0;
        Ok(())
    }

    /// Computes `w = B^-1 a_j` for a sparse column.
    fn ftran(&self, tab: &Tableau, j: usize, w: &mut [f64]) {
        let m = tab.m;
        w.fill(0.0);
        for &(r, a) in &tab.cols[j] {
            if a != 0.0 {
                for i in 0..m {
                    w[i] += self.binv[i * m + r] * a;
                }
            }
        }
    }

    /// Computes the simplex multipliers `y = c_B^T B^-1` for a cost vector.
    fn btran(&self, tab: &Tableau, cost: &[f64], y: &mut [f64]) {
        let m = tab.m;
        y.fill(0.0);
        for (i, &bj) in self.basis.iter().enumerate() {
            let cb = cost[bj];
            if cb != 0.0 {
                for k in 0..m {
                    y[k] += cb * self.binv[i * m + k];
                }
            }
        }
    }
}

/// Outcome of one phase of the simplex loop.
enum PhaseOutcome {
    Optimal,
    Unbounded,
}

/// Runs the simplex loop on `tab` with objective `cost` (maximization).
fn run_phase(
    tab: &Tableau,
    st: &mut State,
    cost: &[f64],
    max_iters: usize,
    iters_used: &mut usize,
) -> Result<PhaseOutcome, SolverError> {
    let m = tab.m;
    let n_total = tab.n_total();
    let mut y = vec![0.0; m];
    let mut w = vec![0.0; m];
    let mut stall = 0usize;
    let bland_after = 4 * (n_total + m) + 64;

    loop {
        if *iters_used >= max_iters {
            return Err(SolverError::IterationLimit(max_iters));
        }
        *iters_used += 1;

        if st.pivots_since_refactor >= REFACTOR_EVERY {
            st.refactorize(tab)?;
        }

        st.btran(tab, cost, &mut y);

        // Pricing: pick the entering variable.
        let use_bland = stall > bland_after;
        let mut enter: Option<(usize, f64, f64)> = None; // (col, reduced cost, direction)
        for j in 0..n_total {
            let dirn = match st.state[j] {
                VarState::Basic(_) => continue,
                VarState::AtLower => 1.0,
                VarState::AtUpper => -1.0,
            };
            // Fixed variables can never improve the objective.
            if tab.upper[j] - tab.lower[j] < 1e-15 {
                continue;
            }
            let mut d = cost[j];
            for &(r, a) in &tab.cols[j] {
                d -= y[r] * a;
            }
            let improving = d * dirn > OPT_TOL;
            if improving {
                if use_bland {
                    enter = Some((j, d, dirn));
                    break;
                }
                match enter {
                    Some((_, dbest, _)) if d.abs() <= dbest.abs() => {}
                    _ => enter = Some((j, d, dirn)),
                }
            }
        }

        let (j_in, _d_in, dirn) = match enter {
            Some(e) => e,
            None => return Ok(PhaseOutcome::Optimal),
        };

        st.ftran(tab, j_in, &mut w);

        // Ratio test: entering moves by t >= 0 in direction `dirn`; basic
        // variable i changes by -dirn * w[i] * t.
        let mut t_limit = tab.upper[j_in] - tab.lower[j_in]; // bound flip distance
        let mut leave: Option<usize> = None; // row index
        let mut leave_to_upper = false;
        let mut best_piv = 0.0;
        for i in 0..m {
            let delta = -dirn * w[i];
            if delta < -PIVOT_TOL {
                // Basic value decreases toward its lower bound.
                let bj = st.basis[i];
                let room = st.xb[i] - tab.lower[bj];
                let t = (room.max(0.0)) / (-delta);
                if t < t_limit - FEAS_TOL || (t < t_limit + FEAS_TOL && w[i].abs() > best_piv) {
                    t_limit = t.min(t_limit);
                    leave = Some(i);
                    leave_to_upper = false;
                    best_piv = w[i].abs();
                }
            } else if delta > PIVOT_TOL {
                // Basic value increases toward its upper bound.
                let bj = st.basis[i];
                if tab.upper[bj].is_finite() {
                    let room = tab.upper[bj] - st.xb[i];
                    let t = (room.max(0.0)) / delta;
                    if t < t_limit - FEAS_TOL || (t < t_limit + FEAS_TOL && w[i].abs() > best_piv) {
                        t_limit = t.min(t_limit);
                        leave = Some(i);
                        leave_to_upper = true;
                        best_piv = w[i].abs();
                    }
                }
            }
        }

        if t_limit.is_infinite() {
            return Ok(PhaseOutcome::Unbounded);
        }
        if t_limit <= FEAS_TOL {
            stall += 1;
        } else {
            stall = 0;
        }
        let t = t_limit.max(0.0);

        match leave {
            None => {
                // Bound flip: the entering variable runs to its other bound.
                for i in 0..m {
                    st.xb[i] -= dirn * w[i] * t;
                }
                st.state[j_in] = if dirn > 0.0 {
                    VarState::AtUpper
                } else {
                    VarState::AtLower
                };
            }
            Some(r) => {
                let j_out = st.basis[r];
                // New values.
                for i in 0..m {
                    st.xb[i] -= dirn * w[i] * t;
                }
                let enter_from = if dirn > 0.0 {
                    tab.lower[j_in]
                } else {
                    tab.upper[j_in]
                };
                let enter_val = enter_from + dirn * t;
                // Pivot the basis inverse: row r is the pivot row.
                let wr = w[r];
                if wr.abs() < PIVOT_TOL {
                    // Numerically degenerate pivot; refactorize and retry.
                    st.refactorize(tab)?;
                    continue;
                }
                let (head, mut tail) = split_row(&mut st.binv, r, m);
                let pivot_row = head;
                for i in 0..m {
                    if i == r {
                        continue;
                    }
                    let f = w[i] / wr;
                    if f != 0.0 {
                        let row_i = row_mut(&mut tail, i, r, m);
                        for k in 0..m {
                            row_i[k] -= f * pivot_row[k];
                        }
                    }
                }
                for v in pivot_row.iter_mut() {
                    *v /= wr;
                }

                st.basis[r] = j_in;
                st.state[j_in] = VarState::Basic(r);
                st.state[j_out] = if leave_to_upper {
                    VarState::AtUpper
                } else {
                    VarState::AtLower
                };
                st.xb[r] = enter_val;
                st.pivots_since_refactor += 1;
            }
        }
    }
}

/// Splits the dense matrix so the pivot row can be read while other rows are
/// mutated. Returns `(pivot_row, rest)` where `rest` is the full matrix minus
/// the pivot row, addressed through [`row_mut`].
fn split_row(binv: &mut [f64], r: usize, m: usize) -> (&mut [f64], RowAccess<'_>) {
    let (before, at) = binv.split_at_mut(r * m);
    let (row, after) = at.split_at_mut(m);
    (row, RowAccess { before, after, m })
}

/// Access to all rows of a matrix except one (see [`split_row`]).
struct RowAccess<'a> {
    before: &'a mut [f64],
    after: &'a mut [f64],
    m: usize,
}

/// Returns a mutable view of row `i` (which must differ from the pivot row
/// `r`) from a [`RowAccess`].
fn row_mut<'a>(acc: &'a mut RowAccess<'_>, i: usize, r: usize, m: usize) -> &'a mut [f64] {
    debug_assert_ne!(i, r);
    debug_assert_eq!(m, acc.m);
    if i < r {
        &mut acc.before[i * m..(i + 1) * m]
    } else {
        let k = i - r - 1;
        &mut acc.after[k * m..(k + 1) * m]
    }
}

/// Solves the LP relaxation of `p` with the default iteration limit.
pub fn solve(p: &Problem) -> Result<Solution, SolverError> {
    solve_with_limit(p, default_iteration_limit(p))
}

/// Returns the default simplex iteration budget for a problem.
pub fn default_iteration_limit(p: &Problem) -> usize {
    200 * (p.num_vars() + p.num_constraints()) + 2000
}

/// Solves the LP relaxation of `p` with an explicit iteration limit.
///
/// Telemetry: bumps `solver.simplex.solves` / `solver.simplex.pivots` once
/// per call (aggregated — never per pivot), plus `solver.simplex.infeasible`
/// or `solver.simplex.iteration_limit` on those outcomes.
pub fn solve_with_limit(p: &Problem, max_iters: usize) -> Result<Solution, SolverError> {
    solve_with_warm_start(p, max_iters, None).map(|w| w.solution)
}

/// Solves the LP relaxation of `p`, optionally warm-starting from a basis
/// captured on a structurally identical problem (see [`Basis`]).
///
/// An unusable warm basis (dimension mismatch, singular after the bound
/// changes, or primal-infeasible at the new bounds) silently falls back to
/// the cold two-phase start, so this is never less robust than
/// [`solve_with_limit`]. Telemetry: the usual `solver.simplex.*` counters
/// plus `solver.simplex.warm_accepted` / `solver.simplex.warm_rejected`.
pub fn solve_with_warm_start(
    p: &Problem,
    max_iters: usize,
    warm: Option<&Basis>,
) -> Result<WarmOutcome, SolverError> {
    let mut iters = 0usize;
    let out = solve_inner(p, max_iters, &mut iters, warm);
    sia_telemetry::counter("solver.simplex.solves").incr();
    sia_telemetry::counter("solver.simplex.pivots").add(iters as u64);
    match &out {
        Err(SolverError::Infeasible) => {
            sia_telemetry::counter("solver.simplex.infeasible").incr();
        }
        Err(SolverError::IterationLimit(_)) => {
            sia_telemetry::counter("solver.simplex.iteration_limit").incr();
        }
        _ => {}
    }
    if warm.is_some() {
        match &out {
            Ok(w) if w.warm_used => sia_telemetry::counter("solver.simplex.warm_accepted").incr(),
            _ => sia_telemetry::counter("solver.simplex.warm_rejected").incr(),
        }
    }
    out
}

/// True if every basic variable sits within its (current) bounds.
fn primal_feasible(tab: &Tableau, st: &State) -> bool {
    (0..tab.m).all(|i| {
        let bj = st.basis[i];
        st.xb[i] >= tab.lower[bj] - FEAS_TOL
            && (!tab.upper[bj].is_finite() || st.xb[i] <= tab.upper[bj] + FEAS_TOL)
    })
}

/// Restores primal feasibility after bound changes via bounded-variable
/// *dual* simplex pivots: the most-violated basic variable leaves toward its
/// violated bound, and the entering column is chosen by the dual ratio test
/// (min `|d_j| / |alpha_j|`), which preserves dual feasibility of a basis
/// that was optimal before the bound change. Artificial columns never enter.
///
/// Returns `true` once every basic variable is back within bounds; `false`
/// when no admissible pivot exists or the iteration cap is hit (the caller
/// then falls back to a cold start, so a failure here only costs time).
fn dual_repair(tab: &Tableau, st: &mut State, iters: &mut usize) -> bool {
    let m = tab.m;
    let mut y = vec![0.0; m];
    let mut w = vec![0.0; m];
    let max_rounds = 4 * m + 50;
    for _ in 0..max_rounds {
        if st.pivots_since_refactor >= REFACTOR_EVERY && st.refactorize(tab).is_err() {
            return false;
        }

        // Leaving row: the most-violated basic variable.
        let mut leave: Option<(usize, f64, bool)> = None; // (row, violation, to_upper)
        for i in 0..m {
            let bj = st.basis[i];
            let below = tab.lower[bj] - st.xb[i];
            let above = if tab.upper[bj].is_finite() {
                st.xb[i] - tab.upper[bj]
            } else {
                f64::NEG_INFINITY
            };
            let (v, to_upper) = if above > below {
                (above, true)
            } else {
                (below, false)
            };
            if v > FEAS_TOL && leave.is_none_or(|(_, bv, _)| v > bv) {
                leave = Some((i, v, to_upper));
            }
        }
        let (r, _, to_upper) = match leave {
            Some(l) => l,
            None => return true,
        };
        let j_out = st.basis[r];
        let bound_target = if to_upper {
            tab.upper[j_out]
        } else {
            tab.lower[j_out]
        };
        let delta = st.xb[r] - bound_target; // > 0 iff to_upper

        // Reduced costs under the real objective and the pivot row of B^-1.
        st.btran(tab, &tab.cost, &mut y);
        let rho = &st.binv[r * m..(r + 1) * m];

        // Entering column: dual ratio test over admissible nonbasic
        // structural/slack columns.
        let mut enter: Option<(usize, f64, f64, f64)> = None; // (col, ratio, alpha, sigma)
        for j in 0..tab.first_artificial {
            let sigma = match st.state[j] {
                VarState::Basic(_) => continue,
                VarState::AtLower => 1.0,
                VarState::AtUpper => -1.0,
            };
            if tab.upper[j] - tab.lower[j] < 1e-15 {
                continue;
            }
            let mut alpha = 0.0;
            for &(row, a) in &tab.cols[j] {
                alpha += rho[row] * a;
            }
            let signed = alpha * sigma;
            let admissible = if to_upper {
                signed > PIVOT_TOL
            } else {
                signed < -PIVOT_TOL
            };
            if !admissible {
                continue;
            }
            let mut d = tab.cost[j];
            for &(row, a) in &tab.cols[j] {
                d -= y[row] * a;
            }
            let ratio = d.abs() / alpha.abs();
            let better = match enter {
                Some((_, br, ba, _)) => {
                    ratio < br - OPT_TOL || (ratio < br + OPT_TOL && alpha.abs() > ba.abs())
                }
                None => true,
            };
            if better {
                enter = Some((j, ratio, alpha, sigma));
            }
        }
        let (j_in, _, _, sigma) = match enter {
            Some(e) => e,
            // Dual unbounded: primal infeasible at these bounds. Let the
            // cold two-phase start make that determination.
            None => return false,
        };

        st.ftran(tab, j_in, &mut w);
        let t = delta / (w[r] * sigma);
        let range = tab.upper[j_in] - tab.lower[j_in];
        if range.is_finite() && t > range + FEAS_TOL {
            // Generalized ratio test: the entering variable hits its other
            // bound first. Flip it, absorb the move, re-select the row.
            for i in 0..m {
                st.xb[i] -= sigma * range * w[i];
            }
            st.state[j_in] = if sigma > 0.0 {
                VarState::AtUpper
            } else {
                VarState::AtLower
            };
            *iters += 1;
            continue;
        }

        let wr = w[r];
        if wr.abs() < PIVOT_TOL {
            return false;
        }
        let enter_from = if sigma > 0.0 {
            tab.lower[j_in]
        } else {
            tab.upper[j_in]
        };
        for i in 0..m {
            st.xb[i] -= sigma * t * w[i];
        }
        let (pivot_row, mut tail) = split_row(&mut st.binv, r, m);
        for i in 0..m {
            if i == r {
                continue;
            }
            let f = w[i] / wr;
            if f != 0.0 {
                let row_i = row_mut(&mut tail, i, r, m);
                for k in 0..m {
                    row_i[k] -= f * pivot_row[k];
                }
            }
        }
        for v in pivot_row.iter_mut() {
            *v /= wr;
        }
        st.basis[r] = j_in;
        st.state[j_in] = VarState::Basic(r);
        st.state[j_out] = if to_upper {
            VarState::AtUpper
        } else {
            VarState::AtLower
        };
        st.xb[r] = enter_from + sigma * t;
        st.pivots_since_refactor += 1;
        *iters += 1;
    }
    false
}

/// Attempts to install `wb` into `(tab, st)`. Returns `true` on success; on
/// any failure the state is restored to the cold start and `false` returned.
///
/// Bound changes since the basis was captured (the branch-and-bound case)
/// usually leave the branching variable basic but out of bounds; those are
/// repaired with dual simplex pivots (see [`dual_repair`]) rather than
/// rejected outright.
fn install_warm_basis(tab: &Tableau, st: &mut State, wb: &Basis, iters: &mut usize) -> bool {
    if wb.m != tab.m || wb.n_cols != tab.first_artificial {
        return false;
    }
    // Rebuild the candidate rest states against the *current* bounds:
    // artificial columns (if any) rest at zero, and a variable whose upper
    // bound became infinite can no longer rest there.
    let mut cand_state = Vec::with_capacity(tab.n_total());
    cand_state.extend_from_slice(&wb.state);
    cand_state.resize(tab.n_total(), VarState::AtLower);
    for (j, s) in cand_state.iter_mut().enumerate() {
        if *s == VarState::AtUpper && !tab.upper[j].is_finite() {
            *s = VarState::AtLower;
        }
    }
    let saved = (
        st.basis.clone(),
        st.state.clone(),
        st.binv.clone(),
        st.xb.clone(),
    );
    st.basis.clone_from(&wb.basis);
    st.state = cand_state;
    let feasible = st.refactorize(tab).is_ok()
        && (primal_feasible(tab, st) || (dual_repair(tab, st, iters) && primal_feasible(tab, st)));
    if feasible {
        return true;
    }
    (st.basis, st.state, st.binv, st.xb) = saved;
    st.pivots_since_refactor = 0;
    false
}

fn solve_inner(
    p: &Problem,
    max_iters: usize,
    iters: &mut usize,
    warm: Option<&Basis>,
) -> Result<WarmOutcome, SolverError> {
    let (tab, mut st) = Tableau::from_problem(p)?;

    let warm_used = match warm {
        Some(wb) => install_warm_basis(&tab, &mut st, wb, iters),
        None => false,
    };

    // Phase 1: drive artificials to zero. A successfully installed warm
    // basis is already primal-feasible with every artificial nonbasic at
    // zero, so it jumps straight to phase 2.
    if !warm_used && tab.has_artificials() {
        let mut c1 = vec![0.0; tab.n_total()];
        for cj in c1.iter_mut().skip(tab.first_artificial) {
            *cj = -1.0;
        }
        match run_phase(&tab, &mut st, &c1, max_iters, iters)? {
            PhaseOutcome::Optimal => {}
            PhaseOutcome::Unbounded => {
                return Err(SolverError::InvalidModel(
                    "phase-1 objective reported unbounded".into(),
                ))
            }
        }
        let infeas: f64 = (0..tab.m)
            .filter(|&i| st.basis[i] >= tab.first_artificial)
            .map(|i| st.xb[i])
            .sum();
        let nonbasic_art: f64 = (tab.first_artificial..tab.n_total())
            .filter_map(|j| match st.state[j] {
                VarState::AtUpper => Some(tab.upper[j]),
                _ => None,
            })
            .sum();
        if infeas + nonbasic_art > 1e-6 {
            return Err(SolverError::Infeasible);
        }
    }

    // Phase 2: real objective. Artificials are pinned at zero by treating
    // them as fixed (their cost is zero and they are skipped when fixed).
    let mut tab = tab;
    for j in tab.first_artificial..tab.n_total() {
        tab.upper[j] = 0.0;
    }
    let cost = tab.cost.clone();
    match run_phase(&tab, &mut st, &cost, max_iters, iters)? {
        PhaseOutcome::Optimal => {}
        PhaseOutcome::Unbounded => return Err(SolverError::Unbounded),
    }

    // Extract structural values.
    let mut x = vec![0.0; tab.n_struct];
    for (j, xj) in x.iter_mut().enumerate() {
        *xj = match st.state[j] {
            VarState::Basic(i) => st.xb[i],
            VarState::AtLower => tab.lower[j],
            VarState::AtUpper => tab.upper[j],
        };
    }
    // Clamp tiny numerical drift back into bounds.
    for (j, xj) in x.iter_mut().enumerate() {
        let (lo, up) = (p.lower_bounds()[j], p.upper_bounds()[j]);
        if *xj < lo {
            *xj = lo;
        }
        if up.is_finite() && *xj > up {
            *xj = up;
        }
        if xj.abs() < 1e-12 {
            *xj = 0.0;
        }
    }
    let objective = p.eval_objective(&x);

    // Export the final basis for future warm starts — unless it still holds
    // an artificial column (possible after a degenerate phase 1), which has
    // no stable identity across tableaus.
    let basis = if st.basis.iter().all(|&j| j < tab.first_artificial) {
        Some(Basis {
            m: tab.m,
            n_cols: tab.first_artificial,
            basis: st.basis.clone(),
            state: st.state[..tab.first_artificial].to_vec(),
        })
    } else {
        None
    };

    Ok(WarmOutcome {
        solution: Solution {
            objective,
            values: x,
            pivots: *iters,
        },
        basis,
        warm_used,
    })
}

#[cfg(test)]
mod tests {
    use crate::problem::{Problem, Sense};
    use crate::SolverError;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn maximize_simple_two_var() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(3.0, 0.0, f64::INFINITY);
        let y = p.add_var(5.0, 0.0, f64::INFINITY);
        p.add_le(&[(x, 1.0)], 4.0);
        p.add_le(&[(y, 2.0)], 12.0);
        p.add_le(&[(x, 3.0), (y, 2.0)], 18.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn minimize_with_ge_constraints_needs_phase1() {
        // minimize 2x + 3y  s.t.  x + y >= 4,  x + 3y >= 6
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(2.0, 0.0, f64::INFINITY);
        let y = p.add_var(3.0, 0.0, f64::INFINITY);
        p.add_ge(&[(x, 1.0), (y, 1.0)], 4.0);
        p.add_ge(&[(x, 1.0), (y, 3.0)], 6.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 9.0);
        assert_close(s.value(x), 3.0);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn equality_constraints() {
        // maximize x + 2y  s.t.  x + y == 3,  x - y <= 1
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, f64::INFINITY);
        let y = p.add_var(2.0, 0.0, f64::INFINITY);
        p.add_eq(&[(x, 1.0), (y, 1.0)], 3.0);
        p.add_le(&[(x, 1.0), (y, -1.0)], 1.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 6.0);
        assert_close(s.value(x), 0.0);
        assert_close(s.value(y), 3.0);
    }

    #[test]
    fn upper_bounds_without_rows() {
        // Bounds must be honored without materializing constraint rows.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, 2.5);
        let y = p.add_var(1.0, 0.0, 1.0);
        p.add_le(&[(x, 1.0), (y, 1.0)], 10.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 3.5);
        assert_close(s.value(x), 2.5);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn nonzero_lower_bounds() {
        // minimize x + y  s.t.  x + y >= 3,  x >= 1.5 (bound), y >= 0.5 (bound)
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(1.0, 1.5, f64::INFINITY);
        let y = p.add_var(1.0, 0.5, f64::INFINITY);
        p.add_ge(&[(x, 1.0), (y, 1.0)], 3.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 3.0);
        assert!(s.value(x) >= 1.5 - 1e-9);
        assert!(s.value(y) >= 0.5 - 1e-9);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, f64::INFINITY);
        p.add_le(&[(x, 1.0)], 1.0);
        p.add_ge(&[(x, 1.0)], 2.0);
        assert_eq!(p.solve_lp().unwrap_err(), SolverError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, f64::INFINITY);
        let y = p.add_var(0.0, 0.0, f64::INFINITY);
        p.add_le(&[(x, 1.0), (y, -1.0)], 1.0);
        assert_eq!(p.solve_lp().unwrap_err(), SolverError::Unbounded);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, f64::INFINITY);
        let y = p.add_var(1.0, 0.0, f64::INFINITY);
        p.add_le(&[(x, 1.0), (y, 1.0)], 2.0);
        p.add_le(&[(x, 2.0), (y, 2.0)], 4.0);
        p.add_le(&[(x, 1.0)], 2.0);
        p.add_le(&[(y, 1.0)], 2.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn negative_rhs_rows() {
        // x - y <= -1 with x,y >= 0 forces y >= x + 1.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(0.0, 0.0, f64::INFINITY);
        let y = p.add_var(1.0, 0.0, f64::INFINITY);
        p.add_le(&[(x, 1.0), (y, -1.0)], -1.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 1.0);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn duplicate_terms_are_summed() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0, 0.0, f64::INFINITY);
        // 0.5x + 0.5x <= 3  =>  x <= 3
        p.add_le(&[(x, 0.5), (x, 0.5)], 3.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn fixed_variables_respected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(5.0, 2.0, 2.0);
        let y = p.add_var(1.0, 0.0, f64::INFINITY);
        p.add_le(&[(x, 1.0), (y, 1.0)], 5.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 3.0);
        assert_close(s.objective, 13.0);
    }

    #[test]
    fn empty_objective_feasibility_check() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(0.0, 0.0, 1.0);
        p.add_eq(&[(x, 1.0)], 0.25);
        let s = p.solve_lp().unwrap();
        assert_close(s.value(x), 0.25);
    }

    #[test]
    fn warm_start_after_bound_change_matches_cold() {
        // Solve, tighten one bound, re-solve warm from the old basis: the
        // result must match a cold solve of the modified problem.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(3.0, 0.0, 1.0);
        let y = p.add_var(5.0, 0.0, 1.0);
        let z = p.add_var(4.0, 0.0, 1.0);
        p.add_le(&[(x, 1.0), (y, 2.0), (z, 1.0)], 2.5);
        let limit = super::default_iteration_limit(&p);
        let first = super::solve_with_warm_start(&p, limit, None).unwrap();
        assert!(!first.warm_used);
        let basis = first.basis.expect("artificial-free basis");

        p.set_bounds(x, 0.0, 0.0); // branch-style bound fix
        let cold = super::solve_with_limit(&p, limit).unwrap();
        let warm = super::solve_with_warm_start(&p, limit, Some(&basis)).unwrap();
        assert!(warm.warm_used, "warm basis should be accepted");
        assert_close(warm.solution.objective, cold.objective);
        assert!(warm.solution.pivots <= cold.pivots);
    }

    #[test]
    fn mismatched_warm_basis_falls_back_cold() {
        let mut small = Problem::new(Sense::Maximize);
        let a = small.add_var(1.0, 0.0, 1.0);
        small.add_le(&[(a, 1.0)], 1.0);
        let basis = super::solve_with_warm_start(&small, 100, None)
            .unwrap()
            .basis
            .unwrap();

        let mut big = Problem::new(Sense::Maximize);
        let x = big.add_var(3.0, 0.0, 4.0);
        let y = big.add_var(5.0, 0.0, 6.0);
        big.add_le(&[(x, 1.0)], 4.0);
        big.add_le(&[(y, 2.0)], 12.0);
        big.add_le(&[(x, 3.0), (y, 2.0)], 18.0);
        let out =
            super::solve_with_warm_start(&big, super::default_iteration_limit(&big), Some(&basis))
                .unwrap();
        assert!(!out.warm_used, "mismatched basis must be rejected");
        assert_close(out.solution.objective, 36.0);
    }

    #[test]
    fn moderately_sized_assignment_lp() {
        // 30 jobs x 10 configs, one capacity row: a small Sia-shaped LP.
        let mut p = Problem::new(Sense::Maximize);
        let mut vars = Vec::new();
        for i in 0..30 {
            for j in 0..10 {
                let util = 1.0 + ((i * 7 + j * 13) % 17) as f64 / 17.0;
                vars.push((i, j, p.add_var(util, 0.0, 1.0)));
            }
        }
        for i in 0..30 {
            let row: Vec<_> = vars
                .iter()
                .filter(|&&(vi, _, _)| vi == i)
                .map(|&(_, _, v)| (v, 1.0))
                .collect();
            p.add_le(&row, 1.0);
        }
        let cap_row: Vec<_> = vars
            .iter()
            .map(|&(_, j, v)| (v, (1 << (j % 4)) as f64))
            .collect();
        p.add_le(&cap_row, 40.0);
        let s = p.solve_lp().unwrap();
        assert!(s.objective > 0.0);
        assert!(p.max_violation(&s.values) < 1e-6);
    }
}
