//! Lagrangian-relaxation heuristic for assignment-with-capacities problems.
//!
//! The Sia scheduling ILP has a special structure: binary variables grouped
//! into SOS-1 rows (one configuration per job) plus a handful of knapsack
//! (GPU-capacity) rows. Dualizing the capacity rows with multipliers
//! `lambda_t` decomposes the problem per job:
//!
//! ```text
//! max over j of  w_ij - sum_t lambda_t * g_t(i, j)
//! ```
//!
//! which is solvable by a scan. Projected-subgradient updates on `lambda`
//! tighten the dual bound; a final greedy repair restores primal
//! feasibility. The heuristic is near-optimal on Sia-shaped instances
//! (cross-validated against the exact branch-and-bound solver in tests) and
//! runs in `O(iters * n_vars)` — useful as a principled anytime fallback
//! when an exact solve would exceed the scheduling-round budget.

use std::collections::BTreeMap;

/// One candidate: job `group`, resource usage per capacity row, and weight.
#[derive(Debug, Clone)]
pub struct AssignmentItem {
    /// SOS-1 group id (the job).
    pub group: usize,
    /// `(capacity row, amount)` pairs consumed if selected.
    pub usage: Vec<(usize, f64)>,
    /// Objective weight (maximize).
    pub weight: f64,
}

/// Result of the Lagrangian heuristic.
#[derive(Debug, Clone)]
pub struct AssignmentSolution {
    /// Selected item index per group (absent = group unassigned).
    pub chosen: BTreeMap<usize, usize>,
    /// Primal objective of the repaired (feasible) solution.
    pub objective: f64,
    /// Best dual bound observed (upper bound on the true optimum).
    pub dual_bound: f64,
}

/// Convergence telemetry for one Lagrangian solve.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LagrangianTelemetry {
    /// Subgradient iterations performed.
    pub iterations: usize,
    /// `dual_bound - objective` at exit (absolute duality gap, >= 0 up to
    /// floating-point noise).
    pub duality_gap: f64,
    /// Euclidean norm of the final multiplier vector.
    pub multiplier_norm: f64,
}

/// Full output of the Lagrangian heuristic: repaired primal solution, final
/// capacity prices, and convergence telemetry.
#[derive(Debug, Clone)]
pub struct LagrangianOutcome {
    /// Repaired (feasible) primal solution with dual bound.
    pub solution: AssignmentSolution,
    /// Final multipliers per capacity row (the cross-shard prices).
    pub multipliers: Vec<f64>,
    /// Convergence telemetry.
    pub telemetry: LagrangianTelemetry,
}

/// Solves `max sum w_i x_i` s.t. one item per group, `sum usage_r <= cap_r`.
///
/// `iters` controls subgradient iterations (50 is plenty for Sia-shaped
/// instances). Deterministic.
pub fn solve_assignment_lagrangian(
    items: &[AssignmentItem],
    capacities: &[f64],
    iters: usize,
) -> AssignmentSolution {
    solve_assignment_lagrangian_detailed(items, capacities, iters).solution
}

/// As [`solve_assignment_lagrangian`], but also returns the final capacity
/// multipliers and convergence telemetry. The multipliers price cross-shard
/// capacity coupling for the sharded decomposition in `decompose`.
pub fn solve_assignment_lagrangian_detailed(
    items: &[AssignmentItem],
    capacities: &[f64],
    iters: usize,
) -> LagrangianOutcome {
    let _span = sia_telemetry::span("solver.lagrangian.solve");
    sia_telemetry::counter("solver.lagrangian.solves").incr();
    sia_telemetry::counter("solver.lagrangian.iters").add(iters.max(1) as u64);
    let n_rows = capacities.len();
    let mut lambda = vec![0.0_f64; n_rows];
    let mut best: Option<AssignmentSolution> = None;
    let mut dual_bound = f64::INFINITY;

    // Group index for the per-job argmax scans.
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, item) in items.iter().enumerate() {
        groups.entry(item.group).or_default().push(i);
    }
    let max_weight = items.iter().map(|i| i.weight.abs()).fold(1e-9, f64::max);

    for it in 0..iters.max(1) {
        // Dual evaluation: per group pick the best reduced-weight item.
        let mut dual = lambda
            .iter()
            .zip(capacities)
            .map(|(l, c)| l * c)
            .sum::<f64>();
        let mut usage = vec![0.0_f64; n_rows];
        let mut relaxed: BTreeMap<usize, usize> = BTreeMap::new();
        for (g, idxs) in &groups {
            let mut best_i = None;
            let mut best_w = 0.0; // skipping the group contributes 0
            for &i in idxs {
                let red = items[i].weight
                    - items[i]
                        .usage
                        .iter()
                        .map(|&(r, a)| lambda[r] * a)
                        .sum::<f64>();
                if red > best_w {
                    best_w = red;
                    best_i = Some(i);
                }
            }
            if let Some(i) = best_i {
                dual += best_w;
                relaxed.insert(*g, i);
                for &(r, a) in &items[i].usage {
                    usage[r] += a;
                }
            }
        }
        dual_bound = dual_bound.min(dual);

        // Primal repair: evict lowest-weight over-capacity selections.
        let mut chosen = relaxed.clone();
        let mut used = usage.clone();
        let mut order: Vec<usize> = chosen.keys().cloned().collect();
        order.sort_by(|a, b| {
            items[chosen[a]]
                .weight
                .partial_cmp(&items[chosen[b]].weight)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for g in order {
            let over = (0..n_rows).any(|r| used[r] > capacities[r] + 1e-9);
            if !over {
                break;
            }
            let i = chosen[&g];
            let helps = items[i]
                .usage
                .iter()
                .any(|&(r, _)| used[r] > capacities[r] + 1e-9);
            if helps {
                for &(r, a) in &items[i].usage {
                    used[r] -= a;
                }
                chosen.remove(&g);
            }
        }
        // Fill leftover capacity with unassigned groups, best weight first.
        let mut candidates: Vec<usize> = (0..items.len())
            .filter(|&i| !chosen.contains_key(&items[i].group))
            .collect();
        candidates.sort_by(|&a, &b| {
            items[b]
                .weight
                .partial_cmp(&items[a].weight)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for i in candidates {
            if chosen.contains_key(&items[i].group) {
                continue;
            }
            let fits = items[i]
                .usage
                .iter()
                .all(|&(r, a)| used[r] + a <= capacities[r] + 1e-9);
            if fits && items[i].weight > 0.0 {
                for &(r, a) in &items[i].usage {
                    used[r] += a;
                }
                chosen.insert(items[i].group, i);
            }
        }
        let objective: f64 = chosen.values().map(|&i| items[i].weight).sum();
        if best
            .as_ref()
            .map(|b| objective > b.objective)
            .unwrap_or(true)
        {
            best = Some(AssignmentSolution {
                chosen,
                objective,
                dual_bound,
            });
        }

        // Projected subgradient step on the capacity violations.
        let step = 0.5 * max_weight / (1.0 + it as f64);
        for r in 0..n_rows {
            let violation = usage[r] - capacities[r];
            lambda[r] = (lambda[r] + step * violation / capacities[r].max(1.0)).max(0.0);
        }
    }

    let mut out = best.expect("at least one iteration");
    out.dual_bound = dual_bound;
    let telemetry = LagrangianTelemetry {
        iterations: iters.max(1),
        duality_gap: (out.dual_bound - out.objective).max(0.0),
        multiplier_norm: lambda.iter().map(|l| l * l).sum::<f64>().sqrt(),
    };
    LagrangianOutcome {
        solution: out,
        multipliers: lambda,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Sense};

    /// Builds a Sia-shaped instance and the equivalent exact MILP.
    fn build(seedish: u64, jobs: usize) -> (Vec<AssignmentItem>, Vec<f64>, Problem, Vec<usize>) {
        let capacities = vec![24.0, 24.0, 16.0];
        let mut items = Vec::new();
        let mut p = Problem::new(Sense::Maximize);
        let mut vars = Vec::new();
        for j in 0..jobs {
            let mut row = Vec::new();
            for c in 0..9 {
                let t = c % 3;
                let gpus = 1 << (c % 4);
                let w = 1.0 + ((seedish as usize + j * 31 + c * 17) % 97) as f64 / 31.0;
                items.push(AssignmentItem {
                    group: j,
                    usage: vec![(t, gpus as f64)],
                    weight: w,
                });
                let v = p.add_binary_var(w);
                row.push((v, 1.0));
                vars.push((t, gpus as f64, v));
            }
            p.add_le(&row, 1.0);
        }
        for (t, &cap) in capacities.iter().enumerate() {
            let caprow: Vec<_> = vars
                .iter()
                .filter(|&&(vt, _, _)| vt == t)
                .map(|&(_, g, v)| (v, g))
                .collect();
            p.add_le(&caprow, cap);
        }
        let var_index = (0..items.len()).collect();
        (items, capacities, p, var_index)
    }

    #[test]
    fn feasible_and_near_optimal_vs_exact_milp() {
        for seed in [1u64, 7, 23, 41] {
            let (items, caps, milp, _) = build(seed, 12);
            let heur = solve_assignment_lagrangian(&items, &caps, 60);
            let exact = milp.solve_milp().unwrap().solution.objective;
            // Feasibility.
            let mut used = vec![0.0; caps.len()];
            for (&g, &i) in &heur.chosen {
                assert_eq!(items[i].group, g);
                for &(r, a) in &items[i].usage {
                    used[r] += a;
                }
            }
            for (r, &u) in used.iter().enumerate() {
                assert!(u <= caps[r] + 1e-6, "row {r} over capacity");
            }
            // Near-optimality and bound sanity.
            assert!(
                heur.objective >= exact * 0.95,
                "seed {seed}: heuristic {} vs exact {exact}",
                heur.objective
            );
            assert!(heur.objective <= exact + 1e-6);
            assert!(heur.dual_bound >= exact - 1e-6);
        }
    }

    #[test]
    fn uncapacitated_instance_solved_exactly() {
        // Huge capacities: every group takes its best item.
        let (items, _, _, _) = build(3, 8);
        let caps = vec![1e9, 1e9, 1e9];
        let heur = solve_assignment_lagrangian(&items, &caps, 5);
        let mut expect = 0.0;
        for g in 0..8 {
            expect += items
                .iter()
                .filter(|i| i.group == g)
                .map(|i| i.weight)
                .fold(f64::NEG_INFINITY, f64::max);
        }
        assert!((heur.objective - expect).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_assigns_nothing() {
        let (items, _, _, _) = build(5, 6);
        let caps = vec![0.0, 0.0, 0.0];
        let heur = solve_assignment_lagrangian(&items, &caps, 10);
        assert!(heur.chosen.is_empty());
        assert_eq!(heur.objective, 0.0);
    }

    #[test]
    fn deterministic() {
        let (items, caps, _, _) = build(9, 10);
        let a = solve_assignment_lagrangian(&items, &caps, 40);
        let b = solve_assignment_lagrangian(&items, &caps, 40);
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.chosen, b.chosen);
    }

    #[test]
    fn detailed_outcome_reports_telemetry_and_prices() {
        let (items, caps, _, _) = build(11, 10);
        let out = solve_assignment_lagrangian_detailed(&items, &caps, 40);
        assert_eq!(out.telemetry.iterations, 40);
        assert!(out.telemetry.duality_gap >= 0.0);
        assert_eq!(out.multipliers.len(), caps.len());
        assert!(out.multipliers.iter().all(|&l| l >= 0.0));
        let norm = out.multipliers.iter().map(|l| l * l).sum::<f64>().sqrt();
        assert!((out.telemetry.multiplier_norm - norm).abs() < 1e-12);
        // Wrapper returns the identical solution.
        let plain = solve_assignment_lagrangian(&items, &caps, 40);
        assert_eq!(plain.chosen, out.solution.chosen);
        assert_eq!(plain.objective, out.solution.objective);
        assert!(
            out.solution.dual_bound + 1e-9 >= out.solution.objective,
            "dual bound must dominate the primal"
        );
    }
}
