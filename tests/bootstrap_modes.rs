//! End-to-end checks of the profiling modes (§5.7) and the Eq. 1 bootstrap.

use sia::cluster::ClusterSpec;
use sia::core::SiaPolicy;
use sia::models::ProfilingMode;
use sia::sim::{SimConfig, Simulator};
use sia::workloads::{Trace, TraceConfig, TraceKind};

fn run_mode(mode: ProfilingMode, seed: u64) -> f64 {
    let cluster = ClusterSpec::heterogeneous_64();
    let mut trace =
        Trace::generate(&TraceConfig::new(TraceKind::Philly, seed).with_max_gpus_cap(16));
    trace.jobs.truncate(40);
    for j in &mut trace.jobs {
        j.work_target *= 0.25;
    }
    let cfg = SimConfig {
        seed,
        profiling_mode: mode,
        profiling_gpu_seconds: if mode == ProfilingMode::Bootstrap {
            20.0
        } else {
            0.0
        },
        ..SimConfig::default()
    };
    let result = Simulator::new(cluster, &trace, cfg).run(&mut SiaPolicy::default());
    assert_eq!(result.unfinished, 0, "{mode:?} left jobs unfinished");
    result.avg_jct()
}

#[test]
fn oracle_bootstrap_noprof_ordering() {
    // Average over a few seeds to damp scheduling noise; the paper's
    // ordering is Oracle <= Bootstrap < NoProf, with Bootstrap ~8% off
    // Oracle and NoProf ~30% worse.
    let seeds = [1u64, 2, 3];
    let avg = |mode: ProfilingMode| -> f64 {
        seeds.iter().map(|&s| run_mode(mode, s)).sum::<f64>() / seeds.len() as f64
    };
    let oracle = avg(ProfilingMode::Oracle);
    let bootstrap = avg(ProfilingMode::Bootstrap);
    let noprof = avg(ProfilingMode::NoProf);
    assert!(
        bootstrap <= noprof * 1.02,
        "bootstrap {bootstrap} must not lose to noprof {noprof}"
    );
    assert!(
        bootstrap <= oracle * 1.5,
        "bootstrap {bootstrap} must stay near oracle {oracle}"
    );
}

#[test]
fn bootstrap_estimator_learns_toward_truth_during_sim() {
    // After a simulation, spot-check that running jobs' fitted models
    // predict single-GPU throughput close to truth on the type they ran.
    use sia::models::AllocShape;
    let cluster = ClusterSpec::heterogeneous_64();
    let mut trace = Trace::generate(&TraceConfig::new(TraceKind::Philly, 9).with_max_gpus_cap(16));
    trace.jobs.truncate(12);
    for j in &mut trace.jobs {
        j.work_target *= 0.3;
    }
    let result = Simulator::new(cluster.clone(), &trace, SimConfig::default())
        .run(&mut SiaPolicy::default());
    // Indirect but meaningful: every job finished, implying estimates were
    // good enough to schedule productively under all three GPU types.
    assert_eq!(result.unfinished, 0);
    // Sanity: bootstrapping estimates exist for all types of a fresh job.
    let job = &trace.jobs[0];
    let truth = job.model.profile().true_model(&cluster);
    let est = sia::models::JobEstimator::bootstrap(
        truth.per_type.clone(), // exact single-GPU profile
        truth.eff0,
        job.model.profile().batch_limits(),
    );
    for t in cluster.gpu_types() {
        assert!(est.estimate(t, AllocShape::single()).is_some());
        assert!(est.estimate(t, AllocShape::dist(4)).is_some());
    }
}
