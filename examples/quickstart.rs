//! Quickstart: schedule a small heterogeneous workload with Sia.
//!
//! Builds the paper's 64-GPU heterogeneous evaluation cluster, samples a
//! Philly-like trace, runs the Sia scheduler in the discrete-time simulator
//! and prints the headline metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use sia::cluster::ClusterSpec;
use sia::core::SiaPolicy;
use sia::metrics::{ftf_ratios, summarize, unfair_fraction, worst_ftf};
use sia::sim::{SimConfig, Simulator};
use sia::workloads::{Trace, TraceConfig, TraceKind};

fn main() {
    // 1. A heterogeneous cluster: 6x t4 (4 GPU) + 3x rtx (8 GPU) +
    //    2x a100 (8 GPU) nodes = 64 GPUs, 3 GPU types.
    let cluster = ClusterSpec::heterogeneous_64();
    println!(
        "cluster: {} GPUs across {} nodes, {} GPU types",
        cluster.total_gpus(),
        cluster.nodes().len(),
        cluster.num_gpu_types()
    );

    // 2. A synthetic Philly-like trace: ~160 jobs over 8 hours.
    let trace = Trace::generate(&TraceConfig::new(TraceKind::Philly, 42).with_max_gpus_cap(16));
    println!("trace: {} jobs over 8 h", trace.len());

    // 3. Run Sia (default parameters: p = -0.5, lambda = 1.1, 60 s rounds).
    let mut sia = SiaPolicy::default();
    let sim = Simulator::new(cluster.clone(), &trace, SimConfig::default());
    let result = sim.run(&mut sia);

    // 4. Report.
    let s = summarize(&result);
    println!("\nscheduler        : {}", s.scheduler);
    println!(
        "finished jobs    : {} ({} unfinished)",
        s.finished, s.unfinished
    );
    println!("avg JCT          : {:.2} h", s.avg_jct_hours);
    println!("p99 JCT          : {:.2} h", s.p99_jct_hours);
    println!("makespan         : {:.2} h", s.makespan_hours);
    println!("GPU-hours / job  : {:.2}", s.gpu_hours_per_job);
    println!("restarts / job   : {:.2}", s.avg_restarts);
    println!(
        "policy runtime   : {:.1} ms median / round",
        s.median_policy_runtime * 1e3
    );

    let ratios = ftf_ratios(&result, &cluster);
    println!(
        "fairness         : worst rho {:.2}, unfair fraction {:.1}%",
        worst_ftf(&ratios),
        unfair_fraction(&ratios) * 100.0
    );
}
