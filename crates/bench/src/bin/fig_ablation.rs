//! Ablation study of Sia's design choices (DESIGN.md §5):
//!
//! * **restart factor** (Eq. 3): disabled, Sia should reallocate far more
//!   often and lose JCT/GPU-hours to checkpoint-restore churn;
//! * **queue penalty `lambda`**: swept around the paper's default `1.1`.
//!
//! Not a paper figure; supports the claim in §3.4 that "without a restart
//! factor, each tiny change in G would result in altering some jobs'
//! resources and additional checkpoint-restore overheads".

use sia_bench::{print_table, write_json, Aggregate};
use sia_cluster::ClusterSpec;
use sia_core::{SiaConfig, SiaPolicy};
use sia_metrics::summarize;
use sia_sim::{SimConfig, Simulator};
use sia_workloads::{Trace, TraceConfig, TraceKind};

fn run_variant(label: &str, cfg: SiaConfig, seeds: &[u64]) -> Aggregate {
    let cluster = ClusterSpec::heterogeneous_64();
    let runs = seeds
        .iter()
        .map(|&seed| {
            let trace =
                Trace::generate(&TraceConfig::new(TraceKind::Philly, seed).with_max_gpus_cap(16));
            let sim = Simulator::new(
                cluster.clone(),
                &trace,
                SimConfig {
                    seed,
                    ..SimConfig::default()
                },
            );
            summarize(&sim.run(&mut SiaPolicy::new(cfg.clone())))
        })
        .collect();
    Aggregate {
        label: label.to_string(),
        runs,
    }
}

fn main() {
    let seeds: Vec<u64> = (1..=2).collect();
    let mut aggs = Vec::new();
    aggs.push(run_variant("Sia", SiaConfig::default(), &seeds));
    aggs.push(run_variant(
        "Sia[no r_i]",
        SiaConfig {
            use_restart_factor: false,
            ..SiaConfig::default()
        },
        &seeds,
    ));
    for lambda in [0.55, 2.2, 4.4] {
        aggs.push(run_variant(
            &format!("Sia[λ={lambda}]"),
            SiaConfig {
                lambda,
                ..SiaConfig::default()
            },
            &seeds,
        ));
    }
    print_table(
        "Ablation: restart factor and lambda (Philly, hetero 64)",
        &aggs,
    );

    // Sanity line: removing the restart factor must raise restart counts.
    let base = aggs[0].mean(|s| s.avg_restarts);
    let no_rf = aggs[1].mean(|s| s.avg_restarts);
    println!("\nrestarts/job: Sia {base:.1} vs no-restart-factor {no_rf:.1}");
    write_json("fig_ablation", &sia_bench::aggregates_json(&aggs));
}
