/root/repo/target/release/deps/rand_chacha-f2a61922451cf4b5.d: compat/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-f2a61922451cf4b5.rlib: compat/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-f2a61922451cf4b5.rmeta: compat/rand_chacha/src/lib.rs

compat/rand_chacha/src/lib.rs:
