/root/repo/target/release/deps/fig11_adaptivity-42b3757a033ce1c6.d: crates/bench/src/bin/fig11_adaptivity.rs

/root/repo/target/release/deps/fig11_adaptivity-42b3757a033ce1c6: crates/bench/src/bin/fig11_adaptivity.rs

crates/bench/src/bin/fig11_adaptivity.rs:
