/root/repo/target/release/deps/fig5_timeline-94a5f1c5b26cc922.d: crates/bench/src/bin/fig5_timeline.rs

/root/repo/target/release/deps/fig5_timeline-94a5f1c5b26cc922: crates/bench/src/bin/fig5_timeline.rs

crates/bench/src/bin/fig5_timeline.rs:
