//! Online fitting of throughput-model parameters.
//!
//! Adaptive Executors report `(allocation shape, batch, accumulation,
//! measured iteration time)` tuples every reporting interval; the Goodput
//! Estimator refits the job's [`ThroughputParams`] for the observed GPU type
//! by derivative-free nonlinear least squares. Parameters are optimised in
//! log-space (positivity by construction) with a weak prior pulling
//! unidentified parameters toward their seed values — e.g. before any
//! multi-GPU observation exists, the sync-cost terms stay at their prior.

use crate::throughput::{AllocShape, ThroughputParams};

/// One measured iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitSample {
    /// Allocation shape during the measurement.
    pub shape: AllocShape,
    /// Per-GPU batch size.
    pub local_bsz: f64,
    /// Gradient-accumulation steps.
    pub accum_steps: u32,
    /// Measured wall-clock iteration time (seconds).
    pub iter_time: f64,
}

/// Generic Nelder–Mead simplex minimisation.
///
/// Minimises `f` starting from `x0` with an initial simplex of per-dimension
/// radius `step`. Deterministic; runs a fixed iteration budget with early
/// exit on simplex collapse.
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    step: f64,
    max_iters: usize,
) -> Vec<f64> {
    let n = x0.len();
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);

    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let v0 = f(x0);
    simplex.push((x0.to_vec(), v0));
    for i in 0..n {
        let mut x = x0.to_vec();
        x[i] += step;
        let v = f(&x);
        simplex.push((x, v));
    }

    for _ in 0..max_iters {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let spread = simplex[n].1 - simplex[0].1;
        if spread.abs() < 1e-12 * (1.0 + simplex[0].1.abs()) {
            break;
        }
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (x, _) in simplex.iter().take(n) {
            for (c, xi) in centroid.iter_mut().zip(x) {
                *c += xi / n as f64;
            }
        }
        let worst = simplex[n].clone();
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&worst.0)
            .map(|(c, w)| c + alpha * (c - w))
            .collect();
        let fr = f(&reflect);
        if fr < simplex[0].1 {
            // Expansion.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&reflect)
                .map(|(c, r)| c + gamma * (r - c))
                .collect();
            let fe = f(&expand);
            simplex[n] = if fe < fr { (expand, fe) } else { (reflect, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (reflect, fr);
        } else {
            // Contraction.
            let contract: Vec<f64> = centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + rho * (w - c))
                .collect();
            let fc = f(&contract);
            if fc < worst.1 {
                simplex[n] = (contract, fc);
            } else {
                // Shrink toward the best.
                let best = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let x: Vec<f64> = best
                        .iter()
                        .zip(&entry.0)
                        .map(|(b, xi)| b + sigma * (xi - b))
                        .collect();
                    let v = f(&x);
                    *entry = (x, v);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    simplex[0].0.clone()
}

/// Number of fitted parameters (`max_local_bsz` is measured, not fitted).
const N_PARAMS: usize = 7;

fn encode(p: &ThroughputParams) -> [f64; N_PARAMS] {
    [
        p.alpha_c.max(1e-6).ln(),
        p.beta_c.max(1e-9).ln(),
        p.alpha_n.max(1e-6).ln(),
        p.beta_n.max(1e-9).ln(),
        p.alpha_d.max(1e-6).ln(),
        p.beta_d.max(1e-9).ln(),
        (p.gamma - 1.0).max(1e-6).ln(),
    ]
}

fn decode(z: &[f64], max_local_bsz: f64) -> ThroughputParams {
    ThroughputParams {
        alpha_c: z[0].exp(),
        beta_c: z[1].exp(),
        alpha_n: z[2].exp(),
        beta_n: z[3].exp(),
        alpha_d: z[4].exp(),
        beta_d: z[5].exp(),
        gamma: 1.0 + z[6].exp().min(15.0),
        max_local_bsz,
    }
}

/// Base strength of the prior pulling parameters toward the seed; decays as
/// observations accumulate so data eventually dominates.
const PRIOR_WEIGHT: f64 = 0.05;

/// Fits throughput parameters to observed iterations.
///
/// `seed` provides the starting point and the prior; with few observations
/// the fit stays close to it, with many it is dominated by the data. Returns
/// the seed unchanged when `samples` is empty.
pub fn fit_throughput(seed: &ThroughputParams, samples: &[FitSample]) -> ThroughputParams {
    if samples.is_empty() {
        return *seed;
    }
    let z0 = encode(seed);
    let prior = z0;
    let max_local = seed.max_local_bsz;
    let prior_w = PRIOR_WEIGHT / (1.0 + samples.len() as f64);
    let loss = |z: &[f64]| -> f64 {
        let p = decode(z, max_local);
        let mut l = 0.0;
        for s in samples {
            let pred = p.t_iter(s.shape, s.local_bsz, s.accum_steps).max(1e-9);
            let d = (pred.ln() - s.iter_time.max(1e-9).ln()).powi(2);
            l += d;
        }
        l /= samples.len() as f64;
        for (zi, pi) in z.iter().zip(&prior) {
            l += prior_w * (zi - pi).powi(2);
        }
        l
    };
    // Coarse solve, then a polish restart with a smaller simplex.
    let z = nelder_mead(&loss, &z0, 0.8, 900);
    let z = nelder_mead(&loss, &z, 0.1, 500);
    decode(&z, max_local)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> ThroughputParams {
        ThroughputParams {
            alpha_c: 0.08,
            beta_c: 0.003,
            alpha_n: 0.03,
            beta_n: 0.008,
            alpha_d: 0.15,
            beta_d: 0.03,
            gamma: 2.5,
            max_local_bsz: 256.0,
        }
    }

    fn rough_seed() -> ThroughputParams {
        ThroughputParams {
            alpha_c: 0.02,
            beta_c: 0.001,
            alpha_n: 0.01,
            beta_n: 0.002,
            alpha_d: 0.05,
            beta_d: 0.01,
            gamma: 2.0,
            max_local_bsz: 256.0,
        }
    }

    fn samples_from(p: &ThroughputParams, shapes: &[AllocShape]) -> Vec<FitSample> {
        let mut out = Vec::new();
        for &shape in shapes {
            for &m in &[16.0, 32.0, 64.0, 128.0, 256.0] {
                out.push(FitSample {
                    shape,
                    local_bsz: m,
                    accum_steps: 0,
                    iter_time: p.t_iter(shape, m, 0),
                });
            }
        }
        out
    }

    #[test]
    fn nelder_mead_minimizes_quadratic() {
        let x = nelder_mead(
            |z| (z[0] - 3.0).powi(2) + (z[1] + 1.0).powi(2),
            &[0.0, 0.0],
            1.0,
            300,
        );
        assert!((x[0] - 3.0).abs() < 1e-3);
        assert!((x[1] + 1.0).abs() < 1e-3);
    }

    #[test]
    fn nelder_mead_rosenbrock() {
        let x = nelder_mead(
            |z| (1.0 - z[0]).powi(2) + 100.0 * (z[1] - z[0] * z[0]).powi(2),
            &[-1.0, 1.0],
            0.5,
            2000,
        );
        assert!((x[0] - 1.0).abs() < 0.02, "x = {x:?}");
        assert!((x[1] - 1.0).abs() < 0.04, "x = {x:?}");
    }

    #[test]
    fn fit_recovers_single_gpu_compute_params() {
        let t = truth();
        let samples = samples_from(&t, &[AllocShape::single()]);
        let fitted = fit_throughput(&rough_seed(), &samples);
        // Predicted iteration times must match the truth on held-out batch.
        for &m in &[24.0, 96.0, 200.0] {
            let pred = fitted.t_iter(AllocShape::single(), m, 0);
            let act = t.t_iter(AllocShape::single(), m, 0);
            assert!(
                (pred - act).abs() / act < 0.05,
                "m={m}: pred {pred} vs act {act}"
            );
        }
    }

    #[test]
    fn fit_learns_sync_costs_from_multi_gpu_obs() {
        let t = truth();
        let samples = samples_from(
            &t,
            &[
                AllocShape::single(),
                AllocShape::local(2),
                AllocShape::local(4),
                AllocShape::dist(8),
                AllocShape::dist(16),
            ],
        );
        let fitted = fit_throughput(&rough_seed(), &samples);
        for shape in [AllocShape::local(3), AllocShape::dist(12)] {
            let pred = fitted.t_iter(shape, 64.0, 0);
            let act = t.t_iter(shape, 64.0, 0);
            assert!(
                (pred - act).abs() / act < 0.12,
                "{shape:?}: pred {pred} vs act {act}"
            );
        }
    }

    #[test]
    fn empty_samples_return_seed() {
        let seed = rough_seed();
        let fitted = fit_throughput(&seed, &[]);
        assert_eq!(fitted, seed);
    }

    #[test]
    fn fit_is_robust_to_noise() {
        let t = truth();
        let mut samples = samples_from(&t, &[AllocShape::single(), AllocShape::local(4)]);
        // Deterministic +/-5% multiplicative noise.
        for (i, s) in samples.iter_mut().enumerate() {
            let eps = if i % 2 == 0 { 1.05 } else { 0.95 };
            s.iter_time *= eps;
        }
        let fitted = fit_throughput(&rough_seed(), &samples);
        let pred = fitted.t_iter(AllocShape::local(4), 64.0, 0);
        let act = t.t_iter(AllocShape::local(4), 64.0, 0);
        assert!((pred - act).abs() / act < 0.15);
    }
}
