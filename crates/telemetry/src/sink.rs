//! The JSONL event sink.
//!
//! Disabled by default: every emit helper starts with one relaxed atomic
//! load and returns — the entire cost telemetry adds to un-instrumented
//! runs. Enabling routes events through a buffered writer behind a mutex.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::now_s;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EMITTED: AtomicU64 = AtomicU64::new(0);
static SEQ: AtomicU64 = AtomicU64::new(0);

fn writer() -> &'static Mutex<Option<BufWriter<File>>> {
    static WRITER: OnceLock<Mutex<Option<BufWriter<File>>>> = OnceLock::new();
    WRITER.get_or_init(|| Mutex::new(None))
}

/// Route events to a JSONL file at `path` (truncating it). Replaces any
/// previous sink.
pub fn init_jsonl(path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut guard = writer().lock().unwrap();
    if let Some(mut old) = guard.replace(BufWriter::new(file)) {
        let _ = old.flush();
    }
    ENABLED.store(true, Ordering::Release);
    Ok(())
}

/// True if a sink is currently accepting events.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Stop emitting events (the sink file, if any, stays open but idle).
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Flush buffered events to the sink file.
pub fn flush() {
    if let Some(w) = writer().lock().unwrap().as_mut() {
        let _ = w.flush();
    }
}

/// Disable the sink, flush, and close the file.
pub fn shutdown() {
    ENABLED.store(false, Ordering::Release);
    if let Some(mut w) = writer().lock().unwrap().take() {
        let _ = w.flush();
    }
}

/// Total events written since process start (across all sink files). Only
/// moves while a sink is enabled, which makes "disabled emits nothing"
/// directly testable.
pub fn events_emitted() -> u64 {
    EMITTED.load(Ordering::Relaxed)
}

/// Append one event line. The sequence number is allocated under the writer
/// lock so on-disk order always matches `seq` order.
fn write_event(render: impl FnOnce(u64) -> String) {
    let mut guard = writer().lock().unwrap();
    if let Some(w) = guard.as_mut() {
        // Re-check under the lock so shutdown() can't race a straggler.
        if ENABLED.load(Ordering::Relaxed) {
            let seq = SEQ.fetch_add(1, Ordering::Relaxed);
            let _ = writeln!(w, "{}", render(seq));
            EMITTED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

pub(crate) fn emit_span(name: &str, start_s: f64, dur_s: f64, depth: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    write_event(|seq| {
        serde_json::json!({
            "ev": "span",
            "name": name,
            "t_s": start_s,
            "dur_s": dur_s,
            "depth": depth,
            "seq": seq,
        })
        .to_string()
    });
}

pub(crate) fn emit_counter(name: &str, delta: u64, total: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    write_event(|seq| {
        serde_json::json!({
            "ev": "counter",
            "name": name,
            "delta": delta,
            "total": total,
            "t_s": now_s(),
            "seq": seq,
        })
        .to_string()
    });
}

pub(crate) fn emit_gauge(name: &str, value: f64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    write_event(|seq| {
        serde_json::json!({
            "ev": "gauge",
            "name": name,
            "value": value,
            "t_s": now_s(),
            "seq": seq,
        })
        .to_string()
    });
}
